//! AXI channel payload types (paper §III-B).
//!
//! One value of these types corresponds to one accepted handshake on the
//! respective channel. Data channels carry real bytes so that the packing
//! datapath can be verified end-to-end, not just timed.

use crate::config::{BusConfig, ElemSize, IdxSize};
use crate::pack::PackMode;
use crate::Addr;

/// Maximum bytes one data beat can carry: the widest data channel AXI4
/// permits is 1024 bits. This is the fixed capacity of [`BeatBuf`].
pub const MAX_BEAT_BYTES: usize = 128;

/// Inline payload of one R or W data beat.
///
/// A fixed-capacity buffer ([`simkit::InlineBuf`]) sized for the widest
/// bus, so beats carry their bytes *inline* instead of heap-allocating a
/// `Vec<u8>` per handshake — the per-cycle path of every simulated system
/// stays allocation-free. The visible length always equals the bus width
/// in bytes; bytes beyond it are zero. Build payloads with
/// [`BeatBuf::zeroed`] (then slice-assign lanes) or
/// [`BeatBuf::from_slice`].
pub type BeatBuf = simkit::InlineBuf<MAX_BEAT_BYTES>;

/// AXI transaction identifier.
///
/// Transactions with the same ID must stay ordered; different IDs may
/// interleave. The simulated systems use a small fixed ID space; the
/// carrier is 16 bits wide so a cascade of ID-prefixing muxes (see
/// [`crate::AxiMux::cascade`]) can stack per-level manager prefixes above
/// the engine-local bits without overflowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AxiId(pub u16);

impl std::fmt::Display for AxiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// AXI burst type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Burst {
    /// Fixed-address burst (e.g. FIFO draining).
    Fixed,
    /// Incrementing burst — the normal contiguous transfer.
    #[default]
    Incr,
    /// Wrapping burst (cache-line fills).
    Wrap,
}

/// AXI response code.
///
/// Ordered by severity (`Okay < Slverr < Decerr`) so burst-sticky error
/// tracking can use [`Resp::worst`]: once a burst has seen an error, later
/// beats of the same burst never report a *better* response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Resp {
    /// Normal success.
    #[default]
    Okay,
    /// Slave error — the slave was addressed correctly but failed the
    /// access (injected transient/persistent bank faults land here).
    /// Potentially recoverable by retrying the access.
    Slverr,
    /// Decode error — no slave at that address (out-of-window accesses).
    /// Never recoverable; retrying cannot help.
    Decerr,
}

impl Resp {
    /// The more severe of two responses.
    #[inline]
    pub fn worst(self, other: Resp) -> Resp {
        self.max(other)
    }

    /// Short uppercase name (`"OKAY"`, `"SLVERR"`, `"DECERR"`).
    pub fn name(self) -> &'static str {
        match self {
            Resp::Okay => "OKAY",
            Resp::Slverr => "SLVERR",
            Resp::Decerr => "DECERR",
        }
    }
}

impl std::fmt::Display for Resp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maximum beats in one AXI4 INCR burst.
pub const MAX_BURST_BEATS: u32 = 256;

/// One AR (read request) or AW (write request) channel beat.
///
/// The same payload shape serves both request channels; whether it travels
/// on AR or AW is determined by which [`simkit::Fifo`] it is pushed into.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArBeat {
    /// Transaction ID.
    pub id: AxiId,
    /// Start address. For packed indirect bursts this is the address of the
    /// *index array*; the element base travels in `user`.
    pub addr: Addr,
    /// Number of data beats in the burst (1..=256). This is AXI's
    /// `AxLEN + 1`.
    pub beats: u32,
    /// Element size (`AxSIZE`). For plain full-width bursts this is the bus
    /// width; for packed bursts it is the size of each scattered element.
    pub size: ElemSize,
    /// Burst type. Packed bursts are always `Incr` at the AXI4 level.
    pub burst: Burst,
    /// Raw user-field bits carrying the AXI-Pack extension (0 = plain AXI4).
    pub user: u64,
    /// Valid elements in the *last* beat of a packed burst; `0` means the
    /// last beat is full. Travels in spare user bits (52+) on the wire —
    /// packed streams are bus-aligned, so only the tail needs masking, and
    /// the converters must know it to avoid gathering past the stream end.
    pub tail_elems: u16,
}

impl ArBeat {
    /// A plain AXI4 incrementing burst of full-bus-width beats.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is not in `1..=256`.
    pub fn incr(id: u8, addr: Addr, beats: u32, bus: &BusConfig) -> Self {
        assert!(
            (1..=MAX_BURST_BEATS).contains(&beats),
            "AXI4 burst length must be 1..=256 beats, got {beats}"
        );
        ArBeat {
            id: AxiId(id.into()),
            addr,
            beats,
            size: ElemSize::from_bytes(bus.data_bytes()).expect("bus width is a valid AxSIZE"),
            burst: Burst::Incr,
            user: 0,
            tail_elems: 0,
        }
    }

    /// A plain AXI4 *narrow* single-beat transfer of one element.
    ///
    /// This is what the BASE system issues per element on strided/indexed
    /// accesses — the access pattern whose inefficiency motivates AXI-Pack.
    pub fn narrow(id: u8, addr: Addr, size: ElemSize) -> Self {
        ArBeat {
            id: AxiId(id.into()),
            addr,
            beats: 1,
            size,
            burst: Burst::Incr,
            user: 0,
            tail_elems: 0,
        }
    }

    /// A packed strided burst fetching `n_elems` elements `stride` elements
    /// apart, starting at `addr`.
    ///
    /// `n_elems` is rounded up to a whole number of beats; the requestor
    /// masks the tail.
    ///
    /// # Panics
    ///
    /// Panics if `n_elems` is zero or the burst would exceed 256 beats.
    pub fn packed_strided(
        id: u8,
        addr: Addr,
        n_elems: u32,
        size: ElemSize,
        stride: i32,
        bus: &BusConfig,
    ) -> Self {
        assert!(n_elems > 0, "empty packed burst");
        let epb = bus.elems_per_beat(size) as u32;
        let beats = n_elems.div_ceil(epb);
        assert!(
            beats <= MAX_BURST_BEATS,
            "packed burst of {beats} beats exceeds the AXI4 maximum"
        );
        ArBeat {
            id: AxiId(id.into()),
            addr,
            beats,
            size,
            burst: Burst::Incr,
            user: PackMode::Strided { stride }.encode(),
            tail_elems: (n_elems % epb) as u16,
        }
    }

    /// A packed indirect burst gathering `n_elems` elements through the
    /// index array at `idx_addr`, relative to `elem_base`.
    ///
    /// # Panics
    ///
    /// Panics if `n_elems` is zero or the burst would exceed 256 beats.
    pub fn packed_indirect(
        id: u8,
        idx_addr: Addr,
        n_elems: u32,
        size: ElemSize,
        idx_size: IdxSize,
        elem_base: Addr,
        bus: &BusConfig,
    ) -> Self {
        assert!(n_elems > 0, "empty packed burst");
        let epb = bus.elems_per_beat(size) as u32;
        let beats = n_elems.div_ceil(epb);
        assert!(
            beats <= MAX_BURST_BEATS,
            "packed burst of {beats} beats exceeds the AXI4 maximum"
        );
        ArBeat {
            id: AxiId(id.into()),
            addr: idx_addr,
            beats,
            size,
            burst: Burst::Incr,
            user: PackMode::Indirect {
                idx_size,
                elem_base,
            }
            .encode(),
            tail_elems: (n_elems % epb) as u16,
        }
    }

    // simcheck: hot-path begin -- per-beat decode and accounting accessors;
    // pure bit arithmetic on inline payloads.

    /// Decodes the AXI-Pack mode, `None` for plain AXI4 bursts.
    #[inline]
    pub fn pack_mode(&self) -> Option<PackMode> {
        PackMode::decode(self.user)
    }

    /// Number of data beats (`AxLEN + 1`).
    #[inline]
    pub fn beats(&self) -> u32 {
        self.beats
    }

    /// Bytes each beat carries for *this* request on the given bus: the full
    /// bus width for full-size or packed beats, the element size for narrow
    /// plain beats.
    pub fn beat_payload_bytes(&self, bus: &BusConfig) -> usize {
        if self.pack_mode().is_some() || self.size.bytes() == bus.data_bytes() {
            bus.data_bytes()
        } else {
            self.size.bytes()
        }
    }

    /// Number of elements the burst moves, *including* the padding that
    /// rounds the last beat up (beats × elements per beat for packed and
    /// full-width bursts; 1 for narrow plain bursts).
    pub fn elems(&self, bus: &BusConfig) -> u32 {
        if self.pack_mode().is_some() || self.size.bytes() == bus.data_bytes() {
            self.beats * bus.elems_per_beat(self.size) as u32
        } else {
            self.beats
        }
    }

    /// Number of *valid* elements the burst moves — [`ArBeat::elems`] minus
    /// the masked tail of the last beat.
    pub fn valid_elems(&self, bus: &BusConfig) -> u32 {
        let padded = self.elems(bus);
        if self.tail_elems == 0 {
            padded
        } else {
            padded - bus.elems_per_beat(self.size) as u32 + self.tail_elems as u32
        }
    }

    /// Number of valid elements in beat `b` (`0`-based) of a packed burst.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn beat_valid_elems(&self, b: u32, bus: &BusConfig) -> usize {
        assert!(b < self.beats, "beat index {b} out of {}", self.beats);
        let epb = bus.elems_per_beat(self.size);
        if b + 1 == self.beats && self.tail_elems != 0 {
            self.tail_elems as usize
        } else {
            epb
        }
    }

    // simcheck: hot-path end
}

/// One R (read data) channel beat, carrying real bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RBeat {
    /// ID of the transaction this beat belongs to.
    pub id: AxiId,
    /// Beat payload; length equals the bus width in bytes (narrow beats are
    /// placed in the low lanes, the rest is zero).
    pub data: BeatBuf,
    /// Bytes of `data` that carry useful payload (for utilization stats).
    pub payload_bytes: usize,
    /// Set on the final beat of a burst.
    pub last: bool,
    /// Response code.
    pub resp: Resp,
}

/// One W (write data) channel beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WBeat {
    /// Beat payload; length equals the bus width in bytes.
    pub data: BeatBuf,
    /// Byte-enable strobe, bit *i* enables `data[i]`. A 1024-bit bus has
    /// 128 byte lanes, so `u128` always suffices.
    pub strb: u128,
    /// Set on the final beat of a burst.
    pub last: bool,
}

impl WBeat {
    // simcheck: hot-path begin -- W-beat construction and strobe queries on
    // every accepted write handshake; payloads stay inline.

    /// A beat with every byte lane enabled.
    pub fn full(data: impl Into<BeatBuf>, last: bool) -> Self {
        let data = data.into();
        let strb = if data.len() >= 128 {
            u128::MAX
        } else {
            (1u128 << data.len()) - 1
        };
        WBeat { data, strb, last }
    }

    /// Returns `true` if byte lane `i` is enabled.
    #[inline]
    pub fn lane_enabled(&self, i: usize) -> bool {
        self.strb >> i & 1 == 1
    }

    /// Number of enabled byte lanes.
    pub fn payload_bytes(&self) -> usize {
        self.strb.count_ones() as usize
    }

    // simcheck: hot-path end
}

/// One B (write response) channel beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BBeat {
    /// ID of the completed write transaction.
    pub id: AxiId,
    /// Response code.
    pub resp: Resp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> BusConfig {
        BusConfig::new(256)
    }

    #[test]
    fn incr_burst_is_plain_axi4() {
        let ar = ArBeat::incr(1, 0x100, 4, &bus());
        assert_eq!(ar.pack_mode(), None);
        assert_eq!(ar.beats(), 4);
        assert_eq!(ar.size, ElemSize::B32);
        assert_eq!(ar.beat_payload_bytes(&bus()), 32);
        assert_eq!(ar.elems(&bus()), 4);
    }

    #[test]
    fn narrow_beats_waste_bus_bytes() {
        let ar = ArBeat::narrow(0, 0x40, ElemSize::B4);
        assert_eq!(ar.beat_payload_bytes(&bus()), 4);
        assert_eq!(ar.elems(&bus()), 1);
    }

    #[test]
    fn packed_strided_rounds_up_to_beats() {
        let ar = ArBeat::packed_strided(0, 0, 17, ElemSize::B4, 5, &bus());
        assert_eq!(ar.beats(), 3); // 17 elems at 8/beat
        assert_eq!(ar.elems(&bus()), 24);
        assert_eq!(ar.valid_elems(&bus()), 17);
        assert_eq!(ar.tail_elems, 1);
        assert_eq!(ar.beat_valid_elems(0, &bus()), 8);
        assert_eq!(ar.beat_valid_elems(2, &bus()), 1);
        assert_eq!(ar.pack_mode(), Some(PackMode::Strided { stride: 5 }));
        assert_eq!(ar.beat_payload_bytes(&bus()), 32);
    }

    #[test]
    fn full_burst_has_no_tail() {
        let ar = ArBeat::packed_strided(0, 0, 16, ElemSize::B4, 2, &bus());
        assert_eq!(ar.tail_elems, 0);
        assert_eq!(ar.valid_elems(&bus()), 16);
        assert_eq!(ar.beat_valid_elems(1, &bus()), 8);
    }

    #[test]
    fn packed_indirect_carries_both_addresses() {
        let ar = ArBeat::packed_indirect(2, 0x1000, 8, ElemSize::B4, IdxSize::B4, 0x8000, &bus());
        assert_eq!(ar.addr, 0x1000);
        assert_eq!(
            ar.pack_mode(),
            Some(PackMode::Indirect {
                idx_size: IdxSize::B4,
                elem_base: 0x8000
            })
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the AXI4 maximum")]
    fn oversized_packed_burst_rejected() {
        let _ = ArBeat::packed_strided(0, 0, 8 * 257, ElemSize::B4, 1, &bus());
    }

    #[test]
    fn wbeat_strobe_helpers() {
        let w = WBeat::full(vec![0u8; 32], true);
        assert_eq!(w.payload_bytes(), 32);
        assert!(w.lane_enabled(0));
        assert!(w.lane_enabled(31));
        assert!(!w.lane_enabled(32));
        let partial = WBeat {
            data: BeatBuf::zeroed(32),
            strb: 0b1111,
            last: false,
        };
        assert_eq!(partial.payload_bytes(), 4);
    }

    #[test]
    fn max_width_strobe_saturates() {
        let w = WBeat::full(vec![0u8; 128], false);
        assert_eq!(w.payload_bytes(), 128);
    }
}
