//! `axi-proto` — a data-carrying model of AXI4 plus the **AXI-Pack**
//! extension from *AXI-Pack: Near-Memory Bus Packing for Bandwidth-Efficient
//! Irregular Workloads* (DATE 2023).
//!
//! AXI4 defines five independent channels — AR and AW carry read and write
//! requests, R and W carry data, B carries write responses. AXI-Pack extends
//! the AR/AW *user* field with a `pack` bit, an `indir` bit, and a shared
//! payload holding either an element stride (strided bursts) or an index
//! size plus element base address (indirect bursts). While a packed burst is
//! active, scattered data elements are *tightly packed* onto the R/W data
//! buses, and the burst start is bus-aligned rather than address-aligned.
//!
//! This crate provides:
//!
//! * the channel payload types ([`ArBeat`], [`RBeat`], [`WBeat`], [`BBeat`]),
//!   carrying real data bytes;
//! * the typed user-field extension [`PackMode`] with a bit-exact
//!   [`PackMode::encode`]/[`PackMode::decode`] pair, so the extension is a
//!   genuine user-signal encoding and not just an enum;
//! * burst *semantics*: [`expand::element_addresses`] and
//!   [`expand::beat_layout`] compute, for any request, exactly which memory
//!   words each packed beat is assembled from — the reference model every
//!   converter and every test is checked against;
//! * a [`checker::Monitor`] that validates handshake and burst invariants on
//!   a live channel.
//!
//! ```
//! use axi_proto::{ArBeat, BusConfig, ElemSize, PackMode};
//!
//! let bus = BusConfig::new(256);
//! // A strided read: 64 FP32 elements, stride 5 elements apart.
//! let ar = ArBeat::packed_strided(0, 0x1000, 64, ElemSize::B4, 5, &bus);
//! assert_eq!(ar.beats(), 8); // 8 elements per 256-bit beat
//! ```

// Public-API documentation is part of this crate's contract: every
// public item must explain what paper structure it models.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod beat;
pub mod channels;
pub mod checker;
pub mod config;
pub mod expand;
pub mod mux;
pub mod pack;

pub use beat::{ArBeat, AxiId, BBeat, BeatBuf, Burst, RBeat, Resp, WBeat, MAX_BEAT_BYTES};
pub use channels::{AxiChannels, CHANNEL_DEPTH};
pub use config::{BusConfig, ElemSize, IdxSize};
pub use expand::{beat_layout, element_addresses, split_words, BeatSource, WordRef};
pub use mux::{AxiMux, ID_BITS, LOCAL_ID_BITS, MAX_FAN_IN, MAX_MANAGERS};
pub use pack::PackMode;

/// A byte address in the simulated physical address space.
pub type Addr = u64;
