//! Multi-manager AXI multiplexer.
//!
//! The paper notes that AXI-Pack "in principle supports non-core requestors
//! and systems with multiple requestors and endpoints" — packed bursts are
//! ordinary AXI4 transactions, so any ID-remapping interconnect carries
//! them untouched. [`AxiMux`] demonstrates that: it funnels up to four
//! manager ports into one subordinate port by prefixing transaction IDs
//! with the manager index (the standard AXI interconnect scheme), routes
//! W beats in AW-acceptance order, and demultiplexes R/B responses by ID
//! prefix. Packed bursts need no special handling whatsoever.
//!
//! # Arbitration policy
//!
//! Both request channels arbitrate **round-robin** through
//! [`simkit::RoundRobin`]: after manager *i* wins a grant, manager *i + 1*
//! holds the highest priority for the next one, so under sustained load
//! every manager receives the same request bandwidth regardless of its
//! port index. A fixed-priority mux would starve high-index managers and
//! skew every contention measurement toward manager 0; the fairness tests
//! below pin the rotating behaviour down. AR and AW rotate independently
//! (reads cannot starve writes or vice versa), W follows AW-acceptance
//! order as AXI4 requires, and R/B are pure demultiplexers (the
//! subordinate already serialized them).
//!
//! # Accounting
//!
//! The mux tracks, per manager, the outstanding read bursts (AR accepted,
//! final R beat not yet returned) and writes awaiting their B response, so
//! a multi-requestor run loop can ask [`AxiMux::manager_quiescent`] when a
//! single requestor has fully drained while its neighbours keep running.
//! It also counts, per manager, granted and lost AR arbitration rounds
//! ([`AxiMux::ar_grants`] / [`AxiMux::ar_lost`]) — the mux-level view of
//! bus contention that the per-engine stall counters complement.

use simkit::fault::{site, FaultSpec, SiteSchedule};
use simkit::RoundRobin;
use std::collections::VecDeque;

use crate::beat::AxiId;
use crate::channels::AxiChannels;

/// Maximum managers a *flat* (non-cascaded) mux supports (2 ID bits).
pub const MAX_MANAGERS: usize = 4;
/// Maximum fan-in of one level of a cascaded mux tree (3 ID-prefix bits).
/// Sized so the per-cycle arbitration scratch stays on the stack.
pub const MAX_FAN_IN: usize = 8;
/// Bits of the ID space left to each manager: the mux prefixes the
/// manager-index bits above them, so manager-local transaction IDs must
/// stay below `1 << LOCAL_ID_BITS`. Engines sitting behind a mux restrict
/// their ID allocators to this width. Cascaded levels stack further
/// prefix bits above this (see [`AxiMux::cascade`]).
pub const LOCAL_ID_BITS: u32 = 6;
/// Total ID bits an [`crate::AxiId`] can carry: the budget every mux
/// tree's stacked prefixes plus the engine-local bits must fit into.
pub const ID_BITS: u32 = 16;

/// Installed grant-delay fault state (see [`AxiMux::install_faults`]).
///
/// Storm countdowns advance only on arbitration rounds where at least one
/// manager wants a grant, so the schedule is keyed on *demand ordinals*,
/// not wall-clock cycles — the event-driven scheduler never skips such a
/// cycle, keeping fault timing bit-identical across scheduler modes.
#[derive(Debug)]
struct MuxFaults {
    ar: SiteSchedule,
    aw: SiteSchedule,
    storm_len: u32,
    ar_storm_left: u32,
    aw_storm_left: u32,
    storms: u64,
    stalled: u64,
}

/// An N-to-1 AXI(-Pack) multiplexer.
///
/// Per cycle it forwards at most one AR and one AW (round-robin across
/// managers — see the [module docs](self) for the policy), one W beat
/// (strictly in AW-acceptance order, as AXI4 requires), and routes back
/// one R and one B beat by ID prefix.
///
/// # Examples
///
/// ```
/// use axi_proto::{AxiChannels, AxiMux};
///
/// let mut mux = AxiMux::new(2);
/// let mut managers = vec![AxiChannels::new(), AxiChannels::new()];
/// let mut downstream = AxiChannels::new();
/// mux.tick(&mut managers, &mut downstream);
/// assert!(mux.quiescent());
/// ```
#[derive(Debug)]
pub struct AxiMux {
    n: usize,
    /// ID bits below this mux's manager prefix: manager-local IDs must fit
    /// `shift` bits, and the prefix occupies the bits at and above it.
    shift: u32,
    ar_arb: RoundRobin,
    aw_arb: RoundRobin,
    /// W routing: (manager, beats remaining) per accepted AW, in order.
    w_route: VecDeque<(usize, u32)>,
    /// Outstanding read bursts per manager (AR forwarded, last R pending).
    reads_open: Vec<u32>,
    /// Writes per manager awaiting their B response.
    writes_open: Vec<u32>,
    /// AR requests granted per manager.
    ar_grants: Vec<u64>,
    /// Cycles a manager had an AR ready but was not granted (downstream
    /// back-pressure or a lost arbitration round).
    ar_lost: Vec<u64>,
    /// R beats routed back upstream through this mux — the per-level
    /// occupancy measure the fabric reports aggregate.
    r_routed: u64,
    /// Installed grant-delay storms; `None` (the default) keeps the fault
    /// hooks to one branch per arbitration round.
    faults: Option<MuxFaults>,
}

impl AxiMux {
    /// Creates a flat mux over `n` manager ports whose managers are
    /// engines with [`LOCAL_ID_BITS`]-bit local IDs — the single-level
    /// topology every pre-fabric system uses.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 4`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=MAX_MANAGERS).contains(&n),
            "mux supports 1..=4 managers, got {n}"
        );
        Self::cascade(n, LOCAL_ID_BITS)
    }

    /// Creates one level of a cascaded mux tree: `n` manager ports whose
    /// IDs already occupy `shift` bits (engine-local bits plus any
    /// lower-level prefixes). This level stacks its own manager-index
    /// prefix at bit `shift`, so its downstream IDs occupy
    /// `shift + ceil(log2(n))` bits; a parent level is constructed with
    /// that wider shift.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= MAX_FAN_IN` and the prefixed IDs fit the
    /// [`ID_BITS`]-bit carrier.
    pub fn cascade(n: usize, shift: u32) -> Self {
        assert!(
            (1..=MAX_FAN_IN).contains(&n),
            "mux level supports 1..={MAX_FAN_IN} managers, got {n}"
        );
        let prefix_bits = (n.max(2) - 1).ilog2() + 1;
        assert!(
            shift + prefix_bits <= ID_BITS,
            "mux level at shift {shift} with {n} managers overflows the \
             {ID_BITS}-bit ID space"
        );
        AxiMux {
            n,
            shift,
            ar_arb: RoundRobin::new(n),
            aw_arb: RoundRobin::new(n),
            w_route: VecDeque::new(),
            reads_open: vec![0; n],
            writes_open: vec![0; n],
            ar_grants: vec![0; n],
            ar_lost: vec![0; n],
            r_routed: 0,
            faults: None,
        }
    }

    /// Installs deterministic grant-delay storms: at splitmix64-scheduled
    /// demand ordinals, the AR (or AW) arbiter withholds every grant for
    /// `spec.grant_storm_len` busy rounds — the interconnect-level fault
    /// that exercises requestor patience without corrupting any data.
    pub fn install_faults(&mut self, spec: &FaultSpec) {
        self.faults = Some(MuxFaults {
            ar: spec.schedule(site::MUX_AR_GRANT, spec.grant_storm_period),
            aw: spec.schedule(site::MUX_AW_GRANT, spec.grant_storm_period),
            storm_len: spec.grant_storm_len,
            ar_storm_left: 0,
            aw_storm_left: 0,
            storms: 0,
            stalled: 0,
        });
    }

    /// Number of manager ports.
    pub fn managers(&self) -> usize {
        self.n
    }

    /// ID bits below this level's manager prefix (see [`AxiMux::cascade`]).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    // simcheck: hot-path begin -- ID remapping and the per-cycle arbitration
    // tick; the W-route deque is the only queue and it is bounded by the
    // outstanding-write limit, so it reaches steady-state capacity early.

    /// Prefixes a manager-local ID with the manager index above `shift`
    /// bits. Public so fabric plumbing (fault attribution, endpoint-ID
    /// reconstruction) can reproduce the mapping a mux path applies.
    pub fn prefix_id(shift: u32, port: usize, id: AxiId) -> AxiId {
        assert!(
            id.0 >> shift == 0,
            "manager IDs must fit {shift} bits, got {}",
            id.0
        );
        AxiId((port as u16) << shift | id.0)
    }

    /// Splits a downstream ID back into (manager, local ID) at `shift`.
    pub fn split_id(shift: u32, id: AxiId) -> (usize, AxiId) {
        ((id.0 >> shift) as usize, AxiId(id.0 & ((1 << shift) - 1)))
    }

    /// Prefixes a manager-local ID with the manager index.
    fn upstream_id(&self, port: usize, id: AxiId) -> AxiId {
        Self::prefix_id(self.shift, port, id)
    }

    /// Splits a downstream ID back into (manager, local ID).
    fn downstream_id(&self, id: AxiId) -> (usize, AxiId) {
        Self::split_id(self.shift, id)
    }

    /// One cycle of multiplexer work.
    ///
    /// # Panics
    ///
    /// Panics if `managers.len()` differs from the configured port count,
    /// or if a response carries a manager index out of range.
    pub fn tick(&mut self, managers: &mut [AxiChannels], down: &mut AxiChannels) {
        assert_eq!(managers.len(), self.n, "manager port count mismatch");
        // AR: round-robin one request. The request vectors live on the
        // stack (at most MAX_FAN_IN ports) — no per-cycle allocation.
        let mut wants = [false; MAX_FAN_IN];
        for (p, m) in managers.iter().enumerate() {
            wants[p] = m.ar.can_pop();
        }
        let wants = &wants[..self.n];
        let mut ar_stormed = false;
        if let Some(f) = self.faults.as_mut() {
            if wants.iter().any(|w| *w) {
                if f.ar_storm_left == 0 && f.ar.fires() {
                    f.ar_storm_left = f.storm_len;
                    f.storms += 1;
                }
                if f.ar_storm_left > 0 {
                    f.ar_storm_left -= 1;
                    f.stalled += 1;
                    ar_stormed = true;
                }
            }
        }
        let granted = if down.ar.can_push() && !ar_stormed {
            self.ar_arb.grant(wants)
        } else {
            None
        };
        for (p, want) in wants.iter().enumerate() {
            if *want && granted != Some(p) {
                self.ar_lost[p] += 1;
            }
        }
        if let Some(p) = granted {
            let mut ar = managers[p].ar.pop().expect("granted manager has AR");
            ar.id = self.upstream_id(p, ar.id);
            self.reads_open[p] += 1;
            self.ar_grants[p] += 1;
            down.ar.push(ar);
        }
        // AW: round-robin one request; record the W route.
        {
            let mut wants = [false; MAX_FAN_IN];
            for (p, m) in managers.iter().enumerate() {
                wants[p] = m.aw.can_pop();
            }
            let mut aw_stormed = false;
            if let Some(f) = self.faults.as_mut() {
                if wants[..self.n].iter().any(|w| *w) {
                    if f.aw_storm_left == 0 && f.aw.fires() {
                        f.aw_storm_left = f.storm_len;
                        f.storms += 1;
                    }
                    if f.aw_storm_left > 0 {
                        f.aw_storm_left -= 1;
                        f.stalled += 1;
                        aw_stormed = true;
                    }
                }
            }
            if !down.aw.can_push() || aw_stormed {
                // fall through: no AW grant this round
            } else if let Some(p) = self.aw_arb.grant(&wants[..self.n]) {
                let mut aw = managers[p].aw.pop().expect("granted manager has AW");
                aw.id = self.upstream_id(p, aw.id);
                self.w_route.push_back((p, aw.beats));
                self.writes_open[p] += 1;
                down.aw.push(aw);
            }
        }
        // W: strictly in AW order.
        if down.w.can_push() {
            if let Some((p, beats_left)) = self.w_route.front_mut() {
                if let Some(w) = managers[*p].w.pop() {
                    down.w.push(w);
                    *beats_left -= 1;
                    if *beats_left == 0 {
                        self.w_route.pop_front();
                    }
                }
            }
        }
        // R: route by ID prefix (peek first so back-pressure propagates).
        if let Some(r) = down.r.peek() {
            let (p, local) = self.downstream_id(r.id);
            assert!(p < self.n, "R beat for unknown manager {p}");
            if managers[p].r.can_push() {
                let mut r = down.r.pop().expect("peeked");
                r.id = local;
                if r.last {
                    debug_assert!(self.reads_open[p] > 0, "last R without open read");
                    self.reads_open[p] = self.reads_open[p].saturating_sub(1);
                }
                self.r_routed += 1;
                managers[p].r.push(r);
            }
        }
        // B: route by ID prefix.
        if let Some(b) = down.b.peek() {
            let (p, local) = self.downstream_id(b.id);
            assert!(p < self.n, "B beat for unknown manager {p}");
            if managers[p].b.can_push() {
                let mut b = down.b.pop().expect("peeked");
                b.id = local;
                debug_assert!(self.writes_open[p] > 0, "B without open write");
                self.writes_open[p] = self.writes_open[p].saturating_sub(1);
                managers[p].b.push(b);
            }
        }
    }

    // simcheck: hot-path end

    /// Returns `true` when manager `p` has no outstanding traffic through
    /// the mux: no read burst awaiting its last R beat, no write awaiting
    /// its B response, and no W route still draining.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a valid manager index.
    pub fn manager_quiescent(&self, p: usize) -> bool {
        assert!(p < self.n, "manager {p} out of range");
        self.reads_open[p] == 0
            && self.writes_open[p] == 0
            && !self.w_route.iter().any(|(q, _)| *q == p)
    }

    /// Returns `true` when no manager has outstanding traffic (every read
    /// returned its last beat, every write its B, no W burst mid-route).
    pub fn quiescent(&self) -> bool {
        self.w_route.is_empty()
            && self.reads_open.iter().all(|&r| r == 0)
            && self.writes_open.iter().all(|&w| w == 0)
    }

    /// Wake status for the event-driven scheduler.
    ///
    /// The mux's tick is a pure function of the channel FIFOs around it:
    /// with every manager port and the downstream port drained *and* no
    /// burst mid-route, a tick grants nothing and moves nothing (the
    /// round-robin arbiters do not rotate on an all-idle grant), so the mux
    /// is [`simkit::sched::Wake::Idle`] and may be skipped. Any open
    /// transaction or routable beat makes it [`simkit::sched::Wake::Ready`].
    /// The caller must merge in the surrounding channels' own wakes.
    #[inline]
    pub fn wake(&self) -> simkit::sched::Wake {
        if self.quiescent() {
            simkit::sched::Wake::Idle
        } else {
            simkit::sched::Wake::Ready
        }
    }

    /// AR requests granted to manager `p` so far.
    pub fn ar_grants(&self, p: usize) -> u64 {
        self.ar_grants[p]
    }

    /// Cycles manager `p` had an AR ready but was not granted (lost the
    /// arbitration round or the subordinate back-pressured).
    pub fn ar_lost(&self, p: usize) -> u64 {
        self.ar_lost[p]
    }

    /// Total AR requests forwarded downstream across all managers.
    pub fn ar_forwarded(&self) -> u64 {
        self.ar_grants.iter().sum()
    }

    /// Total R beats routed back upstream across all managers.
    pub fn r_forwarded(&self) -> u64 {
        self.r_routed
    }

    /// True while an injected grant storm is actively suppressing
    /// arbitration — hang forensics must treat a storming mux as busy
    /// even when no burst is mid-route.
    pub fn storm_active(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.ar_storm_left > 0 || f.aw_storm_left > 0)
    }

    /// Grant-delay storms started by the installed fault plan.
    pub fn grant_storms(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.storms)
    }

    /// Arbitration rounds suppressed while a storm was active.
    pub fn storm_stalls(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.stalled)
    }

    /// One-line state snapshot for hang forensics: per-manager open
    /// transactions, the W-route backlog, and any active grant storm.
    pub fn describe_state(&self) -> String {
        let opens: Vec<String> = (0..self.n)
            .map(|p| format!("m{p}: {}r/{}w", self.reads_open[p], self.writes_open[p]))
            .collect();
        let storm = self
            .faults
            .as_ref()
            .map_or(0, |f| f.ar_storm_left + f.aw_storm_left);
        format!(
            "open [{}], {} W routes pending, storm suppression {} rounds left",
            opens.join(", "),
            self.w_route.len(),
            storm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::{ArBeat, BBeat, BeatBuf, RBeat, Resp, WBeat};
    use crate::config::{BusConfig, ElemSize};

    #[test]
    fn id_mapping_roundtrips() {
        for p in 0..4 {
            for id in [0u16, 1, 33, 63] {
                let up = AxiMux::prefix_id(LOCAL_ID_BITS, p, AxiId(id));
                assert_eq!(AxiMux::split_id(LOCAL_ID_BITS, up), (p, AxiId(id)));
            }
        }
    }

    #[test]
    fn cascaded_prefixes_stack_above_lower_levels() {
        // A level-1 mux at shift 8 prefixes above a level-0 prefix at
        // shift 6: both split back out in reverse order.
        let lvl0 = AxiMux::prefix_id(LOCAL_ID_BITS, 3, AxiId(17));
        let lvl1 = AxiMux::prefix_id(8, 5, lvl0);
        let (p1, rest) = AxiMux::split_id(8, lvl1);
        assert_eq!(p1, 5);
        assert_eq!(AxiMux::split_id(LOCAL_ID_BITS, rest), (3, AxiId(17)));
    }

    #[test]
    fn cascade_levels_report_their_shift() {
        assert_eq!(AxiMux::new(4).shift(), LOCAL_ID_BITS);
        assert_eq!(AxiMux::cascade(8, 9).shift(), 9);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn cascade_rejects_id_space_overflow() {
        let _ = AxiMux::cascade(8, 14);
    }

    #[test]
    #[should_panic(expected = "mux level supports")]
    fn cascade_rejects_excess_fan_in() {
        let _ = AxiMux::cascade(MAX_FAN_IN + 1, LOCAL_ID_BITS);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_manager_id_rejected() {
        let _ = AxiMux::prefix_id(LOCAL_ID_BITS, 0, AxiId(64));
    }

    #[test]
    fn ar_requests_interleave_fairly() {
        let bus = BusConfig::new(256);
        let mut mux = AxiMux::new(2);
        let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];
        let mut down = AxiChannels::new();
        let mut order = Vec::new();
        let mut sent = [0u64; 2];
        for _ in 0..40 {
            for (p, m) in mgrs.iter_mut().enumerate() {
                if m.ar.can_push() && sent[p] < 8 {
                    m.ar.push(ArBeat::incr(p as u8, sent[p] * 0x40, 1, &bus));
                    sent[p] += 1;
                }
            }
            if let Some(ar) = down.ar.pop() {
                order.push(AxiMux::split_id(LOCAL_ID_BITS, ar.id).0);
            }
            mux.tick(&mut mgrs, &mut down);
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
        }
        assert_eq!(order.len(), 16);
        assert_eq!(order.iter().filter(|p| **p == 0).count(), 8);
        // Round-robin: managers alternate when both are ready.
        let alternations = order.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(alternations >= 12, "poor interleave: {order:?}");
        assert_eq!(mux.ar_grants(0), 8);
        assert_eq!(mux.ar_grants(1), 8);
    }

    #[test]
    fn arbitration_rotates_without_index_bias() {
        // Four always-ready managers must each win exactly one grant per
        // four-cycle rotation — the round-robin policy the contention
        // figures depend on (a fixed-priority mux would hand manager 0
        // every grant).
        let bus = BusConfig::new(256);
        let mut mux = AxiMux::new(4);
        let mut mgrs: Vec<AxiChannels> = (0..4).map(|_| AxiChannels::new()).collect();
        let mut down = AxiChannels::new();
        let mut order = Vec::new();
        for cycle in 0..64u64 {
            for (p, m) in mgrs.iter_mut().enumerate() {
                if m.ar.can_push() {
                    m.ar.push(ArBeat::incr(p as u8, cycle * 0x40, 1, &bus));
                }
            }
            if let Some(ar) = down.ar.pop() {
                order.push(AxiMux::split_id(LOCAL_ID_BITS, ar.id).0);
            }
            mux.tick(&mut mgrs, &mut down);
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
        }
        assert!(order.len() >= 32, "sustained load must keep granting");
        // Every window of four consecutive grants covers all four managers.
        for w in order.windows(4) {
            let mut seen = [false; 4];
            for &p in w {
                seen[p] = true;
            }
            assert_eq!(seen, [true; 4], "rotation broke: {order:?}");
        }
        let grants: Vec<u64> = (0..4).map(|p| mux.ar_grants(p)).collect();
        let (min, max) = (grants.iter().min().unwrap(), grants.iter().max().unwrap());
        assert!(max - min <= 1, "grant skew by manager index: {grants:?}");
    }

    #[test]
    fn grant_storms_stall_arbitration_but_lose_nothing() {
        let bus = BusConfig::new(256);
        let mut mux = AxiMux::new(2);
        let mut spec = simkit::fault::FaultSpec::silent(11);
        spec.grant_storm_period = 3;
        spec.grant_storm_len = 4;
        mux.install_faults(&spec);
        let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];
        let mut down = AxiChannels::new();
        let mut granted = 0usize;
        let mut sent = [0u64; 2];
        for _ in 0..400 {
            for (p, m) in mgrs.iter_mut().enumerate() {
                if m.ar.can_push() && sent[p] < 8 {
                    m.ar.push(ArBeat::incr(p as u8, sent[p] * 0x40, 1, &bus));
                    sent[p] += 1;
                }
            }
            if down.ar.pop().is_some() {
                granted += 1;
            }
            mux.tick(&mut mgrs, &mut down);
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
            if granted == 16 {
                break;
            }
        }
        assert_eq!(granted, 16, "storms delay grants; they must not drop them");
        assert!(mux.grant_storms() > 0, "a mean-3 storm schedule must fire");
        assert!(
            mux.storm_stalls() >= mux.grant_storms(),
            "each storm suppresses at least one arbitration round"
        );
        assert_eq!(
            mux.ar_grants(0) + mux.ar_grants(1),
            16,
            "per-manager grant accounting survives storms"
        );
    }

    #[test]
    fn w_beats_follow_aw_order() {
        let bus = BusConfig::new(256);
        let mut mux = AxiMux::new(2);
        let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];
        let mut down = AxiChannels::new();
        // Manager 0 posts a 2-beat write, manager 1 a 1-beat write.
        mgrs[0].aw.push(ArBeat::incr(1, 0x0, 2, &bus));
        mgrs[1].aw.push(ArBeat::incr(2, 0x100, 1, &bus));
        mgrs[0].w.push(WBeat::full(vec![0xAA; 32], false));
        mgrs[1].w.push(WBeat::full(vec![0xBB; 32], true));
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        let mut w_data = Vec::new();
        for cycle in 0..20 {
            if cycle == 2 {
                mgrs[0].w.push(WBeat::full(vec![0xAA; 32], true));
            }
            if let Some(w) = down.w.pop() {
                w_data.push(w.data[0]);
            }
            down.aw.pop();
            mux.tick(&mut mgrs, &mut down);
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
        }
        // Whichever AW won arbitration first sends ALL its beats first.
        assert_eq!(w_data.len(), 3);
        if w_data[0] == 0xAA {
            assert_eq!(w_data, vec![0xAA, 0xAA, 0xBB]);
        } else {
            assert_eq!(w_data, vec![0xBB, 0xAA, 0xAA]);
        }
        // Both writes still await their B responses.
        assert!(!mux.quiescent());
        assert!(!mux.manager_quiescent(0));
        // Return the Bs; the mux books full quiescence per manager.
        down.b.push(BBeat {
            id: AxiMux::prefix_id(LOCAL_ID_BITS, 0, AxiId(1)),
            resp: Resp::Okay,
        });
        down.end_cycle();
        mux.tick(&mut mgrs, &mut down);
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        assert!(mux.manager_quiescent(0));
        assert!(!mux.manager_quiescent(1));
        down.b.push(BBeat {
            id: AxiMux::prefix_id(LOCAL_ID_BITS, 1, AxiId(2)),
            resp: Resp::Okay,
        });
        down.end_cycle();
        mux.tick(&mut mgrs, &mut down);
        assert!(mux.quiescent());
    }

    #[test]
    fn responses_route_back_by_prefix() {
        let mut mux = AxiMux::new(3);
        let mut mgrs = vec![AxiChannels::new(), AxiChannels::new(), AxiChannels::new()];
        let mut down = AxiChannels::new();
        // Open the transactions the responses answer, so the per-manager
        // accounting sees a consistent stream.
        let bus = BusConfig::new(256);
        mgrs[2].ar.push(ArBeat::incr(5, 0x0, 1, &bus));
        mgrs[1].aw.push(ArBeat::incr(9, 0x100, 1, &bus));
        mgrs[1].w.push(WBeat::full(vec![0u8; 32], true));
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        for _ in 0..4 {
            mux.tick(&mut mgrs, &mut down);
            down.aw.pop();
            down.ar.pop();
            down.w.pop();
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
        }
        down.r.push(RBeat {
            id: AxiMux::prefix_id(LOCAL_ID_BITS, 2, AxiId(5)),
            data: BeatBuf::zeroed(32),
            payload_bytes: 32,
            last: true,
            resp: Resp::Okay,
        });
        down.b.push(BBeat {
            id: AxiMux::prefix_id(LOCAL_ID_BITS, 1, AxiId(9)),
            resp: Resp::Okay,
        });
        down.end_cycle();
        mux.tick(&mut mgrs, &mut down);
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        assert_eq!(mgrs[2].r.pop().expect("routed").id, AxiId(5));
        assert_eq!(mgrs[1].b.pop().expect("routed").id, AxiId(9));
        assert!(!mgrs[0].r.can_pop());
        assert!(mux.quiescent());
    }

    #[test]
    fn packed_bursts_pass_through_untouched_except_id() {
        let bus = BusConfig::new(256);
        let mut mux = AxiMux::new(2);
        let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];
        let mut down = AxiChannels::new();
        let ar = ArBeat::packed_strided(3, 0x40, 16, ElemSize::B4, 7, &bus);
        let user = ar.user;
        mgrs[1].ar.push(ar);
        mgrs[1].end_cycle();
        mux.tick(&mut mgrs, &mut down);
        down.end_cycle();
        let got = down.ar.pop().expect("forwarded");
        assert_eq!(got.user, user, "pack semantics must survive the mux");
        assert_eq!(AxiMux::split_id(LOCAL_ID_BITS, got.id), (1, AxiId(3)));
        // The burst is open until its last R beat returns.
        assert!(!mux.manager_quiescent(1));
        assert!(mux.manager_quiescent(0));
    }
}
