//! Protocol conformance monitoring.
//!
//! A [`Monitor`] observes one requestor/endpoint pair's traffic and checks
//! the burst-level invariants AXI4 (and AXI-Pack, which preserves them)
//! requires: every R beat belongs to an outstanding read, bursts produce
//! exactly the advertised number of beats, `last` is set on — and only on —
//! the final beat, and same-ID transactions complete in order.

use std::collections::VecDeque;

use crate::beat::{ArBeat, AxiId, BBeat, RBeat, Resp, WBeat};
use crate::config::BusConfig;

/// A protocol violation detected by a [`Monitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An R beat arrived with an ID that has no outstanding read burst.
    OrphanRBeat(AxiId),
    /// `last` was set before the advertised burst length was reached.
    EarlyLast(AxiId),
    /// The advertised burst length was exceeded without `last`.
    MissingLast(AxiId),
    /// An R beat's data length differs from the bus width.
    BadBeatWidth {
        /// Bus width in bytes.
        expected: usize,
        /// Observed beat payload length in bytes.
        got: usize,
    },
    /// A W beat arrived with no outstanding write burst.
    OrphanWBeat,
    /// A B response arrived with no outstanding write burst awaiting one.
    OrphanBResp(AxiId),
    /// A read burst's response "healed": a beat reported a better response
    /// than an earlier beat of the same burst. Error responses must be
    /// sticky within a burst — once a beat carries SLVERR/DECERR, the
    /// requestor may have already discarded the data, so later OKAY beats
    /// would falsely signal success.
    RespHealed {
        /// The offending burst's ID.
        id: AxiId,
        /// Worst response seen so far in the burst.
        was: Resp,
        /// The (better) response the later beat carried.
        got: Resp,
    },
    /// A request carried a transaction ID wider than the monitored port's
    /// ID space (e.g. a manager behind an [`crate::AxiMux`] must keep its
    /// IDs below `1 << LOCAL_ID_BITS` so the mux prefix fits).
    IdOutOfRange {
        /// The offending ID.
        id: AxiId,
        /// The port's configured ID width in bits.
        id_bits: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OrphanRBeat(id) => write!(f, "R beat without outstanding read ({id})"),
            Violation::EarlyLast(id) => write!(f, "last asserted early ({id})"),
            Violation::MissingLast(id) => write!(f, "burst overran advertised length ({id})"),
            Violation::BadBeatWidth { expected, got } => {
                write!(f, "beat width {got} B, bus is {expected} B")
            }
            Violation::OrphanWBeat => write!(f, "W beat without outstanding write"),
            Violation::OrphanBResp(id) => write!(f, "B response without outstanding write ({id})"),
            Violation::RespHealed { id, was, got } => {
                write!(
                    f,
                    "read burst {id} healed from {was} to {got}; error responses must be sticky"
                )
            }
            Violation::IdOutOfRange { id, id_bits } => {
                write!(
                    f,
                    "transaction ID {id} exceeds the port's {id_bits}-bit ID space"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

#[derive(Debug)]
struct OpenBurst {
    id: AxiId,
    beats_left: u32,
    /// Worst response seen so far on this burst's beats (reads only).
    worst: Resp,
}

/// Observes channel traffic and records protocol violations.
///
/// Attach one monitor per bus; call the `observe_*` method for every
/// accepted handshake. Violations accumulate and are queryable at any time —
/// integration tests assert the list is empty at the end of a run.
///
/// # Examples
///
/// ```
/// use axi_proto::{checker::Monitor, ArBeat, BeatBuf, BusConfig, RBeat, Resp};
///
/// let bus = BusConfig::new(64);
/// let mut mon = Monitor::new(bus);
/// mon.observe_ar(&ArBeat::incr(0, 0x0, 1, &bus));
/// mon.observe_r(&RBeat {
///     id: axi_proto::AxiId(0),
///     data: BeatBuf::zeroed(8),
///     payload_bytes: 8,
///     last: true,
///     resp: Resp::Okay,
/// });
/// assert!(mon.violations().is_empty());
/// ```
#[derive(Debug)]
pub struct Monitor {
    bus: BusConfig,
    /// ID-space width of the monitored port, in bits (≤ 16).
    id_bits: u32,
    /// Outstanding read bursts, per ID, in issue order.
    reads: Vec<VecDeque<OpenBurst>>,
    /// Outstanding write bursts (beats still expected on W), issue order.
    writes: VecDeque<OpenBurst>,
    /// Writes whose data is complete, awaiting a B response.
    awaiting_b: VecDeque<AxiId>,
    violations: Vec<Violation>,
    /// Counters for reporting.
    r_beats: u64,
    w_beats: u64,
}

impl Monitor {
    /// Creates a monitor for a bus of the given width, with the full
    /// 8-bit ID space (a subordinate-side port of a flat topology).
    pub fn new(bus: BusConfig) -> Self {
        Monitor::with_id_bits(bus, 8)
    }

    /// Creates a monitor whose port carries `id_bits`-bit transaction
    /// IDs — the manager-side port of an [`crate::AxiMux`] restricts its
    /// managers to [`crate::mux::LOCAL_ID_BITS`]-bit local IDs, while a
    /// fabric root port carries the stacked per-level prefixes on top
    /// (up to [`crate::mux::ID_BITS`] total). Requests with wider IDs are
    /// recorded as [`Violation::IdOutOfRange`] and not tracked further.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= id_bits <= 16`.
    pub fn with_id_bits(bus: BusConfig, id_bits: u32) -> Self {
        assert!((1..=16).contains(&id_bits), "ID width must be 1..=16 bits");
        Monitor {
            bus,
            id_bits,
            reads: (0..1usize << id_bits).map(|_| VecDeque::new()).collect(),
            writes: VecDeque::new(),
            awaiting_b: VecDeque::new(),
            violations: Vec::new(),
            r_beats: 0,
            w_beats: 0,
        }
    }

    /// Flags a request ID exceeding the port's ID space; returns whether
    /// the ID fits (and is therefore safe to index the tracking tables).
    fn check_id_width(&mut self, id: AxiId) -> bool {
        if (u32::from(id.0) >> self.id_bits) != 0 {
            self.violations.push(Violation::IdOutOfRange {
                id,
                id_bits: self.id_bits,
            });
            false
        } else {
            true
        }
    }

    /// Records an accepted AR handshake.
    pub fn observe_ar(&mut self, ar: &ArBeat) {
        if !self.check_id_width(ar.id) {
            return;
        }
        self.reads[ar.id.0 as usize].push_back(OpenBurst {
            id: ar.id,
            beats_left: ar.beats,
            worst: Resp::Okay,
        });
    }

    /// Records an accepted AW handshake.
    pub fn observe_aw(&mut self, aw: &ArBeat) {
        self.check_id_width(aw.id);
        self.writes.push_back(OpenBurst {
            id: aw.id,
            beats_left: aw.beats,
            worst: Resp::Okay,
        });
    }

    /// Records an accepted R handshake.
    pub fn observe_r(&mut self, r: &RBeat) {
        self.r_beats += 1;
        if r.data.len() != self.bus.data_bytes() {
            self.violations.push(Violation::BadBeatWidth {
                expected: self.bus.data_bytes(),
                got: r.data.len(),
            });
        }
        let Some(queue) = self.reads.get_mut(r.id.0 as usize) else {
            self.violations.push(Violation::OrphanRBeat(r.id));
            return;
        };
        let Some(open) = queue.front_mut() else {
            self.violations.push(Violation::OrphanRBeat(r.id));
            return;
        };
        if r.resp < open.worst {
            self.violations.push(Violation::RespHealed {
                id: open.id,
                was: open.worst,
                got: r.resp,
            });
        }
        open.worst = open.worst.worst(r.resp);
        open.beats_left -= 1;
        if open.beats_left == 0 {
            if !r.last {
                self.violations.push(Violation::MissingLast(open.id));
            }
            queue.pop_front();
        } else if r.last {
            self.violations.push(Violation::EarlyLast(open.id));
            queue.pop_front();
        }
    }

    /// Records an accepted W handshake.
    pub fn observe_w(&mut self, w: &WBeat) {
        self.w_beats += 1;
        if w.data.len() != self.bus.data_bytes() {
            self.violations.push(Violation::BadBeatWidth {
                expected: self.bus.data_bytes(),
                got: w.data.len(),
            });
        }
        let Some(open) = self.writes.front_mut() else {
            self.violations.push(Violation::OrphanWBeat);
            return;
        };
        open.beats_left -= 1;
        if open.beats_left == 0 {
            if !w.last {
                self.violations.push(Violation::MissingLast(open.id));
            }
            let done = self.writes.pop_front().expect("front exists");
            self.awaiting_b.push_back(done.id);
        } else if w.last {
            self.violations.push(Violation::EarlyLast(open.id));
            self.writes.pop_front();
        }
    }

    /// Records an accepted B handshake.
    pub fn observe_b(&mut self, b: &BBeat) {
        match self.awaiting_b.iter().position(|id| *id == b.id) {
            Some(pos) => {
                self.awaiting_b.remove(pos);
            }
            None => self.violations.push(Violation::OrphanBResp(b.id)),
        }
    }

    /// Violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Returns `true` if every observed burst has fully completed.
    pub fn quiescent(&self) -> bool {
        self.reads.iter().all(|q| q.is_empty())
            && self.writes.is_empty()
            && self.awaiting_b.is_empty()
    }

    /// Total R beats observed.
    pub fn r_beats(&self) -> u64 {
        self.r_beats
    }

    /// Total W beats observed.
    pub fn w_beats(&self) -> u64 {
        self.w_beats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::{BeatBuf, Resp};
    use crate::ElemSize;

    fn bus() -> BusConfig {
        BusConfig::new(64)
    }

    fn rbeat(id: u16, last: bool) -> RBeat {
        RBeat {
            id: AxiId(id),
            data: BeatBuf::zeroed(8),
            payload_bytes: 8,
            last,
            resp: Resp::Okay,
        }
    }

    #[test]
    fn clean_burst_passes() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(3, 0, 2, &bus()));
        m.observe_r(&rbeat(3, false));
        m.observe_r(&rbeat(3, true));
        assert!(m.violations().is_empty());
        assert!(m.quiescent());
        assert_eq!(m.r_beats(), 2);
    }

    #[test]
    fn orphan_r_beat_detected() {
        let mut m = Monitor::new(bus());
        m.observe_r(&rbeat(0, true));
        assert_eq!(m.violations(), &[Violation::OrphanRBeat(AxiId(0))]);
    }

    #[test]
    fn early_last_detected() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(0, 0, 3, &bus()));
        m.observe_r(&rbeat(0, true));
        assert_eq!(m.violations(), &[Violation::EarlyLast(AxiId(0))]);
    }

    #[test]
    fn missing_last_detected() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(0, 0, 1, &bus()));
        m.observe_r(&rbeat(0, false));
        assert_eq!(m.violations(), &[Violation::MissingLast(AxiId(0))]);
    }

    #[test]
    fn wrong_width_detected() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(0, 0, 1, &bus()));
        m.observe_r(&RBeat {
            id: AxiId(0),
            data: BeatBuf::zeroed(4),
            payload_bytes: 4,
            last: true,
            resp: Resp::Okay,
        });
        assert!(m.violations().contains(&Violation::BadBeatWidth {
            expected: 8,
            got: 4
        }));
    }

    #[test]
    fn interleaved_ids_tracked_independently() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(0, 0, 2, &bus()));
        m.observe_ar(&ArBeat::incr(1, 0x100, 1, &bus()));
        m.observe_r(&rbeat(0, false));
        m.observe_r(&rbeat(1, true));
        m.observe_r(&rbeat(0, true));
        assert!(m.violations().is_empty());
        assert!(m.quiescent());
    }

    #[test]
    fn write_burst_lifecycle() {
        let mut m = Monitor::new(bus());
        let aw = ArBeat {
            id: AxiId(5),
            addr: 0,
            beats: 2,
            size: ElemSize::B8,
            burst: crate::Burst::Incr,
            user: 0,
            tail_elems: 0,
        };
        m.observe_aw(&aw);
        m.observe_w(&WBeat::full(vec![0u8; 8], false));
        m.observe_w(&WBeat::full(vec![0u8; 8], true));
        assert!(!m.quiescent()); // B still pending
        m.observe_b(&BBeat {
            id: AxiId(5),
            resp: Resp::Okay,
        });
        assert!(m.violations().is_empty());
        assert!(m.quiescent());
    }

    #[test]
    fn narrow_id_space_flags_wide_ids() {
        // A manager-side port behind the mux: local IDs must fit 6 bits.
        let mut m = Monitor::with_id_bits(bus(), 6);
        m.observe_ar(&ArBeat::incr(63, 0, 1, &bus()));
        assert!(m.violations().is_empty(), "63 fits 6 bits");
        m.observe_ar(&ArBeat::incr(64, 0, 1, &bus()));
        assert_eq!(
            m.violations(),
            &[Violation::IdOutOfRange {
                id: AxiId(64),
                id_bits: 6
            }]
        );
        // The default subordinate-side monitor accepts the full space.
        let mut wide = Monitor::new(bus());
        wide.observe_ar(&ArBeat::incr(255, 0, 1, &bus()));
        assert!(wide.violations().is_empty());
    }

    #[test]
    fn healed_response_detected() {
        let mut m = Monitor::new(bus());
        m.observe_ar(&ArBeat::incr(2, 0, 3, &bus()));
        let mut bad = rbeat(2, false);
        bad.resp = Resp::Slverr;
        m.observe_r(&rbeat(2, false)); // OKAY first is fine
        m.observe_r(&bad); // degrading is fine
        m.observe_r(&rbeat(2, true)); // healing back to OKAY is not
        assert_eq!(
            m.violations(),
            &[Violation::RespHealed {
                id: AxiId(2),
                was: Resp::Slverr,
                got: Resp::Okay
            }]
        );
    }

    #[test]
    fn orphan_b_detected() {
        let mut m = Monitor::new(bus());
        m.observe_b(&BBeat {
            id: AxiId(7),
            resp: Resp::Okay,
        });
        assert_eq!(m.violations(), &[Violation::OrphanBResp(AxiId(7))]);
    }
}
