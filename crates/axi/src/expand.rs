//! Reference semantics of packed bursts.
//!
//! Given a request (and, for indirect bursts, the index values), these
//! functions compute exactly which memory bytes each packed beat is
//! assembled from. The converter hardware models in `pack-ctrl` are tested
//! against this expansion, and the vector processor uses it to know what
//! data to expect.

use crate::beat::ArBeat;
use crate::config::{BusConfig, ElemSize};
use crate::pack::PackMode;
use crate::Addr;

/// One element's placement inside a packed beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemRef {
    /// Byte address of the element in memory.
    pub mem_addr: Addr,
    /// Byte offset of the element inside the beat.
    pub beat_offset: usize,
    /// Element size in bytes.
    pub bytes: usize,
}

/// The memory sources of one packed data beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeatSource {
    /// Elements packed into this beat, in bus order (lowest lanes first).
    pub elems: Vec<ElemRef>,
}

/// A word-aligned fragment of an element, for bank-level access planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordRef {
    /// Word-aligned byte address of the memory word.
    pub word_addr: Addr,
    /// First byte of the fragment within the word.
    pub offset_in_word: usize,
    /// Fragment length in bytes.
    pub bytes: usize,
    /// Where the fragment lands within the element.
    pub offset_in_elem: usize,
}

/// Computes the address of every element a packed burst touches.
///
/// For strided bursts the addresses follow
/// `addr + k × stride × elem_bytes`; for indirect bursts they follow
/// `elem_base + index[k] << log2(elem_bytes)` using the provided `indices`.
///
/// # Examples
///
/// ```
/// use axi_proto::{expand::element_addresses, ArBeat, BusConfig, ElemSize};
///
/// let bus = BusConfig::new(64); // 8 elems of 1 B per beat
/// let ar = ArBeat::packed_strided(0, 100, 8, ElemSize::B1, 3, &bus);
/// let addrs = element_addresses(&ar, None, &bus);
/// assert_eq!(addrs, vec![100, 103, 106, 109, 112, 115, 118, 121]);
/// ```
///
/// # Panics
///
/// Panics if called on a plain AXI4 burst, or if an indirect burst is given
/// fewer indices than elements, or if a strided address underflows below 0.
pub fn element_addresses(ar: &ArBeat, indices: Option<&[u64]>, bus: &BusConfig) -> Vec<Addr> {
    let mode = ar
        .pack_mode()
        .expect("element_addresses requires a packed burst");
    let n = ar.valid_elems(bus) as usize;
    let eb = ar.size.bytes() as i64;
    match mode {
        PackMode::Strided { stride } => (0..n as i64)
            .map(|k| {
                let a = ar.addr as i64 + k * stride as i64 * eb;
                assert!(a >= 0, "strided burst address underflow");
                a as Addr
            })
            .collect(),
        PackMode::Indirect { elem_base, .. } => {
            let idx = indices.expect("indirect burst expansion requires index values");
            assert!(
                idx.len() >= n,
                "indirect burst needs {n} indices, got {}",
                idx.len()
            );
            idx[..n]
                .iter()
                .map(|&i| elem_base + (i << ar.size.log2_bytes()))
                .collect()
        }
    }
}

/// Lays element addresses out into bus-aligned packed beats.
///
/// AXI-Pack aligns the stream with the *bus*, not the address: element `k`
/// of the stream always lands at byte `k × elem_bytes mod bus_bytes` of beat
/// `k / elems_per_beat` — the property that lets the vector processor feed
/// lanes without realignment.
///
/// # Examples
///
/// ```
/// use axi_proto::{expand::beat_layout, BusConfig, ElemSize};
///
/// let bus = BusConfig::new(64); // 2 elems of 4 B per beat
/// let beats = beat_layout(&[40, 80, 120], ElemSize::B4, &bus);
/// assert_eq!(beats.len(), 2); // 3 elements -> 1 full + 1 partial beat
/// assert_eq!(beats[0].elems[1].beat_offset, 4);
/// ```
pub fn beat_layout(elem_addrs: &[Addr], elem: ElemSize, bus: &BusConfig) -> Vec<BeatSource> {
    let epb = bus.elems_per_beat(elem);
    elem_addrs
        .chunks(epb)
        .map(|chunk| BeatSource {
            elems: chunk
                .iter()
                .enumerate()
                .map(|(j, &mem_addr)| ElemRef {
                    mem_addr,
                    beat_offset: j * elem.bytes(),
                    bytes: elem.bytes(),
                })
                .collect(),
        })
        .collect()
}

/// Splits a byte range into word-aligned fragments.
///
/// The banked controller accesses memory in words of the bank width; an
/// element that is wider than a word, or misaligned, decomposes into several
/// word accesses. Word width must be a power of two.
///
/// # Examples
///
/// ```
/// use axi_proto::expand::split_words;
///
/// // A 4-byte element at address 6 straddles two 4-byte words.
/// let frags = split_words(6, 4, 4);
/// assert_eq!(frags.len(), 2);
/// assert_eq!((frags[0].word_addr, frags[0].bytes), (4, 2));
/// assert_eq!((frags[1].word_addr, frags[1].bytes), (8, 2));
/// ```
///
/// # Panics
///
/// Panics if `word_bytes` is not a power of two or `bytes` is zero.
pub fn split_words(mem_addr: Addr, bytes: usize, word_bytes: usize) -> Vec<WordRef> {
    assert!(
        word_bytes.is_power_of_two(),
        "word width must be a power of two"
    );
    assert!(bytes > 0, "cannot split an empty range");
    let mask = (word_bytes - 1) as Addr;
    let mut out = Vec::new();
    let mut addr = mem_addr;
    let mut remaining = bytes;
    let mut offset_in_elem = 0;
    while remaining > 0 {
        let word_addr = addr & !mask;
        let offset_in_word = (addr & mask) as usize;
        let take = remaining.min(word_bytes - offset_in_word);
        out.push(WordRef {
            word_addr,
            offset_in_word,
            bytes: take,
            offset_in_elem,
        });
        addr += take as Addr;
        remaining -= take;
        offset_in_elem += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdxSize;

    fn bus() -> BusConfig {
        BusConfig::new(256)
    }

    #[test]
    fn strided_addresses_match_formula() {
        let ar = ArBeat::packed_strided(0, 0x100, 8, ElemSize::B4, 5, &bus());
        let addrs = element_addresses(&ar, None, &bus());
        assert_eq!(addrs.len(), 8);
        for (k, a) in addrs.iter().enumerate() {
            assert_eq!(*a, 0x100 + (k as u64) * 5 * 4);
        }
    }

    #[test]
    fn negative_stride_walks_backwards() {
        let ar = ArBeat::packed_strided(0, 0x1000, 8, ElemSize::B4, -2, &bus());
        let addrs = element_addresses(&ar, None, &bus());
        assert_eq!(addrs[1], 0x1000 - 8);
        assert_eq!(addrs[7], 0x1000 - 7 * 8);
    }

    #[test]
    fn zero_stride_replicates_one_address() {
        let ar = ArBeat::packed_strided(0, 0x40, 8, ElemSize::B4, 0, &bus());
        let addrs = element_addresses(&ar, None, &bus());
        assert!(addrs.iter().all(|&a| a == 0x40));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_stride_underflow_panics() {
        let ar = ArBeat::packed_strided(0, 0x4, 8, ElemSize::B4, -100, &bus());
        let _ = element_addresses(&ar, None, &bus());
    }

    #[test]
    fn indirect_addresses_shift_and_add() {
        let ar = ArBeat::packed_indirect(0, 0x0, 8, ElemSize::B4, IdxSize::B4, 0x1_0000, &bus());
        let idx = [0u64, 9, 1, 5, 1, 8, 2, 1];
        let addrs = element_addresses(&ar, Some(&idx), &bus());
        for (k, a) in addrs.iter().enumerate() {
            assert_eq!(*a, 0x1_0000 + idx[k] * 4);
        }
    }

    #[test]
    fn beat_layout_is_bus_aligned() {
        let addrs: Vec<Addr> = (0..12u64).map(|k| 0x100 + k * 20).collect();
        let beats = beat_layout(&addrs, ElemSize::B4, &bus());
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0].elems.len(), 8);
        assert_eq!(beats[1].elems.len(), 4); // tail beat partially filled
        for (j, e) in beats[0].elems.iter().enumerate() {
            assert_eq!(e.beat_offset, j * 4);
        }
        assert_eq!(beats[1].elems[0].mem_addr, 0x100 + 8 * 20);
    }

    #[test]
    fn wide_elements_pack_fewer_per_beat() {
        let addrs: Vec<Addr> = (0..4u64).map(|k| k * 64).collect();
        let beats = beat_layout(&addrs, ElemSize::B16, &bus());
        assert_eq!(beats.len(), 2); // 2 × 16-byte elems per 32-byte beat
        assert_eq!(beats[0].elems[1].beat_offset, 16);
    }

    #[test]
    fn split_words_aligned_element() {
        let words = split_words(0x108, 4, 4);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0].word_addr, 0x108);
        assert_eq!(words[0].offset_in_word, 0);
        assert_eq!(words[0].bytes, 4);
    }

    #[test]
    fn split_words_wide_element_spans_words() {
        let words = split_words(0x100, 16, 4);
        assert_eq!(words.len(), 4);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.word_addr, 0x100 + 4 * i as u64);
            assert_eq!(w.offset_in_elem, 4 * i);
            assert_eq!(w.bytes, 4);
        }
    }

    #[test]
    fn split_words_misaligned_element() {
        let words = split_words(0x102, 4, 4);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].word_addr, 0x100);
        assert_eq!(words[0].offset_in_word, 2);
        assert_eq!(words[0].bytes, 2);
        assert_eq!(words[1].word_addr, 0x104);
        assert_eq!(words[1].bytes, 2);
        assert_eq!(words[1].offset_in_elem, 2);
    }

    #[test]
    fn split_words_total_bytes_preserved() {
        for (addr, len) in [(0x0u64, 1usize), (0x3, 9), (0x7, 32), (0x10, 5)] {
            let total: usize = split_words(addr, len, 8).iter().map(|w| w.bytes).sum();
            assert_eq!(total, len);
        }
    }
}
