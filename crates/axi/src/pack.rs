//! The AXI-Pack AR/AW user-field extension.
//!
//! AXI4 provisions a parametric-width `user` field on every channel;
//! AXI-Pack claims bits of the AR/AW user field so that *unmodified*
//! interconnect IPs (anything that routes bursts without reshaping them)
//! keep working. The layout modeled here, least-significant bit first:
//!
//! | bits     | strided burst            | indirect burst                  |
//! |----------|--------------------------|---------------------------------|
//! | 0        | `pack` = 1               | `pack` = 1                      |
//! | 1        | `indir` = 0              | `indir` = 1                     |
//! | 2..=3    | —                        | index size (log2 bytes)         |
//! | 4..=35   | element stride (i32, in elements) | —                      |
//! | 4..=51   | —                        | element base address (48 bit)   |
//!
//! A user field of all zeros means "plain AXI4 burst", which is what any
//! non-AXI-Pack requestor naturally drives — full backward compatibility.

use crate::config::IdxSize;
use crate::Addr;

/// Number of user-field bits the encoding occupies.
pub const USER_BITS: u32 = 52;

/// Mask of the address bits an indirect burst can carry.
const BASE_MASK: u64 = (1u64 << 48) - 1;

/// Decoded AXI-Pack request semantics carried in the AR/AW user field.
///
/// # Examples
///
/// ```
/// use axi_proto::PackMode;
///
/// let m = PackMode::Strided { stride: -3 };
/// assert_eq!(PackMode::decode(m.encode()), Some(m));
/// assert_eq!(PackMode::decode(0), None); // plain AXI4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackMode {
    /// A bus-packed strided burst; `stride` is in *elements* (may be zero or
    /// negative — a zero stride replicates one element, matching RVV's
    /// semantics for `vlse` with stride 0).
    Strided {
        /// Distance between consecutive elements, in elements.
        stride: i32,
    },
    /// A bus-packed indirect burst. The AR/AW *address* field points at the
    /// index array; the user field carries the element base address and the
    /// index size. Element *k* lives at
    /// `elem_base + index[k] << elem_size.log2_bytes()`.
    Indirect {
        /// Size of each index in the index array.
        idx_size: IdxSize,
        /// Base address the (shifted) indices are added to.
        elem_base: Addr,
    },
}

impl PackMode {
    /// Encodes the mode into raw user-field bits.
    ///
    /// # Panics
    ///
    /// Panics if an indirect `elem_base` does not fit in 48 bits.
    pub fn encode(&self) -> u64 {
        match *self {
            PackMode::Strided { stride } => {
                let s = (stride as u32) as u64; // two's complement, 32 bits
                0b01 | (s << 4)
            }
            PackMode::Indirect {
                idx_size,
                elem_base,
            } => {
                assert!(
                    elem_base <= BASE_MASK,
                    "indirect element base 0x{elem_base:x} exceeds 48 bits"
                );
                0b11 | ((idx_size.log2_bytes() as u64) << 2) | (elem_base << 4)
            }
        }
    }

    /// Decodes raw user-field bits.
    ///
    /// Returns `None` when the `pack` bit is clear — i.e. a plain AXI4
    /// burst.
    pub fn decode(user: u64) -> Option<PackMode> {
        if user & 1 == 0 {
            return None;
        }
        if user & 0b10 == 0 {
            let stride = ((user >> 4) as u32) as i32;
            Some(PackMode::Strided { stride })
        } else {
            let idx_size = IdxSize::ALL
                .into_iter()
                .find(|i| i.log2_bytes() as u64 == (user >> 2) & 0b11)
                .expect("2-bit field always maps to a valid IdxSize");
            let elem_base = (user >> 4) & BASE_MASK;
            Some(PackMode::Indirect {
                idx_size,
                elem_base,
            })
        }
    }

    /// Returns `true` for an indirect burst.
    pub fn is_indirect(&self) -> bool {
        matches!(self, PackMode::Indirect { .. })
    }

    /// Returns `true` for a strided burst.
    pub fn is_strided(&self) -> bool {
        matches!(self, PackMode::Strided { .. })
    }
}

impl std::fmt::Display for PackMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackMode::Strided { stride } => write!(f, "packed strided (stride {stride})"),
            PackMode::Indirect {
                idx_size,
                elem_base,
            } => write!(f, "packed indirect ({idx_size}, base 0x{elem_base:x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_axi4_decodes_to_none() {
        assert_eq!(PackMode::decode(0), None);
        // indir bit without pack bit is still plain AXI4.
        assert_eq!(PackMode::decode(0b10), None);
    }

    #[test]
    fn strided_roundtrip_including_negative_and_zero() {
        for stride in [-1_000_000, -5, -1, 0, 1, 5, 63, 1_000_000] {
            let m = PackMode::Strided { stride };
            assert_eq!(PackMode::decode(m.encode()), Some(m), "stride {stride}");
        }
    }

    #[test]
    fn indirect_roundtrip_all_index_sizes() {
        for idx_size in IdxSize::ALL {
            let m = PackMode::Indirect {
                idx_size,
                elem_base: 0x00de_adbe_ef00,
            };
            assert_eq!(PackMode::decode(m.encode()), Some(m));
        }
    }

    #[test]
    fn encode_sets_discriminator_bits() {
        assert_eq!(PackMode::Strided { stride: 0 }.encode() & 0b11, 0b01);
        let ind = PackMode::Indirect {
            idx_size: IdxSize::B4,
            elem_base: 0,
        };
        assert_eq!(ind.encode() & 0b11, 0b11);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_base_rejected() {
        PackMode::Indirect {
            idx_size: IdxSize::B4,
            elem_base: 1 << 48,
        }
        .encode();
    }

    #[test]
    fn encoding_fits_declared_user_width() {
        let worst = PackMode::Indirect {
            idx_size: IdxSize::B8,
            elem_base: BASE_MASK,
        };
        assert!(worst.encode() < (1u64 << USER_BITS));
        let worst_stride = PackMode::Strided { stride: -1 };
        assert!(worst_stride.encode() < (1u64 << USER_BITS));
    }
}
