//! The five-channel AXI bus as a bundle of handshake FIFOs.
//!
//! The AR/R/AW/W/B structure of AXI4 (paper Fig. 1) that both BASE and
//! PACK systems drive; AXI-Pack changes beat *contents*, never channels.

use simkit::Fifo;

use crate::beat::{ArBeat, BBeat, RBeat, WBeat};

/// One AXI(-Pack) bus: AR, AW, W, R and B channel registers.
///
/// A *manager* (e.g. a vector processor's load-store unit) pushes AR/AW/W
/// and pops R/B; a *subordinate* (e.g. the AXI-Pack memory controller) does
/// the opposite. Each channel is a depth-2 [`simkit::Fifo`], i.e. a
/// full-rate skid buffer: one beat per channel per cycle, with one register
/// stage of latency — the behaviour of a register slice in an AXI
/// interconnect.
///
/// # Examples
///
/// ```
/// use axi_proto::{ArBeat, AxiChannels, BusConfig};
///
/// let bus = BusConfig::new(256);
/// let mut ch = AxiChannels::new();
/// ch.ar.push(ArBeat::incr(0, 0x40, 2, &bus));
/// ch.end_cycle();
/// assert!(ch.ar.can_pop());
/// ```
#[derive(Debug)]
pub struct AxiChannels {
    /// Read request channel.
    pub ar: Fifo<ArBeat>,
    /// Write request channel.
    pub aw: Fifo<ArBeat>,
    /// Write data channel.
    pub w: Fifo<WBeat>,
    /// Read data channel.
    pub r: Fifo<RBeat>,
    /// Write response channel.
    pub b: Fifo<BBeat>,
}

impl AxiChannels {
    /// Creates channel FIFOs of depth 2 (full-rate register slices).
    pub fn new() -> Self {
        AxiChannels {
            ar: Fifo::new(2),
            aw: Fifo::new(2),
            w: Fifo::new(2),
            r: Fifo::new(2),
            b: Fifo::new(2),
        }
    }

    /// Advances all channel registers; call once per cycle.
    pub fn end_cycle(&mut self) {
        self.ar.end_cycle();
        self.aw.end_cycle();
        self.w.end_cycle();
        self.r.end_cycle();
        self.b.end_cycle();
    }

    /// Returns `true` when every channel is fully drained.
    pub fn is_empty(&self) -> bool {
        self.ar.is_empty()
            && self.aw.is_empty()
            && self.w.is_empty()
            && self.r.is_empty()
            && self.b.is_empty()
    }
}

impl Default for AxiChannels {
    fn default() -> Self {
        AxiChannels::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusConfig;

    #[test]
    fn channels_register_one_cycle() {
        let bus = BusConfig::new(64);
        let mut ch = AxiChannels::new();
        ch.ar.push(ArBeat::incr(0, 0, 1, &bus));
        assert!(!ch.ar.can_pop());
        assert!(!ch.is_empty());
        ch.end_cycle();
        assert!(ch.ar.pop().is_some());
        ch.end_cycle();
        assert!(ch.is_empty());
    }
}
