//! The five-channel AXI bus as a bundle of handshake FIFOs.
//!
//! The AR/R/AW/W/B structure of AXI4 (paper Fig. 1) that both BASE and
//! PACK systems drive; AXI-Pack changes beat *contents*, never channels.

use simkit::Fifo;

use crate::beat::{ArBeat, BBeat, RBeat, WBeat};
use crate::checker::Monitor;

/// One AXI(-Pack) bus: AR, AW, W, R and B channel registers.
///
/// A *manager* (e.g. a vector processor's load-store unit) pushes AR/AW/W
/// and pops R/B; a *subordinate* (e.g. the AXI-Pack memory controller) does
/// the opposite. Each channel is a depth-2 [`simkit::Fifo`], i.e. a
/// full-rate skid buffer: one beat per channel per cycle, with one register
/// stage of latency — the behaviour of a register slice in an AXI
/// interconnect.
///
/// # Examples
///
/// ```
/// use axi_proto::{ArBeat, AxiChannels, BusConfig};
///
/// let bus = BusConfig::new(256);
/// let mut ch = AxiChannels::new();
/// ch.ar.push(ArBeat::incr(0, 0x40, 2, &bus));
/// ch.end_cycle();
/// assert!(ch.ar.can_pop());
/// ```
#[derive(Debug)]
pub struct AxiChannels {
    /// Read request channel.
    pub ar: Fifo<ArBeat>,
    /// Write request channel.
    pub aw: Fifo<ArBeat>,
    /// Write data channel.
    pub w: Fifo<WBeat>,
    /// Read data channel.
    pub r: Fifo<RBeat>,
    /// Write response channel.
    pub b: Fifo<BBeat>,
}

/// Register depth of every AXI channel FIFO. Two entries make each channel
/// a full-rate skid buffer; static checkers (the `simcheck` DRC) read this
/// to verify stall-freedom instead of hard-coding the depth.
pub const CHANNEL_DEPTH: usize = 2;

impl AxiChannels {
    /// Creates channel FIFOs of depth [`CHANNEL_DEPTH`] (full-rate register
    /// slices).
    pub fn new() -> Self {
        AxiChannels {
            ar: Fifo::new(CHANNEL_DEPTH),
            aw: Fifo::new(CHANNEL_DEPTH),
            w: Fifo::new(CHANNEL_DEPTH),
            r: Fifo::new(CHANNEL_DEPTH),
            b: Fifo::new(CHANNEL_DEPTH),
        }
    }

    // simcheck: hot-path begin -- ticked once per simulated cycle on every
    // bus in the system.

    /// Advances all channel registers; call once per cycle.
    pub fn end_cycle(&mut self) {
        self.ar.end_cycle();
        self.aw.end_cycle();
        self.w.end_cycle();
        self.r.end_cycle();
        self.b.end_cycle();
    }

    /// Advances all channel registers like [`AxiChannels::end_cycle`],
    /// first feeding every handshake accepted this cycle to a protocol
    /// [`Monitor`].
    ///
    /// Each beat pushed into a channel sits in exactly one cycle's staged
    /// set, so a run loop that ends every cycle through this method shows
    /// the monitor every AR/AW/W/R/B handshake exactly once, in channel
    /// order, without touching the simulated timing — the hook the
    /// differential fuzzing harness attaches to.
    pub fn end_cycle_observed(&mut self, mon: &mut Monitor) {
        for ar in self.ar.staged() {
            mon.observe_ar(ar);
        }
        for aw in self.aw.staged() {
            mon.observe_aw(aw);
        }
        for w in self.w.staged() {
            mon.observe_w(w);
        }
        for r in self.r.staged() {
            mon.observe_r(r);
        }
        for b in self.b.staged() {
            mon.observe_b(b);
        }
        self.end_cycle();
    }

    /// Returns `true` when every channel is fully drained.
    pub fn is_empty(&self) -> bool {
        self.ar.is_empty()
            && self.aw.is_empty()
            && self.w.is_empty()
            && self.r.is_empty()
            && self.b.is_empty()
    }

    /// Wake status for the event-driven scheduler.
    ///
    /// A bus holding any beat — visible or staged on any channel — is
    /// [`simkit::sched::Wake::Ready`]: staged beats still need an
    /// `end_cycle` to promote, and visible beats need a consumer tick. A
    /// fully drained bus only changes state when a manager or subordinate
    /// pushes (the "FIFO became non-empty" condition), so it is
    /// [`simkit::sched::Wake::Idle`] and its `end_cycle` is a no-op that a
    /// skip may safely omit.
    #[inline]
    pub fn wake(&self) -> simkit::sched::Wake {
        if self.is_empty() {
            simkit::sched::Wake::Idle
        } else {
            simkit::sched::Wake::Ready
        }
    }

    // simcheck: hot-path end
}

impl Default for AxiChannels {
    fn default() -> Self {
        AxiChannels::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusConfig;

    #[test]
    fn observed_end_cycle_feeds_the_monitor_once_per_beat() {
        use crate::beat::{AxiId, BeatBuf, RBeat, Resp};
        let bus = BusConfig::new(64);
        let mut ch = AxiChannels::new();
        let mut mon = Monitor::new(bus);
        ch.ar.push(ArBeat::incr(3, 0, 2, &bus));
        ch.end_cycle_observed(&mut mon);
        for last in [false, true] {
            ch.r.push(RBeat {
                id: AxiId(3),
                data: BeatBuf::zeroed(8),
                payload_bytes: 8,
                last,
                resp: Resp::Okay,
            });
            ch.end_cycle_observed(&mut mon);
        }
        // Drain without re-observing: already-promoted beats never recount.
        ch.ar.pop();
        ch.r.pop();
        ch.r.pop();
        ch.end_cycle_observed(&mut mon);
        assert_eq!(mon.r_beats(), 2);
        assert!(mon.violations().is_empty());
        assert!(mon.quiescent());
    }

    #[test]
    fn channels_register_one_cycle() {
        let bus = BusConfig::new(64);
        let mut ch = AxiChannels::new();
        ch.ar.push(ArBeat::incr(0, 0, 1, &bus));
        assert!(!ch.ar.can_pop());
        assert!(!ch.is_empty());
        ch.end_cycle();
        assert!(ch.ar.pop().is_some());
        ch.end_cycle();
        assert!(ch.is_empty());
    }
}
