//! Bus and element-size configuration.
//!
//! The 64/128/256-bit bus widths of the scaling studies (Fig. 3d/3e) and
//! the element/index sizes swept in Fig. 5a/5b.

/// Width configuration of one AXI data bus.
///
/// The paper evaluates 64-, 128- and 256-bit buses (2, 4 and 8 Ara lanes).
/// The memory-side word width (the bank width, 32 bit in the paper) lives in
/// `banked-mem`; this type only describes the interconnect.
///
/// # Examples
///
/// ```
/// use axi_proto::BusConfig;
///
/// let bus = BusConfig::new(256);
/// assert_eq!(bus.data_bytes(), 32);
/// assert_eq!(bus.data_bits(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusConfig {
    data_bits: u32,
}

impl BusConfig {
    /// Creates a bus configuration for a `data_bits`-wide data channel.
    ///
    /// # Panics
    ///
    /// Panics unless `data_bits` is a power of two between 32 and 1024 —
    /// the range AXI4 itself permits.
    pub fn new(data_bits: u32) -> Self {
        assert!(
            data_bits.is_power_of_two() && (32..=1024).contains(&data_bits),
            "AXI data width must be a power of two in 32..=1024, got {data_bits}"
        );
        BusConfig { data_bits }
    }

    /// Data-channel width in bits.
    #[inline]
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Data-channel width in bytes.
    #[inline]
    pub fn data_bytes(&self) -> usize {
        (self.data_bits / 8) as usize
    }

    /// How many elements of `elem` size fit in one beat.
    ///
    /// # Panics
    ///
    /// Panics if the element is wider than the bus.
    #[inline]
    pub fn elems_per_beat(&self, elem: ElemSize) -> usize {
        let e = elem.bytes();
        assert!(
            e <= self.data_bytes(),
            "element ({e} B) wider than bus ({} B)",
            self.data_bytes()
        );
        self.data_bytes() / e
    }
}

impl Default for BusConfig {
    /// The paper's evaluation default: a 256-bit bus.
    fn default() -> Self {
        BusConfig::new(256)
    }
}

impl std::fmt::Display for BusConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b bus", self.data_bits)
    }
}

/// Size of one data element moved by a (packed) burst.
///
/// Mirrors the AXI `AxSIZE` field: a power-of-two number of bytes. The
/// paper's workloads use 4-byte (FP32) elements; the sensitivity study
/// sweeps 4 to 32 bytes.
///
/// # Examples
///
/// ```
/// use axi_proto::ElemSize;
///
/// assert_eq!(ElemSize::B4.bits(), 32);
/// assert_eq!(ElemSize::from_bytes(16), Some(ElemSize::B16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemSize {
    /// 1-byte elements.
    B1,
    /// 2-byte elements (FP16 / 16-bit ints).
    B2,
    /// 4-byte elements (FP32 / 32-bit ints) — the paper's default.
    B4,
    /// 8-byte elements.
    B8,
    /// 16-byte elements.
    B16,
    /// 32-byte elements.
    B32,
}

impl ElemSize {
    /// All sizes, smallest first.
    pub const ALL: [ElemSize; 6] = [
        ElemSize::B1,
        ElemSize::B2,
        ElemSize::B4,
        ElemSize::B8,
        ElemSize::B16,
        ElemSize::B32,
    ];

    /// log2 of the size in bytes — the AXI `AxSIZE` encoding.
    #[inline]
    pub fn log2_bytes(&self) -> u32 {
        match self {
            ElemSize::B1 => 0,
            ElemSize::B2 => 1,
            ElemSize::B4 => 2,
            ElemSize::B8 => 3,
            ElemSize::B16 => 4,
            ElemSize::B32 => 5,
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        1 << self.log2_bytes()
    }

    /// Size in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        8 * self.bytes() as u32
    }

    /// Converts a byte count to an `ElemSize`, if it is a supported size.
    pub fn from_bytes(bytes: usize) -> Option<ElemSize> {
        ElemSize::ALL.into_iter().find(|e| e.bytes() == bytes)
    }

    /// Converts an AXI `AxSIZE` encoding (log2 bytes) to an `ElemSize`.
    pub fn from_log2(log2: u32) -> Option<ElemSize> {
        ElemSize::ALL.into_iter().find(|e| e.log2_bytes() == log2)
    }
}

impl std::fmt::Display for ElemSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

/// Size of one index of an indirect burst.
///
/// The paper's sensitivity study (Fig. 5a) sweeps 8-, 16- and 32-bit
/// indices; smaller indices raise the achievable utilization bound
/// `r / (r + 1)` where `r` is the element:index size ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdxSize {
    /// 8-bit indices.
    B1,
    /// 16-bit indices.
    B2,
    /// 32-bit indices — the paper's workload default.
    B4,
    /// 64-bit indices.
    B8,
}

impl IdxSize {
    /// All sizes, smallest first.
    pub const ALL: [IdxSize; 4] = [IdxSize::B1, IdxSize::B2, IdxSize::B4, IdxSize::B8];

    /// log2 of the size in bytes.
    #[inline]
    pub fn log2_bytes(&self) -> u32 {
        match self {
            IdxSize::B1 => 0,
            IdxSize::B2 => 1,
            IdxSize::B4 => 2,
            IdxSize::B8 => 3,
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        1 << self.log2_bytes()
    }

    /// Size in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        8 * self.bytes() as u32
    }

    /// Largest index value representable at this size.
    #[inline]
    pub fn max_index(&self) -> u64 {
        match self {
            IdxSize::B8 => u64::MAX,
            _ => (1u64 << self.bits()) - 1,
        }
    }

    /// Reads one index value from a little-endian byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the index size.
    pub fn read_le(&self, bytes: &[u8]) -> u64 {
        let n = self.bytes();
        let mut v = 0u64;
        for (i, b) in bytes[..n].iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        v
    }

    /// Writes one index value into a little-endian byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the index size or `value` does not
    /// fit in this index size.
    pub fn write_le(&self, value: u64, out: &mut [u8]) {
        assert!(
            value <= self.max_index(),
            "index {value} does not fit in {} bits",
            self.bits()
        );
        let n = self.bytes();
        for (i, b) in out[..n].iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
    }
}

impl std::fmt::Display for IdxSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b idx", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_width_arithmetic() {
        for bits in [64u32, 128, 256] {
            let bus = BusConfig::new(bits);
            assert_eq!(bus.data_bytes() * 8, bits as usize);
            assert_eq!(bus.elems_per_beat(ElemSize::B4), bits as usize / 32);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_bus_width_rejected() {
        let _ = BusConfig::new(100);
    }

    #[test]
    #[should_panic(expected = "wider than bus")]
    fn oversized_element_rejected() {
        BusConfig::new(64).elems_per_beat(ElemSize::B16);
    }

    #[test]
    fn elem_size_roundtrips() {
        for e in ElemSize::ALL {
            assert_eq!(ElemSize::from_bytes(e.bytes()), Some(e));
            assert_eq!(ElemSize::from_log2(e.log2_bytes()), Some(e));
        }
        assert_eq!(ElemSize::from_bytes(3), None);
    }

    #[test]
    fn idx_read_write_roundtrip() {
        let mut buf = [0u8; 8];
        for idx in IdxSize::ALL {
            let v = idx.max_index().min(0x1234_5678_9abc_def0) & idx.max_index();
            idx.write_le(v, &mut buf);
            assert_eq!(idx.read_le(&buf), v);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn idx_overflow_rejected() {
        let mut buf = [0u8; 8];
        IdxSize::B1.write_le(256, &mut buf);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BusConfig::new(128).to_string(), "128b bus");
        assert_eq!(ElemSize::B4.to_string(), "32b");
        assert_eq!(IdxSize::B2.to_string(), "16b idx");
    }
}
