//! Property tests of the protocol layer: burst expansion, packing layout,
//! and word splitting uphold their invariants for arbitrary parameters.

use axi_proto::{
    beat_layout, element_addresses, split_words, ArBeat, BusConfig, ElemSize, IdxSize,
};
use proptest::prelude::*;

fn buses() -> impl Strategy<Value = BusConfig> {
    prop_oneof![
        Just(BusConfig::new(64)),
        Just(BusConfig::new(128)),
        Just(BusConfig::new(256)),
    ]
}

fn elems() -> impl Strategy<Value = ElemSize> {
    prop_oneof![Just(ElemSize::B4), Just(ElemSize::B8), Just(ElemSize::B16),]
}

proptest! {
    /// Strided expansion produces exactly the valid element count, with
    /// addresses in arithmetic progression.
    #[test]
    fn strided_expansion_is_arithmetic(
        bus in buses(),
        elem in elems(),
        n_elems in 1u32..200,
        stride in 0i32..64,
        base_beats in 0u64..64,
    ) {
        prop_assume!(elem.bytes() <= bus.data_bytes());
        prop_assume!(n_elems.div_ceil(bus.elems_per_beat(elem) as u32) <= 256);
        let base = base_beats * bus.data_bytes() as u64;
        let ar = ArBeat::packed_strided(0, base, n_elems, elem, stride, &bus);
        let addrs = element_addresses(&ar, None, &bus);
        prop_assert_eq!(addrs.len() as u32, n_elems);
        for (k, a) in addrs.iter().enumerate() {
            prop_assert_eq!(
                *a,
                base + k as u64 * stride as u64 * elem.bytes() as u64
            );
        }
    }

    /// Beat layout is bus-aligned: element k sits at byte
    /// (k mod elems_per_beat) × elem_bytes of beat k / elems_per_beat, and
    /// every element appears exactly once.
    #[test]
    fn beat_layout_is_bus_aligned_and_complete(
        bus in buses(),
        elem in elems(),
        n in 1usize..100,
    ) {
        prop_assume!(elem.bytes() <= bus.data_bytes());
        let addrs: Vec<u64> = (0..n as u64).map(|k| 0x1000 + k * 52).collect();
        let beats = beat_layout(&addrs, elem, &bus);
        let epb = bus.elems_per_beat(elem);
        prop_assert_eq!(beats.len(), n.div_ceil(epb));
        let mut seen = 0usize;
        for (b, beat) in beats.iter().enumerate() {
            for (j, e) in beat.elems.iter().enumerate() {
                prop_assert_eq!(e.beat_offset, j * elem.bytes());
                prop_assert_eq!(e.mem_addr, addrs[b * epb + j]);
                seen += 1;
            }
        }
        prop_assert_eq!(seen, n);
    }

    /// Word splitting partitions any byte range exactly: fragments are
    /// word-aligned chunks, contiguous in both memory and element space.
    #[test]
    fn split_words_partitions_exactly(
        addr in 0u64..10_000,
        len in 1usize..128,
        word in prop_oneof![Just(4usize), Just(8), Just(16)],
    ) {
        let frags = split_words(addr, len, word);
        let total: usize = frags.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(total, len);
        let mut mem_cursor = addr;
        let mut elem_cursor = 0usize;
        for f in &frags {
            prop_assert_eq!(f.word_addr % word as u64, 0);
            prop_assert_eq!(f.word_addr + f.offset_in_word as u64, mem_cursor);
            prop_assert_eq!(f.offset_in_elem, elem_cursor);
            prop_assert!(f.offset_in_word + f.bytes <= word);
            mem_cursor += f.bytes as u64;
            elem_cursor += f.bytes;
        }
    }

    /// Indirect expansion honors the shift-and-add rule for any index set.
    #[test]
    fn indirect_expansion_shifts_and_adds(
        bus in buses(),
        elem in elems(),
        indices in proptest::collection::vec(0u64..100_000, 1..64),
        base_words in 0u64..1000,
    ) {
        prop_assume!(elem.bytes() <= bus.data_bytes());
        let n = indices.len() as u32;
        prop_assume!(n.div_ceil(bus.elems_per_beat(elem) as u32) <= 256);
        let base = base_words * 4;
        let ar = ArBeat::packed_indirect(0, 0x40, n, elem, IdxSize::B4, base, &bus);
        let addrs = element_addresses(&ar, Some(&indices), &bus);
        for (k, a) in addrs.iter().enumerate() {
            prop_assert_eq!(*a, base + (indices[k] << elem.log2_bytes()));
        }
    }

    /// Valid-element accounting: beats × epb ≥ valid > (beats−1) × epb,
    /// and per-beat valid counts sum to the total.
    #[test]
    fn tail_accounting_is_consistent(
        bus in buses(),
        elem in elems(),
        n_elems in 1u32..400,
    ) {
        prop_assume!(elem.bytes() <= bus.data_bytes());
        let epb = bus.elems_per_beat(elem) as u32;
        prop_assume!(n_elems.div_ceil(epb) <= 256);
        let ar = ArBeat::packed_strided(0, 0, n_elems, elem, 1, &bus);
        prop_assert_eq!(ar.valid_elems(&bus), n_elems);
        let per_beat: u32 = (0..ar.beats())
            .map(|b| ar.beat_valid_elems(b, &bus) as u32)
            .sum();
        prop_assert_eq!(per_beat, n_elems);
        prop_assert!(ar.elems(&bus) >= n_elems);
        prop_assert!(ar.elems(&bus) - n_elems < epb);
    }
}
