//! Property tests of the multi-manager mux: ID remapping round-trips
//! through random traffic, no beat is lost or duplicated, and every R/B
//! response routes back to the manager that issued the request — under
//! random request schedules, random subordinate interleavings and random
//! stalls, with protocol monitors attached on both sides of the mux.

use std::collections::VecDeque;

use axi_proto::checker::Monitor;
use axi_proto::{ArBeat, AxiChannels, AxiId, AxiMux, BusConfig, RBeat, Resp, WBeat, LOCAL_ID_BITS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bus() -> BusConfig {
    BusConfig::new(64)
}

/// One read burst a manager will issue: (local id, beats).
type ReadReq = (u8, u32);

/// A subordinate-side open read burst.
struct OpenRead {
    id: AxiId,
    beats_left: u32,
}

/// Drives `n` managers with the given read schedules through a mux into a
/// model subordinate that serves open bursts in random interleavings with
/// random stalls. Returns, per manager, the received beats as
/// `(local id, downstream id, last)` in arrival order.
fn run_read_traffic(schedules: &[Vec<ReadReq>], seed: u64) -> Vec<Vec<(u16, u8, bool)>> {
    let n = schedules.len();
    let bus = bus();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mux = AxiMux::new(n);
    let mut mgrs: Vec<AxiChannels> = (0..n).map(|_| AxiChannels::new()).collect();
    let mut down = AxiChannels::new();
    let mut mgr_mons: Vec<Monitor> = (0..n)
        .map(|_| Monitor::with_id_bits(bus, LOCAL_ID_BITS))
        .collect();
    let mut down_mon = Monitor::new(bus);

    let mut pending: Vec<VecDeque<ReadReq>> = schedules
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();
    let expected: Vec<u64> = schedules
        .iter()
        .map(|s| s.iter().map(|(_, b)| *b as u64).sum())
        .collect();
    let mut open: Vec<OpenRead> = Vec::new();
    let mut received: Vec<Vec<(u16, u8, bool)>> = vec![Vec::new(); n];

    for cycle in 0..20_000u64 {
        // Managers issue their next request and drain responses.
        for (p, m) in mgrs.iter_mut().enumerate() {
            if m.ar.can_push() {
                if let Some((id, beats)) = pending[p].pop_front() {
                    let ar = ArBeat::incr(id, 0x40 * cycle, beats, &bus);
                    mgr_mons[p].observe_ar(&ar);
                    m.ar.push(ar);
                }
            }
            if let Some(r) = m.r.pop() {
                mgr_mons[p].observe_r(&r);
                received[p].push((r.id.0, r.data[0], r.last));
            }
        }
        // Subordinate: accept requests, serve a random open burst, stall
        // randomly.
        if let Some(ar) = down.ar.pop() {
            down_mon.observe_ar(&ar);
            open.push(OpenRead {
                id: ar.id,
                beats_left: ar.beats,
            });
        }
        if !open.is_empty() && down.r.can_push() && rng.gen_range(0..4u32) != 0 {
            // AXI same-ID ordering: only the oldest burst of each ID may
            // emit; different IDs interleave freely.
            let eligible: Vec<usize> = (0..open.len())
                .filter(|&i| open[..i].iter().all(|o| o.id != open[i].id))
                .collect();
            let i = eligible[rng.gen_range(0..eligible.len())];
            open[i].beats_left -= 1;
            let beat = RBeat {
                id: open[i].id,
                // Tag the payload with the downstream ID so routing is
                // provable end to end.
                data: vec![open[i].id.0 as u8; bus.data_bytes()].into(),
                payload_bytes: bus.data_bytes(),
                last: open[i].beats_left == 0,
                resp: Resp::Okay,
            };
            down_mon.observe_r(&beat);
            down.r.push(beat);
            if open[i].beats_left == 0 {
                open.remove(i);
            }
        }
        mux.tick(&mut mgrs, &mut down);
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        down.end_cycle();
        let all_served = received
            .iter()
            .zip(&expected)
            .all(|(got, want)| got.len() as u64 == *want);
        if all_served && mux.quiescent() {
            break;
        }
    }
    for (p, (got, want)) in received.iter().zip(&expected).enumerate() {
        assert_eq!(got.len() as u64, *want, "manager {p} lost or gained beats");
        assert!(mux.manager_quiescent(p), "manager {p} never drained");
        assert!(
            mgr_mons[p].violations().is_empty(),
            "manager {p} monitor: {:?}",
            mgr_mons[p].violations()
        );
        assert!(mgr_mons[p].quiescent(), "manager {p} monitor not quiescent");
    }
    assert!(
        down_mon.violations().is_empty(),
        "downstream monitor: {:?}",
        down_mon.violations()
    );
    assert!(down_mon.quiescent());
    received
}

fn local_ids() -> impl Strategy<Value = u8> {
    0u8..(1 << LOCAL_ID_BITS)
}

proptest! {
    /// The manager-index prefix survives any round trip: the downstream ID
    /// decomposes back into exactly the issuing manager and its local ID.
    #[test]
    fn remapped_ids_roundtrip_through_live_traffic(
        seed in 0u64..1_000_000,
        ids in proptest::collection::vec(local_ids(), 2..8),
    ) {
        // Two managers issuing the same local IDs: responses must still
        // separate cleanly by manager.
        let sched: Vec<ReadReq> = ids.iter().map(|&id| (id, 1)).collect();
        let received = run_read_traffic(&[sched.clone(), sched], seed);
        for (p, beats) in received.iter().enumerate() {
            for &(local, down_id, _) in beats {
                prop_assert_eq!(
                    u16::from(down_id),
                    (p as u16) << LOCAL_ID_BITS | local,
                    "manager {} received a beat issued by another manager",
                    p
                );
            }
        }
    }

    /// Under random schedules, interleavings and stalls: every burst's
    /// beats arrive at the issuing manager, in order per ID, with `last`
    /// on — and only on — the final beat; nothing is lost or duplicated.
    #[test]
    fn no_beat_loss_duplication_or_misroute(
        seed in 0u64..1_000_000,
        schedules in proptest::collection::vec(
            proptest::collection::vec((local_ids(), 1u32..5), 1..7),
            2..5,
        ),
    ) {
        let received = run_read_traffic(&schedules, seed);
        for (p, beats) in received.iter().enumerate() {
            // Per-ID in-order completion with correct burst lengths.
            let mut per_id: Vec<VecDeque<u32>> = vec![VecDeque::new(); 1 << LOCAL_ID_BITS];
            for &(id, beats_in_burst) in &schedules[p] {
                per_id[id as usize].push_back(beats_in_burst);
            }
            let mut progress = vec![0u32; 1 << LOCAL_ID_BITS];
            for &(local, down_id, last) in beats {
                prop_assert_eq!(down_id >> LOCAL_ID_BITS, p as u8, "misrouted beat");
                let want = per_id[local as usize]
                    .front()
                    .copied()
                    .ok_or_else(|| TestCaseError::fail(format!(
                        "manager {p}: extra beat on id {local}"
                    )))?;
                progress[local as usize] += 1;
                prop_assert_eq!(last, progress[local as usize] == want, "bad last flag");
                if last {
                    per_id[local as usize].pop_front();
                    progress[local as usize] = 0;
                }
            }
            prop_assert!(
                per_id.iter().all(VecDeque::is_empty),
                "manager {} has unfinished bursts",
                p
            );
        }
    }

    /// Writes: W beats reach the subordinate grouped per accepted AW and
    /// tagged with the right manager, and every B response routes back to
    /// the issuing manager.
    #[test]
    fn writes_route_and_respond_per_manager(
        seed in 0u64..1_000_000,
        schedules in proptest::collection::vec(
            proptest::collection::vec((local_ids(), 1u32..4), 1..5),
            2..5,
        ),
    ) {
        let n = schedules.len();
        let bus = bus();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mux = AxiMux::new(n);
        let mut mgrs: Vec<AxiChannels> = (0..n).map(|_| AxiChannels::new()).collect();
        let mut down = AxiChannels::new();
        let mut aw_pending: Vec<VecDeque<ReadReq>> = schedules
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        // Each manager's W stream, in its own AW order.
        let mut w_pending: Vec<VecDeque<WBeat>> = schedules
            .iter()
            .enumerate()
            .map(|(p, s)| {
                s.iter()
                    .flat_map(|&(_, beats)| {
                        (0..beats).map(move |k| {
                            WBeat::full(vec![p as u8; bus.data_bytes()], k + 1 == beats)
                        })
                    })
                    .collect()
            })
            .collect();
        let expected_b: Vec<usize> = schedules.iter().map(Vec::len).collect();
        let mut got_b = vec![0usize; n];
        // Subordinate state: accepted AWs in order, beats outstanding.
        let mut w_route: VecDeque<(u16, u32)> = VecDeque::new();
        let mut b_queue: VecDeque<AxiId> = VecDeque::new();
        for cycle in 0..20_000u64 {
            for (p, m) in mgrs.iter_mut().enumerate() {
                if m.aw.can_push() {
                    if let Some((id, beats)) = aw_pending[p].pop_front() {
                        m.aw.push(ArBeat::incr(id, 0x40 * cycle, beats, &bus));
                    }
                }
                if m.w.can_push() {
                    if let Some(w) = w_pending[p].pop_front() {
                        m.w.push(w);
                    }
                }
                if let Some(_b) = m.b.pop() {
                    got_b[p] += 1;
                }
            }
            if let Some(aw) = down.aw.pop() {
                w_route.push_back((aw.id.0, aw.beats));
            }
            if let Some(w) = down.w.pop() {
                let (down_id, beats_left) = w_route
                    .front_mut()
                    .ok_or_else(|| TestCaseError::fail("W beat before any AW"))?;
                // The beat's manager tag must match the front AW's prefix.
                prop_assert_eq!(u16::from(w.data[0]), *down_id >> LOCAL_ID_BITS, "W beat misrouted");
                *beats_left -= 1;
                prop_assert_eq!(w.last, *beats_left == 0, "bad W last flag");
                if *beats_left == 0 {
                    b_queue.push_back(AxiId(*down_id));
                    w_route.pop_front();
                }
            }
            if down.b.can_push() && rng.gen_range(0..3u32) != 0 {
                if let Some(id) = b_queue.pop_front() {
                    down.b.push(axi_proto::BBeat { id, resp: Resp::Okay });
                }
            }
            mux.tick(&mut mgrs, &mut down);
            for m in mgrs.iter_mut() {
                m.end_cycle();
            }
            down.end_cycle();
            if got_b.iter().zip(&expected_b).all(|(g, e)| g == e) && mux.quiescent() {
                break;
            }
        }
        prop_assert_eq!(&got_b, &expected_b, "B responses lost or misrouted");
        prop_assert!(mux.quiescent(), "mux never drained");
    }
}
