//! Property tests of the inline beat payloads: `BeatBuf` round-trips
//! arbitrary payload lengths 1..=128 and `WBeat` strobe accounting stays
//! consistent with the payload the buffer carries.

use axi_proto::{BeatBuf, WBeat, MAX_BEAT_BYTES};
use proptest::prelude::*;

proptest! {
    /// Any payload of 1..=128 bytes survives the round trip through a
    /// `BeatBuf` unchanged: same length, same bytes, equal to a second
    /// buffer built from the same source.
    #[test]
    fn beatbuf_roundtrips_all_payload_lengths(
        len in 1usize..MAX_BEAT_BYTES + 1,
        seed in 0u64..u64::MAX,
    ) {
        let payload: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64) >> 32) as u8)
            .collect();
        let buf = BeatBuf::from_slice(&payload);
        prop_assert_eq!(buf.len(), len);
        prop_assert_eq!(&*buf, payload.as_slice());
        prop_assert_eq!(buf, BeatBuf::from_slice(&payload));
        // The Vec conversion used by test fixtures agrees.
        let via_vec: BeatBuf = payload.into();
        prop_assert_eq!(buf, via_vec);
    }

    /// In-place mutation through the slice view is visible and bounded:
    /// bytes beyond the visible length never change (they stay zero).
    #[test]
    fn beatbuf_mutation_is_bounded(
        len in 1usize..MAX_BEAT_BYTES + 1,
        lane in 0usize..MAX_BEAT_BYTES,
        value in 0u8..255,
    ) {
        prop_assume!(lane < len);
        let mut buf = BeatBuf::zeroed(len);
        buf[lane] = value;
        prop_assert_eq!(buf[lane], value);
        prop_assert_eq!(buf.iter().filter(|&&b| b != 0).count(),
                        usize::from(value != 0));
        // Growing a fresh buffer over the same bytes sees zeros beyond
        // `len` — hidden bytes are always zero.
        let wide = BeatBuf::zeroed(MAX_BEAT_BYTES);
        prop_assert!(wide[len..].iter().all(|&b| b == 0));
    }

    /// `WBeat::full` raises exactly one strobe bit per payload byte, so
    /// `payload_bytes()` equals the buffer length and every visible lane
    /// is enabled while every hidden lane is not.
    #[test]
    fn wbeat_full_strobe_matches_payload(len in 1usize..MAX_BEAT_BYTES + 1) {
        let w = WBeat::full(BeatBuf::zeroed(len), true);
        prop_assert_eq!(w.payload_bytes(), len);
        for i in 0..len {
            prop_assert!(w.lane_enabled(i), "lane {} must be enabled", i);
        }
        if len < MAX_BEAT_BYTES {
            prop_assert!(!w.lane_enabled(len), "lane {} must be masked", len);
        }
    }

    /// A partially-strobed beat reports exactly the popcount of its mask,
    /// regardless of the payload bytes.
    #[test]
    fn wbeat_partial_strobe_counts_popcount(
        len in 1usize..MAX_BEAT_BYTES + 1,
        strb_lo in 0u64..u64::MAX,
        strb_hi in 0u64..u64::MAX,
    ) {
        let strb = (strb_hi as u128) << 64 | strb_lo as u128;
        let mask = if len >= 128 { strb } else { strb & ((1u128 << len) - 1) };
        let w = WBeat { data: BeatBuf::zeroed(len), strb: mask, last: false };
        prop_assert_eq!(w.payload_bytes(), mask.count_ones() as usize);
    }
}
