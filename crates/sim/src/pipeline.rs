//! Fixed-latency pipeline register chains.
//!
//! Models fixed structural latencies such as the banked SRAM's access
//! pipeline (§III-D) without hand-written shift registers.

use std::collections::VecDeque;

/// A fixed-latency, stall-free pipeline of `latency` register stages.
///
/// Models structures like an SRAM macro's access pipeline: an item inserted
/// in cycle *k* emerges in cycle *k + latency*. At most one item may enter
/// per cycle; the pipeline never back-pressures (the inserter is responsible
/// for downstream space, typically via a [`crate::Credit`] regulator).
///
/// # Examples
///
/// ```
/// use simkit::Pipeline;
///
/// let mut p: Pipeline<&str> = Pipeline::new(2);
/// p.insert("req");
/// assert_eq!(p.end_cycle(), None);
/// assert_eq!(p.end_cycle(), Some("req"));
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    stages: VecDeque<Option<T>>,
    inserted_this_cycle: bool,
    /// Items currently in flight, maintained incrementally so emptiness
    /// checks on the per-cycle path are O(1).
    in_flight: usize,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline with `latency` stages.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero; a zero-latency path is a wire, not a
    /// pipeline.
    pub fn new(latency: usize) -> Self {
        assert!(latency > 0, "pipeline latency must be at least 1");
        let mut stages = VecDeque::with_capacity(latency);
        for _ in 0..latency {
            stages.push_back(None);
        }
        Pipeline {
            stages,
            inserted_this_cycle: false,
            in_flight: 0,
        }
    }

    // simcheck: hot-path begin -- per-cycle stage shifting; the stage ring
    // is pre-sized in `new` and rotates in place.

    /// Inserts an item into the first stage.
    ///
    /// # Panics
    ///
    /// Panics if an item was already inserted this cycle.
    pub fn insert(&mut self, item: T) {
        assert!(
            !self.inserted_this_cycle,
            "pipeline accepts one insert per cycle"
        );
        self.inserted_this_cycle = true;
        self.in_flight += 1;
        // Goes into the newest stage slot at end_cycle; stash it here.
        *self.stages.back_mut().expect("nonzero latency") = Some(item);
    }

    /// Returns `true` if no item was inserted yet this cycle.
    #[inline]
    pub fn can_insert(&self) -> bool {
        !self.inserted_this_cycle
    }

    /// Advances all stages by one and returns the item leaving the pipeline.
    pub fn end_cycle(&mut self) -> Option<T> {
        self.inserted_this_cycle = false;
        let out = self.stages.pop_front().expect("nonzero latency");
        self.stages.push_back(None);
        if out.is_some() {
            self.in_flight -= 1;
        }
        out
    }

    // simcheck: hot-path end

    /// Number of items currently somewhere in the pipeline.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.in_flight
    }

    /// Returns `true` if no items are in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> usize {
        self.stages.len()
    }

    /// Cycles until the next in-flight item emerges, if any.
    ///
    /// An item in the front stage emerges from the next [`Pipeline::end_cycle`]
    /// (`next_emerge() == Some(1)`). `None` means the pipeline is drained.
    #[inline]
    pub fn next_emerge(&self) -> Option<u64> {
        if self.in_flight == 0 {
            return None;
        }
        self.stages
            .iter()
            .position(Option::is_some)
            .map(|i| i as u64 + 1)
    }

    /// Wake status for the event-driven scheduler.
    ///
    /// A drained pipeline is [`crate::sched::Wake::Idle`] (the wake
    /// condition is "pipeline drained" from the consumer's point of view);
    /// otherwise it must be ticked so stages shift, and the in-flight items
    /// make it [`crate::sched::Wake::Ready`].
    #[inline]
    pub fn wake(&self) -> crate::sched::Wake {
        if self.in_flight == 0 {
            crate::sched::Wake::Idle
        } else {
            crate::sched::Wake::Ready
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_exact() {
        let mut p: Pipeline<u32> = Pipeline::new(3);
        p.insert(42);
        assert_eq!(p.end_cycle(), None);
        assert_eq!(p.end_cycle(), None);
        assert_eq!(p.end_cycle(), Some(42));
        assert_eq!(p.end_cycle(), None);
    }

    #[test]
    fn sustains_one_item_per_cycle() {
        let mut p: Pipeline<u32> = Pipeline::new(2);
        let mut out = Vec::new();
        for i in 0..10u32 {
            p.insert(i);
            if let Some(v) = p.end_cycle() {
                out.push(v);
            }
        }
        // Item i emerges from the 2nd end_cycle after its insert; the insert
        // and first end_cycle share an iteration, so item i appears in
        // iteration i + 1 and the last item is still in flight.
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "one insert per cycle")]
    fn double_insert_panics() {
        let mut p: Pipeline<u32> = Pipeline::new(1);
        p.insert(1);
        p.insert(2);
    }

    #[test]
    fn latency_one_behaves_like_register() {
        let mut p: Pipeline<u8> = Pipeline::new(1);
        p.insert(9);
        assert_eq!(p.end_cycle(), Some(9));
        assert!(p.is_empty());
    }
}
