//! Fixed-capacity inline byte buffers for allocation-free payloads.
//!
//! The per-cycle hot path of the simulation moves real payload bytes on
//! every accepted handshake: R/W beats on the bus, word data at the bank
//! ports. Carrying those bytes in a `Vec<u8>` puts one heap allocation on
//! every beat and every word access — at sweep scale the allocator, not
//! the simulator, dominates the profile. [`InlineBuf`] replaces them with
//! a fixed-capacity array plus a length, so payloads live inline in their
//! beat structs and move with a `memcpy`.
//!
//! The capacity is a const generic: `axi-proto` instantiates it at 128
//! bytes (`BeatBuf`, the widest AXI4 bus permits 1024 bits) and
//! `banked-mem` at 16 bytes (`WordBuf`, comfortably above any modeled
//! bank word).

use std::ops::{Deref, DerefMut};

/// A fixed-capacity inline byte buffer with a runtime length.
///
/// Dereferences to `[u8]` over the *visible* `len` bytes, so slice
/// indexing, iteration and `len()` work exactly as they did on the
/// `Vec<u8>` payloads it replaces. Bytes beyond `len` are always zero
/// (the buffer never shrinks), and equality/hashing cover only the
/// visible bytes.
///
/// # Examples
///
/// ```
/// use simkit::InlineBuf;
///
/// let mut b: InlineBuf<32> = InlineBuf::zeroed(8);
/// b[0..4].copy_from_slice(&7u32.to_le_bytes());
/// assert_eq!(b.len(), 8);
/// assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 7);
/// assert_eq!(b, InlineBuf::<32>::from_slice(&[7, 0, 0, 0, 0, 0, 0, 0]));
/// ```
#[derive(Clone, Copy)]
pub struct InlineBuf<const N: usize> {
    data: [u8; N],
    len: u16,
}

impl<const N: usize> InlineBuf<N> {
    // simcheck: hot-path begin -- payload construction and access on every
    // beat and word; strictly stack/inline, no heap.

    /// Creates a buffer of `len` zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the capacity `N`.
    #[inline]
    pub fn zeroed(len: usize) -> Self {
        assert!(len <= N, "inline buffer of {len} B exceeds capacity {N}");
        InlineBuf {
            data: [0; N],
            len: len as u16,
        }
    }

    /// Creates a buffer holding a copy of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` exceeds the capacity `N`.
    #[inline]
    pub fn from_slice(src: &[u8]) -> Self {
        let mut b = Self::zeroed(src.len());
        b.data[..src.len()].copy_from_slice(src);
        b
    }

    /// The fixed capacity in bytes.
    #[inline]
    pub const fn capacity() -> usize {
        N
    }

    // simcheck: hot-path end
}

impl<const N: usize> Deref for InlineBuf<N> {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }
}

impl<const N: usize> DerefMut for InlineBuf<N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[..self.len as usize]
    }
}

impl<const N: usize> PartialEq for InlineBuf<N> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<const N: usize> Eq for InlineBuf<N> {}

impl<const N: usize> std::hash::Hash for InlineBuf<N> {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl<const N: usize> std::fmt::Debug for InlineBuf<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<const N: usize> Default for InlineBuf<N> {
    /// An empty (zero-length) buffer.
    fn default() -> Self {
        Self::zeroed(0)
    }
}

impl<const N: usize> From<&[u8]> for InlineBuf<N> {
    fn from(src: &[u8]) -> Self {
        Self::from_slice(src)
    }
}

impl<const N: usize> From<Vec<u8>> for InlineBuf<N> {
    fn from(src: Vec<u8>) -> Self {
        Self::from_slice(&src)
    }
}

impl<const N: usize, const M: usize> From<[u8; M]> for InlineBuf<N> {
    fn from(src: [u8; M]) -> Self {
        Self::from_slice(&src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_requested_length() {
        let b: InlineBuf<16> = InlineBuf::zeroed(5);
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|&x| x == 0));
        assert_eq!(InlineBuf::<16>::capacity(), 16);
    }

    #[test]
    fn from_slice_roundtrips() {
        let src = [1u8, 2, 3, 4, 5];
        let b: InlineBuf<8> = InlineBuf::from_slice(&src);
        assert_eq!(&*b, &src);
    }

    #[test]
    fn equality_covers_visible_bytes_only() {
        let mut a: InlineBuf<8> = InlineBuf::zeroed(4);
        let b: InlineBuf<8> = InlineBuf::zeroed(4);
        assert_eq!(a, b);
        a[0] = 1;
        assert_ne!(a, b);
        let c: InlineBuf<8> = InlineBuf::zeroed(5);
        assert_ne!(b, c, "different lengths are unequal");
    }

    #[test]
    fn deref_mut_allows_in_place_edits() {
        let mut b: InlineBuf<4> = InlineBuf::zeroed(4);
        b.copy_from_slice(&[9, 9, 9, 9]);
        assert_eq!(&*b, &[9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_construction_panics() {
        let _: InlineBuf<4> = InlineBuf::zeroed(5);
    }
}
