//! Simulation statistics: event counters and channel-utilization trackers.
//!
//! [`Utilization`] implements the paper's headline metric — R-channel
//! payload bytes over theoretical bus bytes (Fig. 3a, Fig. 5a/5b).

/// A saturating event counter with a human-readable name.
///
/// # Examples
///
/// ```
/// use simkit::Counter;
///
/// let mut beats = Counter::new("r_beats");
/// beats.add(3);
/// beats.inc();
/// assert_eq!(beats.value(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Counter name, for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Tracks how many cycles a channel carried useful data.
///
/// The paper's headline metric is *R bus utilization*: the fraction of
/// cycles in which the R channel transferred a beat, optionally weighted by
/// how much of the beat carried useful payload (narrow beats on a wide bus
/// count fractionally). [`Utilization`] accumulates both views:
///
/// * [`Utilization::busy_fraction`] — beats / cycles;
/// * [`Utilization::payload_fraction`] — payload bytes / (cycles × bus bytes).
///
/// # Examples
///
/// ```
/// use simkit::Utilization;
///
/// let mut u = Utilization::new(32); // 256-bit bus
/// u.record_beat(4);  // a narrow 32-bit beat
/// u.record_beat(32); // a full-width beat
/// u.record_idle();
/// assert_eq!(u.cycles(), 3);
/// assert!((u.busy_fraction() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((u.payload_fraction() - 36.0 / 96.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Utilization {
    bus_bytes: u64,
    cycles: u64,
    busy_cycles: u64,
    payload_bytes: u64,
}

impl Utilization {
    /// Creates a tracker for a bus `bus_bytes` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bus_bytes` is zero.
    pub fn new(bus_bytes: usize) -> Self {
        assert!(bus_bytes > 0, "bus width must be nonzero");
        Utilization {
            bus_bytes: bus_bytes as u64,
            cycles: 0,
            busy_cycles: 0,
            payload_bytes: 0,
        }
    }

    /// Records a cycle in which a beat carrying `payload_bytes` transferred.
    #[inline]
    pub fn record_beat(&mut self, payload_bytes: usize) {
        self.cycles += 1;
        self.busy_cycles += 1;
        self.payload_bytes += payload_bytes as u64;
    }

    /// Records a cycle with no transfer.
    #[inline]
    pub fn record_idle(&mut self) {
        self.cycles += 1;
    }

    /// Records `n` consecutive idle cycles in one call.
    ///
    /// Used by the event-driven scheduler's fast-forward path, which must
    /// leave the tracker bit-identical to `n` [`Utilization::record_idle`]
    /// calls.
    #[inline]
    pub fn record_idle_n(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Total observed cycles.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles in which a beat transferred.
    #[inline]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total payload bytes transferred.
    #[inline]
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Fraction of cycles with any transfer.
    pub fn busy_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of the theoretical byte bandwidth actually used.
    ///
    /// This is the paper's *bus utilization*: narrow beats on a wide bus are
    /// charged only for the bytes they carry.
    pub fn payload_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / (self.cycles * self.bus_bytes) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "x = 10");
    }

    #[test]
    fn utilization_distinguishes_busy_and_payload() {
        let mut u = Utilization::new(32);
        // Ten narrow 4-byte beats: busy 100%, payload 12.5%.
        for _ in 0..10 {
            u.record_beat(4);
        }
        assert!((u.busy_fraction() - 1.0).abs() < 1e-12);
        assert!((u.payload_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let u = Utilization::new(8);
        assert_eq!(u.busy_fraction(), 0.0);
        assert_eq!(u.payload_fraction(), 0.0);
    }

    #[test]
    fn idle_cycles_dilute_utilization() {
        let mut u = Utilization::new(8);
        u.record_beat(8);
        u.record_idle();
        u.record_idle();
        u.record_idle();
        assert!((u.busy_fraction() - 0.25).abs() < 1e-12);
        assert!((u.payload_fraction() - 0.25).abs() < 1e-12);
    }
}

/// A power-of-two-bucketed histogram for burst lengths and queue depths.
///
/// Bucket *k* counts values in `[2^k, 2^(k+1))`, with bucket 0 counting
/// values 0 and 1. Useful for characterizing traffic — e.g. the burst
/// length distribution a workload presents to the AXI-Pack controller.
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::new("burst_beats");
/// h.record(1);
/// h.record(6);
/// h.record(6);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts()[2], 2); // 4..8
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [0; 32],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() - 1).min(31) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts; bucket k covers `[2^k, 2^(k+1))`.
    pub fn bucket_counts(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Histogram name, for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} max={}",
            self.name,
            self.count,
            self.mean(),
            self.max
        )?;
        if self.count > 0 {
            let top = self.buckets.iter().rposition(|c| *c > 0).unwrap_or(0);
            for (k, c) in self.buckets[..=top].iter().enumerate() {
                write!(f, " [{}..{}):{}", 1u64 << k, 1u64 << (k + 1), c)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::Histogram;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        let mut h = Histogram::new("t");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 255, 256] {
            h.record(v);
        }
        let b = h.bucket_counts();
        assert_eq!(b[0], 2); // 0, 1
        assert_eq!(b[1], 2); // 2, 3
        assert_eq!(b[2], 2); // 4, 7
        assert_eq!(b[3], 1); // 8
        assert_eq!(b[7], 1); // 255
        assert_eq!(b[8], 1); // 256
        assert_eq!(h.max(), 256);
    }

    #[test]
    fn mean_and_display() {
        let mut h = Histogram::new("beats");
        h.record(2);
        h.record(6);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        let s = h.to_string();
        assert!(s.contains("beats"));
        assert!(s.contains("n=2"));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new("e");
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }
}
