//! Round-robin arbitration.
//!
//! The fairness policy the paper's controller uses wherever requests
//! compete: between the index and element stages of the indirect
//! converters (Fig. 2d) and among word lanes at the bank ports (§III-C).

/// A stateful round-robin arbiter over `n` requestors.
///
/// Grants rotate: after requestor *i* wins, requestor *i + 1* has the
/// highest priority next time. This matches the arbitration the paper's
/// indirect converter uses between its index and element stages, and the
/// bank crossbar uses among word ports.
///
/// # Examples
///
/// ```
/// use simkit::RoundRobin;
///
/// let mut arb = RoundRobin::new(3);
/// assert_eq!(arb.grant(&[true, true, false]), Some(0));
/// assert_eq!(arb.grant(&[true, true, false]), Some(1));
/// assert_eq!(arb.grant(&[true, true, false]), Some(0));
/// assert_eq!(arb.grant(&[false, false, false]), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Index with the highest priority for the next grant.
    next: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requestors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requestor");
        RoundRobin { n, next: 0 }
    }

    /// Number of requestors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the arbiter has no requestors (never true; kept for
    /// API completeness alongside [`RoundRobin::len`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants one of the asserted requestors, rotating priority.
    ///
    /// Returns `None` when no requestor is asserted; priority is unchanged
    /// in that case.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    #[inline]
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for off in 0..self.n {
            let idx = (self.next + off) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }

    /// Grants from a bitmask request vector (bit *i* = requestor *i*
    /// asserted) — the allocation- and loop-free variant of
    /// [`RoundRobin::grant`] used on per-cycle paths with many arbiters
    /// (e.g. one per memory bank). Identical policy: the first asserted
    /// requestor at or after the priority index wins, and priority
    /// rotates past the winner.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if a bit at or above the arbiter width is set.
    #[inline]
    pub fn grant_mask(&mut self, mask: u32) -> Option<usize> {
        debug_assert!(
            self.n >= 32 || mask >> self.n == 0,
            "request mask wider than the arbiter"
        );
        if mask == 0 {
            return None;
        }
        // Rotate the mask so the priority index lands at bit 0, pick the
        // lowest set bit, and map it back to a requestor index. The lane
        // mask is computed shift-safely: at n == 32 (e.g. a 1024-bit bus
        // over 4-byte bank words) `1u32 << n` would overflow.
        let n = self.n as u32;
        let next = self.next as u32;
        let lane_mask = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        let rotated = if next == 0 {
            mask
        } else {
            ((mask >> next) | (mask << (n - next))) & lane_mask
        };
        let off = rotated.trailing_zeros() as usize;
        let idx = (self.next + off) % self.n;
        self.next = (idx + 1) % self.n;
        Some(idx)
    }

    /// Peeks at who would win without rotating the priority.
    #[inline]
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        (0..self.n)
            .map(|off| (self.next + off) % self.n)
            .find(|&idx| requests[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_fairly() {
        let mut arb = RoundRobin::new(4);
        let all = [true; 4];
        let grants: Vec<_> = (0..8).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_requestors() {
        let mut arb = RoundRobin::new(3);
        assert_eq!(arb.grant(&[false, false, true]), Some(2));
        assert_eq!(arb.grant(&[true, false, true]), Some(0));
        assert_eq!(arb.grant(&[true, false, true]), Some(2));
    }

    #[test]
    fn none_when_idle_preserves_priority() {
        let mut arb = RoundRobin::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    fn grant_mask_matches_grant_at_full_width() {
        // Width 32 is reachable (1024-bit bus / 4-byte words); the lane
        // mask must not overflow once the priority index has rotated.
        let mut a = RoundRobin::new(32);
        let mut b = RoundRobin::new(32);
        let masks = [1u32 << 31, 0x8000_0001, u32::MAX, 0, 0x0001_0000];
        for (round, &m) in masks.iter().cycle().take(64).enumerate() {
            let bools: Vec<bool> = (0..32).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(
                a.grant_mask(m),
                b.grant(&bools),
                "round {round} mask {m:#x}"
            );
        }
        // Narrow widths agree too.
        let mut a = RoundRobin::new(5);
        let mut b = RoundRobin::new(5);
        for m in [0b10110u32, 0b00001, 0b11111, 0b01000] {
            let bools: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(a.grant_mask(m), b.grant(&bools));
        }
    }

    #[test]
    fn peek_does_not_rotate() {
        let mut arb = RoundRobin::new(2);
        assert_eq!(arb.peek(&[true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true]), Some(0));
        assert_eq!(arb.grant(&[true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true]), Some(1));
    }

    #[test]
    fn two_requestors_alternate_like_index_element_stages() {
        // The pattern that produces the paper's r/(r+1) utilization bound:
        // two always-ready stages share ports 50/50.
        let mut arb = RoundRobin::new(2);
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            wins[arb.grant(&[true, true]).unwrap()] += 1;
        }
        assert_eq!(wins, [50, 50]);
    }
}
