//! `simkit` — a small, deterministic, cycle-driven simulation substrate.
//!
//! Every hardware model in this workspace is built from three primitives:
//!
//! * [`Fifo`] — a registered, handshake-style queue. Items pushed in cycle
//!   *k* become visible to consumers in cycle *k + 1*, mirroring a
//!   flip-flop-based FIFO in RTL. Occupancy checks are evaluated against the
//!   state at the *start* of the cycle, which makes simulation results
//!   independent of the order in which components are ticked.
//! * [`RoundRobin`] — a fair, stateful arbiter (the same policy the paper's
//!   controller uses between the index and element stages).
//! * [`Credit`] — a credit counter used to build request regulators that
//!   bound the number of in-flight requests per lane.
//! * [`InlineBuf`] — a fixed-capacity inline byte buffer so data-carrying
//!   beats and word accesses never touch the heap on the per-cycle path.
//!
//! A simulation is a plain `struct` owning its components and the [`Fifo`]s
//! that wire them together; each cycle it calls `tick` on every component
//! (any order) and then [`Fifo::end_cycle`] on every queue.
//!
//! Components may additionally report a [`sched::Wake`] at each cycle
//! boundary; the [`sched`] module turns those reports into provably-safe
//! idle-span skips so run loops can fast-forward across dead cycles instead
//! of ticking through them (with the lockstep tick loop retained as the
//! differential oracle).
//!
//! On top of the single-simulation substrate, [`sweep`] provides the
//! *parallel sweep engine*: [`SweepSpec`] builds cartesian parameter grids
//! and fans the independent simulation points across worker threads with
//! deterministic per-point seeds and ordered result collection — how the
//! figure harness regenerates the paper's evaluation on all cores.
//!
//! ```
//! use simkit::Fifo;
//!
//! let mut q: Fifo<u32> = Fifo::new(2);
//! assert!(q.can_push());
//! q.push(7);
//! assert!(q.pop().is_none()); // not visible until next cycle
//! q.end_cycle();
//! assert_eq!(q.pop(), Some(7));
//! ```

// Public-API documentation is part of this crate's contract: every
// public item must explain what paper structure it models.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbiter;
pub mod buf;
pub mod credit;
pub mod fault;
pub mod fifo;
pub mod pipeline;
pub mod sched;
pub mod stats;
pub mod sweep;

pub use arbiter::RoundRobin;
pub use buf::InlineBuf;
pub use credit::Credit;
pub use fault::{FaultReport, FaultSpec, HangComponent, HangReport, SiteSchedule};
pub use fifo::Fifo;
pub use pipeline::Pipeline;
pub use sched::{Scheduler, Wake, WakeCond, WakeHeap};
pub use stats::{Counter, Histogram, Utilization};
pub use sweep::{PointCtx, SweepSpec};

/// A simulation cycle index.
///
/// A plain `u64` newtype so cycle counts cannot be confused with element
/// counts, addresses, or byte sizes in interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Advances the cycle counter by one.
    #[inline]
    pub fn advance(&mut self) {
        self.0 += 1;
    }
}

impl std::fmt::Display for Cycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}
