//! Registered handshake FIFO.
//!
//! [`Fifo`] mimics an RTL FIFO whose `ready`/occupancy is registered:
//!
//! * a `push` performed during cycle *k* is visible to `pop` from cycle
//!   *k + 1* on (one register stage of latency);
//! * [`Fifo::can_push`] compares against the occupancy at the *start* of the
//!   cycle, so space freed by a `pop` in the same cycle cannot be reused
//!   until the next cycle.
//!
//! Both rules together make simulation outcomes independent of the order in
//! which producer and consumer components are ticked within a cycle, which
//! is what keeps the whole-system simulation deterministic without a global
//! event scheduler. The price is that a capacity-1 FIFO sustains only one
//! item every two cycles; use capacity ≥ 2 for full-rate links (exactly like
//! a two-deep skid buffer in RTL).

use std::collections::VecDeque;

/// A registered, bounded, handshake-style queue.
///
/// See the [module documentation](self) for the timing semantics.
///
/// # Examples
///
/// ```
/// use simkit::Fifo;
///
/// let mut link: Fifo<&str> = Fifo::new(2);
/// link.push("beat0");
/// link.end_cycle();
/// link.push("beat1");
/// assert_eq!(link.pop(), Some("beat0"));
/// link.end_cycle();
/// assert_eq!(link.pop(), Some("beat1"));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    /// Items visible to `pop` this cycle.
    queue: VecDeque<T>,
    /// Items pushed this cycle; promoted to `queue` by `end_cycle`.
    staged: VecDeque<T>,
    /// Occupancy captured at the start of the current cycle.
    len_at_cycle_start: usize,
    capacity: usize,
    /// Lifetime statistics.
    total_pushed: u64,
    total_popped: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        Fifo {
            queue: VecDeque::with_capacity(capacity),
            // Staged items are bounded by the capacity too; pre-sizing
            // means a FIFO never reallocates after construction.
            staged: VecDeque::with_capacity(capacity),
            len_at_cycle_start: 0,
            capacity,
            total_pushed: 0,
            total_popped: 0,
        }
    }

    // simcheck: hot-path begin -- per-cycle handshake methods; both rings
    // are pre-sized in `new` and must never reallocate.

    /// Returns `true` if a `push` this cycle would be accepted.
    ///
    /// Evaluated against the occupancy at the start of the cycle plus any
    /// pushes already performed this cycle.
    #[inline]
    pub fn can_push(&self) -> bool {
        self.len_at_cycle_start + self.staged.len() < self.capacity
    }

    /// Returns how many more items can be pushed this cycle.
    #[inline]
    pub fn push_slots(&self) -> usize {
        self.capacity
            .saturating_sub(self.len_at_cycle_start + self.staged.len())
    }

    /// Enqueues an item; it becomes visible to `pop` next cycle.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO cannot accept an item this cycle
    /// (check [`Fifo::can_push`] first).
    #[inline]
    pub fn push(&mut self, item: T) {
        assert!(self.can_push(), "push into full fifo");
        self.staged.push_back(item);
        self.total_pushed += 1;
    }

    /// Returns a reference to the oldest visible item without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Returns `true` if an item is available to `pop` this cycle.
    #[inline]
    pub fn can_pop(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Dequeues the oldest visible item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let item = self.queue.pop_front();
        if item.is_some() {
            self.total_popped += 1;
        }
        item
    }

    /// Commits this cycle's pushes and re-registers the occupancy.
    ///
    /// Must be called exactly once per simulated cycle, after all component
    /// ticks.
    #[inline]
    pub fn end_cycle(&mut self) {
        self.queue.append(&mut self.staged);
        debug_assert!(
            self.queue.len() <= self.capacity,
            "fifo overflow: {} > {}",
            self.queue.len(),
            self.capacity
        );
        self.len_at_cycle_start = self.queue.len();
    }

    // simcheck: hot-path end

    /// Number of items currently visible to `pop`.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no items are visible *and* none are staged.
    ///
    /// This is the "completely drained" check used to detect the end of a
    /// simulation, not the per-cycle `can_pop` handshake.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.staged.is_empty()
    }

    /// Maximum number of items the FIFO can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of items ever pushed.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total number of items ever popped.
    #[inline]
    pub fn total_popped(&self) -> u64 {
        self.total_popped
    }

    /// Iterates over the items currently visible to `pop`, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// Wake status for the event-driven scheduler.
    ///
    /// A FIFO is [`crate::sched::Wake::Ready`] whenever it holds *any* item
    /// — visible or staged — because staged items still need an
    /// [`Fifo::end_cycle`] to promote them, which a skipped cycle would
    /// omit. A fully drained FIFO only changes state on external pushes, so
    /// it reports [`crate::sched::Wake::Idle`] (the wake condition is "FIFO
    /// became non-empty").
    #[inline]
    pub fn wake(&self) -> crate::sched::Wake {
        if self.is_empty() {
            crate::sched::Wake::Idle
        } else {
            crate::sched::Wake::Ready
        }
    }

    /// Iterates over the items pushed *this* cycle (not yet visible to
    /// `pop`), oldest first.
    ///
    /// This is the observation point for protocol monitors: every item
    /// pushed into the FIFO appears in exactly one cycle's staged set, so
    /// observing the staged items immediately before [`Fifo::end_cycle`]
    /// sees each accepted handshake exactly once, in order, without
    /// perturbing the simulation.
    pub fn staged(&self) -> impl Iterator<Item = &T> {
        self.staged.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_not_visible_same_cycle() {
        let mut f: Fifo<u8> = Fifo::new(4);
        f.push(1);
        assert!(!f.can_pop());
        assert_eq!(f.pop(), None);
        f.end_cycle();
        assert!(f.can_pop());
        assert_eq!(f.pop(), Some(1));
    }

    #[test]
    fn capacity_counts_staged_items() {
        let mut f: Fifo<u8> = Fifo::new(2);
        f.push(1);
        f.push(2);
        assert!(!f.can_push());
        f.end_cycle();
        assert!(!f.can_push());
    }

    #[test]
    fn pop_does_not_free_space_same_cycle() {
        let mut f: Fifo<u8> = Fifo::new(1);
        f.push(1);
        f.end_cycle();
        assert_eq!(f.pop(), Some(1));
        // Space is freed only at the next end_cycle.
        assert!(!f.can_push());
        f.end_cycle();
        assert!(f.can_push());
    }

    #[test]
    fn capacity_two_sustains_full_rate() {
        let mut f: Fifo<u32> = Fifo::new(2);
        let mut received = Vec::new();
        let mut next = 0u32;
        for _ in 0..100 {
            // Consumer and producer in the same cycle, any order.
            if let Some(v) = f.pop() {
                received.push(v);
            }
            if f.can_push() {
                f.push(next);
                next += 1;
            }
            f.end_cycle();
        }
        // After warm-up, one item per cycle flows through.
        assert!(received.len() >= 98);
        for (i, v) in received.iter().enumerate() {
            assert_eq!(*v as usize, i);
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f: Fifo<u32> = Fifo::new(8);
        for i in 0..5 {
            f.push(i);
        }
        f.end_cycle();
        for i in 0..5 {
            assert_eq!(f.pop(), Some(i));
        }
    }

    #[test]
    fn statistics_track_traffic() {
        let mut f: Fifo<u8> = Fifo::new(4);
        f.push(1);
        f.push(2);
        f.end_cycle();
        f.pop();
        assert_eq!(f.total_pushed(), 2);
        assert_eq!(f.total_popped(), 1);
    }

    #[test]
    #[should_panic(expected = "push into full fifo")]
    fn push_into_full_panics() {
        let mut f: Fifo<u8> = Fifo::new(1);
        f.push(1);
        f.push(2);
    }

    #[test]
    fn staged_sees_each_item_exactly_once() {
        let mut f: Fifo<u8> = Fifo::new(4);
        let mut observed = Vec::new();
        f.push(1);
        f.push(2);
        observed.extend(f.staged().copied());
        f.end_cycle();
        assert!(f.staged().next().is_none(), "promoted items left staging");
        f.push(3);
        observed.extend(f.staged().copied());
        f.end_cycle();
        assert_eq!(observed, vec![1, 2, 3]);
    }

    #[test]
    fn push_slots_reports_remaining() {
        let mut f: Fifo<u8> = Fifo::new(3);
        assert_eq!(f.push_slots(), 3);
        f.push(1);
        assert_eq!(f.push_slots(), 2);
        f.end_cycle();
        assert_eq!(f.push_slots(), 2);
    }

    #[test]
    fn is_empty_sees_staged() {
        let mut f: Fifo<u8> = Fifo::new(2);
        assert!(f.is_empty());
        f.push(1);
        assert!(!f.is_empty());
        f.end_cycle();
        f.pop();
        f.end_cycle();
        assert!(f.is_empty());
    }
}
