//! Readiness/wakeup scheduling: the event-driven alternative to lockstep.
//!
//! The lockstep engine visits every component every cycle, even across long
//! spans where nothing can progress (a scalar stall, a reduction tail, an
//! ideal-memory latency countdown). This module provides the primitives a
//! run loop needs to *fast-forward* across such spans instead:
//!
//! * [`Wake`] — a component's self-classification at a cycle boundary:
//!   ready to do observable work, provably asleep for a known number of
//!   ticks, or idle until external input arrives. [`Wake::merge`] combines
//!   per-component answers into a whole-system answer.
//! * [`WakeCond`] — the descriptive vocabulary of wake conditions
//!   (FIFO became non-empty, pipeline drained, credit returned, outstanding
//!   counter hit zero, countdown expired) used by the registry and docs.
//! * [`WakeHeap`] — a per-component next-wake min-heap with
//!   generation-stamped lazy cancellation, so re-registering a component's
//!   wake never has to search the heap.
//! * [`Scheduler`] — the wake-condition registry tying names, conditions
//!   and the heap together; run loops feed it per-component [`Wake`]s each
//!   iteration and ask for the longest provably-idle span.
//!
//! The contract that makes skipping sound: a component reporting
//! [`Wake::Sleep`]`(n)` promises that ticking it `n` times changes nothing
//! observable except fixed per-tick bookkeeping (cycle counters, idle
//! utilization samples, countdown decrements) — so the run loop may replay
//! that bookkeeping in one `fast_forward(n)` call and land in a state
//! bit-identical to `n` lockstep ticks. The differential fuzzer holds every
//! run path to exactly that standard against the lockstep oracle.

/// A component's wake status at a cycle boundary.
///
/// Queried *between* ticks (after `end_cycle`), so the component inspects
/// settled start-of-cycle state.
///
/// # Examples
///
/// ```
/// use simkit::sched::Wake;
///
/// // A stalled frontend (3 ticks left) next to a drained memory system:
/// let system = Wake::Sleep(3).merge(Wake::Idle);
/// assert_eq!(system, Wake::Sleep(3));
/// // Any ready component forces a normal tick.
/// assert_eq!(system.merge(Wake::Ready), Wake::Ready);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The component would do observable work if ticked this cycle.
    Ready,
    /// The component is provably idle for the next `n` ticks (`n >= 1`):
    /// ticking it `n` times performs only fixed per-tick bookkeeping, and it
    /// may first do observable work on tick `n + 1`.
    Sleep(u64),
    /// The component cannot make progress on its own; only external input
    /// (a beat arriving, a FIFO becoming non-empty) can wake it.
    Idle,
}

impl Wake {
    /// Builds a wake from a countdown: `0` means ready now, otherwise the
    /// component sleeps for the remaining ticks.
    #[inline]
    pub fn countdown(ticks: u64) -> Self {
        if ticks == 0 {
            Wake::Ready
        } else {
            Wake::Sleep(ticks)
        }
    }

    /// Combines two components' wakes into the wake of the pair.
    ///
    /// `Ready` dominates (someone has work); two sleeps wake at the earlier
    /// deadline; `Idle` defers to anything with a deadline.
    #[inline]
    pub fn merge(self, other: Wake) -> Wake {
        match (self, other) {
            (Wake::Ready, _) | (_, Wake::Ready) => Wake::Ready,
            (Wake::Sleep(a), Wake::Sleep(b)) => Wake::Sleep(a.min(b)),
            (Wake::Sleep(n), Wake::Idle) | (Wake::Idle, Wake::Sleep(n)) => Wake::Sleep(n),
            (Wake::Idle, Wake::Idle) => Wake::Idle,
        }
    }

    /// Returns `true` for [`Wake::Ready`].
    #[inline]
    pub fn is_ready(self) -> bool {
        matches!(self, Wake::Ready)
    }

    /// The sleep span, if this wake is a sleep.
    #[inline]
    pub fn sleep_ticks(self) -> Option<u64> {
        match self {
            Wake::Sleep(n) => Some(n),
            _ => None,
        }
    }
}

/// The kinds of conditions a component registers to be woken on.
///
/// Purely descriptive: the scheduler does not interpret the condition, but
/// registries, docs and debug output use it to say *why* a component is
/// asleep, and the ARCHITECTURE wake-condition table enumerates which
/// component uses which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeCond {
    /// A FIFO the component consumes from became non-empty.
    FifoNonEmpty,
    /// A bank/latency pipeline finished draining its in-flight entries.
    PipelineDrained,
    /// A credit the component was waiting on was returned.
    CreditReturned,
    /// An outstanding-transaction counter hit zero.
    CounterZero,
    /// A fixed countdown (scalar stall, reduction tail, memory latency)
    /// expires after a known number of ticks.
    Countdown,
    /// External input only: the component has no deadline of its own.
    ExternalInput,
}

impl WakeCond {
    /// Short human-readable label, for registries and debug output.
    pub fn describe(self) -> &'static str {
        match self {
            WakeCond::FifoNonEmpty => "fifo non-empty",
            WakeCond::PipelineDrained => "pipeline drained",
            WakeCond::CreditReturned => "credit returned",
            WakeCond::CounterZero => "outstanding counter zero",
            WakeCond::Countdown => "countdown expired",
            WakeCond::ExternalInput => "external input",
        }
    }
}

impl std::fmt::Display for WakeCond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// A heap entry: wake deadline, component index, registration generation.
#[derive(Debug, Clone, Copy)]
struct Entry {
    cycle: u64,
    comp: u32,
    gen: u32,
}

/// Per-component next-wake min-heap with generation-stamped lazy
/// cancellation.
///
/// Each component has at most one *live* registration. Re-registering or
/// cancelling bumps the component's generation; superseded heap entries are
/// discarded lazily when they surface at the top, so neither operation ever
/// searches the heap. All storage is pre-sized at construction — the
/// per-cycle operations push into spare capacity and never allocate.
///
/// # Examples
///
/// ```
/// use simkit::sched::WakeHeap;
///
/// let mut heap = WakeHeap::new(2);
/// heap.register(0, 10);
/// heap.register(1, 4);
/// heap.register(1, 7); // supersedes the cycle-4 entry
/// assert_eq!(heap.peek(), Some((7, 1)));
/// heap.cancel(1);
/// assert_eq!(heap.peek(), Some((10, 0)));
/// ```
#[derive(Debug, Clone)]
pub struct WakeHeap {
    /// Binary min-heap ordered by `cycle` (ties broken arbitrarily; the
    /// generation stamp makes stale entries self-identifying).
    heap: Vec<Entry>,
    /// Current registration generation per component.
    gens: Vec<u32>,
    /// Whether the component's current generation is a live registration.
    live: Vec<bool>,
}

impl WakeHeap {
    /// Creates a heap for `components` components, with all storage
    /// pre-sized so steady-state operation never allocates.
    pub fn new(components: usize) -> Self {
        WakeHeap {
            // Each component holds at most one live entry, but lazy
            // cancellation keeps superseded entries around until they
            // surface; 4x slack covers realistic re-registration churn
            // between pops without growth.
            heap: Vec::with_capacity(components.max(1) * 4),
            gens: vec![0; components],
            live: vec![false; components],
        }
    }

    /// Number of components the heap was built for.
    pub fn components(&self) -> usize {
        self.gens.len()
    }

    // simcheck: hot-path begin -- per-cycle wake bookkeeping; all vectors
    // are pre-sized in `new` and pushes reuse spare capacity.

    /// Registers (or re-registers) `comp` to wake at absolute `cycle`.
    ///
    /// Any previous registration for `comp` is superseded.
    ///
    /// # Panics
    ///
    /// Panics if `comp` is out of range.
    #[inline]
    pub fn register(&mut self, comp: usize, cycle: u64) {
        self.gens[comp] = self.gens[comp].wrapping_add(1);
        self.live[comp] = true;
        self.compact_if_full();
        self.heap.push(Entry {
            cycle,
            comp: comp as u32,
            gen: self.gens[comp],
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Cancels `comp`'s registration, if any. The stale heap entry is
    /// discarded lazily.
    #[inline]
    pub fn cancel(&mut self, comp: usize) {
        self.gens[comp] = self.gens[comp].wrapping_add(1);
        self.live[comp] = false;
    }

    /// Returns `true` if `comp` currently has a live registration.
    #[inline]
    pub fn is_registered(&self, comp: usize) -> bool {
        self.live[comp]
    }

    /// The earliest live registration as `(cycle, comp)`, discarding stale
    /// entries encountered on the way. Does not pop the returned entry.
    #[inline]
    pub fn peek(&mut self) -> Option<(u64, usize)> {
        while let Some(top) = self.heap.first().copied() {
            let comp = top.comp as usize;
            if self.live[comp] && self.gens[comp] == top.gen {
                return Some((top.cycle, comp));
            }
            self.pop_top();
        }
        None
    }

    /// Pops the earliest live registration with `cycle <= now`, returning
    /// the woken component.
    #[inline]
    pub fn pop_due(&mut self, now: u64) -> Option<usize> {
        match self.peek() {
            Some((cycle, comp)) if cycle <= now => {
                self.live[comp] = false;
                self.pop_top();
                Some(comp)
            }
            _ => None,
        }
    }

    /// Removes the top heap entry and restores the heap invariant.
    #[inline]
    fn pop_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    /// Drops every stale entry when the pre-sized buffer is full, so a
    /// `register` never grows the allocation in steady state.
    #[inline]
    fn compact_if_full(&mut self) {
        if self.heap.len() < self.heap.capacity() {
            return;
        }
        let gens = &self.gens;
        let live = &self.live;
        self.heap
            .retain(|e| live[e.comp as usize] && gens[e.comp as usize] == e.gen);
        // Retain compacts in arbitrary order; rebuild the heap bottom-up.
        // At most one live entry per component survives, so the buffer is
        // now strictly under capacity.
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].cycle < self.heap[parent].cycle {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut min = i;
            if l < self.heap.len() && self.heap[l].cycle < self.heap[min].cycle {
                min = l;
            }
            if r < self.heap.len() && self.heap[r].cycle < self.heap[min].cycle {
                min = r;
            }
            if min == i {
                return;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }

    // simcheck: hot-path end
}

/// Identifier handed out by [`Scheduler::add_component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompId(usize);

impl CompId {
    /// The component's index in registration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The wake-condition registry: names and conditions per component, plus
/// the shared next-wake heap and the idle-span decision.
///
/// A run loop uses it in three steps each iteration:
///
/// 1. [`Scheduler::note`] every component's current [`Wake`];
/// 2. ask [`Scheduler::idle_span`] for the longest span in which *every*
///    component is provably idle (`None` means tick normally — either
///    someone is ready, or everyone is externally blocked and skipping
///    would hide a deadlock);
/// 3. on a skip, fast-forward each component and [`Scheduler::advance`]
///    the registry clock.
///
/// # Examples
///
/// ```
/// use simkit::sched::{Scheduler, Wake, WakeCond};
///
/// let mut s = Scheduler::new();
/// let eng = s.add_component("engine", WakeCond::Countdown);
/// let bus = s.add_component("bus", WakeCond::FifoNonEmpty);
/// s.note(eng, Wake::Sleep(5));
/// s.note(bus, Wake::Idle);
/// assert_eq!(s.idle_span(), Some(5));
/// s.advance(5);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    names: Vec<&'static str>,
    conds: Vec<WakeCond>,
    heap: WakeHeap,
    /// Components whose last note was `Ready`, one bit per component in
    /// 64-wide words — a 128-requestor fabric registers hundreds of
    /// components, so a single `u64` mask is not enough.
    ready: Vec<u64>,
    /// Population count of `ready`, so the hot idle-span check stays a
    /// single compare regardless of word count.
    ready_count: usize,
    now: u64,
}

impl Scheduler {
    /// Creates an empty registry at cycle 0.
    pub fn new() -> Self {
        Scheduler {
            names: Vec::new(),
            conds: Vec::new(),
            heap: WakeHeap::new(0),
            ready: Vec::new(),
            ready_count: 0,
            now: 0,
        }
    }

    /// Registers a component with a debug `name` and the [`WakeCond`] it
    /// characteristically sleeps on. Returns its [`CompId`]. Component
    /// count is unbounded; all per-component storage is sized here, never
    /// on the hot path.
    pub fn add_component(&mut self, name: &'static str, cond: WakeCond) -> CompId {
        self.names.push(name);
        self.conds.push(cond);
        self.heap = WakeHeap::new(self.names.len());
        self.ready.resize(self.names.len().div_ceil(64), 0);
        CompId(self.names.len() - 1)
    }

    /// Number of registered components.
    pub fn components(&self) -> usize {
        self.names.len()
    }

    /// Name and wake condition of a component, for debug output.
    pub fn describe(&self, id: CompId) -> (&'static str, WakeCond) {
        (self.names[id.0], self.conds[id.0])
    }

    /// The registry's current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    // simcheck: hot-path begin -- per-iteration wake notes and the skip
    // decision; the heap is pre-sized when components are added.

    /// Records `comp`'s wake for the current cycle boundary.
    #[inline]
    pub fn note(&mut self, id: CompId, wake: Wake) {
        let (word, bit) = (id.0 / 64, 1u64 << (id.0 % 64));
        let was_ready = self.ready[word] & bit != 0;
        match wake {
            Wake::Ready => {
                self.ready[word] |= bit;
                self.ready_count += usize::from(!was_ready);
                self.heap.cancel(id.0);
            }
            Wake::Sleep(n) => {
                self.ready[word] &= !bit;
                self.ready_count -= usize::from(was_ready);
                self.heap.register(id.0, self.now + n.max(1));
            }
            Wake::Idle => {
                self.ready[word] &= !bit;
                self.ready_count -= usize::from(was_ready);
                self.heap.cancel(id.0);
            }
        }
    }

    /// The longest span for which every noted component is provably idle.
    ///
    /// Returns `None` when a component is ready (tick normally) or when no
    /// component holds a deadline (all externally blocked — skipping would
    /// turn a deadlock's `max_cycles` overrun into silence).
    #[inline]
    pub fn idle_span(&mut self) -> Option<u64> {
        if self.ready_count != 0 {
            return None;
        }
        let (cycle, _) = self.heap.peek()?;
        Some(cycle.saturating_sub(self.now).max(1))
    }

    /// Advances the registry clock by `span` cycles after a skip.
    #[inline]
    pub fn advance(&mut self, span: u64) {
        self.now += span;
        // Notes are per-boundary: require fresh ones after a skip.
        self.ready.fill(0);
        self.ready_count = 0;
    }

    // simcheck: hot-path end
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_ready_dominates() {
        assert_eq!(Wake::Ready.merge(Wake::Sleep(3)), Wake::Ready);
        assert_eq!(Wake::Idle.merge(Wake::Ready), Wake::Ready);
        assert_eq!(Wake::Ready.merge(Wake::Ready), Wake::Ready);
    }

    #[test]
    fn merge_sleep_takes_min() {
        assert_eq!(Wake::Sleep(3).merge(Wake::Sleep(7)), Wake::Sleep(3));
        assert_eq!(Wake::Sleep(4).merge(Wake::Idle), Wake::Sleep(4));
        assert_eq!(Wake::Idle.merge(Wake::Idle), Wake::Idle);
    }

    #[test]
    fn countdown_zero_is_ready() {
        assert_eq!(Wake::countdown(0), Wake::Ready);
        assert_eq!(Wake::countdown(2), Wake::Sleep(2));
    }

    #[test]
    fn heap_orders_by_cycle() {
        let mut h = WakeHeap::new(4);
        h.register(0, 30);
        h.register(1, 10);
        h.register(2, 20);
        assert_eq!(h.peek(), Some((10, 1)));
        assert_eq!(h.pop_due(15), Some(1));
        assert_eq!(h.peek(), Some((20, 2)));
        assert_eq!(h.pop_due(15), None, "cycle 20 not due at 15");
    }

    #[test]
    fn reregistration_supersedes() {
        let mut h = WakeHeap::new(2);
        h.register(0, 5);
        h.register(0, 50);
        assert_eq!(h.peek(), Some((50, 0)), "old entry is stale");
    }

    #[test]
    fn cancel_removes_lazily() {
        let mut h = WakeHeap::new(2);
        h.register(0, 5);
        h.register(1, 9);
        h.cancel(0);
        assert!(!h.is_registered(0));
        assert_eq!(h.peek(), Some((9, 1)));
    }

    #[test]
    fn compaction_bounds_growth() {
        let mut h = WakeHeap::new(2);
        let cap = 2 * 4;
        // Far more re-registrations than capacity: stale entries must be
        // compacted away rather than growing the allocation.
        for i in 0..1000u64 {
            h.register((i % 2) as usize, 1000 - i);
        }
        assert!(
            h.heap.capacity() <= cap.max(8),
            "heap grew: {}",
            h.heap.capacity()
        );
        assert_eq!(h.peek(), Some((1, 1)), "latest registrations win");
    }

    #[test]
    fn scheduler_skips_min_sleep() {
        let mut s = Scheduler::new();
        let a = s.add_component("a", WakeCond::Countdown);
        let b = s.add_component("b", WakeCond::Countdown);
        let c = s.add_component("c", WakeCond::ExternalInput);
        s.note(a, Wake::Sleep(8));
        s.note(b, Wake::Sleep(3));
        s.note(c, Wake::Idle);
        assert_eq!(s.idle_span(), Some(3));
        s.advance(3);
        assert_eq!(s.now(), 3);
    }

    #[test]
    fn scheduler_refuses_ready_and_all_idle() {
        let mut s = Scheduler::new();
        let a = s.add_component("a", WakeCond::Countdown);
        let b = s.add_component("b", WakeCond::FifoNonEmpty);
        s.note(a, Wake::Sleep(4));
        s.note(b, Wake::Ready);
        assert_eq!(s.idle_span(), None, "ready component forces a tick");
        s.note(b, Wake::Idle);
        s.note(a, Wake::Idle);
        assert_eq!(s.idle_span(), None, "all-idle means deadlock: tick");
    }

    #[test]
    fn hundreds_of_components_schedule_correctly() {
        // A 128-requestor fabric registers several hundred components;
        // the ready set must work across word boundaries, not silently
        // alias bit 65 onto bit 1.
        let mut s = Scheduler::new();
        let ids: Vec<CompId> = (0..300)
            .map(|_| s.add_component("leaf", WakeCond::Countdown))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            s.note(*id, Wake::Sleep(1 + i as u64));
        }
        assert_eq!(s.idle_span(), Some(1), "earliest sleeper bounds the skip");
        s.note(ids[257], Wake::Ready);
        assert_eq!(s.idle_span(), None, "a ready bit past word 4 forces a tick");
        s.note(ids[257], Wake::Idle);
        assert_eq!(s.idle_span(), Some(1));
        s.advance(1);
        assert_eq!(s.now(), 1);
    }

    #[test]
    fn describe_round_trips() {
        let mut s = Scheduler::new();
        let id = s.add_component("engine0", WakeCond::Countdown);
        assert_eq!(s.describe(id), ("engine0", WakeCond::Countdown));
        assert_eq!(WakeCond::Countdown.to_string(), "countdown expired");
    }
}
