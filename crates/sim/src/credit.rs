//! Credit counters for request regulation.
//!
//! Used by the converters' lane machinery (Fig. 2c/2d) to bound in-flight
//! word requests per lane, mirroring the decoupling queues of §III-C.

/// A credit counter bounding the number of in-flight operations.
///
/// This is the building block of the paper's *request regulator*: the
/// strided and indirect converters must not issue more word requests per
/// lane than the decoupling queue behind that lane can hold, or responses
/// would overflow. A [`Credit`] starts at the queue depth, is consumed when
/// a request is issued and returned when the response is drained.
///
/// # Examples
///
/// ```
/// use simkit::Credit;
///
/// let mut c = Credit::new(2);
/// assert!(c.take());
/// assert!(c.take());
/// assert!(!c.take()); // regulator blocks the third request
/// c.put();
/// assert!(c.take());
/// ```
#[derive(Debug, Clone)]
pub struct Credit {
    available: usize,
    max: usize,
}

impl Credit {
    /// Creates a counter with `max` credits, all initially available.
    pub fn new(max: usize) -> Self {
        Credit {
            available: max,
            max,
        }
    }

    /// Attempts to consume one credit; returns `false` if none are left.
    #[inline]
    pub fn take(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one credit.
    ///
    /// # Panics
    ///
    /// Panics if more credits are returned than were ever taken — that
    /// always indicates a modeling bug (a response without a request).
    #[inline]
    pub fn put(&mut self) {
        assert!(
            self.available < self.max,
            "credit overflow: response without matching request"
        );
        self.available += 1;
    }

    /// Credits currently available.
    #[inline]
    pub fn available(&self) -> usize {
        self.available
    }

    /// Credits currently consumed (in-flight operations).
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.max - self.available
    }

    /// Maximum number of credits.
    #[inline]
    pub fn max(&self) -> usize {
        self.max
    }

    /// Returns `true` if at least one credit is available.
    #[inline]
    pub fn has_credit(&self) -> bool {
        self.available > 0
    }

    /// Returns `true` if every credit has been returned (nothing in
    /// flight) — the "credit returned" wake condition is only fully
    /// satisfied, for quiescence purposes, when the counter is back at its
    /// maximum.
    #[inline]
    pub fn all_returned(&self) -> bool {
        self.available == self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_in_flight_requests() {
        let mut c = Credit::new(4);
        let mut issued = 0;
        while c.take() {
            issued += 1;
        }
        assert_eq!(issued, 4);
        assert_eq!(c.in_flight(), 4);
        c.put();
        assert_eq!(c.in_flight(), 3);
        assert!(c.has_credit());
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn overflow_panics() {
        let mut c = Credit::new(1);
        c.put();
    }

    #[test]
    fn zero_capacity_never_grants() {
        let mut c = Credit::new(0);
        assert!(!c.take());
        assert!(!c.has_credit());
    }
}
