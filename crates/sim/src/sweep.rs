//! The parallel sweep engine: fans independent simulation points across
//! worker threads with deterministic per-point seeds and ordered result
//! collection.
//!
//! This module models nothing from the paper; it is the machinery that
//! regenerates the paper's evaluation (Fig. 3–5 families) in parallel.
//! Every figure is a *sweep*: a cartesian grid of (kernel × system ×
//! parameter) points, each an independent simulation. [`SweepSpec`] builds
//! the grid, [`SweepSpec::run`] executes it on a scoped thread pool
//! ([`std::thread::scope`]) with a shared work-stealing cursor, and results
//! come back in point order regardless of which worker finished first — so
//! a sweep's output is bit-identical at any thread count.
//!
//! Determinism contract: the closure passed to [`SweepSpec::run`] must
//! derive all randomness from [`PointCtx::seed`] (a [splitmix64] mix of the
//! sweep's base seed and the point index) and must not share mutable state
//! between points. Under that contract, `run` at 1 thread and at N threads
//! produce identical `Vec`s.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! ```
//! use simkit::sweep::SweepSpec;
//!
//! // A 2×3 grid, squared in parallel, collected in grid order.
//! let out = SweepSpec::over(vec![10u64, 20])
//!     .cross(&[1u64, 2, 3])
//!     .threads(4)
//!     .run(|_ctx, &(a, b)| a * b);
//! assert_eq!(out, vec![10, 20, 30, 20, 40, 60]);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Drop guard that cancels the sweep if a point closure unwinds.
struct CancelOnUnwind<'a>(&'a AtomicBool);

impl Drop for CancelOnUnwind<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// Environment variable overriding the sweep worker-thread count
/// (`AXI_PACK_THREADS=1` forces serial execution).
pub const THREADS_ENV: &str = "AXI_PACK_THREADS";

/// Resolves the worker-thread count for a sweep.
///
/// Priority: the `explicit` override (a CLI flag, say), then the
/// [`THREADS_ENV`] environment variable, then the host's available
/// parallelism. Always at least 1.
pub fn thread_count(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Mixes a sweep-level base seed and a point index into an independent
/// per-point seed (splitmix64 finalizer).
///
/// Nearby indices produce statistically unrelated seeds, so every point of
/// a sweep gets its own reproducible random stream no matter which worker
/// thread executes it.
pub fn point_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-point context handed to the sweep closure.
#[derive(Debug, Clone, Copy)]
pub struct PointCtx {
    /// Position of this point in the sweep (and in the result `Vec`).
    pub index: usize,
    /// Deterministic per-point seed ([`point_seed`] of the sweep's base
    /// seed and `index`).
    pub seed: u64,
}

/// A parameter sweep: an ordered list of points plus execution policy
/// (thread count, base seed).
///
/// Build grids with [`SweepSpec::over`] and [`SweepSpec::cross`] (cartesian
/// product, row-major: the *last* crossed axis varies fastest), or wrap an
/// explicit point list with [`SweepSpec::new`]. Execute with
/// [`SweepSpec::run`].
///
/// # Examples
///
/// ```
/// use simkit::SweepSpec;
///
/// let grid = SweepSpec::over(vec!["spmv", "gemv"]).cross(&[64u32, 128, 256]);
/// assert_eq!(grid.len(), 6);
/// let labels = grid.threads(2).run(|ctx, (k, bus)| format!("{}:{k}@{bus}", ctx.index));
/// assert_eq!(labels[5], "5:gemv@256");
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec<P> {
    points: Vec<P>,
    threads: Option<usize>,
    base_seed: u64,
}

impl<P> SweepSpec<P> {
    /// A sweep over an explicit list of points.
    pub fn new(points: Vec<P>) -> Self {
        SweepSpec {
            points,
            threads: None,
            base_seed: 0,
        }
    }

    /// A sweep over one axis (the first axis of a grid).
    pub fn over(axis: impl Into<Vec<P>>) -> Self {
        SweepSpec::new(axis.into())
    }

    /// Crosses the sweep with another axis: the cartesian product, with
    /// the new axis varying fastest.
    pub fn cross<B: Clone>(self, axis: &[B]) -> SweepSpec<(P, B)>
    where
        P: Clone,
    {
        let points = self
            .points
            .iter()
            .flat_map(|p| axis.iter().map(move |b| (p.clone(), b.clone())))
            .collect();
        SweepSpec {
            points,
            threads: self.threads,
            base_seed: self.base_seed,
        }
    }

    /// Drops grid points the predicate rejects.
    ///
    /// Cartesian grids often contain a few combinations that make no
    /// sense (e.g. a multi-requestor *kernel mix* axis crossed with a
    /// requestor count of one); `retain` prunes them while keeping the
    /// surviving points — and therefore the per-point seeds and result
    /// order — deterministic.
    ///
    /// # Examples
    ///
    /// ```
    /// use simkit::SweepSpec;
    ///
    /// let grid = SweepSpec::over(vec![1usize, 2, 4])
    ///     .cross(&["homogeneous", "mixed"])
    ///     .retain(|&(n, mix)| !(n == 1 && mix == "mixed"));
    /// assert_eq!(grid.len(), 5);
    /// ```
    pub fn retain(mut self, keep: impl FnMut(&P) -> bool) -> Self {
        self.points.retain(keep);
        self
    }

    /// Pins the worker-thread count (otherwise [`thread_count`] decides).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Sets the base seed mixed into every [`PointCtx::seed`].
    pub fn seed(mut self, base: u64) -> Self {
        self.base_seed = base;
        self
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in execution (result) order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Runs `f` on every point and returns the results **in point order**.
    ///
    /// Points are distributed to worker threads through a shared atomic
    /// cursor (idle workers steal the next unclaimed point), so wall-clock
    /// scales with cores while the output order — and, given the
    /// determinism contract in the [module docs](self), the output *values*
    /// — are independent of the thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic from `f`: the sweep cancels (workers stop
    /// claiming new points, finishing only their in-flight one) and the
    /// panic resurfaces on the calling thread.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(PointCtx, &P) -> R + Sync,
    {
        let n = self.points.len();
        let workers = thread_count(self.threads).min(n.max(1));
        let ctx = |index| PointCtx {
            index,
            seed: point_seed(self.base_seed, index),
        };
        if workers <= 1 || n <= 1 {
            return self
                .points
                .iter()
                .enumerate()
                .map(|(i, p)| f(ctx(i), p))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let mut harvest: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            if cancelled.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // On panic, unwinding skips the push; flag the
                            // other workers down before it leaves the loop.
                            let guard = CancelOnUnwind(&cancelled);
                            let r = f(ctx(i), &self.points[i]);
                            std::mem::forget(guard);
                            local.push((i, r));
                        }
                        local
                    })
                })
                .collect();
            let mut first_panic = None;
            let harvest = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                        Vec::new()
                    }
                })
                .collect();
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            harvest
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in harvest.drain(..).flatten() {
            debug_assert!(slots[i].is_none(), "point {i} produced twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("point {i} not produced")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_row_major() {
        let spec = SweepSpec::over(vec!["a", "b"]).cross(&[1, 2, 3]);
        assert_eq!(spec.len(), 6);
        assert_eq!(spec.points()[0], ("a", 1));
        assert_eq!(spec.points()[1], ("a", 2));
        assert_eq!(spec.points()[5], ("b", 3));
    }

    #[test]
    fn results_are_ordered_and_thread_count_invariant() {
        let points: Vec<u64> = (0..97).collect();
        let serial = SweepSpec::new(points.clone())
            .seed(42)
            .threads(1)
            .run(|ctx, &p| (p * 3, ctx.seed));
        for workers in [2, 4, 8] {
            let parallel = SweepSpec::new(points.clone())
                .seed(42)
                .threads(workers)
                .run(|ctx, &p| (p * 3, ctx.seed));
            assert_eq!(serial, parallel, "{workers} workers must match serial");
        }
    }

    #[test]
    fn point_seeds_are_distinct_and_stable() {
        let a = point_seed(7, 0);
        let b = point_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, point_seed(7, 0), "seeds are pure functions");
        assert_ne!(point_seed(8, 0), a, "base seed matters");
    }

    #[test]
    fn retain_prunes_points_but_keeps_order() {
        let spec = SweepSpec::over(vec![1usize, 2, 4])
            .cross(&["homo", "mixed"])
            .retain(|&(n, m)| !(n == 1 && m == "mixed"));
        assert_eq!(spec.len(), 5);
        assert_eq!(spec.points()[0], (1, "homo"));
        assert_eq!(spec.points()[1], (2, "homo"));
        let labels = spec.run(|_, &(n, m)| format!("{n}{m}"));
        assert_eq!(labels[1], "2homo");
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let none: Vec<i32> = SweepSpec::new(Vec::<i32>::new()).run(|_, &p| p);
        assert!(none.is_empty());
        let one = SweepSpec::new(vec![5])
            .threads(8)
            .run(|ctx, &p| p + ctx.index as i32);
        assert_eq!(one, vec![5]);
    }

    #[test]
    fn thread_count_floor_is_one() {
        assert!(thread_count(Some(0)) >= 1);
        assert!(thread_count(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "sweep point panicked")]
    fn worker_panics_propagate() {
        let _ = SweepSpec::new(vec![0u32, 1, 2, 3]).threads(2).run(|_, &p| {
            if p == 2 {
                panic!("sweep point panicked");
            }
            p
        });
    }
}
