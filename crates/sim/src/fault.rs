//! Deterministic fault injection and hang forensics.
//!
//! A production-scale simulator has to model the *error half* of the
//! protocols it reproduces: slave errors, decode errors, arbiter
//! pathologies, and memory-port latency spikes. This module provides the
//! substrate the hardware models build on:
//!
//! * [`FaultSpec`] — a tiny `Copy` configuration (seed + per-site mean
//!   periods) that callers place in their run configuration. With no spec
//!   installed every fault hook is a single branch on `None`, so the
//!   fault-free hot path is unchanged (gated by the `fault_overhead` bench
//!   probe).
//! * [`SiteSchedule`] — the per-injection-site event stream expanded from
//!   the spec. Events are keyed on **operation ordinals** (the n-th access,
//!   grant, or beat at that site), *never* on wall-clock cycles. Ordinals
//!   are identical under both event-driven and lockstep scheduling, which
//!   is what makes an injected run replayable bit-for-bit under either
//!   `SchedMode`.
//! * [`FaultReport`] — the typed abort record produced when recovery (a
//!   bounded retry budget in the AXI adapter) is exhausted: it names the
//!   site, the burst, and the retry history.
//! * [`HangReport`] — the forensics snapshot produced by the progress
//!   watchdog when a run stops making progress (or exceeds its cycle
//!   budget): per-component quiescence, FIFO occupancies, and a computed
//!   suspect naming the stalled dependency chain.
//!
//! The site registry is the set of [`site`] constants; each names one
//! place in the model where the schedule is consulted. To add a site, pick
//! a fresh constant (any unique u64 tag), derive a [`SiteSchedule`] from
//! the spec with that tag, and consult [`SiteSchedule::fires`] once per
//! operation at the new site.

/// Named injection sites. Each constant is both the display name and the
/// seed-domain separator for that site's event stream: two sites fed from
/// the same [`FaultSpec`] seed draw from independent splitmix64 streams.
pub mod site {
    /// Bank word-access errors in `banked-mem` (transient SLVERR).
    pub const BANK_ACCESS: (&str, u64) = ("bank-access", 0xFA01);
    /// Persistent bank failure in `banked-mem` (a chosen bank starts
    /// failing at a scheduled ordinal and never recovers).
    pub const BANK_PERSISTENT: (&str, u64) = ("bank-persistent", 0xFA02);
    /// Latency spikes on the bank ports (grants suppressed for a span).
    pub const BANK_DELAY: (&str, u64) = ("bank-delay", 0xFA03);
    /// Grant-delay storms in the `AxiMux` AR arbiter.
    pub const MUX_AR_GRANT: (&str, u64) = ("mux-ar-grant", 0xFA04);
    /// Grant-delay storms in the `AxiMux` AW arbiter.
    pub const MUX_AW_GRANT: (&str, u64) = ("mux-aw-grant", 0xFA05);
    /// Decode errors for out-of-window addresses (structural, not
    /// scheduled: any access past the end of backing storage raises
    /// DECERR whether or not a plan is installed).
    pub const DECODE: (&str, u64) = ("decode", 0xFA06);
}

/// splitmix64 — the workspace-wide seeding convention (identical to the
/// generator in `workloads::synth`, duplicated here so the base crate
/// stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Fault-injection configuration: the seed plus per-site mean periods.
///
/// A period of 0 disables that site entirely. Periods are *mean* ordinal
/// gaps: the schedule draws each inter-fault gap uniformly from
/// `1..=2*period`, so a period of 50 injects a fault roughly every 50
/// operations at that site.
///
/// `Copy` on purpose — this rides inside run configurations that are
/// themselves `Copy` and hashed into sweep/cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Root seed; each site derives an independent splitmix64 stream from
    /// `seed ^ site_tag`.
    pub seed: u64,
    /// Mean period (in bank word accesses) between transient bank errors.
    pub bank_error_period: u32,
    /// When `true`, one bank (chosen from the seed) fails persistently
    /// starting at a scheduled access ordinal: every access it serves from
    /// then on raises SLVERR, so retries cannot recover and the requestor
    /// aborts with a typed [`FaultReport`].
    pub persistent_bank: bool,
    /// Mean period (in grant rounds with pending work) between bank-port
    /// latency spikes.
    pub bank_delay_period: u32,
    /// Length of each bank-port latency spike, in stalled grant rounds.
    pub bank_delay_len: u32,
    /// Mean period (in mux grants) between grant-delay storms.
    pub grant_storm_period: u32,
    /// Length of each grant-delay storm, in suppressed arbitration rounds.
    pub grant_storm_len: u32,
    /// Retry budget: total transient-error retries the adapter may spend
    /// across the whole run before aborting the requestor.
    pub retry_budget: u32,
}

impl FaultSpec {
    /// A transient-only profile: bank errors plus mild storms and spikes,
    /// generous retry budget — the "recoverable chaos" profile used by
    /// corpus replay. Runs under this spec either finish bit-identical to
    /// their fault-free digest or abort with a typed error.
    pub fn transient(seed: u64) -> Self {
        FaultSpec {
            seed,
            bank_error_period: 200,
            persistent_bank: false,
            bank_delay_period: 400,
            bank_delay_len: 12,
            grant_storm_period: 300,
            grant_storm_len: 8,
            retry_budget: 4096,
        }
    }

    /// A profile with everything off. Installing it arms every hook
    /// (schedules exist but never fire) without changing behaviour —
    /// exactly what the `fault_overhead` bench probe measures.
    pub fn silent(seed: u64) -> Self {
        FaultSpec {
            seed,
            bank_error_period: 0,
            persistent_bank: false,
            bank_delay_period: 0,
            bank_delay_len: 0,
            grant_storm_period: 0,
            grant_storm_len: 0,
            retry_budget: 0,
        }
    }

    /// Derives the site schedule for `site` (a `(name, tag)` pair from
    /// [`site`]) with the given mean period.
    pub fn schedule(&self, site: (&'static str, u64), mean_period: u32) -> SiteSchedule {
        SiteSchedule::new(self.seed ^ site.1, mean_period)
    }
}

/// One injection site's deterministic event stream.
///
/// The schedule is a countdown over *operation ordinals*: each call to
/// [`fires`](SiteSchedule::fires) accounts one operation at the site and
/// returns whether a fault lands on it. Gaps between faults are drawn
/// uniformly from `1..=2*mean` so the long-run rate is one fault per
/// `mean + 0.5` operations. Allocation-free and O(1) per call, so it is
/// safe inside `simcheck` hot-path regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSchedule {
    rng: SplitMix64,
    /// Operations remaining until the next fault; `u64::MAX` = disabled.
    countdown: u64,
    mean: u32,
    fired: u64,
}

impl SiteSchedule {
    /// Builds a schedule from a derived seed and a mean ordinal period
    /// (0 disables the site).
    pub fn new(seed: u64, mean: u32) -> Self {
        let mut rng = SplitMix64::new(seed);
        let countdown = if mean == 0 {
            u64::MAX
        } else {
            1 + rng.next_u64() % (2 * mean as u64)
        };
        SiteSchedule {
            rng,
            countdown,
            mean,
            fired: 0,
        }
    }

    /// Accounts one operation at this site; returns `true` when a fault
    /// lands on it and re-arms the countdown for the next one.
    #[inline]
    pub fn fires(&mut self) -> bool {
        if self.countdown > 1 {
            self.countdown -= 1;
            return false;
        }
        if self.mean == 0 {
            return false;
        }
        self.countdown = 1 + self.rng.next_u64() % (2 * self.mean as u64);
        self.fired += 1;
        true
    }

    /// Number of faults this schedule has injected so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Draws one raw value from the site's stream (used for one-shot
    /// decisions such as picking the persistently-failing bank).
    pub fn draw(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Typed abort record for an unrecoverable AXI fault: produced when the
/// adapter's retry budget is exhausted or a decode error (never
/// retryable) reaches a requestor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Injection-site name (from [`site`]) that produced the killing fault.
    pub site: &'static str,
    /// Requestor index in the topology (0 for single-requestor runs).
    pub requestor: usize,
    /// AXI transaction id of the aborted burst, as seen downstream of the
    /// fabric (prefixed with each mux level's manager index in
    /// multi-requestor topologies).
    pub axi_id: u16,
    /// Response class that reached the requestor: `"SLVERR"` or `"DECERR"`.
    pub resp: &'static str,
    /// Whether the aborted burst was a write.
    pub is_write: bool,
    /// Word address of the access that exhausted recovery.
    pub word_addr: u64,
    /// Retries spent on this run before the abort.
    pub retries_spent: u64,
    /// The configured retry budget.
    pub retry_budget: u32,
    /// Total faults injected across the run up to the abort.
    pub injected_faults: u64,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requestor {} aborted: {} at site '{}' on {} burst id {} (word addr {:#x}); \
             {} of {} retries spent, {} faults injected",
            self.requestor,
            self.resp,
            self.site,
            if self.is_write { "write" } else { "read" },
            self.axi_id,
            self.word_addr,
            self.retries_spent,
            self.retry_budget,
            self.injected_faults,
        )
    }
}

/// One component's state snapshot inside a [`HangReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangComponent {
    /// Component path, e.g. `"requestor 0 engine"` or `"channels.r"`.
    pub name: String,
    /// Human-readable state: quiescence, occupancy, wake condition.
    pub state: String,
    /// Whether this component still holds or awaits work.
    pub busy: bool,
}

/// Forensics snapshot produced when a run hangs: either the progress
/// watchdog saw no counter advance for a full window, or the hard
/// `max_cycles` budget ran out. Replaces the bare
/// `"exceeded N cycles"` string with enough state to name the stalled
/// dependency chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Cycle at which the run was declared hung.
    pub cycle: u64,
    /// The budget that was exceeded: `max_cycles` for hard overruns, the
    /// watchdog window for no-progress detections.
    pub limit: u64,
    /// `true` when the progress watchdog fired (no counter moved for the
    /// whole window); `false` for a hard `max_cycles` overrun.
    pub no_progress: bool,
    /// What was running, e.g. a kernel name or `"topology of 3 requestors"`.
    pub subject: String,
    /// Per-component snapshots, in dependency order (engines → channels →
    /// mux → adapter → banks).
    pub components: Vec<HangComponent>,
    /// The computed suspect: the deepest busy component in the dependency
    /// chain, i.e. the thing everything else is waiting on.
    pub suspect: String,
}

impl std::fmt::Display for HangReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The leading clause keeps the historical "<subject>: exceeded N
        // cycles" shape so substring checks on old messages still match.
        if self.no_progress {
            write!(
                f,
                "{}: no progress for {} cycles (hung at cycle {})",
                self.subject, self.limit, self.cycle
            )?;
        } else {
            write!(f, "{}: exceeded {} cycles", self.subject, self.limit)?;
        }
        write!(f, "; suspect: {}", self.suspect)?;
        for c in &self.components {
            let mark = if c.busy { "busy" } else { "idle" };
            write!(f, "\n  [{mark}] {}: {}", c.name, c.state)?;
        }
        Ok(())
    }
}

impl HangReport {
    /// The components still holding or awaiting work.
    pub fn busy_components(&self) -> impl Iterator<Item = &HangComponent> {
        self.components.iter().filter(|c| c.busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_schedule_never_fires() {
        let mut s = SiteSchedule::new(42, 0);
        for _ in 0..10_000 {
            assert!(!s.fires());
        }
        assert_eq!(s.fired(), 0);
    }

    #[test]
    fn schedule_rate_tracks_mean_period() {
        let mut s = SiteSchedule::new(7, 50);
        let mut hits = 0u64;
        for _ in 0..100_000 {
            if s.fires() {
                hits += 1;
            }
        }
        // Mean gap is (1 + 2*50)/2 = 50.5 ops; expect ~1980 hits.
        assert!((1500..2500).contains(&hits), "hits = {hits}");
        assert_eq!(s.fired(), hits);
    }

    #[test]
    fn schedule_is_deterministic_and_ordinal_keyed() {
        let a: Vec<bool> = {
            let mut s = SiteSchedule::new(99, 10);
            (0..1000).map(|_| s.fires()).collect()
        };
        let b: Vec<bool> = {
            let mut s = SiteSchedule::new(99, 10);
            (0..1000).map(|_| s.fires()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f));
    }

    #[test]
    fn sites_draw_independent_streams() {
        let spec = FaultSpec::transient(1234);
        let mut a = spec.schedule(site::BANK_ACCESS, 10);
        let mut b = spec.schedule(site::MUX_AR_GRANT, 10);
        let fa: Vec<bool> = (0..200).map(|_| a.fires()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.fires()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn silent_spec_arms_nothing() {
        let spec = FaultSpec::silent(5);
        let mut s = spec.schedule(site::BANK_ACCESS, spec.bank_error_period);
        for _ in 0..1000 {
            assert!(!s.fires());
        }
    }

    #[test]
    fn reports_render_site_and_retry_history() {
        let fr = FaultReport {
            site: site::BANK_ACCESS.0,
            requestor: 2,
            axi_id: 5,
            resp: "SLVERR",
            is_write: false,
            word_addr: 0x40,
            retries_spent: 9,
            retry_budget: 8,
            injected_faults: 11,
        };
        let s = fr.to_string();
        assert!(s.contains("bank-access"));
        assert!(s.contains("requestor 2"));
        assert!(s.contains("9 of 8 retries"));

        let hr = HangReport {
            cycle: 123,
            limit: 100,
            no_progress: true,
            subject: "ismt".into(),
            components: vec![HangComponent {
                name: "adapter".into(),
                state: "3 jobs queued".into(),
                busy: true,
            }],
            suspect: "adapter".into(),
        };
        let s = hr.to_string();
        assert!(s.contains("no progress for 100 cycles"));
        assert!(s.contains("suspect: adapter"));
        assert_eq!(hr.busy_components().count(), 1);
    }
}
