//! Property tests of the simulation substrate's core invariants.

use proptest::prelude::*;
use simkit::{Credit, Fifo, Pipeline, RoundRobin};

proptest! {
    /// Under any interleaving of pushes and pops, a FIFO delivers exactly
    /// the pushed values in order, never exceeds its capacity, and never
    /// makes a value visible in the cycle it was pushed.
    #[test]
    fn fifo_is_a_capacity_bounded_order_preserving_queue(
        capacity in 1usize..8,
        ops in proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 1..200),
    ) {
        let mut fifo: Fifo<u32> = Fifo::new(capacity);
        let mut next = 0u32;
        let mut popped = Vec::new();
        for (try_push, try_pop) in ops {
            if try_pop {
                if let Some(v) = fifo.pop() {
                    popped.push(v);
                }
            }
            let visible_before_push = fifo.len();
            if try_push && fifo.can_push() {
                fifo.push(next);
                // Just-pushed values must not be visible this cycle.
                prop_assert_eq!(fifo.len(), visible_before_push);
                next += 1;
            }
            fifo.end_cycle();
            prop_assert!(fifo.len() <= capacity);
        }
        // Order preservation: popped values are 0, 1, 2, ...
        for (i, v) in popped.iter().enumerate() {
            prop_assert_eq!(*v as usize, i);
        }
        prop_assert_eq!(fifo.total_popped(), popped.len() as u64);
        prop_assert!(fifo.total_pushed() >= fifo.total_popped());
    }

    /// A pipeline delays every item by exactly its latency and preserves
    /// order.
    #[test]
    fn pipeline_delay_is_exact(
        latency in 1usize..6,
        gaps in proptest::collection::vec(0usize..3, 1..50),
    ) {
        let mut p: Pipeline<usize> = Pipeline::new(latency);
        let mut inserted_at = Vec::new();
        let mut emerged = Vec::new();
        let mut cycle = 0usize;
        for gap in gaps {
            for _ in 0..gap {
                if let Some(item) = p.end_cycle() {
                    emerged.push((item, cycle));
                }
                cycle += 1;
            }
            inserted_at.push(cycle);
            p.insert(inserted_at.len() - 1);
            if let Some(item) = p.end_cycle() {
                emerged.push((item, cycle));
            }
            cycle += 1;
        }
        for _ in 0..latency + 1 {
            if let Some(item) = p.end_cycle() {
                emerged.push((item, cycle));
            }
            cycle += 1;
        }
        prop_assert_eq!(emerged.len(), inserted_at.len());
        for (item, at) in emerged {
            prop_assert_eq!(at, inserted_at[item] + latency - 1);
        }
    }

    /// Round-robin arbitration is fair: over any window where all
    /// requestors stay asserted, grant counts differ by at most one.
    #[test]
    fn round_robin_is_fair(n in 1usize..8, rounds in 1usize..100) {
        let mut arb = RoundRobin::new(n);
        let all = vec![true; n];
        let mut counts = vec![0usize; n];
        for _ in 0..rounds {
            counts[arb.grant(&all).expect("always granted")] += 1;
        }
        let min = counts.iter().min().expect("nonempty");
        let max = counts.iter().max().expect("nonempty");
        prop_assert!(max - min <= 1, "unfair: {counts:?}");
    }

    /// Credits never go negative and never exceed their maximum.
    #[test]
    fn credits_are_conserved(
        max in 0usize..16,
        ops in proptest::collection::vec(proptest::bool::ANY, 0..100),
    ) {
        let mut c = Credit::new(max);
        let mut outstanding = 0usize;
        for take in ops {
            if take {
                if c.take() {
                    outstanding += 1;
                }
            } else if outstanding > 0 {
                c.put();
                outstanding -= 1;
            }
            prop_assert_eq!(c.in_flight(), outstanding);
            prop_assert!(c.available() <= max);
        }
    }
}
