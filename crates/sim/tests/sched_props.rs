//! Property tests of the readiness/wakeup scheduler.
//!
//! Three invariant families: wake registration/cancellation round-trips
//! against a reference map, next-wake heap ordering under random
//! insert/pop interleavings, and — the one the event-driven run loops
//! stand on — no component ever sleeps through its own wake condition
//! under randomized FIFO traffic.

use proptest::prelude::*;
use simkit::sched::{Scheduler, Wake, WakeCond, WakeHeap};
use simkit::Fifo;

/// A random heap operation.
#[derive(Debug, Clone, Copy)]
enum HeapOp {
    Register { comp: usize, cycle: u64 },
    Cancel { comp: usize },
    PopDue { now: u64 },
}

fn heap_ops(components: usize) -> impl Strategy<Value = Vec<HeapOp>> {
    let op = prop_oneof![
        (0..components, 1u64..1000).prop_map(|(comp, cycle)| HeapOp::Register { comp, cycle }),
        (0..components).prop_map(|comp| HeapOp::Cancel { comp }),
        (0u64..1000).prop_map(|now| HeapOp::PopDue { now }),
    ];
    proptest::collection::vec(op, 1..300)
}

proptest! {
    /// Registration and cancellation round-trip against a reference map:
    /// after any operation sequence, `is_registered` and `peek()` agree
    /// with a model that only remembers the latest registration per
    /// component.
    #[test]
    fn registration_round_trips_against_a_reference_map(
        components in 1usize..8,
        ops in (1usize..8).prop_flat_map(heap_ops),
    ) {
        let components = components.max(1);
        let mut heap = WakeHeap::new(components);
        let mut model: Vec<Option<u64>> = vec![None; components];
        for op in ops {
            match op {
                HeapOp::Register { comp, cycle } => {
                    let comp = comp % components;
                    heap.register(comp, cycle);
                    model[comp] = Some(cycle);
                }
                HeapOp::Cancel { comp } => {
                    let comp = comp % components;
                    heap.cancel(comp);
                    model[comp] = None;
                }
                HeapOp::PopDue { now } => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .filter_map(|(c, &cy)| cy.map(|cy| (cy, c)))
                        .min()
                        .filter(|&(cy, _)| cy <= now);
                    match (heap.pop_due(now), expect) {
                        (Some(comp), Some((cycle, _))) => {
                            // Ties on cycle may resolve to any component;
                            // the popped one must hold the minimum cycle.
                            prop_assert_eq!(model[comp], Some(cycle), "popped a non-minimal entry");
                            model[comp] = None;
                        }
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "pop_due({now}): got {got:?}, model says {want:?}"
                            )));
                        }
                    }
                }
            }
            for (c, &cy) in model.iter().enumerate() {
                prop_assert_eq!(heap.is_registered(c), cy.is_some(), "component {}", c);
            }
            let min = model.iter().filter_map(|&cy| cy).min();
            prop_assert_eq!(heap.peek().map(|(cy, _)| cy), min);
            if let Some((cycle, comp)) = heap.peek() {
                prop_assert_eq!(model[comp], Some(cycle), "peek() surfaced a stale entry");
            }
        }
    }

    /// Draining the heap after any insert/pop interleaving yields
    /// non-decreasing wake cycles — the min-heap ordering survives lazy
    /// cancellation and compaction.
    #[test]
    fn drain_order_is_sorted_under_interleavings(
        components in 1usize..8,
        ops in (1usize..8).prop_flat_map(heap_ops),
    ) {
        let mut heap = WakeHeap::new(components);
        let mut live = vec![false; components];
        for op in ops {
            match op {
                HeapOp::Register { comp, cycle } => {
                    let comp = comp % components;
                    heap.register(comp, cycle);
                    live[comp] = true;
                }
                HeapOp::Cancel { comp } => {
                    let comp = comp % components;
                    heap.cancel(comp);
                    live[comp] = false;
                }
                HeapOp::PopDue { now } => {
                    if let Some(comp) = heap.pop_due(now) {
                        live[comp] = false;
                    }
                }
            }
        }
        let mut last = 0u64;
        while let Some((cycle, comp)) = heap.peek() {
            prop_assert!(cycle >= last, "drain went backwards: {cycle} after {last}");
            prop_assert!(live[comp], "drained a cancelled component");
            last = cycle;
            heap.pop_due(u64::MAX).expect("peek() said an entry is live");
            live[comp] = false;
        }
        prop_assert!(live.iter().all(|&l| !l), "live registrations left undrained");
    }

    /// A consumer driven purely by [`Fifo::wake`] never sleeps through
    /// traffic and never misses data: under any randomized producer
    /// schedule it pops exactly the pushed sequence, in order, touching
    /// the queue only on cycles where its wake condition fired.
    #[test]
    fn no_consumer_sleeps_through_fifo_traffic(
        capacity in 1usize..6,
        traffic in proptest::collection::vec(proptest::bool::ANY, 1..200),
    ) {
        let mut fifo: Fifo<u32> = Fifo::new(capacity);
        let mut next = 0u32;
        let mut popped = Vec::new();
        for push in traffic {
            if push && fifo.can_push() {
                fifo.push(next);
                next += 1;
            }
            fifo.end_cycle();
            match fifo.wake() {
                Wake::Ready => {
                    // The wake condition fired: data must actually be there.
                    let v = fifo.pop();
                    prop_assert!(v.is_some(), "woken with nothing to pop");
                    popped.push(v.expect("just checked"));
                }
                Wake::Idle => {
                    // Sleeping is only sound when a pop would find nothing.
                    prop_assert!(fifo.is_empty(), "slept through visible data");
                }
                Wake::Sleep(_) => {
                    return Err(TestCaseError::fail("a FIFO has no deadline of its own"));
                }
            }
        }
        // Drain: wake must keep firing until the queue is empty.
        loop {
            fifo.end_cycle();
            match fifo.wake() {
                Wake::Ready => popped.push(fifo.pop().expect("woken with data")),
                _ => break,
            }
        }
        prop_assert_eq!(popped.len(), next as usize, "consumer missed pushed data");
        for (i, v) in popped.iter().enumerate() {
            prop_assert_eq!(*v as usize, i, "order violated");
        }
    }

    /// The scheduler's idle-span decision matches the semantics of the
    /// noted wakes on every round: `None` iff someone is ready or nobody
    /// holds a deadline, otherwise exactly the minimum sleep.
    #[test]
    fn idle_span_matches_noted_wakes(
        wakes_per_round in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    Just(Wake::Ready),
                    (1u64..50).prop_map(Wake::Sleep),
                    Just(Wake::Idle),
                ],
                1..6,
            ),
            1..40,
        ),
    ) {
        let components = wakes_per_round.iter().map(Vec::len).max().expect("nonempty");
        let mut s = Scheduler::new();
        let ids: Vec<_> = (0..components)
            .map(|_| s.add_component("comp", WakeCond::Countdown))
            .collect();
        for round in wakes_per_round {
            // Unnoted components keep their previous state; note everyone
            // each round to keep the model simple (Idle for the rest).
            for (i, &id) in ids.iter().enumerate() {
                s.note(id, round.get(i).copied().unwrap_or(Wake::Idle));
            }
            let any_ready = round.iter().any(|w| w.is_ready());
            let min_sleep = round.iter().filter_map(|w| w.sleep_ticks()).min();
            let expected = if any_ready { None } else { min_sleep };
            let before = s.now();
            prop_assert_eq!(s.idle_span(), expected);
            if let Some(span) = expected {
                s.advance(span);
                prop_assert_eq!(s.now(), before + span);
            }
        }
    }
}
