//! Structural gate-count model of the AXI-Pack adapter (Fig. 4b).

/// Primitive gate costs in gate-equivalents (GE) per bit, calibrated
/// against the paper's 22 nm synthesis results. The absolute values fold
/// in synthesis overheads (clock gating, handshake logic, wiring cells);
/// what matters downstream is that blocks *compose* from them, so scaling
/// trends are structural.
pub mod prim {
    /// One flip-flop bit, including enable/scan overhead.
    pub const FF: f64 = 10.0;
    /// One 2:1 mux bit.
    pub const MUX2: f64 = 3.0;
    /// One adder bit (carry-propagate, sized for timing).
    pub const ADDER: f64 = 15.0;
    /// One comparator bit.
    pub const CMP: f64 = 4.0;
    /// One barrel-shifter bit-level.
    pub const SHIFT: f64 = 4.0;
    /// Fixed control overhead of a queue/FSM block, in GE.
    pub const CTRL_BLOCK: f64 = 350.0;
}

/// Address width carried through the datapath.
pub const ADDR_BITS: f64 = 34.0;
/// Metadata bits per decoupling-queue entry beyond the word itself.
const QUEUE_TAG_BITS: f64 = 10.0;

/// A register-based FIFO of `depth` × `width_bits`.
pub fn fifo_ge(depth: usize, width_bits: f64) -> f64 {
    let d = depth as f64;
    let ptr_bits = (depth.max(2) as f64).log2().ceil() + 1.0;
    d * width_bits * prim::FF
        + width_bits * prim::MUX2 * (d.log2().ceil().max(1.0))
        + 2.0 * ptr_bits * prim::FF
        + ptr_bits * prim::CMP
        + prim::CTRL_BLOCK
}

/// Parameters of the adapter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdapterParams {
    /// Bus width in bits (64/128/256 in the paper).
    pub bus_bits: u32,
    /// Memory word width in bits (32 in the paper).
    pub word_bits: u32,
    /// Decoupling-queue depth (4 in the paper's synthesis).
    pub queue_depth: usize,
}

impl AdapterParams {
    /// The paper's synthesized configuration: 256-bit bus, 32-bit words,
    /// depth-4 queues.
    pub fn paper_default() -> Self {
        AdapterParams {
            bus_bits: 256,
            word_bits: 32,
            queue_depth: 4,
        }
    }

    /// Number of word lanes, n = bus / word.
    pub fn lanes(&self) -> usize {
        (self.bus_bits / self.word_bits) as usize
    }

    fn n(&self) -> f64 {
        self.lanes() as f64
    }

    fn w(&self) -> f64 {
        self.word_bits as f64
    }

    /// Per-lane machinery shared by every converter: decoupling queue,
    /// request regulator, lane handshake.
    fn lane_ge(&self) -> f64 {
        fifo_ge(self.queue_depth, self.w() + QUEUE_TAG_BITS)
            + 4.0 * prim::FF // credit counter
            + 3.0 * prim::CMP
    }

    /// The base AXI4 converter (paper: 26 kGE at 256 bit).
    pub fn base_conv_kge(&self) -> f64 {
        let lanes = self.n() * self.lane_ge();
        let txn_queue = fifo_ge(8, ADDR_BITS + 16.0);
        let addr_gen = ADDR_BITS * (prim::FF + prim::ADDER);
        let resp_path = self.n() * self.w() * prim::MUX2;
        (lanes + txn_queue + addr_gen + resp_path + 2.0 * prim::CTRL_BLOCK) / 1000.0
    }

    /// One strided converter, read or write (paper: 36/37 kGE). The write
    /// converter differs only in datapath direction, which the paper also
    /// reports as a ~3 % difference; `write` adds the ack bookkeeping.
    pub fn strided_conv_kge(&self, write: bool) -> f64 {
        let lanes = self.n() * self.lane_ge();
        // Per-lane address pointers plus stride adders (Fig. 2c).
        let pointers = self.n() * ADDR_BITS * (prim::FF + prim::ADDER);
        // Stride pre-shift (<< size + log2 n).
        let stride_prep = ADDR_BITS * prim::SHIFT * 6.0;
        // Beat packer/unpacker staging register plus lane muxing.
        let packer = self.n() * self.w() * prim::FF + self.n() * self.w() * prim::MUX2 * 2.0;
        let info_queue = fifo_ge(self.queue_depth, 16.0);
        let ack = if write {
            self.n() * 8.0 * prim::FF + 600.0
        } else {
            0.0
        };
        (lanes + pointers + stride_prep + packer + info_queue + ack + 2.0 * prim::CTRL_BLOCK)
            / 1000.0
    }

    /// One indirect converter, read or write (paper: 73/74 kGE — nearly
    /// double the strided one, because of the two stages of Fig. 2d).
    pub fn indirect_conv_kge(&self, write: bool) -> f64 {
        // Index stage: a second full set of lanes plus offsets extraction.
        let idx_lanes = self.n() * self.lane_ge();
        let idx_pointer = ADDR_BITS * (prim::FF + prim::ADDER);
        let extraction = self.n() * self.w() * (prim::SHIFT + prim::MUX2);
        let idx_fifo = fifo_ge(2 * self.lanes(), self.w());
        // Element stage: shift-and-add per lane plus the strided datapath.
        let elem_addr = self.n() * ADDR_BITS * (prim::ADDER + prim::SHIFT);
        let stage_arb = self.n() * 60.0;
        let elem = self.strided_conv_kge(write) * 1000.0;
        (idx_lanes + idx_pointer + extraction + idx_fifo + elem_addr + stage_arb + elem) / 1000.0
    }

    /// The AXI demux routing bursts to converters (paper: 3 kGE).
    pub fn demux_kge(&self) -> f64 {
        let decode = 200.0;
        let routing = 5.0 * (ADDR_BITS + 20.0) * prim::MUX2;
        let r_mux = self.bus_bits as f64 * prim::MUX2 * 2.0;
        (decode + routing + r_mux) / 1000.0
    }

    /// The bank port mux sharing the n word ports (paper: 9 kGE).
    pub fn port_mux_kge(&self) -> f64 {
        // 5 requestors per port: ~3 mux levels on address+data+tag.
        let per_port = (ADDR_BITS + self.w() + 8.0) * prim::MUX2 * 3.0 + 5.0 * 30.0;
        (self.n() * per_port + prim::CTRL_BLOCK) / 1000.0
    }

    /// Total adapter area in kGE (paper: 69 / 130 / 257 kGE at 64 / 128 /
    /// 256 bit and a 1 GHz constraint).
    pub fn total_kge(&self) -> f64 {
        self.base_conv_kge()
            + self.strided_conv_kge(false)
            + self.strided_conv_kge(true)
            + self.indirect_conv_kge(false)
            + self.indirect_conv_kge(true)
            + self.demux_kge()
            + self.port_mux_kge()
    }

    /// The Fig. 4b breakdown: `(label, kGE)` pairs summing to the total.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("AXI4 conv", self.base_conv_kge()),
            ("stride R conv", self.strided_conv_kge(false)),
            ("stride W conv", self.strided_conv_kge(true)),
            ("indir R conv", self.indirect_conv_kge(false)),
            ("indir W conv", self.indirect_conv_kge(true)),
            ("AXI demux", self.demux_kge()),
            ("memory mux", self.port_mux_kge()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper values at the 256-bit configuration, Fig. 4b.
    const PAPER: &[(&str, f64)] = &[
        ("AXI4 conv", 26.0),
        ("stride R conv", 36.0),
        ("stride W conv", 37.0),
        ("indir R conv", 73.0),
        ("indir W conv", 74.0),
        ("AXI demux", 3.0),
        ("memory mux", 9.0),
    ];

    #[test]
    fn breakdown_lands_near_paper_values() {
        let a = AdapterParams::paper_default();
        for ((label, got), (plabel, want)) in a.breakdown().iter().zip(PAPER) {
            assert_eq!(label, plabel);
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.35,
                "{label}: model {got:.1} kGE vs paper {want:.1} kGE ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn total_matches_paper_within_tolerance() {
        for (bits, want) in [(64u32, 69.0), (128, 130.0), (256, 257.0)] {
            let a = AdapterParams {
                bus_bits: bits,
                ..AdapterParams::paper_default()
            };
            let got = a.total_kge();
            let rel: f64 = (got - want).abs() / want;
            assert!(
                rel < 0.3,
                "{bits}-bit adapter: model {got:.1} vs paper {want:.1} kGE"
            );
        }
    }

    #[test]
    fn area_scales_linearly_with_bus_width() {
        let a64 = AdapterParams {
            bus_bits: 64,
            ..AdapterParams::paper_default()
        }
        .total_kge();
        let a256 = AdapterParams::paper_default().total_kge();
        let ratio = a256 / a64;
        assert!(
            (2.5..4.2).contains(&ratio),
            "width scaling broke: {ratio:.2}x from 64 to 256 bit"
        );
    }

    #[test]
    fn indirect_is_roughly_double_strided() {
        let a = AdapterParams::paper_default();
        let ratio = a.indirect_conv_kge(false) / a.strided_conv_kge(false);
        assert!(
            (1.6..2.4).contains(&ratio),
            "two stages should ~double: {ratio:.2}"
        );
    }

    #[test]
    fn deeper_queues_cost_area() {
        let base = AdapterParams::paper_default();
        let deep = AdapterParams {
            queue_depth: 32,
            ..base
        };
        assert!(deep.total_kge() > 1.5 * base.total_kge());
    }

    #[test]
    fn fifo_model_grows_with_depth_and_width() {
        assert!(fifo_ge(8, 32.0) > fifo_ge(4, 32.0));
        assert!(fifo_ge(4, 64.0) > fifo_ge(4, 32.0));
    }
}
