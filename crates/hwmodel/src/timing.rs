//! Clock-period and area-vs-constraint model (Fig. 4a).
//!
//! The paper reports minimum achievable clock periods of 787, 800 and
//! 839 ps for 64-, 128- and 256-bit adapters, with area rising gently as
//! the constraint tightens toward those limits and relaxing below the
//! 1 GHz sizing otherwise. The critical path runs through the n-way port
//! arbitration, so the floor grows with the lane count; the area-vs-period
//! curve follows the usual synthesis hyperbola (gate upsizing near the
//! wall).

use crate::area::AdapterParams;

/// Minimum achievable clock period in picoseconds for a bus width.
///
/// Calibration: `760 + 10·n` ps lands on 780/800/840 ps for n = 2/4/8 —
/// within half a percent of the paper's 787/800/839 ps.
pub fn min_period_ps(bus_bits: u32) -> f64 {
    let n = (bus_bits / 32) as f64;
    760.0 + 10.0 * n
}

/// Area (kGE) when synthesized under a `period_ps` clock constraint.
///
/// Below the minimum period the constraint is infeasible and `None` is
/// returned. The paper's plots cover 1000–3000 ps.
pub fn area_at_period_kge(params: &AdapterParams, period_ps: f64) -> Option<f64> {
    let tmin = min_period_ps(params.bus_bits);
    if period_ps < tmin {
        return None;
    }
    let a_1ghz = params.total_kge();
    // Relaxed synthesis saves ~12 % versus the 1 GHz sizing. The upsizing
    // hyperbola's asymptote sits 200 ps *below* the achievable minimum, so
    // area at the wall stays finite — the paper reports "only small
    // increases in area" down to the minimum period.
    let relaxed = 0.88 * a_1ghz;
    let t_sat = tmin - 200.0;
    let k = (a_1ghz / relaxed - 1.0) * (1000.0 - t_sat);
    Some(relaxed * (1.0 + k / (period_ps - t_sat)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_periods_match_paper() {
        for (bits, want) in [(64u32, 787.0), (128, 800.0), (256, 839.0)] {
            let got = min_period_ps(bits);
            assert!(
                (got - want).abs() / want < 0.02,
                "{bits}-bit: {got} ps vs paper {want} ps"
            );
        }
    }

    #[test]
    fn one_gigahertz_point_reproduces_total_area() {
        let p = AdapterParams::paper_default();
        let at_1ghz = area_at_period_kge(&p, 1000.0).expect("feasible");
        assert!((at_1ghz - p.total_kge()).abs() / p.total_kge() < 1e-6);
    }

    #[test]
    fn area_decreases_monotonically_with_relaxed_clock() {
        let p = AdapterParams::paper_default();
        let mut last = f64::INFINITY;
        for period in [850.0, 1000.0, 1500.0, 2000.0, 3000.0] {
            let a = area_at_period_kge(&p, period).expect("feasible");
            assert!(a < last, "area must shrink as the clock relaxes");
            last = a;
        }
    }

    #[test]
    fn infeasible_constraint_rejected() {
        let p = AdapterParams::paper_default();
        assert!(area_at_period_kge(&p, 500.0).is_none());
    }

    #[test]
    fn area_increase_near_the_wall_is_small() {
        // Paper: "only small increases in area" down to the minimum period.
        let p = AdapterParams::paper_default();
        let near = area_at_period_kge(&p, min_period_ps(256) + 10.0).expect("feasible");
        let at_1ghz = area_at_period_kge(&p, 1000.0).expect("feasible");
        assert!(
            near / at_1ghz < 1.6,
            "wall blow-up too large: {}",
            near / at_1ghz
        );
    }
}
