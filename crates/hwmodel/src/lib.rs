//! `hwmodel` — analytical area, timing and energy models for the AXI-Pack
//! adapter and bank crossbar.
//!
//! The paper synthesizes its RTL in GlobalFoundries 22 nm FD-SOI with
//! Synopsys Design Compiler and reports kGE areas, minimum clock periods,
//! and PrimeTime power numbers (Fig. 4 and Fig. 5c). Without a PDK or a
//! synthesis flow, this crate substitutes *structural gate-count models*:
//! every block is composed from primitive costs (flip-flops, adders,
//! muxes, comparators per bit), with the primitive constants calibrated so
//! the composed blocks land on the paper's reported sizes at the paper's
//! configuration (256-bit bus, 32-bit words, depth-4 queues). The *scaling
//! trends* — linear growth with bus width, indirect converters ≈ 2× the
//! strided ones, prime-bank modulo/divider overhead shrinking relatively
//! with bank count — then follow from the structure, which is exactly what
//! Fig. 4a/4b/5c exercise.
//!
//! ```
//! use hwmodel::area::AdapterParams;
//!
//! let a = AdapterParams::paper_default();
//! let kge = a.total_kge();
//! assert!(kge > 200.0 && kge < 320.0); // paper: 257 kGE at 256 bit
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod energy;
pub mod timing;
pub mod xbar;
