//! Activity-based power and energy model (Fig. 4c).
//!
//! The paper estimates average power with PrimeTime over the benchmark
//! runs, excluding the SRAM banks and crossbar, at 1 GHz in the TT corner.
//! This model substitutes per-event energies multiplied by activity counts
//! from the same simulations: at 1 GHz, 1 pJ per cycle equals 1 mW, so
//! `P[mW] = P_static + Σ events·energy[pJ] / cycles`.
//!
//! Event energies are calibrated to land the BASE benchmark powers in the
//! paper's 150–300 mW band with PACK at most ~30 % above BASE — the
//! regime in which PACK's large speedups translate into the reported
//! energy-efficiency gains (5.3× strided, 2.1× indirect).

/// Activity counts extracted from one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Total cycles at 1 GHz.
    pub cycles: u64,
    /// Lane-element operations (FMA datapath activations).
    pub lane_elems: u64,
    /// R-channel payload bytes that crossed the bus.
    pub r_payload_bytes: u64,
    /// W-channel payload bytes that crossed the bus.
    pub w_payload_bytes: u64,
    /// Word accesses performed by the memory controller.
    pub word_accesses: u64,
    /// Vector instructions issued.
    pub insns_issued: u64,
    /// Whether the AXI-Pack adapter is present (PACK system).
    pub has_pack_adapter: bool,
}

/// Per-event energies and static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Static + clock-tree power of CVA6 + Ara, in mW.
    pub static_mw: f64,
    /// Extra static power of the AXI-Pack adapter, in mW.
    pub adapter_static_mw: f64,
    /// Energy per lane-element operation, pJ.
    pub lane_elem_pj: f64,
    /// Energy per payload byte moved on a data channel, pJ.
    pub bus_byte_pj: f64,
    /// Energy per controller word access, pJ.
    pub word_access_pj: f64,
    /// Energy per issued vector instruction (frontend + sequencer), pJ.
    pub issue_pj: f64,
}

impl Default for EnergyModel {
    /// Calibrated against the paper's Fig. 4c power band.
    fn default() -> Self {
        EnergyModel {
            static_mw: 120.0,
            adapter_static_mw: 8.0,
            lane_elem_pj: 8.0,
            bus_byte_pj: 1.6,
            word_access_pj: 3.0,
            issue_pj: 12.0,
        }
    }
}

impl EnergyModel {
    /// Average power in mW for a run at 1 GHz.
    ///
    /// # Panics
    ///
    /// Panics on a zero-cycle activity record.
    pub fn power_mw(&self, a: &Activity) -> f64 {
        assert!(a.cycles > 0, "power of an empty run is undefined");
        let dynamic_pj = a.lane_elems as f64 * self.lane_elem_pj
            + (a.r_payload_bytes + a.w_payload_bytes) as f64 * self.bus_byte_pj
            + a.word_accesses as f64 * self.word_access_pj
            + a.insns_issued as f64 * self.issue_pj;
        let static_mw = self.static_mw
            + if a.has_pack_adapter {
                self.adapter_static_mw
            } else {
                0.0
            };
        static_mw + dynamic_pj / a.cycles as f64
    }

    /// Total energy in µJ for a run at 1 GHz (`mW × ns = pJ`).
    pub fn energy_uj(&self, a: &Activity) -> f64 {
        self.power_mw(a) * a.cycles as f64 * 1e-6
    }

    /// Energy-efficiency improvement of run `b` over run `a`
    /// (`E_a / E_b`, >1 when `b` is more efficient).
    pub fn efficiency_improvement(&self, a: &Activity, b: &Activity) -> f64 {
        self.energy_uj(a) / self.energy_uj(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_like() -> Activity {
        // A BASE strided run: long, low payload per cycle.
        Activity {
            cycles: 100_000,
            lane_elems: 50_000,
            r_payload_bytes: 400_000, // 4 B/cycle: narrow beats
            w_payload_bytes: 0,
            word_accesses: 100_000,
            insns_issued: 2_000,
            has_pack_adapter: false,
        }
    }

    fn pack_like() -> Activity {
        // Same work in 1/5 the time: much higher per-cycle activity.
        Activity {
            cycles: 20_000,
            lane_elems: 50_000,
            r_payload_bytes: 400_000,
            w_payload_bytes: 0,
            word_accesses: 100_000,
            insns_issued: 2_000,
            has_pack_adapter: true,
        }
    }

    #[test]
    fn powers_fall_in_the_papers_band() {
        let m = EnergyModel::default();
        let pb = m.power_mw(&base_like());
        let pp = m.power_mw(&pack_like());
        assert!((120.0..320.0).contains(&pb), "base power {pb:.0} mW");
        assert!((120.0..400.0).contains(&pp), "pack power {pp:.0} mW");
        assert!(
            pp > pb,
            "pack compresses the same activity into fewer cycles"
        );
    }

    #[test]
    fn efficiency_improvement_tracks_speedup_discounted_by_power() {
        let m = EnergyModel::default();
        let imp = m.efficiency_improvement(&base_like(), &pack_like());
        // 5x speedup, modest power increase: efficiency gain in (3, 5).
        assert!((3.0..5.0).contains(&imp), "improvement {imp:.2}");
    }

    #[test]
    fn same_run_has_unit_improvement() {
        let m = EnergyModel::default();
        let a = base_like();
        assert!((m.efficiency_improvement(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_linearly_with_duration_at_fixed_power() {
        let m = EnergyModel::default();
        let a = base_like();
        let mut twice = a;
        twice.cycles *= 2;
        twice.lane_elems *= 2;
        twice.r_payload_bytes *= 2;
        twice.word_accesses *= 2;
        twice.insns_issued *= 2;
        let ratio = m.energy_uj(&twice) / m.energy_uj(&a);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn zero_cycles_rejected() {
        EnergyModel::default().power_mw(&Activity::default());
    }
}
