//! Bank crossbar area model (Fig. 5c).
//!
//! The n×m crossbar routes n word ports to m banks. Power-of-two bank
//! counts slice address bits for free; prime counts need a modulo unit per
//! port (bank select) and a divider (row index), whose *relative* overhead
//! shrinks as the crossbar itself grows with the bank count — the paper's
//! argument for choosing 17 banks.

use crate::area::{prim, ADDR_BITS};

/// Area breakdown of one bank crossbar, in kGE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XbarArea {
    /// Request/response routing muxes and arbitration.
    pub crossbar_kge: f64,
    /// Modulo-by-m units (zero for power-of-two m).
    pub modulo_kge: f64,
    /// Divide-by-m units for the row index (zero for power-of-two m).
    pub divider_kge: f64,
}

impl XbarArea {
    /// Total area in kGE.
    pub fn total_kge(&self) -> f64 {
        self.crossbar_kge + self.modulo_kge + self.divider_kge
    }
}

/// Returns `true` if `m` is a power of two (free bank addressing).
fn pow2(m: usize) -> bool {
    m.is_power_of_two()
}

/// Models the n-port, m-bank crossbar for `word_bits`-wide words.
///
/// # Panics
///
/// Panics on zero ports or banks.
pub fn crossbar_area(ports: usize, banks: usize, word_bits: u32) -> XbarArea {
    assert!(ports > 0 && banks > 0, "degenerate crossbar");
    let n = ports as f64;
    let m = banks as f64;
    let w = word_bits as f64;
    // Request path: each bank muxes among n ports (address + data + tag);
    // response path: each port muxes among m banks (data).
    let req = m * (ADDR_BITS + w + 8.0) * prim::MUX2 * n.log2().ceil().max(1.0) * 0.55;
    let resp = n * w * prim::MUX2 * m.log2().ceil().max(1.0) * 0.55;
    let arb = m * (n * 35.0);
    let crossbar_kge = (req + resp + arb) / 1000.0;
    let (modulo_kge, divider_kge) = if pow2(banks) {
        (0.0, 0.0)
    } else {
        // One modulo-by-constant per port (bank select) and one truncating
        // divider per port (row index); constant-divisor units cost a few
        // adder stages each.
        let stages = (m.log2().ceil()).max(3.0);
        let modulo = n * ADDR_BITS * prim::ADDER * stages * 0.14;
        let divider = n * ADDR_BITS * prim::ADDER * stages * 0.20;
        (modulo / 1000.0, divider / 1000.0)
    };
    XbarArea {
        crossbar_kge,
        modulo_kge,
        divider_kge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_banks_pay_no_divider() {
        for m in [8usize, 16, 32] {
            let a = crossbar_area(8, m, 32);
            assert_eq!(a.modulo_kge, 0.0);
            assert_eq!(a.divider_kge, 0.0);
            assert!(a.crossbar_kge > 0.0);
        }
    }

    #[test]
    fn prime_banks_pay_modulo_and_divider() {
        for m in [11usize, 17, 31] {
            let a = crossbar_area(8, m, 32);
            assert!(a.modulo_kge > 0.0 && a.divider_kge > 0.0);
        }
    }

    #[test]
    fn crossbar_grows_with_bank_count() {
        let a8 = crossbar_area(8, 8, 32);
        let a32 = crossbar_area(8, 32, 32);
        assert!(a32.crossbar_kge > 2.0 * a8.crossbar_kge);
    }

    #[test]
    fn prime_overhead_shrinks_relatively_with_bank_count() {
        let a11 = crossbar_area(8, 11, 32);
        let a31 = crossbar_area(8, 31, 32);
        let rel11 = (a11.modulo_kge + a11.divider_kge) / a11.total_kge();
        let rel31 = (a31.modulo_kge + a31.divider_kge) / a31.total_kge();
        assert!(
            rel31 < rel11,
            "relative prime overhead must shrink: {rel11:.2} -> {rel31:.2}"
        );
    }

    #[test]
    fn magnitudes_are_in_the_papers_range() {
        // Fig. 5c: totals roughly 10–45 kGE across 8–32 banks.
        for m in [8usize, 11, 16, 17, 31, 32] {
            let t = crossbar_area(8, m, 32).total_kge();
            assert!(
                (5.0..60.0).contains(&t),
                "{m}-bank crossbar {t:.1} kGE out of plausible range"
            );
        }
    }

    #[test]
    fn seventeen_banks_is_a_reasonable_tradeoff_point() {
        // The paper picks 17: cheaper than 31/32, overhead already modest.
        let a17 = crossbar_area(8, 17, 32).total_kge();
        let a31 = crossbar_area(8, 31, 32).total_kge();
        let a32 = crossbar_area(8, 32, 32).total_kge();
        assert!(a17 < a31 && a17 < a32);
    }
}
