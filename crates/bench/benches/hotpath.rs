//! Criterion microbenches of the allocation-free hot path.
//!
//! Three altitudes of the same data plane:
//!
//! * `beat_push_pop` — the raw cost of moving one inline-payload beat
//!   through a channel FIFO (the [`axi_proto::BeatBuf`] swap's unit cost);
//! * `adapter_tick` — one full strided burst through the AXI-Pack
//!   endpoint (converters + bank port mux + banked SRAM);
//! * `single_kernel_run` — a complete PACK system run, the granule every
//!   figure sweep repeats thousands of times.
//!
//! CI runs these in `--test` smoke mode (one pass, no statistics) to keep
//! the harness itself from rotting; real measurements come from
//! `cargo bench -p axi-pack-bench` and the `figures bench` baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use axi_pack::{run_kernel, SystemConfig};
use axi_proto::{ArBeat, AxiChannels, AxiId, BeatBuf, BusConfig, ElemSize, RBeat, Resp};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig};
use simkit::Fifo;
use vproc::SystemKind;
use workloads::ismt;

/// One beat through a depth-2 channel FIFO: push, end_cycle, pop.
fn bench_beat_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("beat_push_pop", |b| {
        let mut fifo: Fifo<RBeat> = Fifo::new(2);
        let beat = RBeat {
            id: AxiId(3),
            data: BeatBuf::zeroed(32),
            payload_bytes: 32,
            last: false,
            resp: Resp::Okay,
        };
        b.iter(|| {
            fifo.push(beat.clone());
            fifo.end_cycle();
            let popped = fifo.pop().expect("visible after end_cycle");
            fifo.end_cycle();
            popped.payload_bytes
        });
    });
    g.finish();
}

/// One 8-beat packed strided burst through the complete endpoint.
fn bench_adapter_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("adapter_strided_burst", |b| {
        let bus = BusConfig::new(256);
        let cfg = CtrlConfig::new(bus, BankConfig::default(), 4);
        let mut storage = Storage::new(1 << 16);
        for w in 0..(1 << 14) {
            storage.write_u32(w * 4, w as u32);
        }
        let mut adapter = Adapter::new(cfg, storage);
        let mut ports = AxiChannels::new();
        b.iter(|| {
            ports
                .ar
                .push(ArBeat::packed_strided(0, 0, 64, ElemSize::B4, 3, &bus));
            let mut beats = 0u32;
            for _ in 0..200 {
                if ports.r.pop().is_some() {
                    beats += 1;
                }
                adapter.tick(&mut ports);
                adapter.end_cycle();
                ports.end_cycle();
                if beats == 8 && adapter.quiescent() && ports.is_empty() {
                    break;
                }
            }
            assert_eq!(beats, 8, "burst must complete");
            beats
        });
    });
    g.finish();
}

/// One complete PACK-system kernel run (the sweep granule).
fn bench_single_kernel_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = ismt::build(24, 3, &cfg.kernel_params());
    g.bench_function("single_kernel_run", |b| {
        b.iter(|| run_kernel(&cfg, &kernel).expect("verifies").cycles);
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_beat_push_pop,
    bench_adapter_tick,
    bench_single_kernel_run
);
criterion_main!(hotpath);
