//! Regenerates paper Fig. 5c: bank crossbar area versus bank count.

use axi_pack_bench::fig5::fig5c;
use axi_pack_bench::table::{f, markdown};

fn main() {
    let rows: Vec<Vec<String>> = fig5c()
        .iter()
        .map(|(banks, a)| {
            vec![
                banks.to_string(),
                f(a.crossbar_kge, 1),
                f(a.modulo_kge, 1),
                f(a.divider_kge, 1),
                f(a.total_kge(), 1),
            ]
        })
        .collect();
    println!("Fig. 5c — bank crossbar area (kGE)\n");
    println!(
        "{}",
        markdown(&["banks", "crossbar", "modulo", "divider", "total"], &rows)
    );
}
