//! Regenerates paper Fig. 3d: ismt PACK speedup scaling with matrix
//! dimension and bus width.

use axi_pack_bench::fig3::{fig3d, BUS_WIDTHS};
use axi_pack_bench::table::{f, markdown};
use axi_pack_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let points = fig3d(scale);
    let dims: Vec<usize> = {
        let mut d: Vec<usize> = points.iter().map(|p| p.x).collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    let rows: Vec<Vec<String>> = dims
        .iter()
        .map(|&dim| {
            let mut row = vec![dim.to_string()];
            for &bus in &BUS_WIDTHS {
                let p = points
                    .iter()
                    .find(|p| p.x == dim && p.bus_bits == bus)
                    .expect("point exists");
                row.push(f(p.speedup, 2));
            }
            row
        })
        .collect();
    println!("Fig. 3d — ismt PACK speedup over BASE ({scale:?} scale)\n");
    println!(
        "{}",
        markdown(&["matrix dim", "64b bus", "128b bus", "256b bus"], &rows)
    );
}
