//! Regenerates paper Fig. 3c: trmv row- versus column-wise dataflows.

use axi_pack_bench::fig3::fig3c;
use axi_pack_bench::table::{markdown, pct};
use axi_pack_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let rows: Vec<Vec<String>> = fig3c(scale)
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.dataflow.to_string(),
                r.report.cycles.to_string(),
                pct(r.report.r_util),
            ]
        })
        .collect();
    println!("Fig. 3c — trmv dataflows compared ({scale:?} scale)\n");
    println!(
        "{}",
        markdown(&["system", "dataflow", "cycles", "R util"], &rows)
    );
}
