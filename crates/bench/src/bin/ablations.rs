//! Ablations of the controller design choices called out in DESIGN.md:
//!
//! 1. decoupling-queue depth (the paper synthesizes 4, measures with 32);
//! 2. index/element stage arbitration policy (the paper's round-robin
//!    versus strict priorities);
//! 3. prime versus power-of-two bank counts at matched count.

use axi_pack::requestor::{indirect_read_util, strided_read_util_avg, SweepConfig};
use axi_pack_bench::table::{markdown, pct};
use axi_proto::{ElemSize, IdxSize};
use pack_ctrl::StagePolicy;

fn main() {
    let bursts = if std::env::args().any(|a| a == "--smoke") {
        1
    } else {
        2
    };

    // 1. Queue depth: indirect reads on 17 banks.
    println!("Ablation 1 — decoupling-queue depth (indirect 32/32-bit, 17 banks)\n");
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&depth| {
            let cfg = SweepConfig {
                queue_depth: depth,
                bursts,
                ..SweepConfig::default()
            };
            let u = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B4, 1);
            vec![depth.to_string(), pct(u)]
        })
        .collect();
    println!("{}", markdown(&["queue depth", "R util"], &rows));

    // 2. Stage arbitration policy.
    println!("\nAblation 2 — index/element stage arbitration (indirect, 17 banks)\n");
    let rows: Vec<Vec<String>> = [
        StagePolicy::RoundRobin,
        StagePolicy::IndexPriority,
        StagePolicy::ElementPriority,
    ]
    .iter()
    .map(|&policy| {
        let cfg = SweepConfig {
            stage_policy: policy,
            bursts,
            ..SweepConfig::default()
        };
        let u32b = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B4, 1);
        let u256b = indirect_read_util(&cfg, ElemSize::B32, IdxSize::B1, 1);
        vec![policy.to_string(), pct(u32b), pct(u256b)]
    })
    .collect();
    println!(
        "{}",
        markdown(
            &["policy", "32b elem / 32b idx", "256b elem / 8b idx"],
            &rows
        )
    );

    // 3. Prime vs power-of-two banks at matched counts.
    println!("\nAblation 3 — strided utilization, prime vs power-of-two banks\n");
    let rows: Vec<Vec<String>> = [(16usize, 17usize), (31, 32)]
        .iter()
        .map(|&(a, b)| {
            let util = |banks| {
                let cfg = SweepConfig {
                    banks,
                    bursts: 1,
                    ..SweepConfig::default()
                };
                strided_read_util_avg(&cfg, ElemSize::B4)
            };
            vec![format!("{a} vs {b}"), pct(util(a)), pct(util(b))]
        })
        .collect();
    println!(
        "{}",
        markdown(&["pair", "first (pow2/prime)", "second"], &rows)
    );
}
