//! Deprecated shim: the figure harness is now the unified `figures` CLI
//! (`figures all` regenerates `EXPERIMENTS.md`; `figures list` shows every
//! family). This binary keeps the old muscle-memory entry point working.

use std::time::Instant;

use axi_pack_bench::{experiments, Scale};

fn main() {
    eprintln!("note: `all_figures` is deprecated; use `figures all` (see `figures --help`)\n");
    let scale = Scale::from_flags(std::env::args().skip(1));
    let threads = simkit::sweep::thread_count(None);
    let t0 = Instant::now();
    let (body, _) = experiments::render_body(scale);
    let wallclock = format!(
        "_Wall-clock: {:.2} s on {threads} worker thread(s)._",
        t0.elapsed().as_secs_f64()
    );
    let doc = format!("{}{}", experiments::preamble(scale, Some(&wallclock)), body);
    std::fs::write("EXPERIMENTS.md", &doc).expect("write EXPERIMENTS.md");
    println!("{doc}");
    println!("\nwrote EXPERIMENTS.md");
}
