//! Regenerates paper Fig. 5a: indirect-read utilization versus
//! element/index sizes and bank count.

use axi_pack_bench::fig5::{fig5a, BANK_COUNTS};
use axi_pack_bench::table::{markdown, pct};

fn main() {
    let bursts = if std::env::args().any(|a| a == "--smoke") {
        1
    } else {
        3
    };
    let points = fig5a(bursts);
    let mut header: Vec<String> = vec!["elem/idx (bits)".into()];
    header.extend(BANK_COUNTS.iter().map(|b| format!("{b}-bank")));
    header.push("ideal".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut pairs: Vec<(axi_proto::ElemSize, axi_proto::IdxSize)> = Vec::new();
    for p in &points {
        if !pairs.contains(&(p.elem, p.idx)) {
            pairs.push((p.elem, p.idx));
        }
    }
    for (elem, idx) in pairs {
        let mut row = vec![format!("{}/{}", elem.bits(), idx.bits())];
        for banks in BANK_COUNTS.iter().map(|b| Some(*b)).chain([None]) {
            let p = points
                .iter()
                .find(|p| p.elem == elem && p.idx == idx && p.banks == banks)
                .expect("point exists");
            row.push(pct(p.util));
        }
        rows.push(row);
    }
    println!("Fig. 5a — indirect read R utilization\n");
    println!("{}", markdown(&header_refs, &rows));
}
