//! Regenerates paper Fig. 4c: benchmark powers and energy-efficiency
//! improvements of PACK over BASE.

use axi_pack_bench::fig4::fig4c;
use axi_pack_bench::table::{f, markdown};
use axi_pack_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let rows: Vec<Vec<String>> = fig4c(scale)
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f(r.base_mw, 0),
                f(r.pack_mw, 0),
                f(r.improvement, 2),
            ]
        })
        .collect();
    println!("Fig. 4c — powers and energy-efficiency improvement ({scale:?} scale)\n");
    println!(
        "{}",
        markdown(
            &[
                "kernel",
                "base power (mW)",
                "pack power (mW)",
                "energy eff. impr."
            ],
            &rows
        )
    );
}
