//! Regenerates paper Fig. 5b: strided-read utilization (averaged over
//! strides 0–63) versus element size and bank count.

use axi_pack_bench::fig5::{fig5b, BANK_COUNTS};
use axi_pack_bench::table::{markdown, pct};

fn main() {
    let bursts = if std::env::args().any(|a| a == "--smoke") {
        1
    } else {
        2
    };
    let points = fig5b(bursts);
    let mut header: Vec<String> = vec!["element (bits)".into()];
    header.extend(BANK_COUNTS.iter().map(|b| format!("{b}-bank")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut elems: Vec<axi_proto::ElemSize> = Vec::new();
    for p in &points {
        if !elems.contains(&p.elem) {
            elems.push(p.elem);
        }
    }
    let rows: Vec<Vec<String>> = elems
        .iter()
        .map(|&elem| {
            let mut row = vec![elem.bits().to_string()];
            for &banks in &BANK_COUNTS {
                let p = points
                    .iter()
                    .find(|p| p.elem == elem && p.banks == banks)
                    .expect("point exists");
                row.push(pct(p.util));
            }
            row
        })
        .collect();
    println!("Fig. 5b — strided read R utilization, strides 0..63 averaged\n");
    println!("{}", markdown(&header_refs, &rows));
}
