//! Regenerates paper Fig. 3e: spmv PACK speedup scaling with nonzeros per
//! row and bus width.

use axi_pack_bench::fig3::{fig3e, BUS_WIDTHS};
use axi_pack_bench::table::{f, markdown};
use axi_pack_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let points = fig3e(scale);
    let nnzs: Vec<usize> = {
        let mut d: Vec<usize> = points.iter().map(|p| p.x).collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    let rows: Vec<Vec<String>> = nnzs
        .iter()
        .map(|&nnz| {
            let mut row = vec![nnz.to_string()];
            for &bus in &BUS_WIDTHS {
                let p = points
                    .iter()
                    .find(|p| p.x == nnz && p.bus_bits == bus)
                    .expect("point exists");
                row.push(f(p.speedup, 2));
            }
            row
        })
        .collect();
    println!("Fig. 3e — spmv PACK speedup over BASE ({scale:?} scale)\n");
    println!(
        "{}",
        markdown(&["nnz/row", "64b bus", "128b bus", "256b bus"], &rows)
    );
}
