//! Command-line kernel runner: pick a benchmark, a system, and the
//! architectural parameters, and get a full run report — including
//! matrices loaded from Matrix Market files.
//!
//! ```sh
//! cargo run --release -p axi-pack-bench --bin run_kernel -- \
//!     --kernel spmv --system pack --banks 17 --size 64 --nnz 32
//! cargo run --release -p axi-pack-bench --bin run_kernel -- \
//!     --kernel spmv --system base --mtx path/to/heart1.mtx
//! ```

use axi_pack::{run_kernel, SystemConfig};
use vproc::SystemKind;
use workloads::{gemv, ismt, mtx, prank, scatter, spmv, sssp, trmv, CsrMatrix, Dataflow};

#[derive(Debug)]
struct Args {
    kernel: String,
    system: SystemKind,
    bus_bits: u32,
    banks: usize,
    queue_depth: usize,
    size: usize,
    nnz: f64,
    seed: u64,
    mtx_path: Option<String>,
    dataflow: Dataflow,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            kernel: "spmv".into(),
            system: SystemKind::Pack,
            bus_bits: 256,
            banks: 17,
            queue_depth: 4,
            size: 64,
            nnz: 32.0,
            seed: 42,
            mtx_path: None,
            dataflow: Dataflow::ColWise,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: run_kernel [--kernel ismt|gemv|trmv|spmv|prank|sssp|scatter]\n\
         \x20                 [--system base|pack|ideal] [--bus 64|128|256]\n\
         \x20                 [--banks N] [--queue-depth N] [--size N] [--nnz F]\n\
         \x20                 [--seed N] [--mtx FILE] [--dataflow row|col]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--kernel" => args.kernel = val(),
            "--system" => {
                args.system = match val().as_str() {
                    "base" => SystemKind::Base,
                    "pack" => SystemKind::Pack,
                    "ideal" => SystemKind::Ideal,
                    _ => usage(),
                }
            }
            "--bus" => args.bus_bits = val().parse().unwrap_or_else(|_| usage()),
            "--banks" => args.banks = val().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => args.queue_depth = val().parse().unwrap_or_else(|_| usage()),
            "--size" => args.size = val().parse().unwrap_or_else(|_| usage()),
            "--nnz" => args.nnz = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--mtx" => args.mtx_path = Some(val()),
            "--dataflow" => {
                args.dataflow = match val().as_str() {
                    "row" => Dataflow::RowWise,
                    "col" => Dataflow::ColWise,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn sparse_operand(a: &Args) -> CsrMatrix {
    match &a.mtx_path {
        Some(path) => {
            let m = mtx::read_mtx_file(path).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            println!(
                "loaded {}: {}x{} with {} nonzeros ({:.1}/row)",
                path,
                m.rows(),
                m.cols(),
                m.nnz(),
                m.avg_nnz_per_row()
            );
            m
        }
        None => CsrMatrix::random(a.size, (2 * a.size).max(a.nnz as usize * 3), a.nnz, a.seed),
    }
}

fn main() {
    let a = parse_args();
    let mut cfg = SystemConfig::with_bus(a.system, a.bus_bits);
    cfg.banks = a.banks;
    cfg.queue_depth = a.queue_depth;
    let p = cfg.kernel_params();
    let kernel = match a.kernel.as_str() {
        "ismt" => ismt::build(a.size, a.seed, &p),
        "gemv" => gemv::build(a.size, a.seed, a.dataflow, &p),
        "trmv" => trmv::build(a.size, a.seed, a.dataflow, &p),
        "spmv" => spmv::build(&sparse_operand(&a), a.seed, &p),
        "prank" => prank::build(&sparse_operand(&a), 2, &p),
        "sssp" => sssp::build(&sparse_operand(&a), 0, 3, &p),
        "scatter" => scatter::build(a.size, 2.0, a.seed, &p),
        other => {
            eprintln!("unknown kernel {other}");
            usage();
        }
    };
    match run_kernel(&cfg, &kernel) {
        Ok(report) => {
            println!("{report}");
            println!(
                "  bank conflicts: {}, useful bytes: {}, energy: {:.2} uJ",
                report.bank_conflicts, kernel.useful_bytes, report.energy_uj
            );
            println!("  functional result verified against the scalar reference");
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}
