//! Regenerates paper Fig. 4a: adapter area versus clock constraint.

use axi_pack_bench::fig4::fig4a;
use axi_pack_bench::table::{f, markdown};

fn main() {
    let (points, minima) = fig4a();
    let periods: Vec<f64> = {
        let mut p: Vec<f64> = points.iter().map(|p| p.period_ps).collect();
        p.sort_by(f64::total_cmp);
        p.dedup();
        p
    };
    let rows: Vec<Vec<String>> = periods
        .iter()
        .map(|&period| {
            let mut row = vec![format!("{period:.0} ps")];
            for bus in [64u32, 128, 256] {
                let a = points
                    .iter()
                    .find(|p| p.bus_bits == bus && p.period_ps == period)
                    .and_then(|p| p.area_kge);
                row.push(a.map_or("infeasible".into(), |v| f(v, 1)));
            }
            row
        })
        .collect();
    println!("Fig. 4a — adapter area (kGE) vs clock constraint\n");
    println!(
        "{}",
        markdown(&["clock period", "64b bus", "128b bus", "256b bus"], &rows)
    );
    println!("\nminimum achievable periods (paper: 787/800/839 ps):");
    for (bus, ps) in minima {
        println!("  {bus:>3}b bus: {ps:.0} ps");
    }
}
