//! Regenerates paper Fig. 4b: adapter area breakdown at 256 bit.

use axi_pack_bench::fig4::fig4b;
use axi_pack_bench::table::{f, markdown, pct};

fn main() {
    let rows: Vec<Vec<String>> = fig4b()
        .iter()
        .map(|(name, kge, share)| vec![(*name).into(), f(*kge, 1), pct(*share)])
        .collect();
    let total: f64 = fig4b().iter().map(|(_, kge, _)| kge).sum();
    println!("Fig. 4b — 256-bit adapter area breakdown (paper total: 257 kGE)\n");
    println!("{}", markdown(&["component", "kGE", "share"], &rows));
    println!("\ntotal: {total:.1} kGE");
}
