//! The unified figure CLI: every paper figure family, the full
//! `EXPERIMENTS.md` regeneration, ad-hoc cartesian sweeps, and single
//! kernel runs — one binary, all sweep points fanned across cores by
//! `simkit::sweep`.
//!
//! ```sh
//! figures list                 # what can I regenerate?
//! figures fig3a --smoke        # one figure family, quick inputs
//! figures all                  # everything -> EXPERIMENTS.md + CSV/JSON
//! figures all --smoke --check  # CI: regenerate, verify determinism, write nothing
//! figures sweep --kernel spmv,gemv --backend base,pack --bus 64,256 --size 32
//! figures sweep --ew 32,64,256 --idx 8,32 --banks 8,17
//! figures kernel --kernel spmv --system pack --mtx path/to/heart1.mtx
//! ```
//!
//! Thread count: `--threads N` or the `AXI_PACK_THREADS` environment
//! variable; default is the host's available parallelism.

use std::path::PathBuf;
use std::time::Instant;

use axi_pack::differential::{replay_corpus, SEED_CORPUS};
use axi_pack_bench::bench::{self, MAX_REGRESSION};
use axi_pack_bench::chaos::{run_chaos, ChaosSpec};
use axi_pack_bench::cli::{resolve, Dispatch};
use axi_pack_bench::emit::{write_files, Table};
use axi_pack_bench::fuzz::{run_fuzz, FuzzSpec};
use axi_pack_bench::sweeps::{
    kernel_sweep, parse_elem, parse_idx, util_sweep, KernelPoint, KernelSweep, UtilSweep,
    KERNEL_NAMES,
};
use axi_pack_bench::{drc, experiments, figures, Scale};
use simkit::sweep::THREADS_ENV;
use vproc::SystemKind;
use workloads::Dataflow;

fn usage() -> ! {
    eprintln!(
        "usage: figures <subcommand> [options]\n\
         \n\
         subcommands:\n\
         \x20 list                     list the figure families\n\
         \x20 <figure>                 regenerate one family (fig3a..fig5c, ablations)\n\
         \x20 all                      regenerate everything into EXPERIMENTS.md\n\
         \x20 bench                    time every figure family -> BENCH_hotpath.json\n\
         \x20                          (--check: fail if >25% slower than committed)\n\
         \x20 sweep                    ad-hoc cartesian sweep (see axes below)\n\
         \x20 kernel                   run one kernel and print the full report\n\
         \x20 fuzz                     randomized differential engine: every seed runs\n\
         \x20                          random kernels on BASE/PACK/IDEAL and 1/2/4-requestor\n\
         \x20                          topologies against a bit-exact reference model\n\
         \x20 drc                      static design-rule check (simcheck) of the in-tree\n\
         \x20                          config grids; exits non-zero on any rule error\n\
         \x20 chaos                    fault-injection engine: every seed replays the\n\
         \x20                          differential kernel family under a deterministic\n\
         \x20                          transient fault plan in both scheduler modes; each\n\
         \x20                          run must recover bit-identically or return a typed\n\
         \x20                          fault/hang report — never wedge, never panic\n\
         \n\
         drc options:\n\
         \x20 --target NAME            check one grid (paper/bus/contention/corpus/scale;\n\
         \x20                          default: all)\n\
         \x20 --rules                  print the rule catalog and exit\n\
         \x20 --verbose                also print clean-report coverage lines\n\
         \n\
         fuzz options:\n\
         \x20 --seed-start N           first seed (default 0)\n\
         \x20 --count M                seeds to check (default 64)\n\
         \x20 --minimize               shrink failing seeds before reporting\n\
         \x20 --corpus                 replay the checked-in regression corpus instead\n\
         \x20 --max-ops N              generator: program-length cap (default 24)\n\
         \x20 --max-elems N            generator: array-length cap (default 192)\n\
         \x20 --no-read-back           generator: keep load and store streams disjoint\n\
         \n\
         chaos options:\n\
         \x20 --seed-start N           first seed (default 0)\n\
         \x20 --count M                seeds to check (default 64)\n\
         \x20 --corpus                 replay the regression corpus under faults instead\n\
         \x20 --max-ops N              generator: program-length cap (default 24)\n\
         \x20 --max-elems N            generator: array-length cap (default 192)\n\
         \x20 --no-read-back           generator: keep load and store streams disjoint\n\
         \n\
         common options:\n\
         \x20 --smoke                  quick problem sizes (default: paper scale)\n\
         \x20 --lockstep               tick every component every cycle instead of the\n\
         \x20                          event-driven scheduler (the differential oracle;\n\
         \x20                          slower, bit-identical results)\n\
         \x20 --threads N              sweep worker threads (default: {} or all cores)\n\
         \x20 --out DIR                CSV/JSON output directory (default: figures-out)\n\
         \x20 --no-files               print tables only, write nothing\n\
         \n\
         cache options (figure families, all, sweep, kernel):\n\
         \x20 --cache-dir DIR          result-cache directory (default: $AXI_PACK_CACHE\n\
         \x20                          or .axi-pack-cache)\n\
         \x20 --no-cache               compute everything; never read or write the cache\n\
         \x20 --verify-cache           recompute a deterministic sample of cache hits and\n\
         \x20                          byte-compare; any mismatch fails the run\n\
         \x20 --shard I/N              compute only the grid points whose key digest\n\
         \x20                          lands in shard I of N (output is discarded; the\n\
         \x20                          shard fills the shared cache + a manifest)\n\
         \x20 --resume                 skip points already checkpointed in this shard's\n\
         \x20                          manifest (requires --shard)\n\
         \x20 --shard-budget K         stop computing after K points (crash-simulation\n\
         \x20                          hook for the resume protocol; requires --shard)\n\
         \n\
         figure/all options:\n\
         \x20 --check                  regenerate at N threads and serial, verify they\n\
         \x20                          match, write nothing (CI mode; never cached)\n\
         \x20 --compare-serial         (`all` only) also time a serial run; record\n\
         \x20                          both wall-clocks\n\
         \n\
         sweep axes (comma-separated lists):\n\
         \x20 kernel grid:  --kernel a,b --backend base,pack,ideal --bus 64,128,256\n\
         \x20               --size N,M [--nnz F] [--banks N,M] [--queue-depth N]\n\
         \x20               [--dataflow row|col] [--seed N]\n\
         \x20 util grid:    --ew 32,64,128,256 [--idx 8,16,32 | --stride 0,1,7]\n\
         \x20               [--banks 8,17,32] [--bursts N] [--seed N]\n\
         \n\
         kernel options: --kernel NAME --system base|pack|ideal --bus N --banks N\n\
         \x20             --queue-depth N --size N --nnz F --seed N --mtx FILE\n\
         \x20             --dataflow row|col",
        THREADS_ENV
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(1);
}

/// Result-cache controls shared by the cacheable subcommands.
struct CacheOpts {
    enabled: bool,
    dir: Option<PathBuf>,
    shard: Option<axi_pack::ShardSpec>,
    resume: bool,
    verify: bool,
    budget: Option<u64>,
}

impl CacheOpts {
    /// True when any cache-specific behavior beyond the always-on
    /// default was requested — used to reject these flags on
    /// subcommands that never cache (`bench`, `fuzz`, `drc`).
    fn any_special(&self) -> bool {
        self.shard.is_some() || self.resume || self.verify || self.budget.is_some()
    }
}

/// Options shared by every subcommand.
struct Common {
    scale: Scale,
    out_dir: PathBuf,
    write_files: bool,
    cache: CacheOpts,
    rest: Vec<String>,
}

fn parse_common(args: Vec<String>) -> Common {
    let mut scale = Scale::Paper;
    let mut out_dir = PathBuf::from("figures-out");
    let mut write = true;
    let mut cache = CacheOpts {
        enabled: true,
        dir: None,
        shard: None,
        resume: false,
        verify: false,
        budget: None,
    };
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => scale = Scale::Smoke,
            // Process-wide: every run constructed after this point defaults
            // to lockstep mode (the fuzz oracle still runs both modes).
            "--lockstep" => axi_pack::set_default_sched_mode(axi_pack::SchedMode::Lockstep),
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--no-files" => write = false,
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                // Read by `simkit::sweep::thread_count` at each sweep.
                std::env::set_var(THREADS_ENV, n.to_string());
            }
            "--no-cache" => cache.enabled = false,
            "--cache-dir" => {
                cache.dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--verify-cache" => cache.verify = true,
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cache.shard = Some(
                    axi_pack::ShardSpec::parse(&spec)
                        .unwrap_or_else(|| fail(&format!("bad --shard {spec} (expected I/N)"))),
                );
            }
            "--resume" => cache.resume = true,
            "--shard-budget" => {
                cache.budget = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--help" | "-h" => usage(),
            _ => rest.push(a),
        }
    }
    if !cache.enabled && cache.any_special() {
        fail("--no-cache cannot be combined with --shard/--resume/--verify-cache/--shard-budget");
    }
    if (cache.resume || cache.budget.is_some()) && cache.shard.is_none() {
        fail("--resume and --shard-budget require --shard I/N");
    }
    Common {
        scale,
        out_dir,
        write_files: write,
        cache,
        rest,
    }
}

/// Installs the result cache for a cacheable subcommand; `tag` names
/// the shard manifest (family + scale). Returns the handle so the
/// caller can print stats and check verification.
fn install_cache(c: &Common, tag: &str) -> Option<std::sync::Arc<axi_pack::RunCache>> {
    if !c.cache.enabled {
        return None;
    }
    let mut setup = axi_pack::CacheSetup::new(
        c.cache
            .dir
            .clone()
            .unwrap_or_else(axi_pack::cache::default_dir),
    );
    setup.shard = c.cache.shard;
    setup.resume = c.cache.resume;
    setup.verify = c.cache.verify;
    setup.compute_budget = c.cache.budget;
    setup.manifest_tag = Some(format!("{tag}-{:?}", c.scale).to_lowercase());
    Some(axi_pack::cache::install(&setup))
}

/// Prints the cache stats line, fails the process on any verification
/// mismatch, and uninstalls.
fn finish_cache(rc: Option<std::sync::Arc<axi_pack::RunCache>>) {
    let Some(rc) = rc else { return };
    println!("{}", rc.stats_line());
    axi_pack::cache::uninstall();
    if rc.verify_failures() > 0 {
        fail(&format!(
            "cache verification failed on {} of {} sampled hits — stored blobs \
             differ from recomputation",
            rc.verify_failures(),
            rc.verified()
        ));
    }
}

/// Rejects cache-control flags on subcommands that never consult the
/// cache (`bench` times the real simulator, `fuzz` is the differential
/// oracle, `drc` runs no simulation).
fn reject_cache_flags(c: &Common, sub: &str) {
    if c.cache.any_special() {
        fail(&format!(
            "`{sub}` never uses the result cache; --shard/--resume/--verify-cache/\
             --shard-budget do not apply"
        ));
    }
}

fn print_tables(title: &str, tables: &[Table]) {
    println!("{title}\n");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", t.to_markdown());
    }
}

fn emit(c: &Common, name: &str, tables: &[Table]) {
    if !c.write_files {
        return;
    }
    match write_files(&c.out_dir, name, tables) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => fail(&format!("writing {name} output: {e}")),
    }
}

/// Re-renders serially, restores the thread setting, and fails the
/// process unless the serial result equals the parallel one — the
/// determinism recheck shared by `--check` on `all` and on any single
/// family. Returns the serial wall-clock in seconds.
fn check_serial<T: PartialEq>(
    threads: usize,
    what: &str,
    parallel: &T,
    render: impl Fn() -> T,
) -> f64 {
    std::env::set_var(THREADS_ENV, "1");
    let t0 = Instant::now();
    let serial = render();
    let serial_elapsed = t0.elapsed().as_secs_f64();
    std::env::set_var(THREADS_ENV, threads.to_string());
    if &serial != parallel {
        fail(&format!(
            "determinism violation: {what} differs between serial and {threads}-thread sweeps"
        ));
    }
    serial_elapsed
}

fn cmd_figure(fig: &figures::Figure, c: &Common) {
    let mut check = false;
    for a in &c.rest {
        match a.as_str() {
            "--check" => check = true,
            other => fail(&format!("unknown flag {other} for `{}`", fig.name)),
        }
    }
    if check && c.cache.any_special() {
        fail("--check regenerates uncached; drop --shard/--resume/--verify-cache");
    }
    let rc = if check {
        None
    } else {
        install_cache(c, fig.name)
    };
    let threads = simkit::sweep::thread_count(None);
    let t0 = Instant::now();
    let tables = (fig.render)(c.scale);
    let elapsed = t0.elapsed().as_secs_f64();
    if check {
        // CI mode: verify the parallel sweep is deterministic; write
        // nothing.
        check_serial(threads, &format!("`{}`", fig.name), &tables, || {
            (fig.render)(c.scale)
        });
        println!(
            "figures {} --check OK: byte-identical at {threads} thread(s) and serial \
             ({elapsed:.2} s)",
            fig.name
        );
        return;
    }
    if let Some(rc) = &rc {
        if let Some(shard) = rc.shard() {
            // Shard mode: foreign points rendered as placeholders, so
            // the tables are meaningless — the product is the filled
            // cache + manifest, not output files.
            println!(
                "figures {} --shard {}/{}: {} computed, {} hits, {} foreign, \
                 {} resumed, {} deferred ({elapsed:.2} s)",
                fig.name,
                shard.index,
                shard.total,
                rc.computed(),
                rc.hits(),
                rc.foreign_skips(),
                rc.resumed_skips(),
                rc.budget_skips()
            );
            finish_cache(Some(rc.clone()));
            return;
        }
    }
    print_tables(fig.title, &tables);
    println!("\n[{elapsed:.2} s on {threads} worker thread(s)]");
    emit(c, fig.name, &tables);
    finish_cache(rc);
}

fn cmd_all(c: &Common) {
    let mut check = false;
    let mut compare_serial = false;
    for a in &c.rest {
        match a.as_str() {
            "--check" => check = true,
            "--compare-serial" => compare_serial = true,
            other => fail(&format!("unknown flag {other} for `all`")),
        }
    }
    if (check || compare_serial) && c.cache.any_special() {
        fail("--check/--compare-serial regenerate uncached; drop --shard/--resume/--verify-cache");
    }
    let rc = if check || compare_serial {
        None
    } else {
        install_cache(c, "all")
    };
    let threads = simkit::sweep::thread_count(None);
    let t0 = Instant::now();
    let (body, tables) = experiments::render_body(c.scale);
    let elapsed = t0.elapsed().as_secs_f64();

    if let Some(rc) = &rc {
        if let Some(shard) = rc.shard() {
            println!(
                "figures all --shard {}/{}: {} computed, {} hits, {} foreign, \
                 {} resumed, {} deferred ({elapsed:.2} s)",
                shard.index,
                shard.total,
                rc.computed(),
                rc.hits(),
                rc.foreign_skips(),
                rc.resumed_skips(),
                rc.budget_skips()
            );
            finish_cache(Some(rc.clone()));
            return;
        }
    }
    if check || compare_serial {
        let serial_elapsed = check_serial(threads, "`all`", &body, || {
            experiments::render_body(c.scale).0
        });
        if check {
            println!(
                "figures all --check OK: {} figure families byte-identical at {threads} thread(s) \
                 and serial ({elapsed:.2} s vs {serial_elapsed:.2} s)",
                tables.len(),
            );
            return;
        }
        let wallclock = format!(
            "_Wall-clock: {elapsed:.2} s on {threads} worker thread(s) vs {serial_elapsed:.2} s \
             serial ({:.2}× speedup)._",
            serial_elapsed / elapsed
        );
        finish_all(c, &body, &tables, &wallclock);
        return;
    }
    let wallclock = format!("_Wall-clock: {elapsed:.2} s on {threads} worker thread(s)._");
    finish_all(c, &body, &tables, &wallclock);
    finish_cache(rc);
}

fn finish_all(c: &Common, body: &str, tables: &[(&'static str, Vec<Table>)], wallclock: &str) {
    let doc = format!(
        "{}{}",
        experiments::preamble(c.scale, Some(wallclock)),
        body
    );
    std::fs::write("EXPERIMENTS.md", &doc).unwrap_or_else(|e| fail(&e.to_string()));
    println!("{doc}");
    println!("\nwrote EXPERIMENTS.md");
    for (name, t) in tables {
        emit(c, name, t);
    }
}

/// `figures bench`: time every figure family, write (or in `--check`
/// mode, gate against) the committed `BENCH_hotpath.json` baseline.
fn cmd_bench(c: &Common) {
    // `bench` times the real simulator: the family loop runs uncached
    // (a cache hit would fake the wall-clocks), and the serving layer
    // is measured explicitly by the cold/warm cache probe instead.
    reject_cache_flags(c, "bench");
    let mut check = false;
    let mut baseline = PathBuf::from("BENCH_hotpath.json");
    let mut it = c.rest.clone().into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--baseline" => baseline = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            other => fail(&format!("unknown flag {other} for `bench`")),
        }
    }
    let result = bench::run(c.scale);
    println!("figures bench ({:?} scale):", c.scale);
    for (name, secs) in &result.families {
        println!("  {name:<10} {secs:>8.3} s");
    }
    println!("  {:<10} {:>8.3} s", "total", result.total_s);
    println!(
        "  throughput {:>8.0} simulated cycles/s (PACK ismt probe, event; lockstep {:.0})",
        result.cycles_per_sec, result.cycles_per_sec_lockstep
    );
    println!(
        "  sparse     {:>8.0} simulated cycles/s (PACK scalar-bound row loop, event; lockstep {:.0}, \
         {:.1}x)",
        result.sparse_cycles_per_sec,
        result.sparse_cycles_per_sec_lockstep,
        result.sparse_event_speedup()
    );
    println!(
        "  fuzz       {:>8.1} differential scenarios/s",
        result.fuzz_scenarios_per_sec
    );
    println!(
        "  cache      {:>8.4} s cold / {:.4} s warm on fig3a ({:.0}x warm speedup)",
        result.cache_cold_s,
        result.cache_warm_s,
        result.cache_warm_speedup()
    );
    println!(
        "  fault      {:>8.1} % overhead of armed-silent fault hooks on the dense probe",
        result.fault_overhead * 100.0
    );
    println!(
        "  scale128   {:>8.4} s for one 128-requestor point on the hierarchical fabric",
        result.scale_128_requestors_s
    );
    let committed = std::fs::read_to_string(&baseline).ok();
    // Wall-clocks from different scales must never be compared (or the
    // pre-PR section mixed across scales).
    let scale_matches = committed
        .as_deref()
        .and_then(|doc| bench::parse_string(doc, "scale"))
        .is_none_or(|s| s == format!("{:?}", c.scale));
    if check {
        let Some(doc) = committed else {
            fail(&format!(
                "--check needs a committed baseline at {}",
                baseline.display()
            ));
        };
        if !scale_matches {
            fail(&format!(
                "{} was measured at {} scale, this run is {:?} — re-run with the \
                 matching scale flag",
                baseline.display(),
                bench::parse_string(&doc, "scale").unwrap_or_default(),
                c.scale
            ));
        }
        let Some(base_total) = bench::parse_number(&doc, "total_s") else {
            fail(&format!("no \"total_s\" in {}", baseline.display()));
        };
        // The committed numbers come from one specific host; a slower
        // (CI) machine can widen the limit instead of regenerating the
        // file: AXI_PACK_BENCH_TOLERANCE=0.60 allows +60%.
        let limit = std::env::var("AXI_PACK_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(MAX_REGRESSION);
        let ratio = result.total_s / base_total;
        if ratio > 1.0 + limit {
            fail(&format!(
                "smoke wall-clock regressed {:.0}% over the committed baseline \
                 ({:.3} s vs {:.3} s; limit {:.0}%)",
                (ratio - 1.0) * 100.0,
                result.total_s,
                base_total,
                limit * 100.0
            ));
        }
        // The scheduler's gains must not come at lockstep's expense: the
        // oracle mode's throughput is gated against the committed number
        // too. The probe runs for well under a second, so its absolute
        // value is far noisier than total_s — the band here is a
        // collapse detector (debug build, accidental O(n) in the tick
        // path), not a drift tracker.
        let probe_limit = limit.max(0.60);
        if let Some(base_lockstep) = bench::parse_number(&doc, "cycles_per_sec_lockstep") {
            let lockstep_ratio = base_lockstep / result.cycles_per_sec_lockstep;
            if lockstep_ratio > 1.0 + probe_limit {
                fail(&format!(
                    "lockstep throughput regressed {:.0}% under the committed baseline \
                     ({:.0} vs {:.0} cycles/s; limit {:.0}%)",
                    (lockstep_ratio - 1.0) * 100.0,
                    result.cycles_per_sec_lockstep,
                    base_lockstep,
                    probe_limit * 100.0
                ));
            }
        }
        // Fuzz throughput is gated like the lockstep probe: a short
        // per-seed probe, so it gets the widened band. The committed
        // number was re-based after PR 7 (the scheduler oracle roughly
        // doubled per-seed work — see BenchResult::fuzz_scenarios_per_sec);
        // from here on any further drop fails loudly.
        if let Some(base_fuzz) = bench::parse_number(&doc, "fuzz_scenarios_per_sec") {
            let fuzz_ratio = base_fuzz / result.fuzz_scenarios_per_sec;
            if fuzz_ratio > 1.0 + probe_limit {
                fail(&format!(
                    "fuzz throughput regressed {:.0}% under the committed baseline \
                     ({:.1} vs {:.1} scenarios/s; limit {:.0}%)",
                    (fuzz_ratio - 1.0) * 100.0,
                    result.fuzz_scenarios_per_sec,
                    base_fuzz,
                    probe_limit * 100.0
                ));
            }
        }
        // The deepest fabric point is a short probe too: same widened
        // band, so a regression in the mux cascade, the channel
        // interleave, or the row-buffer model fails loudly.
        if let Some(base_scale128) = bench::parse_number(&doc, "scale_128_requestors_s") {
            let scale_ratio = result.scale_128_requestors_s / base_scale128;
            if scale_ratio > 1.0 + probe_limit {
                fail(&format!(
                    "128-requestor fabric point regressed {:.0}% over the committed \
                     baseline ({:.4} s vs {:.4} s; limit {:.0}%)",
                    (scale_ratio - 1.0) * 100.0,
                    result.scale_128_requestors_s,
                    base_scale128,
                    probe_limit * 100.0
                ));
            }
        }
        // The serving layer's warm path must stay collapse-free: a
        // same-host cold/warm ratio, gated like the sparse speedup.
        let warm_speedup = result.cache_warm_speedup();
        if warm_speedup < bench::CACHE_WARM_SPEEDUP_FLOOR {
            fail(&format!(
                "cache warm speedup collapsed: {:.1}x, below the {:.0}x floor the \
                 result cache promises",
                warm_speedup,
                bench::CACHE_WARM_SPEEDUP_FLOOR
            ));
        }
        // The robustness hooks must stay free when disarmed: a same-host
        // back-to-back ratio (fault-free vs armed-silent dense probe),
        // gated against the fixed budget — deliberately NOT widened by
        // AXI_PACK_BENCH_TOLERANCE, since host speed cancels out of the
        // ratio.
        if result.fault_overhead > bench::FAULT_OVERHEAD_LIMIT {
            fail(&format!(
                "armed-silent fault hooks cost {:.1}% of dense-probe throughput, \
                 over the {:.0}% budget",
                result.fault_overhead * 100.0,
                bench::FAULT_OVERHEAD_LIMIT * 100.0
            ));
        }
        // And the headline event-mode gain must still be there. The
        // speedup is a same-host ratio (event and lockstep probes run on
        // the same machine in the same process), so instead of chasing a
        // noisy committed number it is gated against the architectural
        // floor the scheduler promises.
        let speedup = result.sparse_event_speedup();
        if speedup < bench::SPARSE_SPEEDUP_FLOOR {
            fail(&format!(
                "sparse event-mode speedup collapsed: {:.1}x, below the {:.0}x floor \
                 the event scheduler promises",
                speedup,
                bench::SPARSE_SPEEDUP_FLOOR
            ));
        }
        println!(
            "figures bench --check OK: {:.3} s vs committed {:.3} s ({:+.0}%, limit +{:.0}%); \
             sparse event speedup {:.1}x",
            result.total_s,
            base_total,
            (ratio - 1.0) * 100.0,
            limit * 100.0,
            result.sparse_event_speedup()
        );
        return;
    }
    if !c.write_files {
        return;
    }
    // Preserve the pre-PR section of an existing baseline verbatim —
    // but only when it was measured at the same scale.
    if !scale_matches {
        eprintln!(
            "figures bench: {} holds a different scale's measurement; \
             writing a fresh baseline without its pre-PR section",
            baseline.display()
        );
    }
    let pre = committed
        .as_deref()
        .filter(|_| scale_matches)
        .and_then(bench::pre_pr_section);
    let json = bench::to_json(c.scale, &result, pre.as_deref());
    match std::fs::write(&baseline, &json) {
        Ok(()) => println!("wrote {}", baseline.display()),
        Err(e) => fail(&format!("writing {}: {e}", baseline.display())),
    }
}

/// `figures fuzz`: run a seed window (or the regression corpus) through
/// the differential engine; print one repro line per failing seed and
/// exit non-zero if anything failed.
fn cmd_fuzz(c: &Common) {
    // The fuzzer IS the thing the cache must never short-circuit: its
    // lockstep oracle re-simulates every scenario with probes attached.
    reject_cache_flags(c, "fuzz");
    let mut spec = FuzzSpec::default();
    let mut corpus = false;
    let mut it = c.rest.clone().into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed-start" => spec.seed_start = val().parse().unwrap_or_else(|_| usage()),
            "--count" => spec.count = val().parse().unwrap_or_else(|_| usage()),
            "--minimize" => spec.minimize = true,
            "--corpus" => corpus = true,
            "--max-ops" => spec.cfg.max_ops = val().parse().unwrap_or_else(|_| usage()),
            "--max-elems" => spec.cfg.max_elems = val().parse().unwrap_or_else(|_| usage()),
            "--no-read-back" => spec.cfg.allow_read_back = false,
            other => fail(&format!("unknown flag {other} for `fuzz`")),
        }
    }
    if spec.count == 0 || spec.cfg.max_ops == 0 || spec.cfg.max_elems == 0 {
        fail("--count, --max-ops and --max-elems must be positive");
    }
    if corpus {
        let t0 = Instant::now();
        match replay_corpus() {
            Ok(cases) => println!(
                "figures fuzz --corpus OK: {cases} regression cases green ({:.2} s)",
                t0.elapsed().as_secs_f64()
            ),
            Err(failures) => {
                for (seed, e) in &failures {
                    eprintln!("corpus seed {seed} FAILED: {e}");
                }
                fail(&format!(
                    "{} of {} corpus cases failed",
                    failures.len(),
                    SEED_CORPUS.len()
                ));
            }
        }
        return;
    }
    let threads = simkit::sweep::thread_count(None);
    let summary = run_fuzz(&spec);
    if summary.failures.is_empty() {
        println!(
            "figures fuzz OK: seeds {}..{} all green — {} checks, {} simulated cycles \
             ({:.2} s on {threads} worker thread(s), {:.1} scenarios/s)",
            spec.seed_start,
            spec.seed_start + spec.count as u64,
            summary.checks,
            summary.cycles,
            summary.elapsed_s,
            summary.scenarios_per_sec,
        );
        return;
    }
    for f in &summary.failures {
        eprintln!("seed {} FAILED: {}", f.seed, f.error);
        if let Some((_, min_err)) = &f.minimized {
            eprintln!("  minimized: {min_err}");
        }
        eprintln!("  repro: {}", f.repro(&spec.cfg));
    }
    fail(&format!(
        "{} of {} seeds failed differential checking",
        summary.failures.len(),
        spec.count
    ));
}

/// `figures chaos`: run a seed window (or the regression corpus) through
/// the fault-injection engine; print one repro line per failing seed and
/// exit non-zero if anything failed.
fn cmd_chaos(c: &Common) {
    // Fault-armed runs bypass the result cache by design; the baselines
    // inside each seed are probed, so nothing here is cacheable either.
    reject_cache_flags(c, "chaos");
    let mut spec = ChaosSpec::default();
    let mut corpus = false;
    let mut it = c.rest.clone().into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--seed-start" => spec.seed_start = val().parse().unwrap_or_else(|_| usage()),
            "--count" => spec.count = val().parse().unwrap_or_else(|_| usage()),
            "--corpus" => corpus = true,
            "--max-ops" => spec.cfg.max_ops = val().parse().unwrap_or_else(|_| usage()),
            "--max-elems" => spec.cfg.max_elems = val().parse().unwrap_or_else(|_| usage()),
            "--no-read-back" => spec.cfg.allow_read_back = false,
            other => fail(&format!("unknown flag {other} for `chaos`")),
        }
    }
    if spec.count == 0 || spec.cfg.max_ops == 0 || spec.cfg.max_elems == 0 {
        fail("--count, --max-ops and --max-elems must be positive");
    }
    if corpus {
        let t0 = Instant::now();
        match axi_pack::chaos::replay_chaos_corpus() {
            Ok(cases) => println!(
                "figures chaos --corpus OK: {cases} regression cases green under \
                 injected faults ({:.2} s)",
                t0.elapsed().as_secs_f64()
            ),
            Err(failures) => {
                for (seed, e) in &failures {
                    eprintln!("chaos corpus seed {seed} FAILED: {e}");
                }
                fail(&format!(
                    "{} of {} corpus cases failed under injected faults",
                    failures.len(),
                    SEED_CORPUS.len()
                ));
            }
        }
        return;
    }
    let threads = simkit::sweep::thread_count(None);
    let summary = run_chaos(&spec);
    if summary.failures.is_empty() {
        println!(
            "figures chaos OK: seeds {}..{} all green — {} checks, {} simulated cycles; \
             {} recovered / {} aborted / {} hung faulted runs, {} faults absorbed over \
             {} retries ({:.2} s on {threads} worker thread(s))",
            spec.seed_start,
            spec.seed_start + spec.count as u64,
            summary.checks,
            summary.cycles,
            summary.recovered,
            summary.aborted,
            summary.hung,
            summary.injected_faults,
            summary.fault_retries,
            summary.elapsed_s,
        );
        return;
    }
    for (seed, error, repro) in &summary.failures {
        eprintln!("chaos seed {seed} FAILED: {error}");
        eprintln!("  repro: {repro}");
    }
    fail(&format!(
        "{} of {} seeds failed chaos checking",
        summary.failures.len(),
        spec.count
    ));
}

/// `figures drc`: statically design-rule check the in-tree config grids
/// (paper systems, bus sweeps, contention topologies, the fuzz corpus)
/// and pretty-print one report per topology. Exits non-zero on any
/// error-severity diagnostic — the CI gate mode.
fn cmd_drc(c: &Common) {
    reject_cache_flags(c, "drc");
    let mut targets: Vec<&'static drc::DrcTarget> = Vec::new();
    let mut verbose = false;
    let mut it = c.rest.clone().into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--target" => {
                let name = it.next().unwrap_or_else(|| usage());
                match drc::find(&name) {
                    Some(t) => targets.push(t),
                    None => fail(&format!(
                        "unknown drc target {name} (expected one of {})",
                        drc::TARGETS
                            .iter()
                            .map(|t| t.name)
                            .collect::<Vec<_>>()
                            .join("/")
                    )),
                }
            }
            "--rules" => {
                // The rule catalog, straight from the checker.
                for rule in axi_pack::Rule::ALL {
                    println!("{:8} {}", rule.id(), rule.summary());
                }
                return;
            }
            "--verbose" => verbose = true,
            other => fail(&format!("unknown flag {other} for `drc`")),
        }
    }
    if targets.is_empty() {
        targets = drc::TARGETS.iter().collect();
    }
    let t0 = Instant::now();
    let outcomes = drc::check_targets(&targets, c.scale);
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for t in &targets {
        println!("{} — {}", t.name, t.title);
        for o in outcomes.iter().filter(|o| o.target == t.name) {
            let status = if !o.report.is_clean() {
                "FAIL"
            } else if o.report.warnings().next().is_some() {
                "warn"
            } else {
                "ok"
            };
            println!("  {status:4} {}", o.label);
            errors += o.report.errors().count();
            warnings += o.report.warnings().count();
            for d in &o.report.diagnostics {
                eprintln!("       {d}");
            }
            if verbose && o.report.diagnostics.is_empty() {
                println!("       {}", o.report);
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if errors > 0 {
        fail(&format!(
            "{errors} design-rule error(s), {warnings} warning(s) across {} topologies",
            outcomes.len()
        ));
    }
    println!(
        "figures drc OK: {} topologies clean across {} target(s), {warnings} warning(s) \
         ({elapsed:.2} s)",
        outcomes.len(),
        targets.len()
    );
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_kind(s: &str) -> SystemKind {
    match s {
        "base" => SystemKind::Base,
        "pack" => SystemKind::Pack,
        "ideal" => SystemKind::Ideal,
        _ => usage(),
    }
}

fn cmd_sweep(c: &Common) {
    let mut kernels: Vec<String> = Vec::new();
    let mut kinds: Vec<SystemKind> = Vec::new();
    let mut buses: Vec<u32> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    let mut ews: Vec<String> = Vec::new();
    let mut idxs: Vec<String> = Vec::new();
    let mut strides: Vec<i32> = Vec::new();
    let mut banks: Vec<usize> = Vec::new();
    let mut bursts = 1usize;
    let mut fixed = KernelPoint::default();
    let mut it = c.rest.clone().into_iter();
    let parse_list = |v: String| -> Vec<String> { split_list(&v) };
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--kernel" => kernels = parse_list(val()),
            "--backend" => kinds = parse_list(val()).iter().map(|s| parse_kind(s)).collect(),
            "--bus" => {
                buses = parse_list(val())
                    .iter()
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--size" => {
                sizes = parse_list(val())
                    .iter()
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--ew" => ews = parse_list(val()),
            "--idx" => idxs = parse_list(val()),
            "--stride" => {
                strides = parse_list(val())
                    .iter()
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--banks" => {
                banks = parse_list(val())
                    .iter()
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--bursts" => bursts = val().parse().unwrap_or_else(|_| usage()),
            "--nnz" => fixed.nnz = val().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => fixed.queue_depth = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => fixed.seed = val().parse().unwrap_or_else(|_| usage()),
            "--dataflow" => {
                fixed.dataflow = match val().as_str() {
                    "row" => Dataflow::RowWise,
                    "col" => Dataflow::ColWise,
                    _ => usage(),
                }
            }
            other => fail(&format!("unknown sweep flag {other}")),
        }
    }
    if c.cache.shard.is_some() || c.cache.resume || c.cache.budget.is_some() {
        fail("`sweep` takes --no-cache/--cache-dir/--verify-cache only; --shard/--resume/--shard-budget apply to figure families");
    }
    let rc = install_cache(c, "sweep");
    let t0 = Instant::now();
    let table = if !ews.is_empty() {
        if !kernels.is_empty() {
            fail("--kernel and --ew select different sweep families; pick one");
        }
        if !idxs.is_empty() && !strides.is_empty() {
            fail("--idx (indirect grid) and --stride (strided grid) are exclusive; pick one");
        }
        let spec = UtilSweep {
            elems: ews
                .iter()
                .map(|s| parse_elem(s).unwrap_or_else(|e| fail(&e)))
                .collect(),
            idxs: idxs
                .iter()
                .map(|s| parse_idx(s).unwrap_or_else(|e| fail(&e)))
                .collect(),
            strides: if strides.is_empty() && idxs.is_empty() {
                (0..8).collect() // a default handful of strides
            } else {
                strides
            },
            banks: if banks.is_empty() { vec![17] } else { banks },
            bursts,
            seed: fixed.seed,
        };
        util_sweep(&spec)
    } else {
        if kernels.is_empty() {
            fail("sweep needs --kernel (kernel grid) or --ew (utilization grid)");
        }
        let spec = KernelSweep {
            kernels,
            kinds: if kinds.is_empty() {
                vec![SystemKind::Base, SystemKind::Pack]
            } else {
                kinds
            },
            buses: if buses.is_empty() { vec![256] } else { buses },
            sizes: if sizes.is_empty() {
                vec![fixed.size]
            } else {
                sizes
            },
            banks: if banks.is_empty() {
                vec![fixed.banks]
            } else {
                banks
            },
            fixed,
        };
        kernel_sweep(&spec).unwrap_or_else(|e| fail(&e))
    };
    print_tables("Custom sweep", std::slice::from_ref(&table));
    println!(
        "\n[{} points, {:.2} s on {} worker thread(s)]",
        table.rows.len(),
        t0.elapsed().as_secs_f64(),
        simkit::sweep::thread_count(None)
    );
    emit(c, "sweep", &[table]);
    finish_cache(rc);
}

fn cmd_kernel(c: &Common) {
    let mut p = KernelPoint::default();
    let mut it = c.rest.clone().into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--kernel" => p.kernel = val(),
            "--system" => p.kind = parse_kind(&val()),
            "--bus" => p.bus_bits = val().parse().unwrap_or_else(|_| usage()),
            "--banks" => p.banks = val().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => p.queue_depth = val().parse().unwrap_or_else(|_| usage()),
            "--size" => p.size = val().parse().unwrap_or_else(|_| usage()),
            "--nnz" => p.nnz = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => p.seed = val().parse().unwrap_or_else(|_| usage()),
            "--mtx" => p.mtx_path = Some(val()),
            "--dataflow" => {
                p.dataflow = match val().as_str() {
                    "row" => Dataflow::RowWise,
                    "col" => Dataflow::ColWise,
                    _ => usage(),
                }
            }
            other => fail(&format!("unknown kernel flag {other}")),
        }
    }
    if !KERNEL_NAMES.contains(&p.kernel.as_str()) {
        fail(&format!(
            "unknown kernel {} (expected one of {})",
            p.kernel,
            KERNEL_NAMES.join("/")
        ));
    }
    if c.cache.shard.is_some() || c.cache.resume || c.cache.budget.is_some() {
        fail("`kernel` takes --no-cache/--cache-dir/--verify-cache only; --shard/--resume/--shard-budget apply to figure families");
    }
    let (cfg, kernel) = p.build().unwrap_or_else(|e| fail(&e));
    let rc = install_cache(c, "kernel");
    match axi_pack::run_kernel(&cfg, &kernel) {
        Ok(report) => {
            println!("{report}");
            println!(
                "  bank conflicts: {}, useful bytes: {}, energy: {:.2} uJ",
                report.bank_conflicts, kernel.useful_bytes, report.energy_uj
            );
            if rc.as_ref().is_some_and(|r| r.hits() > 0) {
                println!(
                    "  report served from the result cache (scalar check ran when first computed)"
                );
            } else {
                println!("  functional result verified against the scalar reference");
            }
            finish_cache(rc);
        }
        Err(e) => fail(&format!("run failed: {e}")),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let sub = args.remove(0);
    let c = parse_common(args);
    // One tested dispatch table (axi_pack_bench::cli) decides what a name
    // means; anything unknown fails loudly with a non-zero exit.
    match resolve(&sub) {
        Dispatch::List => {
            if let Some(stray) = c.rest.first() {
                fail(&format!("unknown flag {stray} for `list`"));
            }
            for f in figures::FIGURES {
                println!("{:10} {}", f.name, f.title);
            }
            println!("{:10} everything -> EXPERIMENTS.md + CSV/JSON", "all");
            println!("{:10} perf baseline -> BENCH_hotpath.json", "bench");
            println!("{:10} ad-hoc cartesian sweep", "sweep");
            println!("{:10} one kernel, full report", "kernel");
            println!("{:10} randomized differential engine", "fuzz");
            println!("{:10} differential fuzzing under injected faults", "chaos");
            println!("{:10} static design-rule check of the in-tree grids", "drc");
        }
        Dispatch::All => cmd_all(&c),
        Dispatch::Bench => cmd_bench(&c),
        Dispatch::Sweep => cmd_sweep(&c),
        Dispatch::Kernel => cmd_kernel(&c),
        Dispatch::Fuzz => cmd_fuzz(&c),
        Dispatch::Chaos => cmd_chaos(&c),
        Dispatch::Drc => cmd_drc(&c),
        Dispatch::Figure(fig) => cmd_figure(fig, &c),
        Dispatch::Unknown => {
            eprintln!(
                "figures: unknown subcommand `{sub}` (run `figures list` for the families)\n"
            );
            usage();
        }
    }
}
