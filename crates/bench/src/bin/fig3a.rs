//! Regenerates paper Fig. 3a: speedups over BASE and R-bus utilizations
//! for all six workloads on the 256-bit systems.

use axi_pack_bench::fig3::fig3a;
use axi_pack_bench::table::{f, markdown, pct};
use axi_pack_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let runs = fig3a(scale);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.base.cycles.to_string(),
                r.pack.cycles.to_string(),
                r.ideal.cycles.to_string(),
                f(r.pack_speedup(), 2),
                f(r.ideal_speedup(), 2),
                pct(r.pack.r_util),
                pct(r.pack.r_util_no_idx),
                pct(r.base.r_util),
            ]
        })
        .collect();
    println!("Fig. 3a — speedups and R-bus utilizations ({scale:?} scale)\n");
    println!(
        "{}",
        markdown(
            &[
                "kernel",
                "base cyc",
                "pack cyc",
                "ideal cyc",
                "pack speedup",
                "ideal speedup",
                "pack R util",
                "pack R util (no idx)",
                "base R util",
            ],
            &rows
        )
    );
    let avg: f64 = runs.iter().map(|r| r.pack_vs_ideal()).sum::<f64>() / runs.len() as f64;
    println!(
        "\npack achieves {:.1}% of ideal performance on average",
        100.0 * avg
    );
}
