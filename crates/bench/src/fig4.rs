//! Area, timing and energy figures (paper Fig. 4a–4c).

use hwmodel::area::AdapterParams;
use hwmodel::timing;

use crate::fig3::{fig3a, KernelRuns};
use crate::Scale;

/// One point of the area-versus-clock curve (Fig. 4a).
#[derive(Debug, Clone, Copy)]
pub struct AreaTimingPoint {
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Clock period constraint in ps.
    pub period_ps: f64,
    /// Adapter area in kGE, `None` if infeasible.
    pub area_kge: Option<f64>,
}

/// Fig. 4a: adapter area versus clock constraint for 64/128/256-bit buses,
/// plus each width's minimum achievable period.
pub fn fig4a() -> (Vec<AreaTimingPoint>, Vec<(u32, f64)>) {
    let periods = [850.0, 1000.0, 1250.0, 1500.0, 2000.0, 2500.0, 3000.0];
    let mut points = Vec::new();
    let mut minima = Vec::new();
    for bus_bits in [64u32, 128, 256] {
        let params = AdapterParams {
            bus_bits,
            ..AdapterParams::paper_default()
        };
        minima.push((bus_bits, timing::min_period_ps(bus_bits)));
        for &period_ps in &periods {
            points.push(AreaTimingPoint {
                bus_bits,
                period_ps,
                area_kge: timing::area_at_period_kge(&params, period_ps),
            });
        }
    }
    (points, minima)
}

/// Fig. 4b: the 256-bit adapter's area breakdown, `(component, kGE,
/// share)` rows.
pub fn fig4b() -> Vec<(&'static str, f64, f64)> {
    let params = AdapterParams::paper_default();
    let total = params.total_kge();
    params
        .breakdown()
        .into_iter()
        .map(|(name, kge)| (name, kge, kge / total))
        .collect()
}

/// One benchmark's power/energy comparison (Fig. 4c).
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Kernel name.
    pub name: String,
    /// BASE average power, mW.
    pub base_mw: f64,
    /// PACK average power, mW.
    pub pack_mw: f64,
    /// Energy-efficiency improvement of PACK over BASE.
    pub improvement: f64,
}

/// Fig. 4c: benchmark powers and energy-efficiency improvements, derived
/// from the same runs as Fig. 3a.
pub fn fig4c(scale: Scale) -> Vec<EnergyRow> {
    fig3a(scale).iter().map(energy_row).collect()
}

/// Converts one kernel's runs into an energy comparison row.
pub fn energy_row(runs: &KernelRuns) -> EnergyRow {
    EnergyRow {
        name: runs.name.clone(),
        base_mw: runs.base.power_mw,
        pack_mw: runs.pack.power_mw,
        improvement: runs.pack.efficiency_over(&runs.base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_curves_are_monotone_per_width() {
        let (points, minima) = fig4a();
        for bus in [64u32, 128, 256] {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.bus_bits == bus)
                .filter_map(|p| p.area_kge)
                .collect();
            assert!(series.len() >= 6, "{bus}-bit series too short");
            for w in series.windows(2) {
                assert!(w[1] < w[0], "{bus}-bit area must fall as clock relaxes");
            }
        }
        assert_eq!(minima.len(), 3);
        assert!(minima[0].1 < minima[2].1, "wider bus, longer critical path");
    }

    #[test]
    fn fig4b_shares_sum_to_one() {
        let rows = fig4b();
        let total: f64 = rows.iter().map(|(_, _, share)| share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Indirect converters dominate, as in the paper (29% + 28%).
        let indir: f64 = rows
            .iter()
            .filter(|(n, _, _)| n.starts_with("indir"))
            .map(|(_, _, s)| s)
            .sum();
        assert!((0.4..0.7).contains(&indir), "indirect share {indir:.2}");
    }

    #[test]
    fn fig4c_smoke_improves_efficiency_everywhere() {
        for row in fig4c(Scale::Smoke) {
            // At smoke scale the graph kernels barely speed up, so the
            // efficiency gain can sit at ~1.0; it must never regress
            // materially. Paper-scale gains are checked in the
            // performance-shape integration tests.
            assert!(
                row.improvement > 0.9,
                "{}: efficiency must not regress ({:.2})",
                row.name,
                row.improvement
            );
            assert!(
                row.pack_mw < 2.0 * row.base_mw,
                "{}: pack power out of band",
                row.name
            );
        }
    }
}
