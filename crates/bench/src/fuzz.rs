//! `figures fuzz` — the CLI face of the randomized differential engine.
//!
//! Fans a window of seeds across the sweep workers (each seed is an
//! independent [`axi_pack::differential::check_seed`] run), collects
//! failures, optionally shrinks them ([`axi_pack::differential::minimize`])
//! and renders each as a one-line repro command. CI runs a small window on
//! every PR (`fuzz-smoke`) and a large one nightly; the checked-in
//! regression corpus replays with `--corpus`.

use std::time::Instant;

use axi_pack::differential::{check_seed, minimize, repro_command, SeedOutcome};
use simkit::SweepSpec;
use workloads::synth::SynthConfig;

/// What to fuzz: a seed window plus generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzSpec {
    /// First seed of the window.
    pub seed_start: u64,
    /// Number of consecutive seeds.
    pub count: usize,
    /// Generator configuration every seed runs at.
    pub cfg: SynthConfig,
    /// Shrink failing seeds down the halving ladder before reporting.
    pub minimize: bool,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            seed_start: 0,
            count: 64,
            cfg: SynthConfig::default(),
            minimize: false,
        }
    }
}

/// One failing seed, ready to print.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// The first differential check that failed.
    pub error: String,
    /// Smallest still-failing configuration and its error, when
    /// minimization ran and the failure reproduces under shrinking.
    pub minimized: Option<(SynthConfig, String)>,
}

impl FuzzFailure {
    /// The one-line repro command (of the minimized config if present).
    pub fn repro(&self, base: &SynthConfig) -> String {
        match &self.minimized {
            Some((cfg, _)) => repro_command(self.seed, cfg),
            None => repro_command(self.seed, base),
        }
    }
}

/// Aggregate result of one fuzz window.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Seeds that passed every check.
    pub passed: usize,
    /// Total individual assertions across all passing seeds.
    pub checks: u64,
    /// Total simulated cycles across all passing seeds.
    pub cycles: u64,
    /// Failing seeds, in seed order.
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock of the window in seconds.
    pub elapsed_s: f64,
    /// Seeds fully checked per host second (the throughput the
    /// `BENCH_hotpath.json` probe tracks).
    pub scenarios_per_sec: f64,
}

/// Runs a fuzz window, fanning seeds across the sweep worker threads.
pub fn run_fuzz(spec: &FuzzSpec) -> FuzzSummary {
    let seeds: Vec<u64> = (0..spec.count as u64)
        .map(|i| spec.seed_start + i)
        .collect();
    let t0 = Instant::now();
    let results: Vec<Result<SeedOutcome, (u64, String)>> = SweepSpec::over(seeds)
        .run(|_ctx, &seed| check_seed(seed, &spec.cfg).map_err(|e| (seed, e)));
    let elapsed = t0.elapsed().as_secs_f64();
    let mut summary = FuzzSummary {
        passed: 0,
        checks: 0,
        cycles: 0,
        failures: Vec::new(),
        elapsed_s: elapsed,
        scenarios_per_sec: spec.count as f64 / elapsed.max(1e-9),
    };
    for r in results {
        match r {
            Ok(out) => {
                summary.passed += 1;
                summary.checks += out.checks;
                summary.cycles += out.cycles;
            }
            Err((seed, error)) => {
                // Shrinking re-runs the seed serially; failures are rare,
                // so the cost sits outside the hot path.
                let minimized = spec.minimize.then(|| minimize(seed, &spec.cfg)).flatten();
                summary.failures.push(FuzzFailure {
                    seed,
                    error,
                    minimized,
                });
            }
        }
    }
    summary
}

/// Throughput probe for `BENCH_hotpath.json`: fully-checked fuzz
/// scenarios per host second over a fixed serial window (thread-count
/// independent so the number is comparable across hosts and runs).
pub fn fuzz_scenarios_per_sec() -> f64 {
    let cfg = SynthConfig::default();
    let probe_seeds = 12u64;
    // Warm-up one seed (first-touch allocations), then time the window.
    check_seed(0, &cfg).expect("probe seed 0 passes");
    let t0 = Instant::now();
    for seed in 0..probe_seeds {
        check_seed(seed, &cfg).expect("probe seeds pass");
    }
    probe_seeds as f64 / t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_window_passes_and_counts() {
        let s = run_fuzz(&FuzzSpec {
            count: 4,
            ..FuzzSpec::default()
        });
        assert_eq!(s.passed, 4);
        assert!(s.failures.is_empty());
        assert!(s.checks > 0 && s.cycles > 0);
        assert!(s.scenarios_per_sec > 0.0);
    }

    #[test]
    fn corpus_replays_clean() {
        // `axi_pack::differential::replay_corpus` is the single corpus
        // entry point shared by this CLI and the tier-1 test.
        let cases = axi_pack::differential::replay_corpus().expect("corpus green");
        assert!(cases >= 10, "corpus shrank suspiciously");
    }
}
