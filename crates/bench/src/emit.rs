//! Machine-readable figure output: a [`Table`] of cells rendered as
//! markdown (via [`crate::table`]), CSV, or JSON, and written next to the
//! human-readable tables by the `figures` CLI.

use std::path::{Path, PathBuf};

/// One figure's tabular data: a header plus rows of stringified cells.
///
/// Every figure formatter produces `Table`s; the three renderers
/// ([`Table::to_markdown`], [`Table::to_csv`], [`Table::to_json`]) are then
/// guaranteed to agree on the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows; every row has `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table from a static header and stringified rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the header's.
    pub fn new(header: &[&str], rows: Vec<Vec<String>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), header.len(), "ragged table row");
        }
        Table {
            header: header.iter().map(|h| (*h).into()).collect(),
            rows,
        }
    }

    /// Renders the table as an aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        crate::table::markdown(&header, &self.rows)
    }

    /// Renders the table as RFC-4180-style CSV (quotes cells containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.header);
        for row in &self.rows {
            push_row(row);
        }
        out
    }

    /// Renders the table as a JSON array of objects keyed by header.
    ///
    /// Cells that parse as numbers are emitted as JSON numbers; `%` cells
    /// and everything else stay strings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (key, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(key), json_value(cell)));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }
}

fn csv_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(cell: &str) -> String {
    // Bare numbers become JSON numbers; anything else (percentages,
    // "infeasible", names) stays a string.
    if cell.parse::<i64>().is_ok() {
        return cell.to_string();
    }
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => cell.to_string(),
        _ => json_string(cell),
    }
}

/// Writes one figure's CSV and JSON files into `dir`, creating it if
/// needed. Multi-table figures get `-2`, `-3`, … suffixes.
///
/// Returns the written paths.
pub fn write_files(dir: &Path, figure: &str, tables: &[Table]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (i, table) in tables.iter().enumerate() {
        let stem = if i == 0 {
            figure.to_string()
        } else {
            format!("{figure}-{}", i + 1)
        };
        for (ext, contents) in [("csv", table.to_csv()), ("json", table.to_json())] {
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::write(&path, contents)?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            &["kernel", "speedup", "note"],
            vec![
                vec!["ismt".into(), "5.40".into(), "strided, fast".into()],
                vec!["spmv".into(), "2.40".into(), "say \"hi\"".into()],
            ],
        )
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kernel,speedup,note");
        assert_eq!(lines[1], "ismt,5.40,\"strided, fast\"");
        assert_eq!(lines[2], "spmv,2.40,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_types_cells() {
        let json = sample().to_json();
        assert!(json.contains("\"kernel\": \"ismt\""));
        assert!(json.contains("\"speedup\": 5.40"), "{json}");
        assert!(json.contains("say \\\"hi\\\""));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Table::new(&["a", "b"], vec![vec!["1".into()]]);
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir().join("axi-pack-emit-test");
        let written = write_files(&dir, "figx", &[sample(), sample()]).expect("write");
        assert_eq!(written.len(), 4);
        assert!(dir.join("figx.csv").exists());
        assert!(dir.join("figx-2.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
