//! The tracked perf baseline: `figures bench`.
//!
//! Times every figure family's render at a given [`Scale`], measures
//! simulator throughput (simulated cycles per host second) on a
//! representative kernel, and emits the results as machine-readable JSON
//! (`BENCH_hotpath.json`). The committed file carries two measurement
//! sets:
//!
//! * `pre_pr_*` — the suite timed *before* the allocation-free data-plane
//!   rework landed (the pre-PR baseline, preserved verbatim on rewrite);
//! * `total_s` / `families` / `cycles_per_sec` — the current measurement.
//!
//! CI runs `figures bench --smoke --check`, which re-measures and fails
//! if the wall-clock regresses more than [`MAX_REGRESSION`] against the
//! committed current baseline — so future PRs regress against numbers,
//! not vibes. Criterion microbenches of the same hot paths live in
//! `benches/hotpath.rs`.

use std::fmt::Write as _;
use std::time::Instant;

use axi_pack::{run_kernel, SystemConfig};
use vproc::SystemKind;
use workloads::ismt;

use crate::{figures, Scale};

/// Allowed wall-clock regression before `--check` fails (fraction of the
/// committed baseline: 0.25 = 25 %).
pub const MAX_REGRESSION: f64 = 0.25;

/// One bench run: per-family wall-clocks plus aggregate metrics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `(family name, seconds)` per figure family, in registry order.
    pub families: Vec<(&'static str, f64)>,
    /// Sum of the family wall-clocks (the "smoke suite" time).
    pub total_s: f64,
    /// Simulated cycles per host second on the throughput probe kernel.
    pub cycles_per_sec: f64,
    /// Fully-checked differential fuzz scenarios per host second
    /// ([`crate::fuzz::fuzz_scenarios_per_sec`]), so generator/runner
    /// throughput is tracked alongside the figure families.
    pub fuzz_scenarios_per_sec: f64,
}

/// Renders every figure family once at `scale`, timing each, then runs
/// the throughput probe (a PACK ismt kernel at the scale's dense dim).
pub fn run(scale: Scale) -> BenchResult {
    let mut families = Vec::with_capacity(figures::FIGURES.len());
    let mut total = 0.0;
    for fig in figures::FIGURES {
        let t0 = Instant::now();
        let tables = (fig.render)(scale);
        let dt = t0.elapsed().as_secs_f64();
        assert!(!tables.is_empty(), "{} rendered no tables", fig.name);
        families.push((fig.name, dt));
        total += dt;
    }
    BenchResult {
        families,
        total_s: total,
        cycles_per_sec: cycles_per_sec_probe(scale),
        fuzz_scenarios_per_sec: crate::fuzz::fuzz_scenarios_per_sec(),
    }
}

/// Measures simulated cycles per host second on one representative
/// full-system run (PACK ismt — exercises engine, converters, and banks).
pub fn cycles_per_sec_probe(scale: Scale) -> f64 {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = ismt::build(scale.dense_dim(), 1, &cfg.kernel_params());
    // One warm-up, then time a few repetitions.
    let warm = run_kernel(&cfg, &kernel).expect("probe kernel verifies");
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        run_kernel(&cfg, &kernel).expect("probe kernel verifies");
    }
    let dt = t0.elapsed().as_secs_f64();
    (warm.cycles * reps as u64) as f64 / dt
}

/// Serializes a measurement (plus the preserved pre-PR baseline, if any)
/// as the `BENCH_hotpath.json` document.
pub fn to_json(scale: Scale, result: &BenchResult, pre_pr: Option<&str>) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "{{").unwrap();
    writeln!(w, "  \"scale\": \"{scale:?}\",").unwrap();
    if let Some(pre) = pre_pr {
        // Preserve the committed pre-PR section verbatim.
        writeln!(w, "{pre}").unwrap();
    }
    writeln!(w, "  \"families\": {{").unwrap();
    for (i, (name, secs)) in result.families.iter().enumerate() {
        let comma = if i + 1 == result.families.len() {
            ""
        } else {
            ","
        };
        writeln!(w, "    \"{name}\": {secs:.4}{comma}").unwrap();
    }
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"total_s\": {:.4},", result.total_s).unwrap();
    writeln!(w, "  \"cycles_per_sec\": {:.0},", result.cycles_per_sec).unwrap();
    writeln!(
        w,
        "  \"fuzz_scenarios_per_sec\": {:.1},",
        result.fuzz_scenarios_per_sec
    )
    .unwrap();
    let speedup = parse_number(pre_pr.unwrap_or(""), "pre_pr_total_s")
        .map(|pre| pre / result.total_s)
        .unwrap_or(1.0);
    writeln!(w, "  \"speedup_vs_pre_pr\": {speedup:.2}").unwrap();
    writeln!(w, "}}").unwrap();
    out
}

/// Extracts the `"pre_pr_*"` lines of an existing `BENCH_hotpath.json`,
/// so a re-measurement never loses the original baseline.
pub fn pre_pr_section(json: &str) -> Option<String> {
    let lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("\"pre_pr_"))
        .collect();
    if lines.is_empty() {
        None
    } else {
        Some(lines.join("\n"))
    }
}

/// Extracts a top-level string field (`"key": "value"`) from the
/// document — used to refuse comparing measurements taken at different
/// [`Scale`]s.
pub fn parse_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a top-level numeric field (`"key": 1.23`) from the document.
/// Hand-rolled on purpose: the workspace vendors no JSON parser, and the
/// file format is our own.
pub fn parse_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_totals() {
        let r = BenchResult {
            families: vec![("fig3a", 0.07), ("fig5b", 0.92)],
            total_s: 0.99,
            cycles_per_sec: 123456.0,
            fuzz_scenarios_per_sec: 42.5,
        };
        let json = to_json(Scale::Smoke, &r, Some("  \"pre_pr_total_s\": 1.24,"));
        assert_eq!(parse_number(&json, "total_s"), Some(0.99));
        assert_eq!(parse_number(&json, "fuzz_scenarios_per_sec"), Some(42.5));
        assert_eq!(parse_number(&json, "pre_pr_total_s"), Some(1.24));
        let speedup = parse_number(&json, "speedup_vs_pre_pr").unwrap();
        assert!((speedup - 1.24 / 0.99).abs() < 0.01);
        assert_eq!(
            pre_pr_section(&json).as_deref(),
            Some("  \"pre_pr_total_s\": 1.24,")
        );
    }

    #[test]
    fn missing_fields_parse_to_none() {
        assert_eq!(parse_number("{}", "total_s"), None);
        assert_eq!(pre_pr_section("{}"), None);
        assert_eq!(parse_string("{}", "scale"), None);
    }

    #[test]
    fn scale_field_roundtrips() {
        let r = BenchResult {
            families: vec![("fig3a", 0.07)],
            total_s: 0.07,
            cycles_per_sec: 1.0,
            fuzz_scenarios_per_sec: 1.0,
        };
        let json = to_json(Scale::Smoke, &r, None);
        assert_eq!(parse_string(&json, "scale").as_deref(), Some("Smoke"));
    }
}
