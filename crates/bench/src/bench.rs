//! The tracked perf baseline: `figures bench`.
//!
//! Times every figure family's render at a given [`Scale`], measures
//! simulator throughput (simulated cycles per host second) on a
//! representative kernel, and emits the results as machine-readable JSON
//! (`BENCH_hotpath.json`). The committed file carries two measurement
//! sets:
//!
//! * `pre_pr_*` — the suite timed *before* the allocation-free data-plane
//!   rework landed (the pre-PR baseline, preserved verbatim on rewrite);
//! * `total_s` / `families` / `cycles_per_sec` — the current measurement.
//!
//! CI runs `figures bench --smoke --check`, which re-measures and fails
//! if the wall-clock regresses more than [`MAX_REGRESSION`] against the
//! committed current baseline — so future PRs regress against numbers,
//! not vibes. Criterion microbenches of the same hot paths live in
//! `benches/hotpath.rs`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use axi_pack::{run_kernel, CacheSetup, SchedMode, SystemConfig};
use vproc::{ProgramBuilder, SystemKind};
use workloads::{ismt, Kernel};

use crate::{figures, Scale};

/// Allowed wall-clock regression before `--check` fails (fraction of the
/// committed baseline: 0.25 = 25 %).
pub const MAX_REGRESSION: f64 = 0.25;

/// Minimum event-over-lockstep speedup the sparse probe must show for
/// `--check` to pass. A same-host ratio, so it holds across machines;
/// the measured value sits well above this floor.
pub const SPARSE_SPEEDUP_FLOOR: f64 = 3.0;

/// Minimum warm-over-cold speedup the result-cache probe must show for
/// `--check` to pass. Same-host ratio like the sparse floor; a warm
/// render pays only key hashing + blob decoding, so the measured value
/// sits far above this collapse detector.
pub const CACHE_WARM_SPEEDUP_FLOOR: f64 = 3.0;

/// Maximum relative slowdown the *armed-but-silent* fault hooks may
/// cost over the no-spec hot path for `--check` to pass. Same-host
/// ratio measured back-to-back, so it is not widened by the wall-clock
/// tolerance: the fault-free figure path is the product, and its hooks
/// must stay within this budget.
pub const FAULT_OVERHEAD_LIMIT: f64 = 0.05;

/// One bench run: per-family wall-clocks plus aggregate metrics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `(family name, seconds)` per figure family, in registry order.
    pub families: Vec<(&'static str, f64)>,
    /// Sum of the family wall-clocks (the "smoke suite" time).
    pub total_s: f64,
    /// Simulated cycles per host second on the dense throughput probe
    /// (PACK ismt, event scheduler).
    pub cycles_per_sec: f64,
    /// The dense probe forced into lockstep mode — the floor the event
    /// scheduler must never fall below.
    pub cycles_per_sec_lockstep: f64,
    /// Simulated cycles per host second on the sparse/stall-heavy probe
    /// (a scalar-bound PACK row loop, event scheduler) — the shape
    /// idle-span fast-forwarding targets.
    pub sparse_cycles_per_sec: f64,
    /// The sparse probe in lockstep mode.
    pub sparse_cycles_per_sec_lockstep: f64,
    /// Fully-checked differential fuzz scenarios per host second
    /// ([`crate::fuzz::fuzz_scenarios_per_sec`]), so generator/runner
    /// throughput is tracked alongside the figure families.
    ///
    /// History note: this fell ~250 → ~177 between PR 5 and PR 7. That
    /// was not decay in the hot path — PR 7's scheduler oracle (check 5
    /// of the differential engine) replays every solo run of every seed
    /// *and* the 2-requestor topology a second time in lockstep mode,
    /// roughly doubling the simulated work each scenario buys. The
    /// baseline was re-based at the deeper coverage and the field is
    /// now gated by `figures bench --check` so any further drop is a
    /// loud failure, not a silent one.
    pub fuzz_scenarios_per_sec: f64,
    /// Wall-clock of one representative figure family (fig3a) rendered
    /// against a fresh, empty result cache — the cold serving path.
    pub cache_cold_s: f64,
    /// The same family re-rendered immediately after, served entirely
    /// from the cache — the warm serving path.
    pub cache_warm_s: f64,
    /// Relative cost of arming a silent fault plan plus the progress
    /// watchdog on the dense probe ([`fault_overhead_probe`]): 0.01 =
    /// the hooks cost 1 % of the fault-free throughput. Clamped at 0.
    pub fault_overhead: f64,
    /// Wall-clock of one 128-requestor PACK gemv run on the hierarchical
    /// fabric ([`scale_128_probe`]) — the deepest topology the fabric
    /// builds, timing mux cascades, channel interleaving and the
    /// row-buffer model together.
    pub scale_128_requestors_s: f64,
}

impl BenchResult {
    /// Event-over-lockstep simulator throughput on the sparse probe —
    /// the headline gain of the readiness/wakeup scheduler.
    pub fn sparse_event_speedup(&self) -> f64 {
        self.sparse_cycles_per_sec / self.sparse_cycles_per_sec_lockstep
    }

    /// Warm-over-cold speedup of the result-cache probe — the headline
    /// gain of the serving layer.
    pub fn cache_warm_speedup(&self) -> f64 {
        self.cache_cold_s / self.cache_warm_s
    }
}

/// Renders every figure family once at `scale`, timing each, then runs
/// the throughput probe (a PACK ismt kernel at the scale's dense dim).
pub fn run(scale: Scale) -> BenchResult {
    let mut families = Vec::with_capacity(figures::FIGURES.len());
    let mut total = 0.0;
    for fig in figures::FIGURES {
        let t0 = Instant::now();
        let tables = (fig.render)(scale);
        let dt = t0.elapsed().as_secs_f64();
        assert!(!tables.is_empty(), "{} rendered no tables", fig.name);
        families.push((fig.name, dt));
        total += dt;
    }
    let (cache_cold_s, cache_warm_s) = cache_probe(scale);
    BenchResult {
        families,
        total_s: total,
        cycles_per_sec: cycles_per_sec_probe(scale, SchedMode::Event),
        cycles_per_sec_lockstep: cycles_per_sec_probe(scale, SchedMode::Lockstep),
        sparse_cycles_per_sec: sparse_cycles_per_sec_probe(scale, SchedMode::Event),
        sparse_cycles_per_sec_lockstep: sparse_cycles_per_sec_probe(scale, SchedMode::Lockstep),
        fuzz_scenarios_per_sec: crate::fuzz::fuzz_scenarios_per_sec(),
        cache_cold_s,
        cache_warm_s,
        fault_overhead: fault_overhead_probe(scale),
        scale_128_requestors_s: scale_128_probe(scale),
    }
}

/// Times one 128-requestor PACK point end to end (topology build +
/// fabric run), uncached: the figure-family loop above amortizes the
/// whole scale sweep into one number, while this probe isolates the
/// single deepest point — 128 leaves through a 3-level arity-4 mux
/// cascade onto four row-buffered channels.
pub fn scale_128_probe(scale: Scale) -> f64 {
    use axi_pack::{run_system, Requestor, Topology};
    use workloads::{gemv, Dataflow};
    let mut cfg = SystemConfig::with_bus(SystemKind::Pack, 256);
    cfg.max_cycles = 40_000_000;
    let params = cfg.kernel_params();
    let t0 = Instant::now();
    let requestors = (0..128).map(|slot| {
        Requestor::new(
            SystemKind::Pack,
            gemv::build(
                scale.scale_dim(),
                crate::SEED + slot as u64,
                Dataflow::ColWise,
                &params,
            ),
        )
    });
    let topo = Topology::builder(&cfg)
        .requestors(requestors)
        .fabric(crate::scale::fabric_for(128))
        .build()
        .expect("128-requestor probe is DRC-clean");
    run_system(&topo).expect("128-requestor probe verifies");
    t0.elapsed().as_secs_f64()
}

/// Measures what the robustness layer costs when it is *not* in use:
/// the dense probe runs fault-free, then again with a silent fault plan
/// (every site schedule disabled, hooks armed) plus an unreachable
/// progress-watchdog window. The two runs are simulated-cycle
/// identical, so the throughput ratio isolates the per-access fault
/// branches and the per-cycle progress-signature read. `--check` fails
/// if the hooks cost more than [`FAULT_OVERHEAD_LIMIT`].
///
/// The hooks cost ~2%, close enough to host scheduling noise that one
/// paired sample flaps: the probe interleaves three plain/hooked pairs
/// and keeps the smallest ratio — noise only ever inflates a sample,
/// so the minimum is the honest estimate of the structural cost.
pub fn fault_overhead_probe(scale: Scale) -> f64 {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = ismt::build(scale.dense_dim(), 1, &cfg.kernel_params());
    let mut armed = cfg;
    armed.fault = Some(simkit::fault::FaultSpec::silent(0));
    armed.watchdog = u64::MAX;
    (0..3)
        .map(|_| {
            let plain = probe(&cfg, &kernel);
            let hooked = probe(&armed, &kernel);
            plain / hooked - 1.0
        })
        .fold(f64::INFINITY, f64::min)
        .max(0.0)
}

/// Times one representative figure family (fig3a) cold then warm
/// against a private throwaway cache directory. The family-timing loop
/// above runs uncached (no cache is installed during `figures bench`),
/// so `total_s` keeps measuring the simulator, not the cache; this
/// probe measures the serving layer explicitly and asserts the warm
/// tables are identical to the cold ones.
pub fn cache_probe(scale: Scale) -> (f64, f64) {
    let dir = std::env::temp_dir().join(format!("axi-pack-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fig = figures::find("fig3a").expect("fig3a is registered");
    axi_pack::cache::install(&CacheSetup::new(&dir));
    let t0 = Instant::now();
    let cold = (fig.render)(scale);
    let cold_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm = (fig.render)(scale);
    let warm_s = t1.elapsed().as_secs_f64();
    axi_pack::cache::uninstall();
    assert_eq!(cold, warm, "warm cache render diverged from cold");
    let _ = std::fs::remove_dir_all(&dir);
    (cold_s, warm_s)
}

/// Times `kernel` on `cfg`: one warm-up, then a few repetitions, in
/// simulated cycles per host second.
fn probe(cfg: &SystemConfig, kernel: &Kernel) -> f64 {
    let warm = run_kernel(cfg, kernel).expect("probe kernel verifies");
    // Smoke-scale kernels finish in microseconds; repeat until enough
    // host time has passed that timer granularity and scheduling noise
    // wash out of the ratio.
    let t0 = Instant::now();
    let mut reps = 0u64;
    while reps < 3 || t0.elapsed().as_secs_f64() < 0.05 {
        run_kernel(cfg, kernel).expect("probe kernel verifies");
        reps += 1;
    }
    (warm.cycles * reps) as f64 / t0.elapsed().as_secs_f64()
}

/// Measures simulated cycles per host second on one representative dense
/// full-system run (PACK ismt — exercises engine, converters, and banks;
/// the bus is busy nearly every cycle, so `sched` barely matters here).
pub fn cycles_per_sec_probe(scale: Scale, sched: SchedMode) -> f64 {
    let mut cfg = SystemConfig::paper(SystemKind::Pack);
    cfg.sched = sched;
    probe(
        &cfg,
        &ismt::build(scale.dense_dim(), 1, &cfg.kernel_params()),
    )
}

/// Measures simulated cycles per host second on the sparse probe: a
/// scalar-bound row loop (the extreme short-stream regime of the paper's
/// Fig. 3d/3e, where scalar row bookkeeping dwarfs each row's vector
/// work). Every row pays a long scalar stall followed by one short load,
/// so nearly all cycles are provably idle — the shape the event
/// scheduler fast-forwards.
pub fn sparse_cycles_per_sec_probe(scale: Scale, sched: SchedMode) -> f64 {
    let mut cfg = SystemConfig::paper(SystemKind::Pack);
    cfg.sched = sched;
    let rows = scale.dense_dim();
    let mut b = ProgramBuilder::new().set_vl(16);
    for r in 0..rows {
        b = b
            .scalar(256)
            .vle(1 + (r % 8) as u8, 0x100 * (1 + (r % 16) as u64));
    }
    let kernel = Kernel {
        name: "sparse-row-loop".into(),
        image: Vec::new(),
        storage_size: 0x10000,
        program: Arc::new(b.build()),
        expected: Vec::new(),
        read_only_streams: true,
        useful_bytes: 0,
    };
    probe(&cfg, &kernel)
}

/// Serializes a measurement (plus the preserved pre-PR baseline, if any)
/// as the `BENCH_hotpath.json` document.
pub fn to_json(scale: Scale, result: &BenchResult, pre_pr: Option<&str>) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "{{").unwrap();
    writeln!(w, "  \"scale\": \"{scale:?}\",").unwrap();
    if let Some(pre) = pre_pr {
        // Preserve the committed pre-PR section verbatim.
        writeln!(w, "{pre}").unwrap();
    }
    writeln!(w, "  \"families\": {{").unwrap();
    for (i, (name, secs)) in result.families.iter().enumerate() {
        let comma = if i + 1 == result.families.len() {
            ""
        } else {
            ","
        };
        writeln!(w, "    \"{name}\": {secs:.4}{comma}").unwrap();
    }
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"total_s\": {:.4},", result.total_s).unwrap();
    writeln!(w, "  \"cycles_per_sec\": {:.0},", result.cycles_per_sec).unwrap();
    writeln!(
        w,
        "  \"cycles_per_sec_lockstep\": {:.0},",
        result.cycles_per_sec_lockstep
    )
    .unwrap();
    writeln!(
        w,
        "  \"sparse_cycles_per_sec\": {:.0},",
        result.sparse_cycles_per_sec
    )
    .unwrap();
    writeln!(
        w,
        "  \"sparse_cycles_per_sec_lockstep\": {:.0},",
        result.sparse_cycles_per_sec_lockstep
    )
    .unwrap();
    writeln!(
        w,
        "  \"sparse_event_speedup\": {:.2},",
        result.sparse_event_speedup()
    )
    .unwrap();
    writeln!(
        w,
        "  \"fuzz_scenarios_per_sec\": {:.1},",
        result.fuzz_scenarios_per_sec
    )
    .unwrap();
    writeln!(w, "  \"cache_cold_s\": {:.4},", result.cache_cold_s).unwrap();
    writeln!(w, "  \"cache_warm_s\": {:.4},", result.cache_warm_s).unwrap();
    writeln!(w, "  \"fault_overhead\": {:.4},", result.fault_overhead).unwrap();
    writeln!(
        w,
        "  \"scale_128_requestors_s\": {:.4},",
        result.scale_128_requestors_s
    )
    .unwrap();
    writeln!(
        w,
        "  \"cache_warm_speedup\": {:.1},",
        result.cache_warm_speedup()
    )
    .unwrap();
    let speedup = parse_number(pre_pr.unwrap_or(""), "pre_pr_total_s")
        .map(|pre| pre / result.total_s)
        .unwrap_or(1.0);
    writeln!(w, "  \"speedup_vs_pre_pr\": {speedup:.2}").unwrap();
    writeln!(w, "}}").unwrap();
    out
}

/// Extracts the `"pre_pr_*"` lines of an existing `BENCH_hotpath.json`,
/// so a re-measurement never loses the original baseline.
pub fn pre_pr_section(json: &str) -> Option<String> {
    let lines: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("\"pre_pr_"))
        .collect();
    if lines.is_empty() {
        None
    } else {
        Some(lines.join("\n"))
    }
}

/// Extracts a top-level string field (`"key": "value"`) from the
/// document — used to refuse comparing measurements taken at different
/// [`Scale`]s.
pub fn parse_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a top-level numeric field (`"key": 1.23`) from the document.
/// Hand-rolled on purpose: the workspace vendors no JSON parser, and the
/// file format is our own.
pub fn parse_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_totals() {
        let r = BenchResult {
            families: vec![("fig3a", 0.07), ("fig5b", 0.92)],
            total_s: 0.99,
            cycles_per_sec: 123456.0,
            cycles_per_sec_lockstep: 120000.0,
            sparse_cycles_per_sec: 400000.0,
            sparse_cycles_per_sec_lockstep: 100000.0,
            fuzz_scenarios_per_sec: 42.5,
            cache_cold_s: 0.08,
            cache_warm_s: 0.002,
            fault_overhead: 0.012,
            scale_128_requestors_s: 0.31,
        };
        let json = to_json(Scale::Smoke, &r, Some("  \"pre_pr_total_s\": 1.24,"));
        assert_eq!(parse_number(&json, "total_s"), Some(0.99));
        assert_eq!(parse_number(&json, "fuzz_scenarios_per_sec"), Some(42.5));
        assert_eq!(parse_number(&json, "cache_cold_s"), Some(0.08));
        assert_eq!(parse_number(&json, "cache_warm_s"), Some(0.002));
        assert_eq!(parse_number(&json, "fault_overhead"), Some(0.012));
        assert_eq!(parse_number(&json, "scale_128_requestors_s"), Some(0.31));
        assert_eq!(parse_number(&json, "cache_warm_speedup"), Some(40.0));
        // The exact key must not be confused with its prefixed variants.
        assert_eq!(parse_number(&json, "cycles_per_sec"), Some(123456.0));
        assert_eq!(
            parse_number(&json, "cycles_per_sec_lockstep"),
            Some(120000.0)
        );
        assert_eq!(parse_number(&json, "sparse_cycles_per_sec"), Some(400000.0));
        assert_eq!(parse_number(&json, "sparse_event_speedup"), Some(4.0));
        assert_eq!(parse_number(&json, "pre_pr_total_s"), Some(1.24));
        let speedup = parse_number(&json, "speedup_vs_pre_pr").unwrap();
        assert!((speedup - 1.24 / 0.99).abs() < 0.01);
        assert_eq!(
            pre_pr_section(&json).as_deref(),
            Some("  \"pre_pr_total_s\": 1.24,")
        );
    }

    #[test]
    fn missing_fields_parse_to_none() {
        assert_eq!(parse_number("{}", "total_s"), None);
        assert_eq!(pre_pr_section("{}"), None);
        assert_eq!(parse_string("{}", "scale"), None);
    }

    #[test]
    fn scale_field_roundtrips() {
        let r = BenchResult {
            families: vec![("fig3a", 0.07)],
            total_s: 0.07,
            cycles_per_sec: 1.0,
            cycles_per_sec_lockstep: 1.0,
            sparse_cycles_per_sec: 1.0,
            sparse_cycles_per_sec_lockstep: 1.0,
            fuzz_scenarios_per_sec: 1.0,
            cache_cold_s: 1.0,
            cache_warm_s: 1.0,
            fault_overhead: 0.0,
            scale_128_requestors_s: 1.0,
        };
        let json = to_json(Scale::Smoke, &r, None);
        assert_eq!(parse_string(&json, "scale").as_deref(), Some("Smoke"));
    }
}
