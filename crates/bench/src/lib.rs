//! `axi-pack-bench` — the figure-regeneration harness.
//!
//! One library function per figure of the paper's evaluation (Fig. 3a–3e,
//! 4a–4c, 5a–5c), each a [`simkit::SweepSpec`] grid whose points run in
//! parallel on the sweep engine and return structured rows. The [`figures`]
//! registry turns rows into tables (markdown + CSV + JSON via [`emit`]),
//! [`experiments`] renders the complete `EXPERIMENTS.md`, [`mod@bench`] tracks
//! the simulator's own wall-clock baseline (`figures bench` →
//! `BENCH_hotpath.json`), and the single
//! `figures` binary exposes it all as subcommands (`figures fig3a`,
//! `figures all`, `figures sweep …`, `figures kernel …`). Criterion
//! benches in `benches/` time the simulator itself on scaled-down versions
//! of the same scenarios.
//!
//! Absolute cycle counts come from this reproduction's simulator, not the
//! authors' RTL, so the comparison targets are the *shapes*: who wins, by
//! roughly what factor, and where the crossovers sit (see EXPERIMENTS.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod chaos;
pub mod cli;
pub mod contention;
pub mod drc;
pub mod emit;
pub mod experiments;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod figures;
pub mod fuzz;
pub mod scale;
pub mod sweeps;
pub mod table;

/// Problem-size preset for figure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for smoke tests and Criterion (seconds).
    Smoke,
    /// Paper-like inputs (matrix dimension 256, ≈390 nonzeros/row).
    Paper,
}

impl Scale {
    /// Dense matrix dimension for ismt/gemv/trmv.
    pub fn dense_dim(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 256,
        }
    }

    /// Rows of the sparse operands.
    pub fn sparse_rows(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 128,
        }
    }

    /// Average nonzeros per row of the spmv operand (paper: heart1 ≈ 390).
    pub fn spmv_nnz_per_row(&self) -> f64 {
        match self {
            Scale::Smoke => 24.0,
            Scale::Paper => 390.0,
        }
    }

    /// Nodes of the graph workloads. The paper runs all three indirect
    /// benchmarks on SuiteSparse's `heart1` (3557 nodes, ~390 nonzeros per
    /// row); this reproduction keeps the controlling nnz-per-row and trims
    /// the node count to bound simulation time.
    pub fn graph_nodes(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 512,
        }
    }

    /// Average degree of the graph workloads (heart1: ≈ 390).
    pub fn graph_degree(&self) -> f64 {
        match self {
            Scale::Smoke => 6.0,
            Scale::Paper => 390.0,
        }
    }

    /// Burst count of the Fig. 5a indirect-utilization sweep.
    ///
    /// These per-figure burst defaults used to be duplicated across the
    /// figure binaries; they live here so every entry point agrees.
    pub fn fig5a_bursts(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Paper => 3,
        }
    }

    /// Burst count of the Fig. 5b strided-utilization sweep.
    pub fn fig5b_bursts(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Paper => 2,
        }
    }

    /// Burst count of the ablation sweeps (queue depth, stage policy).
    pub fn ablation_bursts(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Paper => 2,
        }
    }

    /// Dense dimension of the contention family's strided requestors
    /// (kept below `dense_dim` — up to four copies share one bus).
    pub fn contention_dim(&self) -> usize {
        match self {
            Scale::Smoke => 32,
            Scale::Paper => 128,
        }
    }

    /// Average nonzeros per row of the contention family's indirect
    /// requestors.
    pub fn contention_nnz(&self) -> f64 {
        match self {
            Scale::Smoke => 6.0,
            Scale::Paper => 48.0,
        }
    }

    /// Dense dimension of the scale family's gemv requestors (small —
    /// up to 128 copies ride one hierarchical fabric per point).
    pub fn scale_dim(&self) -> usize {
        match self {
            Scale::Smoke => 24,
            Scale::Paper => 64,
        }
    }

    /// The scale selected by a `--smoke` flag in `args` (the convention
    /// every figure entry point shares).
    pub fn from_flags<S: AsRef<str>>(args: impl IntoIterator<Item = S>) -> Self {
        if args.into_iter().any(|a| a.as_ref() == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Paper
        }
    }
}

/// Deterministic seed shared by all figure data sets.
pub const SEED: u64 = 0xDA7E_2023;
