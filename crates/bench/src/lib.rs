//! `axi-pack-bench` — the figure-regeneration harness.
//!
//! One library function per figure of the paper's evaluation (Fig. 3a–3e,
//! 4a–4c, 5a–5c), each returning structured rows; the `src/bin` binaries
//! print them as tables, and `bin/all_figures` regenerates the complete
//! set into `EXPERIMENTS.md`. Criterion benches in `benches/` time the
//! simulator itself on scaled-down versions of the same scenarios.
//!
//! Absolute cycle counts come from this reproduction's simulator, not the
//! authors' RTL, so the comparison targets are the *shapes*: who wins, by
//! roughly what factor, and where the crossovers sit (see EXPERIMENTS.md).

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table;

/// Problem-size preset for figure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for smoke tests and Criterion (seconds).
    Smoke,
    /// Paper-like inputs (matrix dimension 256, ≈390 nonzeros/row).
    Paper,
}

impl Scale {
    /// Dense matrix dimension for ismt/gemv/trmv.
    pub fn dense_dim(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 256,
        }
    }

    /// Rows of the sparse operands.
    pub fn sparse_rows(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 128,
        }
    }

    /// Average nonzeros per row of the spmv operand (paper: heart1 ≈ 390).
    pub fn spmv_nnz_per_row(&self) -> f64 {
        match self {
            Scale::Smoke => 24.0,
            Scale::Paper => 390.0,
        }
    }

    /// Nodes of the graph workloads. The paper runs all three indirect
    /// benchmarks on SuiteSparse's `heart1` (3557 nodes, ~390 nonzeros per
    /// row); this reproduction keeps the controlling nnz-per-row and trims
    /// the node count to bound simulation time.
    pub fn graph_nodes(&self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Paper => 512,
        }
    }

    /// Average degree of the graph workloads (heart1: ≈ 390).
    pub fn graph_degree(&self) -> f64 {
        match self {
            Scale::Smoke => 6.0,
            Scale::Paper => 390.0,
        }
    }
}

/// Deterministic seed shared by all figure data sets.
pub const SEED: u64 = 0xDA7E_2023;
