//! The `scale` figure family: hierarchical-fabric scaling to 128
//! requestors.
//!
//! Where the `contention` family stops at the flat mux's four manager
//! ports, this sweep rides the cascaded fabric: 1/2/4/…/128 requestors ×
//! BASE/PACK, every point on the *same* arity-4 mux tree over up to four
//! interleaved, row-buffered memory channels, so the curve measures
//! requestor count alone and not a change of interconnect model. The
//! saturation table then divides the two curves: PACK's speedup over
//! BASE per count, the per-kind scaling efficiency against `n ×` the
//! solo run, and the count at which PACK's advantage collapses — the
//! point where the shared fabric, not the adapter, sets the pace.

use axi_pack::{run_system, FabricSpec, Requestor, SystemConfig, Topology};
use simkit::SweepSpec;
use vproc::SystemKind;
use workloads::{gemv, Dataflow};

use crate::{Scale, SEED};

/// Requestor counts of the scaling sweep — powers of two from the solo
/// baseline to the 128 requestors the hierarchical fabric was built for.
pub const REQUESTOR_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The uniform fabric policy of the family: an arity-4 mux tree over
/// `min(n, 4)` interleaved channels (a channel must own at least one
/// requestor window — DRC-F1), DRAM-style row buffers of 8 words with a
/// 6-cycle miss penalty on every bank.
pub fn fabric_for(requestors: usize) -> FabricSpec {
    FabricSpec::tree(4)
        .with_channels(requestors.min(4))
        .with_row_buffer(8, 6)
}

/// One measured point of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Number of requestors on the fabric.
    pub requestors: usize,
    /// System kind of every requestor (all-BASE or all-PACK).
    pub kind: SystemKind,
    /// Cycles until the whole system quiesced.
    pub cycles: u64,
    /// Completion cycle of the slowest requestor.
    pub slowest: u64,
    /// Completion cycle of the fastest requestor.
    pub fastest: u64,
    /// Aggregate R beats per cycle summed over every channel root (can
    /// exceed 1.0 once multiple channels stream in parallel).
    pub r_beats_per_cycle: f64,
    /// Bank-conflict serialization events across all channels.
    pub bank_conflicts: u64,
    /// Mux levels of the fabric the point ran on.
    pub levels: usize,
}

/// Runs the scaling sweep at the registry counts.
pub fn scale_points(scale: Scale) -> Vec<ScaleRow> {
    rows_for_counts(scale, &REQUESTOR_COUNTS)
}

/// The sweep over an explicit count list (unit tests trim the tail — a
/// 128-requestor point is a release-build workload, not a debug one).
fn rows_for_counts(scale: Scale, counts: &[usize]) -> Vec<ScaleRow> {
    let kinds = [SystemKind::Base, SystemKind::Pack];
    SweepSpec::over(counts.to_vec())
        .cross(&kinds)
        .seed(SEED)
        .run(|_ctx, &(n, kind)| {
            let mut cfg = SystemConfig::with_bus(kind, 256);
            cfg.max_cycles = 40_000_000;
            let params = cfg.kernel_params();
            let dataflow = match kind {
                SystemKind::Base => Dataflow::RowWise,
                _ => Dataflow::ColWise,
            };
            let requestors = (0..n).map(|slot| {
                Requestor::new(
                    kind,
                    gemv::build(scale.scale_dim(), SEED + slot as u64, dataflow, &params),
                )
            });
            let topo = Topology::builder(&cfg)
                .requestors(requestors)
                .fabric(fabric_for(n))
                .build()
                .expect("scale point is DRC-clean");
            let report = run_system(&topo).expect("scale point verifies");
            ScaleRow {
                requestors: n,
                kind,
                cycles: report.cycles,
                slowest: report.slowest().cycles,
                fastest: report.fastest().cycles,
                r_beats_per_cycle: report.bus_r_busy,
                bank_conflicts: report.bank_conflicts,
                levels: report.levels.len(),
            }
        })
}

/// PACK vs. BASE at one requestor count of the saturation table.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// Number of requestors on the fabric.
    pub requestors: usize,
    /// BASE completion cycles at this count.
    pub base_cycles: u64,
    /// PACK completion cycles at this count.
    pub pack_cycles: u64,
    /// PACK's speedup over BASE at this count.
    pub speedup: f64,
    /// BASE cycles over `n ×` the BASE solo run (1.00 = the fabric fully
    /// serializes the requestors; below 1.00 they overlap).
    pub base_vs_nsolo: f64,
    /// Same normalization for the PACK points.
    pub pack_vs_nsolo: f64,
}

/// Folds the sweep into the per-count PACK-vs-BASE saturation rows.
pub fn saturation(rows: &[ScaleRow]) -> Vec<SaturationRow> {
    let cycles = |n: usize, kind: SystemKind| {
        rows.iter()
            .find(|r| r.requestors == n && r.kind == kind)
            .expect("both kinds at every count")
            .cycles
    };
    let solo = |kind| cycles(1, kind) as f64;
    let mut counts: Vec<usize> = rows.iter().map(|r| r.requestors).collect();
    counts.sort_unstable();
    counts.dedup();
    counts
        .into_iter()
        .map(|n| {
            let (b, p) = (cycles(n, SystemKind::Base), cycles(n, SystemKind::Pack));
            SaturationRow {
                requestors: n,
                base_cycles: b,
                pack_cycles: p,
                speedup: b as f64 / p as f64,
                base_vs_nsolo: b as f64 / (n as f64 * solo(SystemKind::Base)),
                pack_vs_nsolo: p as f64 / (n as f64 * solo(SystemKind::Pack)),
            }
        })
        .collect()
}

/// The first count at which PACK holds less than half of its peak
/// advantage (`speedup − 1` falls below half its maximum) — where the
/// shared fabric, not the adapter, sets the pace. `None` if the sweep
/// never reaches it.
pub fn collapse_point(sat: &[SaturationRow]) -> Option<usize> {
    let peak = sat.iter().map(|r| r.speedup).fold(f64::MIN, f64::max);
    if peak <= 1.0 {
        return sat.first().map(|r| r.requestors);
    }
    sat.iter()
        .find(|r| r.speedup - 1.0 < (peak - 1.0) / 2.0)
        .map(|r| r.requestors)
}

/// One sentence naming the collapse point, for `EXPERIMENTS.md`.
pub fn collapse_summary(sat: &[SaturationRow]) -> String {
    let peak = sat
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("non-empty sweep");
    let plural = |n: usize| if n == 1 { "requestor" } else { "requestors" };
    match collapse_point(sat) {
        Some(n) => format!(
            "PACK's advantage peaks at {:.2}x ({} {}) and collapses below \
             half that margin at {} {}: past this point the interleaved \
             channels, not the requestors' bus protocol, set the pace.",
            peak.speedup,
            peak.requestors,
            plural(peak.requestors),
            n,
            plural(n)
        ),
        None => format!(
            "PACK's advantage peaks at {:.2}x ({} {}) and holds more than \
             half that margin through {} requestors — this sweep never saturates \
             the fabric.",
            peak.speedup,
            peak.requestors,
            plural(peak.requestors),
            sat.last().expect("non-empty sweep").requestors
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_sweep_head_scales_and_folds() {
        // Debug-build smoke over the head of the count list; the full
        // 1..128 curve is exercised by `figures scale --smoke --check`
        // in CI (release).
        let rows = rows_for_counts(Scale::Smoke, &[1, 2, 4, 8]);
        assert_eq!(rows.len(), 8, "4 counts x 2 kinds");
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let at = |n: usize| {
                rows.iter()
                    .find(|r| r.requestors == n && r.kind == kind)
                    .expect("point exists")
            };
            assert_eq!(at(1).slowest, at(1).fastest, "solo has no spread");
            assert!(at(8).cycles > at(1).cycles, "{kind}: sharing costs cycles");
            assert_eq!(at(8).levels, 1, "8 requestors / 4 channels: 2 per mux");
            assert_eq!(at(1).levels, 0, "a solo leaf needs no mux");
        }
        let sat = saturation(&rows);
        assert_eq!(sat.len(), 4);
        assert!(
            sat.iter().all(|r| r.speedup > 1.0),
            "PACK must not lose to BASE at the head of the curve"
        );
        assert!(
            (sat[0].base_vs_nsolo - 1.0).abs() < 1e-12,
            "solo is its own baseline"
        );
        assert!(!collapse_summary(&sat).is_empty());
    }

    #[test]
    fn the_fabric_policy_is_drc_legal_at_every_count() {
        use axi_pack::drc::check_topology;
        let cfg = SystemConfig::with_bus(SystemKind::Pack, 256);
        let kernel = gemv::build(8, 1, Dataflow::ColWise, &cfg.kernel_params());
        for n in REQUESTOR_COUNTS {
            let reqs: Vec<Requestor> = (0..n)
                .map(|_| Requestor::new(SystemKind::Pack, kernel.clone()))
                .collect();
            let topo = Topology {
                system: cfg,
                requestors: reqs,
                fabric: fabric_for(n),
            };
            let report = check_topology(&topo);
            assert!(report.is_clean(), "{n} requestors: {report}");
        }
    }
}
