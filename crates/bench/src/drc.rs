//! Static design-rule sweeps for the `figures drc` subcommand.
//!
//! Every named target assembles the *same* topologies a figure family or
//! fuzz corpus would run — paper systems, bus-width sweeps, the
//! contention grids, the regression corpus — and checks them with the
//! `simcheck` DRC ([`axi_pack::drc`]) without simulating a cycle. The
//! subcommand pretty-prints one report line per topology; CI runs
//! `figures drc --smoke` as a gate, so a rule regression fails the build
//! in milliseconds instead of wedging a figure run.

use axi_pack::differential::SEED_CORPUS;
use axi_pack::drc::check_topology;
use axi_pack::{DrcReport, FabricSpec, Requestor, SystemConfig, Topology};
use vproc::SystemKind;
use workloads::{gemv, ismt, spmv, synth, CsrMatrix, Dataflow, Kernel};

use crate::contention::{kernel_for_slot, Mix, REQUESTOR_COUNTS};
use crate::{Scale, SEED};

/// One named grid of topologies to design-rule check.
pub struct DrcTarget {
    /// Subcommand-facing name (`figures drc --target <name>`).
    pub name: &'static str,
    /// Human-readable description of the grid.
    pub title: &'static str,
    /// Assembles every topology of the grid with a display label.
    pub build: fn(Scale) -> Vec<(String, Topology)>,
}

/// The in-tree DRC targets, mirroring what the figure families and the
/// fuzz corpus actually run.
pub static TARGETS: &[DrcTarget] = &[
    DrcTarget {
        name: "paper",
        title: "paper evaluation systems (BASE/PACK/IDEAL, representative kernels)",
        build: build_paper,
    },
    DrcTarget {
        name: "bus",
        title: "bus-width sweep systems (64/128/256-bit, Fig. 3d/3e)",
        build: build_bus,
    },
    DrcTarget {
        name: "contention",
        title: "multi-requestor contention grid (1/2/4 requestors x mixes)",
        build: build_contention,
    },
    DrcTarget {
        name: "corpus",
        title: "fuzz regression corpus (every checked-in seed's topology)",
        build: build_corpus,
    },
    DrcTarget {
        name: "scale",
        title: "hierarchical-fabric scale grid (1..128 requestors on the mux tree)",
        build: build_scale,
    },
];

/// Looks a target up by name.
pub fn find(name: &str) -> Option<&'static DrcTarget> {
    TARGETS.iter().find(|t| t.name == name)
}

/// One checked topology of a target grid.
pub struct DrcOutcome {
    /// The target the topology came from.
    pub target: &'static str,
    /// Which topology of the grid.
    pub label: String,
    /// The full rule-suite report.
    pub report: DrcReport,
}

/// Assembles and checks every topology of `targets`.
pub fn check_targets(targets: &[&'static DrcTarget], scale: Scale) -> Vec<DrcOutcome> {
    targets
        .iter()
        .flat_map(|t| {
            (t.build)(scale)
                .into_iter()
                .map(|(label, topo)| DrcOutcome {
                    target: t.name,
                    label,
                    report: check_topology(&topo),
                })
        })
        .collect()
}

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 16,
        Scale::Paper => 64,
    }
}

/// Assembles a topology literal *without* the builder's DRC gate: the
/// whole point of `figures drc` is to hand [`check_topology`] the raw
/// topology and pretty-print whatever the rule suite finds, so a rule
/// regression shows up as a report line, not a panic inside `build()`.
fn raw(cfg: &SystemConfig, requestors: Vec<Requestor>) -> Topology {
    Topology {
        system: *cfg,
        requestors,
        fabric: FabricSpec::default(),
    }
}

/// Single-requestor literal on the flat fabric, `cfg.kind` running `kernel`.
fn raw_single(cfg: &SystemConfig, kernel: Kernel) -> Topology {
    raw(cfg, vec![Requestor::new(cfg.kind, kernel)])
}

fn build_paper(scale: Scale) -> Vec<(String, Topology)> {
    let n = dim(scale);
    [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal]
        .into_iter()
        .flat_map(|kind| {
            let cfg = SystemConfig::paper(kind);
            let p = cfg.kernel_params();
            let m = CsrMatrix::random(n, n, 8.0, SEED);
            [
                (
                    format!("{kind}/ismt"),
                    raw_single(&cfg, ismt::build(n, SEED, &p)),
                ),
                (
                    format!("{kind}/gemv"),
                    raw_single(&cfg, gemv::build(n, SEED, Dataflow::ColWise, &p)),
                ),
                (
                    format!("{kind}/spmv"),
                    raw_single(&cfg, spmv::build(&m, SEED, &p)),
                ),
            ]
        })
        .collect()
}

fn build_bus(scale: Scale) -> Vec<(String, Topology)> {
    let n = dim(scale);
    [64u32, 128, 256]
        .into_iter()
        .flat_map(|bits| {
            [SystemKind::Base, SystemKind::Pack]
                .into_iter()
                .map(move |kind| {
                    let cfg = SystemConfig::with_bus(kind, bits);
                    let p = cfg.kernel_params();
                    (
                        format!("{kind}/{bits}-bit"),
                        raw_single(&cfg, gemv::build(n, SEED, Dataflow::ColWise, &p)),
                    )
                })
        })
        .collect()
}

fn build_contention(scale: Scale) -> Vec<(String, Topology)> {
    let mut out = Vec::new();
    for n in REQUESTOR_COUNTS {
        for mix in [Mix::Homogeneous, Mix::StridedIndirect] {
            if n == 1 && mix == Mix::StridedIndirect {
                continue;
            }
            for kind in [SystemKind::Base, SystemKind::Pack] {
                let cfg = SystemConfig::with_bus(kind, 256);
                let p = cfg.kernel_params();
                let requestors = (0..n)
                    .map(|slot| Requestor::new(kind, kernel_for_slot(slot, mix, kind, scale, &p)))
                    .collect();
                out.push((format!("{n}x {kind} {mix}"), raw(&cfg, requestors)));
            }
        }
    }
    out
}

fn build_scale(scale: Scale) -> Vec<(String, Topology)> {
    // The scale family's fabric policy (arity-4 tree, interleaved
    // channels, row buffers) at every requestor count, with the fabric
    // attached to the literal directly — same raw-topology discipline as
    // the other grids.
    crate::scale::REQUESTOR_COUNTS
        .into_iter()
        .flat_map(|n| {
            [SystemKind::Base, SystemKind::Pack]
                .into_iter()
                .map(move |kind| {
                    let cfg = SystemConfig::with_bus(kind, 256);
                    let p = cfg.kernel_params();
                    let dataflow = match kind {
                        SystemKind::Base => Dataflow::RowWise,
                        _ => Dataflow::ColWise,
                    };
                    let requestors = (0..n)
                        .map(|slot| {
                            Requestor::new(
                                kind,
                                gemv::build(scale.scale_dim(), SEED + slot as u64, dataflow, &p),
                            )
                        })
                        .collect();
                    let mut topo = raw(&cfg, requestors);
                    topo.fabric = crate::scale::fabric_for(n);
                    (format!("{n}x {kind} tree(4)"), topo)
                })
        })
        .collect()
}

fn build_corpus(_scale: Scale) -> Vec<(String, Topology)> {
    // The corpus runs at its own fixed generator sizes, not the figure
    // scale — replay exactly what `figures fuzz --corpus` assembles.
    let cfg = SystemConfig::paper(SystemKind::Pack);
    SEED_CORPUS
        .iter()
        .map(|case| {
            let sk = synth::build(case.seed, &case.cfg, &cfg.kernel_params());
            (format!("seed {}", case.seed), raw_single(&cfg, sk.kernel))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_are_unique_and_findable() {
        for t in TARGETS {
            assert!(std::ptr::eq(find(t.name).expect("findable"), t));
        }
        assert!(find("bogus").is_none());
    }

    #[test]
    fn every_in_tree_grid_is_drc_clean_at_smoke_scale() {
        // The figure-family sweep gate: every topology any in-tree grid
        // assembles must pass the full rule suite with zero diagnostics.
        let all: Vec<&'static DrcTarget> = TARGETS.iter().collect();
        let outcomes = check_targets(&all, Scale::Smoke);
        assert!(outcomes.len() >= 30, "grids shrank: {}", outcomes.len());
        for o in &outcomes {
            assert!(
                o.report.is_clean() && o.report.diagnostics.is_empty(),
                "{}/{}: {}",
                o.target,
                o.label,
                o.report
            );
        }
    }
}
