//! The `figures` CLI dispatch table.
//!
//! One authoritative mapping from subcommand name to action, shared by
//! `main` and by unit tests — so "unknown subcommand exits non-zero with
//! a clear message" is a tested property of a table, not a side effect of
//! a `match` arm buried in the binary.

use crate::figures::{self, Figure};

/// What a subcommand name resolves to.
#[derive(Debug, Clone, Copy)]
pub enum Dispatch {
    /// `figures list` — print the registry.
    List,
    /// `figures all` — regenerate EXPERIMENTS.md.
    All,
    /// `figures bench` — perf baseline.
    Bench,
    /// `figures sweep` — ad-hoc cartesian sweep.
    Sweep,
    /// `figures kernel` — one kernel, full report.
    Kernel,
    /// `figures fuzz` — randomized differential engine.
    Fuzz,
    /// `figures chaos` — differential fuzzing under injected faults.
    Chaos,
    /// `figures drc` — static design-rule check of the in-tree grids.
    Drc,
    /// A figure family from the registry (`fig3a` … `contention`).
    Figure(&'static Figure),
    /// Not a subcommand: the caller must print an error and exit
    /// non-zero.
    Unknown,
}

/// Fixed (non-registry) subcommand names, for `list` and completion.
pub const FIXED_SUBCOMMANDS: &[&str] = &[
    "list", "all", "bench", "sweep", "kernel", "fuzz", "chaos", "drc",
];

/// Resolves a subcommand name. Never panics; unknown names resolve to
/// [`Dispatch::Unknown`] so the binary can fail loudly.
pub fn resolve(name: &str) -> Dispatch {
    match name {
        "list" => Dispatch::List,
        "all" => Dispatch::All,
        "bench" => Dispatch::Bench,
        "sweep" => Dispatch::Sweep,
        "kernel" => Dispatch::Kernel,
        "fuzz" => Dispatch::Fuzz,
        "chaos" => Dispatch::Chaos,
        "drc" => Dispatch::Drc,
        other => match figures::find(other) {
            Some(fig) => Dispatch::Figure(fig),
            None => Dispatch::Unknown,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixed_subcommand_resolves() {
        for name in FIXED_SUBCOMMANDS {
            assert!(
                !matches!(resolve(name), Dispatch::Unknown | Dispatch::Figure(_)),
                "{name} must resolve to its own dispatch arm"
            );
        }
    }

    #[test]
    fn every_figure_family_resolves_to_itself() {
        for fig in figures::FIGURES {
            match resolve(fig.name) {
                Dispatch::Figure(f) => assert!(std::ptr::eq(f, fig)),
                other => panic!("{} resolved to {other:?}", fig.name),
            }
        }
    }

    #[test]
    fn unknown_names_resolve_to_unknown() {
        for bogus in ["fig9z", "figures", "", "al", "fuz", "--smoke", "Fig3a"] {
            assert!(
                matches!(resolve(bogus), Dispatch::Unknown),
                "{bogus:?} must not dispatch"
            );
        }
    }

    #[test]
    fn registry_and_fixed_names_never_collide() {
        for fig in figures::FIGURES {
            assert!(
                !FIXED_SUBCOMMANDS.contains(&fig.name),
                "figure family {} shadows a fixed subcommand",
                fig.name
            );
        }
    }
}
