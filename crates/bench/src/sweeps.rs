//! Ad-hoc cartesian sweeps for the `figures sweep` and `figures kernel`
//! subcommands: build any (kernel × backend × bus × size) or
//! (element-width × index-width/stride × bank) grid from CLI axis lists and
//! run it on the parallel sweep engine.

use axi_pack::requestor::{indirect_read_util, strided_read_util, SweepConfig};
use axi_pack::{run_kernel, RunReport, SystemConfig};
use axi_proto::{ElemSize, IdxSize};
use simkit::SweepSpec;
use vproc::SystemKind;
use workloads::{gemv, ismt, prank, scatter, spmv, sssp, trmv, CsrMatrix, Dataflow, Kernel};

use crate::emit::Table;
use crate::table::{f, pct};

/// The kernel names `build_kernel` accepts.
pub const KERNEL_NAMES: [&str; 7] = ["ismt", "gemv", "trmv", "spmv", "prank", "sssp", "scatter"];

/// Single-point kernel parameters shared by `figures kernel` and each
/// point of a kernel sweep.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Kernel name (see [`KERNEL_NAMES`]).
    pub kernel: String,
    /// System backend.
    pub kind: SystemKind,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Problem size (dense dim / sparse rows / graph nodes).
    pub size: usize,
    /// Average nonzeros per row for the sparse operands.
    pub nnz: f64,
    /// Bank count of the shared SRAM.
    pub banks: usize,
    /// Decoupling-queue depth.
    pub queue_depth: usize,
    /// Operand seed.
    pub seed: u64,
    /// Dense dataflow (gemv/trmv).
    pub dataflow: Dataflow,
    /// Optional Matrix Market operand overriding the random one.
    pub mtx_path: Option<String>,
}

impl Default for KernelPoint {
    fn default() -> Self {
        KernelPoint {
            kernel: "spmv".into(),
            kind: SystemKind::Pack,
            bus_bits: 256,
            banks: 17,
            queue_depth: 4,
            size: 64,
            nnz: 32.0,
            seed: 42,
            mtx_path: None,
            dataflow: Dataflow::ColWise,
        }
    }
}

impl KernelPoint {
    fn sparse_operand(&self) -> Result<CsrMatrix, String> {
        match &self.mtx_path {
            Some(path) => workloads::mtx::read_mtx_file(path).map_err(|e| e.to_string()),
            None => Ok(CsrMatrix::random(
                self.size,
                (2 * self.size).max(self.nnz as usize * 3),
                self.nnz,
                self.seed,
            )),
        }
    }

    /// Builds the configured system and kernel.
    pub fn build(&self) -> Result<(SystemConfig, Kernel), String> {
        let mut cfg = SystemConfig::with_bus(self.kind, self.bus_bits);
        cfg.banks = self.banks;
        cfg.queue_depth = self.queue_depth;
        let p = cfg.kernel_params();
        let kernel = match self.kernel.as_str() {
            "ismt" => ismt::build(self.size, self.seed, &p),
            "gemv" => gemv::build(self.size, self.seed, self.dataflow, &p),
            "trmv" => trmv::build(self.size, self.seed, self.dataflow, &p),
            "spmv" => spmv::build(&self.sparse_operand()?, self.seed, &p),
            "prank" => prank::build(&self.sparse_operand()?, 2, &p),
            "sssp" => sssp::build(&self.sparse_operand()?, 0, 3, &p),
            "scatter" => scatter::build(self.size, 2.0, self.seed, &p),
            other => return Err(format!("unknown kernel {other}")),
        };
        Ok((cfg, kernel))
    }

    /// Builds and runs the point, returning the full report.
    pub fn run(&self) -> Result<RunReport, String> {
        let (cfg, kernel) = self.build()?;
        Ok(run_kernel(&cfg, &kernel)?)
    }
}

/// Axes of a `figures sweep` kernel grid; the cartesian product of the
/// five lists is the sweep.
#[derive(Debug, Clone)]
pub struct KernelSweep {
    /// Kernel-name axis.
    pub kernels: Vec<String>,
    /// Backend axis.
    pub kinds: Vec<SystemKind>,
    /// Bus-width axis (bits).
    pub buses: Vec<u32>,
    /// Problem-size axis.
    pub sizes: Vec<usize>,
    /// Bank-count axis.
    pub banks: Vec<usize>,
    /// Everything held fixed across the grid (nnz, queue depth, seed, …).
    pub fixed: KernelPoint,
}

/// Runs the kernel grid in parallel and tabulates one row per point.
pub fn kernel_sweep(spec: &KernelSweep) -> Result<Table, String> {
    let grid = SweepSpec::over(spec.kernels.clone())
        .cross(&spec.kinds)
        .cross(&spec.buses)
        .cross(&spec.sizes)
        .cross(&spec.banks)
        .seed(spec.fixed.seed);
    let results = grid.run(|_ctx, point| {
        let ((((kernel, kind), bus), size), banks) = point.clone();
        let p = KernelPoint {
            kernel,
            kind,
            bus_bits: bus,
            size,
            banks,
            ..spec.fixed.clone()
        };
        p.run().map(|r| (p, r))
    });
    let mut rows = Vec::with_capacity(results.len());
    for res in results {
        let (p, r) = res?;
        rows.push(vec![
            p.kernel,
            p.kind.to_string(),
            p.bus_bits.to_string(),
            p.size.to_string(),
            p.banks.to_string(),
            r.cycles.to_string(),
            pct(r.r_util),
            f(r.power_mw, 0),
            f(r.energy_uj, 2),
            r.bank_conflicts.to_string(),
        ]);
    }
    Ok(Table::new(
        &[
            "kernel",
            "system",
            "bus",
            "size",
            "banks",
            "cycles",
            "R util",
            "power (mW)",
            "energy (uJ)",
            "bank conflicts",
        ],
        rows,
    ))
}

/// Axes of a controller-utilization sweep (`figures sweep --ew …`): element
/// widths × (index widths | strides) × bank counts.
#[derive(Debug, Clone)]
pub struct UtilSweep {
    /// Element-size axis.
    pub elems: Vec<ElemSize>,
    /// Index-size axis (indirect mode); empty selects strided mode.
    pub idxs: Vec<IdxSize>,
    /// Stride axis (strided mode).
    pub strides: Vec<i32>,
    /// Bank-count axis.
    pub banks: Vec<usize>,
    /// Bursts per measurement.
    pub bursts: usize,
    /// Index seed (indirect mode).
    pub seed: u64,
}

/// Runs the utilization grid in parallel and tabulates one row per point.
pub fn util_sweep(spec: &UtilSweep) -> Table {
    let cfg = |banks| SweepConfig {
        banks,
        bursts: spec.bursts,
        ..SweepConfig::default()
    };
    if spec.idxs.is_empty() {
        let rows = SweepSpec::over(spec.elems.clone())
            .cross(&spec.strides)
            .cross(&spec.banks)
            .seed(spec.seed)
            .run(|_ctx, &((elem, stride), banks)| {
                let u = strided_read_util(&cfg(banks), elem, stride);
                vec![
                    format!("{}b", elem.bits()),
                    stride.to_string(),
                    banks.to_string(),
                    pct(u),
                ]
            });
        Table::new(&["element", "stride", "banks", "R util"], rows)
    } else {
        let rows = SweepSpec::over(spec.elems.clone())
            .cross(&spec.idxs)
            .cross(&spec.banks)
            .seed(spec.seed)
            .run(|ctx, &((elem, idx), banks)| {
                let u = indirect_read_util(&cfg(banks), elem, idx, ctx.seed);
                vec![
                    format!("{}b", elem.bits()),
                    format!("{}b", idx.bits()),
                    banks.to_string(),
                    pct(u),
                ]
            });
        Table::new(&["element", "index", "banks", "R util"], rows)
    }
}

/// Parses an element width in bits (32/64/128/256, the sizes of the
/// paper's Fig. 5 sweeps) into an [`ElemSize`].
pub fn parse_elem(bits: &str) -> Result<ElemSize, String> {
    match bits {
        "32" => Ok(ElemSize::B4),
        "64" => Ok(ElemSize::B8),
        "128" => Ok(ElemSize::B16),
        "256" => Ok(ElemSize::B32),
        other => Err(format!("element width {other} not in 32/64/128/256")),
    }
}

/// Parses an index width in bits into an [`IdxSize`].
pub fn parse_idx(bits: &str) -> Result<IdxSize, String> {
    match bits {
        "8" => Ok(IdxSize::B1),
        "16" => Ok(IdxSize::B2),
        "32" => Ok(IdxSize::B4),
        other => Err(format!("index width {other} not in 8/16/32")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_point_runs_and_verifies() {
        let p = KernelPoint {
            kernel: "ismt".into(),
            size: 16,
            ..KernelPoint::default()
        };
        let r = p.run().expect("verifies");
        assert!(r.cycles > 0);
    }

    #[test]
    fn kernel_sweep_tabulates_the_grid() {
        let spec = KernelSweep {
            kernels: vec!["ismt".into(), "gemv".into()],
            kinds: vec![SystemKind::Base, SystemKind::Pack],
            buses: vec![128, 256],
            sizes: vec![16],
            banks: vec![17],
            fixed: KernelPoint::default(),
        };
        let t = kernel_sweep(&spec).expect("sweep verifies");
        assert_eq!(t.rows.len(), 2 * 2 * 2);
        // Row-major grid order: last axis fastest.
        assert_eq!(t.rows[0][0], "ismt");
        assert_eq!(t.rows[0][2], "128");
        assert_eq!(t.rows[1][2], "256");
    }

    #[test]
    fn kernel_runs_are_thread_count_invariant() {
        // The acceptance bar for the sweep engine: full-system simulation
        // points fanned across >1 worker thread return bit-identical
        // reports, in order, at any thread count.
        let points: Vec<KernelPoint> = ["ismt", "gemv", "spmv", "scatter"]
            .iter()
            .map(|k| KernelPoint {
                kernel: (*k).into(),
                size: 16,
                nnz: 4.0,
                ..KernelPoint::default()
            })
            .collect();
        let cycles = |threads: usize| -> Vec<u64> {
            SweepSpec::new(points.clone())
                .threads(threads)
                .run(|_ctx, p| p.run().expect("verifies").cycles)
        };
        let serial = cycles(1);
        assert_eq!(serial, cycles(4));
        assert_eq!(serial, cycles(8));
    }

    #[test]
    fn unknown_kernel_is_an_error_not_a_panic() {
        let spec = KernelSweep {
            kernels: vec!["nope".into()],
            kinds: vec![SystemKind::Base],
            buses: vec![256],
            sizes: vec![16],
            banks: vec![17],
            fixed: KernelPoint::default(),
        };
        assert!(kernel_sweep(&spec).is_err());
    }

    #[test]
    fn util_sweep_both_modes() {
        let strided = util_sweep(&UtilSweep {
            elems: vec![ElemSize::B4],
            idxs: vec![],
            strides: vec![1, 2],
            banks: vec![17],
            bursts: 1,
            seed: 7,
        });
        assert_eq!(strided.rows.len(), 2);
        let indirect = util_sweep(&UtilSweep {
            elems: vec![ElemSize::B4],
            idxs: vec![IdxSize::B4],
            strides: vec![],
            banks: vec![8, 17],
            bursts: 1,
            seed: 7,
        });
        assert_eq!(indirect.rows.len(), 2);
    }

    #[test]
    fn width_parsers() {
        assert!(parse_elem("64").is_ok());
        assert!(parse_elem("7").is_err());
        assert!(parse_idx("16").is_ok());
        assert!(parse_idx("64").is_err());
    }
}
