//! The figure registry: one [`Table`] formatter per paper figure, shared by
//! the `figures` CLI and the `EXPERIMENTS.md` renderer so the two can never
//! disagree.
//!
//! Before the unified CLI, each figure had its own binary with its own copy
//! of the formatting code (and `all_figures` had a third copy); the
//! builders here are the single remaining copy.

use crate::contention::{contention, ContentionRow, Mix};
use crate::emit::Table;
use crate::fig3::{
    fig3a, fig3b, fig3c, fig3d, fig3e, DataflowRow, KernelRuns, ScalingPoint, BUS_WIDTHS,
};
use crate::fig4::{energy_row, fig4a, fig4b};
use crate::fig5::{fig5a, fig5b, fig5c, IndirectUtilPoint, StridedUtilPoint, BANK_COUNTS};
use crate::scale::{saturation, scale_points, SaturationRow, ScaleRow};
use crate::table::{f, pct};
use crate::Scale;

/// Fig. 3a as rendered into `EXPERIMENTS.md` (8 columns).
pub fn fig3a_table(runs: &[KernelRuns]) -> Table {
    let rows = runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.base.cycles.to_string(),
                r.pack.cycles.to_string(),
                r.ideal.cycles.to_string(),
                f(r.pack_speedup(), 2),
                pct(r.pack.r_util),
                pct(r.base.r_util),
                pct(r.base.r_util_no_idx),
            ]
        })
        .collect();
    Table::new(
        &[
            "kernel",
            "base cyc",
            "pack cyc",
            "ideal cyc",
            "pack speedup",
            "pack R util",
            "base R util",
            "base R util (no idx)",
        ],
        rows,
    )
}

/// Average PACK-vs-IDEAL fraction quoted under the Fig. 3a table.
pub fn fig3a_pack_vs_ideal_avg(runs: &[KernelRuns]) -> f64 {
    runs.iter().map(|r| r.pack_vs_ideal()).sum::<f64>() / runs.len() as f64
}

/// Fig. 3b/3c dataflow-comparison table.
pub fn dataflow_table(rows: &[DataflowRow]) -> Table {
    let rows = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.dataflow.to_string(),
                r.report.cycles.to_string(),
                pct(r.report.r_util),
            ]
        })
        .collect();
    Table::new(&["system", "dataflow", "cycles", "R util"], rows)
}

/// Fig. 3d/3e scaling table: one row per swept x, one column per bus width.
pub fn scaling_table(points: &[ScalingPoint], xlabel: &str) -> Table {
    let mut xs: Vec<usize> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    xs.dedup();
    let rows = xs
        .iter()
        .map(|&x| {
            let mut row = vec![x.to_string()];
            for &bus in &BUS_WIDTHS {
                let p = points
                    .iter()
                    .find(|p| p.x == x && p.bus_bits == bus)
                    .expect("point exists");
                row.push(f(p.speedup, 2));
            }
            row
        })
        .collect();
    Table::new(&[xlabel, "64b bus", "128b bus", "256b bus"], rows)
}

/// Fig. 4a area-versus-clock table plus the per-width minimum periods.
pub fn fig4a_table() -> (Table, Vec<(u32, f64)>) {
    let (points, minima) = fig4a();
    let mut periods: Vec<f64> = points.iter().map(|p| p.period_ps).collect();
    periods.sort_by(f64::total_cmp);
    periods.dedup();
    let rows = periods
        .iter()
        .map(|&period| {
            let mut row = vec![format!("{period:.0} ps")];
            for bus in [64u32, 128, 256] {
                let a = points
                    .iter()
                    .find(|p| p.bus_bits == bus && p.period_ps == period)
                    .and_then(|p| p.area_kge);
                row.push(a.map_or("infeasible".into(), |v| f(v, 1)));
            }
            row
        })
        .collect();
    (
        Table::new(
            &["clock period", "64b (kGE)", "128b (kGE)", "256b (kGE)"],
            rows,
        ),
        minima,
    )
}

/// Fig. 4b area-breakdown table plus the total in kGE.
pub fn fig4b_table() -> (Table, f64) {
    let breakdown = fig4b();
    let rows = breakdown
        .iter()
        .map(|(n, kge, share)| vec![(*n).into(), f(*kge, 1), pct(*share)])
        .collect();
    let total: f64 = breakdown.iter().map(|(_, kge, _)| kge).sum();
    (Table::new(&["component", "kGE", "share"], rows), total)
}

/// Fig. 4c power/energy table, derived from the Fig. 3a runs.
pub fn fig4c_table(runs: &[KernelRuns]) -> Table {
    let rows = runs
        .iter()
        .map(|r| {
            let e = energy_row(r);
            vec![
                e.name,
                f(e.base_mw, 0),
                f(e.pack_mw, 0),
                f(e.improvement, 2),
            ]
        })
        .collect();
    Table::new(
        &["kernel", "base (mW)", "pack (mW)", "energy eff. impr."],
        rows,
    )
}

/// Fig. 5a indirect-utilization table: size pairs × bank counts + ideal.
pub fn fig5a_table(points: &[IndirectUtilPoint]) -> Table {
    let mut pairs: Vec<(axi_proto::ElemSize, axi_proto::IdxSize)> = Vec::new();
    for p in points {
        if !pairs.contains(&(p.elem, p.idx)) {
            pairs.push((p.elem, p.idx));
        }
    }
    let mut header: Vec<String> = vec!["elem/idx".into()];
    header.extend(BANK_COUNTS.iter().map(|b| format!("{b}b")));
    header.push("ideal".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows = pairs
        .iter()
        .map(|&(elem, idx)| {
            let mut row = vec![format!("{}/{}", elem.bits(), idx.bits())];
            for banks in BANK_COUNTS.iter().map(|b| Some(*b)).chain([None]) {
                let p = points
                    .iter()
                    .find(|p| p.elem == elem && p.idx == idx && p.banks == banks)
                    .expect("point exists");
                row.push(pct(p.util));
            }
            row
        })
        .collect();
    Table::new(&header_refs, rows)
}

/// Fig. 5b strided-utilization table: element sizes × bank counts.
pub fn fig5b_table(points: &[StridedUtilPoint]) -> Table {
    let mut elems: Vec<axi_proto::ElemSize> = Vec::new();
    for p in points {
        if !elems.contains(&p.elem) {
            elems.push(p.elem);
        }
    }
    let mut header: Vec<String> = vec!["element".into()];
    header.extend(BANK_COUNTS.iter().map(|b| format!("{b}b")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows = elems
        .iter()
        .map(|&elem| {
            let mut row = vec![format!("{}b", elem.bits())];
            for &banks in &BANK_COUNTS {
                let p = points
                    .iter()
                    .find(|p| p.elem == elem && p.banks == banks)
                    .expect("point exists");
                row.push(pct(p.util));
            }
            row
        })
        .collect();
    Table::new(&header_refs, rows)
}

/// Fig. 5c crossbar-area table.
pub fn fig5c_table() -> Table {
    let rows = fig5c()
        .iter()
        .map(|(banks, a)| {
            vec![
                banks.to_string(),
                f(a.crossbar_kge, 1),
                f(a.modulo_kge, 1),
                f(a.divider_kge, 1),
                f(a.total_kge(), 1),
            ]
        })
        .collect();
    Table::new(
        &["banks", "crossbar", "modulo", "divider", "total (kGE)"],
        rows,
    )
}

/// The ablation tables (queue depth, stage policy, prime-vs-pow2 banks),
/// formerly the `ablations` binary.
pub fn ablation_tables(scale: Scale) -> Vec<Table> {
    use axi_pack::requestor::{indirect_read_util, strided_read_util_avg, SweepConfig};
    use axi_proto::{ElemSize, IdxSize};
    use pack_ctrl::StagePolicy;
    use simkit::SweepSpec;

    let bursts = scale.ablation_bursts();

    // 1. Queue depth: indirect reads on 17 banks.
    let depths = vec![1usize, 2, 4, 8, 16, 32];
    let queue = SweepSpec::over(depths).run(|_ctx, &depth| {
        let cfg = SweepConfig {
            queue_depth: depth,
            bursts,
            ..SweepConfig::default()
        };
        let u = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B4, 1);
        vec![depth.to_string(), pct(u)]
    });

    // 2. Stage arbitration policy, at two element:index ratios.
    let policies = vec![
        StagePolicy::RoundRobin,
        StagePolicy::IndexPriority,
        StagePolicy::ElementPriority,
    ];
    let policy = SweepSpec::over(policies).run(|_ctx, &policy| {
        let cfg = SweepConfig {
            stage_policy: policy,
            bursts,
            ..SweepConfig::default()
        };
        let u32b = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B4, 1);
        let u256b = indirect_read_util(&cfg, ElemSize::B32, IdxSize::B1, 1);
        vec![policy.to_string(), pct(u32b), pct(u256b)]
    });

    // 3. Prime vs power-of-two banks at matched counts.
    let pairs = vec![(16usize, 17usize), (31, 32)];
    let banks = SweepSpec::over(pairs).run(|_ctx, &(a, b)| {
        let util = |banks| {
            let cfg = SweepConfig {
                banks,
                bursts: 1,
                ..SweepConfig::default()
            };
            strided_read_util_avg(&cfg, ElemSize::B4)
        };
        vec![format!("{a} vs {b}"), pct(util(a)), pct(util(b))]
    });

    vec![
        Table::new(&["queue depth", "R util"], queue),
        Table::new(
            &["policy", "32b elem / 32b idx", "256b elem / 8b idx"],
            policy,
        ),
        Table::new(&["pair", "first (pow2/prime)", "second"], banks),
    ]
}

/// Contention table: shared-bus scaling with per-requestor finish spread
/// and the homogeneous points normalized against `n ×` their solo run.
pub fn contention_table(rows: &[ContentionRow]) -> Table {
    let solo = |row: &ContentionRow| {
        rows.iter()
            .find(|r| r.requestors == 1 && r.mix == Mix::Homogeneous && r.kind == row.kind)
            .expect("solo baseline in grid")
            .cycles
    };
    let rows = rows
        .iter()
        .map(|r| {
            // Normalized against n× the solo run. Below 1.00 the
            // requestors fill each other's idle bus cycles (solo runs
            // are not 100% bus-bound); at 1.00 the shared channel fully
            // serializes them. Only meaningful for identical kernels.
            let vs_nsolo = if r.mix == Mix::Homogeneous {
                f(r.cycles as f64 / (r.requestors as f64 * solo(r) as f64), 2)
            } else {
                "-".into()
            };
            vec![
                r.requestors.to_string(),
                r.mix.to_string(),
                r.kind.to_string(),
                r.cycles.to_string(),
                r.slowest.to_string(),
                r.fastest.to_string(),
                pct(r.bus_busy),
                r.bank_conflicts.to_string(),
                vs_nsolo,
            ]
        })
        .collect();
    Table::new(
        &[
            "requestors",
            "mix",
            "system",
            "cycles",
            "slowest req",
            "fastest req",
            "bus busy",
            "bank conflicts",
            "vs n×solo",
        ],
        rows,
    )
}

/// Scale table: the raw 1→128 fabric sweep, both kinds.
pub fn scale_table(rows: &[ScaleRow]) -> Table {
    let rows = rows
        .iter()
        .map(|r| {
            vec![
                r.requestors.to_string(),
                r.kind.to_string(),
                r.cycles.to_string(),
                r.slowest.to_string(),
                r.fastest.to_string(),
                f(r.r_beats_per_cycle, 2),
                r.bank_conflicts.to_string(),
                r.levels.to_string(),
            ]
        })
        .collect();
    Table::new(
        &[
            "requestors",
            "system",
            "cycles",
            "slowest req",
            "fastest req",
            "R beats/cyc",
            "bank conflicts",
            "mux levels",
        ],
        rows,
    )
}

/// Saturation table: PACK vs. BASE per count, with both curves
/// normalized against `n ×` their solo run (same convention as the
/// contention table's `vs n×solo` column).
pub fn saturation_table(sat: &[SaturationRow]) -> Table {
    let rows = sat
        .iter()
        .map(|r| {
            vec![
                r.requestors.to_string(),
                r.base_cycles.to_string(),
                r.pack_cycles.to_string(),
                f(r.speedup, 2),
                f(r.base_vs_nsolo, 2),
                f(r.pack_vs_nsolo, 2),
            ]
        })
        .collect();
    Table::new(
        &[
            "requestors",
            "base cyc",
            "pack cyc",
            "pack speedup",
            "base vs n×solo",
            "pack vs n×solo",
        ],
        rows,
    )
}

/// The two scale-family tables from one sweep (the registry entry and
/// `EXPERIMENTS.md` share this so the sweep never runs twice).
pub fn scale_tables(scale: Scale) -> Vec<Table> {
    let rows = scale_points(scale);
    let sat = saturation(&rows);
    vec![scale_table(&rows), saturation_table(&sat)]
}

/// One figure family of the registry.
#[derive(Debug)]
pub struct Figure {
    /// Subcommand name (`fig3a` … `fig5c`, `ablations`).
    pub name: &'static str,
    /// Human title printed above the tables.
    pub title: &'static str,
    /// Renders the figure's tables at the given scale.
    pub render: fn(Scale) -> Vec<Table>,
}

/// Every figure family the CLI can regenerate, in the paper's order.
pub static FIGURES: &[Figure] = &[
    Figure {
        name: "fig3a",
        title: "Fig. 3a — speedups and R-bus utilizations",
        render: |scale| vec![fig3a_table(&fig3a(scale))],
    },
    Figure {
        name: "fig3b",
        title: "Fig. 3b — gemv dataflows compared",
        render: |scale| vec![dataflow_table(&fig3b(scale))],
    },
    Figure {
        name: "fig3c",
        title: "Fig. 3c — trmv dataflows compared",
        render: |scale| vec![dataflow_table(&fig3c(scale))],
    },
    Figure {
        name: "fig3d",
        title: "Fig. 3d — ismt PACK speedup scaling",
        render: |scale| vec![scaling_table(&fig3d(scale), "matrix dim")],
    },
    Figure {
        name: "fig3e",
        title: "Fig. 3e — spmv PACK speedup scaling",
        render: |scale| vec![scaling_table(&fig3e(scale), "nnz/row")],
    },
    Figure {
        name: "fig4a",
        title: "Fig. 4a — adapter area vs. minimum clock",
        render: |_| vec![fig4a_table().0],
    },
    Figure {
        name: "fig4b",
        title: "Fig. 4b — adapter area breakdown (256 bit)",
        render: |_| vec![fig4b_table().0],
    },
    Figure {
        name: "fig4c",
        title: "Fig. 4c — power and energy efficiency",
        render: |scale| vec![fig4c_table(&fig3a(scale))],
    },
    Figure {
        name: "fig5a",
        title: "Fig. 5a — indirect read utilization",
        render: |scale| vec![fig5a_table(&fig5a(scale.fig5a_bursts()))],
    },
    Figure {
        name: "fig5b",
        title: "Fig. 5b — strided read utilization (strides 0–63 averaged)",
        render: |scale| vec![fig5b_table(&fig5b(scale.fig5b_bursts()))],
    },
    Figure {
        name: "fig5c",
        title: "Fig. 5c — bank crossbar area",
        render: |_| vec![fig5c_table()],
    },
    Figure {
        name: "ablations",
        title: "Ablations — queue depth, stage policy, prime vs pow2 banks",
        render: ablation_tables,
    },
    Figure {
        name: "contention",
        title: "Contention — 1/2/4 requestors sharing one bus (§II-A/§V)",
        render: |scale| vec![contention_table(&contention(scale))],
    },
    Figure {
        name: "scale",
        title: "Scale — 1→128 requestors on the hierarchical fabric",
        render: scale_tables,
    },
];

/// Looks a figure up by subcommand name.
pub fn find(name: &str) -> Option<&'static Figure> {
    FIGURES.iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for f in FIGURES {
            assert!(std::ptr::eq(find(f.name).expect("findable"), f));
        }
        let mut names: Vec<&str> = FIGURES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FIGURES.len());
    }

    #[test]
    fn cheap_figures_render() {
        for name in ["fig4a", "fig4b", "fig5c"] {
            let tables = (find(name).unwrap().render)(Scale::Smoke);
            assert!(!tables.is_empty());
            assert!(!tables[0].rows.is_empty());
        }
    }
}
