//! Performance figures: speedups, utilizations, dataflows and scaling
//! (paper Fig. 3a–3e).
//!
//! Every figure here is expressed as a [`SweepSpec`] grid whose points run
//! in parallel on the sweep engine; the fixed [`SEED`] keeps the results
//! identical at any thread count.

use axi_pack::{run_kernel, RunReport, SystemConfig};
use simkit::SweepSpec;
use vproc::SystemKind;
use workloads::{gemv, ismt, prank, spmv, sssp, trmv, CsrMatrix, Dataflow, Kernel};

use crate::{Scale, SEED};

/// One kernel measured on all three systems.
#[derive(Debug, Clone)]
pub struct KernelRuns {
    /// Kernel name.
    pub name: String,
    /// BASE run.
    pub base: RunReport,
    /// PACK run.
    pub pack: RunReport,
    /// IDEAL run.
    pub ideal: RunReport,
}

impl KernelRuns {
    /// PACK speedup over BASE.
    pub fn pack_speedup(&self) -> f64 {
        self.pack.speedup_over(&self.base)
    }

    /// IDEAL speedup over BASE.
    pub fn ideal_speedup(&self) -> f64 {
        self.ideal.speedup_over(&self.base)
    }

    /// How close PACK gets to IDEAL (1.0 = parity).
    pub fn pack_vs_ideal(&self) -> f64 {
        self.ideal.cycles as f64 / self.pack.cycles as f64
    }
}

fn run(
    kind: SystemKind,
    bus_bits: u32,
    build: impl Fn(&workloads::KernelParams) -> Kernel,
) -> RunReport {
    let cfg = SystemConfig::with_bus(kind, bus_bits);
    let kernel = build(&cfg.kernel_params());
    run_kernel(&cfg, &kernel).expect("figure kernel must verify")
}

/// The spmv operand: wide enough that the requested nonzeros-per-row fit.
fn spmv_matrix(rows: usize, nnz_per_row: f64, seed: u64) -> CsrMatrix {
    let cols = (rows.max((nnz_per_row * 2.5) as usize)).next_power_of_two();
    CsrMatrix::random(rows, cols, nnz_per_row, seed)
}

/// Builds each of the six benchmark kernels for a given system kind, with
/// the paper's per-system dataflow choices (gemv/trmv run row-wise on
/// BASE, column-wise on PACK and IDEAL).
fn kernel_for(name: &str, kind: SystemKind, scale: Scale, p: &workloads::KernelParams) -> Kernel {
    let n = scale.dense_dim();
    let dataflow = match kind {
        SystemKind::Base => Dataflow::RowWise,
        _ => Dataflow::ColWise,
    };
    match name {
        "ismt" => ismt::build(n, SEED, p),
        "gemv" => gemv::build(n, SEED, dataflow, p),
        "trmv" => trmv::build(n, SEED, dataflow, p),
        "spmv" => spmv::build(
            &spmv_matrix(scale.sparse_rows(), scale.spmv_nnz_per_row(), SEED),
            SEED,
            p,
        ),
        "prank" => prank::build(
            &CsrMatrix::random(
                scale.graph_nodes(),
                scale.graph_nodes(),
                scale.graph_degree(),
                SEED,
            ),
            2,
            p,
        ),
        "sssp" => sssp::build(
            &CsrMatrix::random_graph(scale.graph_nodes(), scale.graph_degree(), SEED),
            0,
            3,
            p,
        ),
        other => panic!("unknown kernel {other}"),
    }
}

/// The six benchmark names in the paper's order.
pub const KERNELS: [&str; 6] = ["ismt", "gemv", "trmv", "spmv", "prank", "sssp"];

/// Fig. 3a: speedups over BASE and R-bus utilizations for all six
/// workloads on the 256-bit systems.
///
/// The 6 × 3 (kernel × system) grid runs in parallel on the sweep engine.
pub fn fig3a(scale: Scale) -> Vec<KernelRuns> {
    let kinds = [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal];
    let reports = SweepSpec::over(KERNELS.to_vec())
        .cross(&kinds)
        .seed(SEED)
        .run(|_ctx, &(name, kind)| run(kind, 256, |p| kernel_for(name, kind, scale, p)));
    reports
        .chunks_exact(kinds.len())
        .zip(&KERNELS)
        .map(|(runs, name)| KernelRuns {
            name: (*name).into(),
            base: runs[0].clone(),
            pack: runs[1].clone(),
            ideal: runs[2].clone(),
        })
        .collect()
}

/// One dataflow × system measurement of Fig. 3b/3c.
#[derive(Debug, Clone)]
pub struct DataflowRow {
    /// System the kernel ran on.
    pub kind: SystemKind,
    /// Row- or column-wise dataflow.
    pub dataflow: Dataflow,
    /// The run.
    pub report: RunReport,
}

fn dataflow_figure(
    scale: Scale,
    build: impl Fn(usize, Dataflow, &workloads::KernelParams) -> Kernel + Sync,
) -> Vec<DataflowRow> {
    SweepSpec::over(vec![SystemKind::Base, SystemKind::Pack, SystemKind::Ideal])
        .cross(&[Dataflow::RowWise, Dataflow::ColWise])
        .seed(SEED)
        .run(|_ctx, &(kind, dataflow)| DataflowRow {
            kind,
            dataflow,
            report: run(kind, 256, |p| build(scale.dense_dim(), dataflow, p)),
        })
}

/// Fig. 3b: gemv row- versus column-wise dataflow on all three systems.
pub fn fig3b(scale: Scale) -> Vec<DataflowRow> {
    dataflow_figure(scale, |n, d, p| gemv::build(n, SEED, d, p))
}

/// Fig. 3c: trmv row- versus column-wise dataflow on all three systems.
pub fn fig3c(scale: Scale) -> Vec<DataflowRow> {
    dataflow_figure(scale, |n, d, p| trmv::build(n, SEED, d, p))
}

/// One point of a speedup-scaling sweep (Fig. 3d/3e).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// The swept input parameter (matrix dimension / nonzeros per row).
    pub x: usize,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// PACK speedup over BASE.
    pub speedup: f64,
}

/// Bus widths of the scaling sweeps.
pub const BUS_WIDTHS: [u32; 3] = [64, 128, 256];

/// Fig. 3d: ismt PACK speedup versus matrix dimension and bus width.
pub fn fig3d(scale: Scale) -> Vec<ScalingPoint> {
    let dims: &[usize] = match scale {
        Scale::Smoke => &[8, 16, 32, 48],
        Scale::Paper => &[8, 16, 32, 64, 128, 192, 256],
    };
    SweepSpec::over(BUS_WIDTHS.to_vec())
        .cross(dims)
        .seed(SEED)
        .run(|_ctx, &(bus, dim)| {
            let base = run(SystemKind::Base, bus, |p| ismt::build(dim, SEED, p));
            let pack = run(SystemKind::Pack, bus, |p| ismt::build(dim, SEED, p));
            ScalingPoint {
                x: dim,
                bus_bits: bus,
                speedup: pack.speedup_over(&base),
            }
        })
}

/// Fig. 3e: spmv PACK speedup versus average nonzeros per row and bus
/// width.
pub fn fig3e(scale: Scale) -> Vec<ScalingPoint> {
    let nnzs: &[usize] = match scale {
        Scale::Smoke => &[2, 8, 24],
        Scale::Paper => &[2, 6, 15, 30, 60, 120, 240, 390],
    };
    let rows = match scale {
        Scale::Smoke => 32,
        Scale::Paper => 64,
    };
    SweepSpec::over(BUS_WIDTHS.to_vec())
        .cross(nnzs)
        .seed(SEED)
        .run(|_ctx, &(bus, nnz)| {
            let m = spmv_matrix(rows, nnz as f64, SEED);
            let base = run(SystemKind::Base, bus, |p| spmv::build(&m, SEED, p));
            let pack = run(SystemKind::Pack, bus, |p| spmv::build(&m, SEED, p));
            ScalingPoint {
                x: nnz,
                bus_bits: bus,
                speedup: pack.speedup_over(&base),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_smoke_has_expected_shape() {
        let runs = fig3a(Scale::Smoke);
        assert_eq!(runs.len(), 6);
        for r in &runs {
            assert!(
                r.pack_speedup() > 1.0,
                "{}: pack must beat base ({:.2}x)",
                r.name,
                r.pack_speedup()
            );
            // IDEAL bounds PACK from below on strided kernels; on indexed
            // kernels PACK may edge it out because IDEAL still spends port
            // time fetching indices into the core (paper §III-B).
            let strided = matches!(r.name.as_str(), "ismt" | "gemv" | "trmv");
            if strided {
                assert!(
                    r.pack.cycles >= r.ideal.cycles,
                    "{}: ideal is the lower bound",
                    r.name
                );
            } else {
                assert!(
                    r.pack.cycles as f64 >= 0.8 * r.ideal.cycles as f64,
                    "{}: pack implausibly far ahead of ideal",
                    r.name
                );
            }
        }
        // Strided kernels speed up more than indirect ones.
        let ismt = &runs[0];
        let spmv = &runs[3];
        assert!(ismt.pack_speedup() > spmv.pack_speedup());
    }

    #[test]
    fn fig3d_smoke_speedup_grows_with_bus_width() {
        let points = fig3d(Scale::Smoke);
        let at = |bus: u32, dim: usize| {
            points
                .iter()
                .find(|p| p.bus_bits == bus && p.x == dim)
                .expect("point exists")
                .speedup
        };
        let largest = 48;
        assert!(at(256, largest) > at(128, largest));
        assert!(at(128, largest) > at(64, largest));
        // Never a slowdown, even for tiny matrices.
        assert!(points.iter().all(|p| p.speedup >= 0.95));
    }
}
