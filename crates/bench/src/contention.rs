//! The `contention` figure family: multi-requestor shared-bus scaling.
//!
//! The paper notes AXI-Pack "in principle supports non-core requestors
//! and systems with multiple requestors and endpoints" (§II-A, §V); this
//! family promotes that note to a measured scenario. A grid of 1/2/4
//! requestors × kernel mix × BASE/PACK runs each point as one
//! [`axi_pack::Topology`] — N vector engines in private address windows,
//! funneled through the round-robin ID-remapping mux into one shared
//! near-memory adapter — and reports total cycles, per-requestor finish
//! spread (arbitration fairness), aggregate bus occupancy and
//! shared-bank conflict amplification.

use axi_pack::{run_system, Requestor, SystemConfig, Topology};
use simkit::SweepSpec;
use vproc::SystemKind;
use workloads::{gemv, spmv, CsrMatrix, Dataflow, Kernel, KernelParams};

use crate::{Scale, SEED};

/// Kernel mix of one contention point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Every requestor runs the strided gemv (the bus-bound workload the
    /// shared channel serializes hardest).
    Homogeneous,
    /// Requestors alternate strided gemv and indirect spmv — strided
    /// bursts competing with two-stage indirect expansion at the banks.
    StridedIndirect,
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mix::Homogeneous => write!(f, "homogeneous"),
            Mix::StridedIndirect => write!(f, "strided+indirect"),
        }
    }
}

/// Requestor counts of the grid (bounded by the mux's four manager ports).
pub const REQUESTOR_COUNTS: [usize; 3] = [1, 2, 4];

/// One measured point of the contention grid.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    /// Number of requestors sharing the bus.
    pub requestors: usize,
    /// Kernel mix across the requestors.
    pub mix: Mix,
    /// System kind of every requestor (all-BASE or all-PACK).
    pub kind: SystemKind,
    /// Cycles until the whole system quiesced.
    pub cycles: u64,
    /// Completion cycle of the slowest requestor.
    pub slowest: u64,
    /// Completion cycle of the fastest requestor.
    pub fastest: u64,
    /// Fraction of cycles the shared R channel carried a beat.
    pub bus_busy: f64,
    /// Bank-conflict serialization events in the shared memory.
    pub bank_conflicts: u64,
}

/// The kernel requestor `slot` runs at one grid point. Dataflows follow
/// the per-system choices of Fig. 3a (gemv row-wise on BASE, column-wise
/// on PACK); seeds vary per slot so requestors stream different data.
pub(crate) fn kernel_for_slot(
    slot: usize,
    mix: Mix,
    kind: SystemKind,
    scale: Scale,
    p: &KernelParams,
) -> Kernel {
    let dataflow = match kind {
        SystemKind::Base => Dataflow::RowWise,
        _ => Dataflow::ColWise,
    };
    let seed = SEED + slot as u64;
    let indirect = mix == Mix::StridedIndirect && slot % 2 == 1;
    if indirect {
        let rows = scale.contention_dim() / 2;
        let cols = rows
            .max((scale.contention_nnz() * 2.5) as usize)
            .next_power_of_two();
        spmv::build(
            &CsrMatrix::random(rows, cols, scale.contention_nnz(), seed),
            seed,
            p,
        )
    } else {
        gemv::build(scale.contention_dim(), seed, dataflow, p)
    }
}

/// Runs the contention grid: 1/2/4 requestors × {homogeneous,
/// strided+indirect} × BASE/PACK, minus the meaningless (1 requestor ×
/// mixed) points, in parallel on the sweep engine.
pub fn contention(scale: Scale) -> Vec<ContentionRow> {
    let kinds = [SystemKind::Base, SystemKind::Pack];
    SweepSpec::over(REQUESTOR_COUNTS.to_vec())
        .cross(&[Mix::Homogeneous, Mix::StridedIndirect])
        .cross(&kinds)
        .retain(|((n, mix), _)| !(*n == 1 && *mix == Mix::StridedIndirect))
        .seed(SEED)
        .run(|_ctx, &((n, mix), kind)| {
            let cfg = SystemConfig::with_bus(kind, 256);
            let params = cfg.kernel_params();
            let requestors = (0..n)
                .map(|slot| Requestor::new(kind, kernel_for_slot(slot, mix, kind, scale, &params)));
            let topo = Topology::builder(&cfg)
                .requestors(requestors)
                .build()
                .expect("contention point is DRC-clean");
            let report = run_system(&topo).expect("contention point verifies");
            ContentionRow {
                requestors: n,
                mix,
                kind,
                cycles: report.cycles,
                slowest: report.slowest().cycles,
                fastest: report.fastest().cycles,
                bus_busy: report.bus_r_busy,
                bank_conflicts: report.bank_conflicts,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_counts_and_mixes_without_degenerate_points() {
        let rows = contention(Scale::Smoke);
        assert_eq!(rows.len(), 10, "3×2×2 grid minus the two 1×mixed points");
        assert!(rows
            .iter()
            .all(|r| !(r.requestors == 1 && r.mix == Mix::StridedIndirect)));
        let solo = |kind: SystemKind| {
            rows.iter()
                .find(|r| r.requestors == 1 && r.kind == kind)
                .expect("solo baseline exists")
        };
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let one = solo(kind);
            assert_eq!(one.slowest, one.fastest, "one requestor has no spread");
            let four = rows
                .iter()
                .find(|r| r.requestors == 4 && r.mix == Mix::Homogeneous && r.kind == kind)
                .expect("4-requestor point exists");
            assert!(
                four.cycles > one.cycles,
                "{kind}: contention must cost cycles"
            );
            assert!(
                four.bus_busy >= one.bus_busy,
                "{kind}: sharing raises occupancy"
            );
        }
    }
}
