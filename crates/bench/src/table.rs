//! Minimal markdown-table rendering for figure output.

/// Renders a markdown table from a header and rows of cells.
///
/// # Examples
///
/// ```
/// let t = axi_pack_bench::table::markdown(
///     &["kernel", "speedup"],
///     &[vec!["ismt".into(), "5.4".into()]],
/// );
/// assert!(t.contains("| ismt"));
/// ```
pub fn markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats a float with a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let t = markdown(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = markdown(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(pct(0.871), "87.1%");
    }
}
