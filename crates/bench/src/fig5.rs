//! Parameter-sensitivity figures (paper Fig. 5a–5c).
//!
//! Fig. 5a/5b are (size × bank-count) grids of independent controller
//! measurements, run in parallel as [`SweepSpec`] sweeps.

use axi_pack::requestor::{indirect_read_util, strided_read_util_avg, SweepConfig};
use axi_proto::{ElemSize, IdxSize};
use hwmodel::xbar::{crossbar_area, XbarArea};
use simkit::SweepSpec;

use crate::SEED;

/// Bank counts the paper sweeps: powers of two and primes, 8–32.
pub const BANK_COUNTS: [usize; 6] = [8, 11, 16, 17, 31, 32];

/// The element/index size pairs of Fig. 5a, ordered by rising
/// element:index ratio as in the paper's x-axis.
pub const SIZE_PAIRS: [(ElemSize, IdxSize); 12] = [
    (ElemSize::B4, IdxSize::B4),  // 32/32
    (ElemSize::B4, IdxSize::B2),  // 32/16
    (ElemSize::B8, IdxSize::B4),  // 64/32
    (ElemSize::B4, IdxSize::B1),  // 32/8
    (ElemSize::B8, IdxSize::B2),  // 64/16
    (ElemSize::B16, IdxSize::B4), // 128/32
    (ElemSize::B8, IdxSize::B1),  // 64/8
    (ElemSize::B16, IdxSize::B2), // 128/16
    (ElemSize::B32, IdxSize::B4), // 256/32
    (ElemSize::B16, IdxSize::B1), // 128/8
    (ElemSize::B32, IdxSize::B2), // 256/16
    (ElemSize::B32, IdxSize::B1), // 256/8
];

/// One measured point of Fig. 5a.
#[derive(Debug, Clone, Copy)]
pub struct IndirectUtilPoint {
    /// Element size.
    pub elem: ElemSize,
    /// Index size.
    pub idx: IdxSize,
    /// Bank count; `None` is the conflict-free "ideal" series.
    pub banks: Option<usize>,
    /// Measured R utilization.
    pub util: f64,
}

fn sweep(banks: Option<usize>, bursts: usize) -> SweepConfig {
    SweepConfig {
        banks: banks.unwrap_or(17),
        conflict_free: banks.is_none(),
        bursts,
        ..SweepConfig::default()
    }
}

/// Fig. 5a: indirect-read utilization for all size pairs × bank counts
/// (plus the conflict-free ideal).
pub fn fig5a(bursts: usize) -> Vec<IndirectUtilPoint> {
    let bank_axis: Vec<Option<usize>> =
        BANK_COUNTS.iter().map(|b| Some(*b)).chain([None]).collect();
    SweepSpec::over(SIZE_PAIRS.to_vec())
        .cross(&bank_axis)
        .seed(SEED)
        .run(|_ctx, &((elem, idx), banks)| IndirectUtilPoint {
            elem,
            idx,
            banks,
            util: indirect_read_util(&sweep(banks, bursts), elem, idx, SEED),
        })
}

/// One measured point of Fig. 5b.
#[derive(Debug, Clone, Copy)]
pub struct StridedUtilPoint {
    /// Element size.
    pub elem: ElemSize,
    /// Bank count.
    pub banks: usize,
    /// R utilization averaged over strides 0–63.
    pub util: f64,
}

/// Fig. 5b: strided-read utilization, averaged across strides 0–63, for
/// element sizes 32–256 bit × bank counts.
pub fn fig5b(bursts: usize) -> Vec<StridedUtilPoint> {
    let elems = vec![ElemSize::B4, ElemSize::B8, ElemSize::B16, ElemSize::B32];
    SweepSpec::over(elems)
        .cross(&BANK_COUNTS)
        .seed(SEED)
        .run(|_ctx, &(elem, banks)| StridedUtilPoint {
            elem,
            banks,
            util: strided_read_util_avg(&sweep(Some(banks), bursts), elem),
        })
}

/// Fig. 5c: bank-crossbar area breakdown per bank count.
pub fn fig5c() -> Vec<(usize, XbarArea)> {
    BANK_COUNTS
        .iter()
        .map(|&m| (m, crossbar_area(8, m, 32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_util_rises_with_bank_count_and_ratio() {
        // One size pair, quick bursts: banks must help monotonically-ish.
        let cfg8 = sweep(Some(8), 1);
        let cfg32 = sweep(Some(32), 1);
        let u8b = indirect_read_util(&cfg8, ElemSize::B4, IdxSize::B4, SEED);
        let u32b = indirect_read_util(&cfg32, ElemSize::B4, IdxSize::B4, SEED);
        assert!(u32b > u8b, "banks must help: {u8b:.2} vs {u32b:.2}");
        // Ratio 8 (256/32-bit) beats ratio 1 (32/32-bit) on ideal memory.
        let ideal = sweep(None, 1);
        let r1 = indirect_read_util(&ideal, ElemSize::B4, IdxSize::B4, SEED);
        let r8 = indirect_read_util(&ideal, ElemSize::B32, IdxSize::B4, SEED);
        assert!(
            r8 > r1 + 0.2,
            "ratio must lift the bound: {r1:.2} vs {r8:.2}"
        );
    }

    #[test]
    fn fig5c_matches_paper_structure() {
        let rows = fig5c();
        assert_eq!(rows.len(), BANK_COUNTS.len());
        for (m, area) in &rows {
            let has_div = area.divider_kge > 0.0;
            assert_eq!(has_div, !m.is_power_of_two(), "{m} banks");
        }
    }
}
