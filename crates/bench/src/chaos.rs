//! `figures chaos` — the CLI face of the fault-injection engine.
//!
//! Fans a window of seeds across the sweep workers; each seed is an
//! independent [`axi_pack::chaos::check_chaos_seed`] run that replays
//! the differential kernel family under a deterministic transient fault
//! plan in both scheduler modes. CI runs a small window on every PR
//! (`chaos-smoke`); the regression corpus replays under faults with
//! `--corpus`.

use std::time::Instant;

use axi_pack::chaos::{chaos_repro_command, check_chaos_seed, ChaosOutcome};
use simkit::SweepSpec;
use workloads::synth::SynthConfig;

/// What to chaos-test: a seed window plus generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// First seed of the window.
    pub seed_start: u64,
    /// Number of consecutive seeds.
    pub count: usize,
    /// Generator configuration every seed runs at.
    pub cfg: SynthConfig,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed_start: 0,
            count: 64,
            cfg: SynthConfig::default(),
        }
    }
}

/// Aggregate result of one chaos window.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Seeds that upheld the full chaos contract.
    pub passed: usize,
    /// Total individual assertions across all passing seeds.
    pub checks: u64,
    /// Total simulated cycles across all passing seeds.
    pub cycles: u64,
    /// Faulted runs that recovered bit-identically.
    pub recovered: u64,
    /// Faulted runs that ended in a typed AXI abort.
    pub aborted: u64,
    /// Faulted runs that ended in a typed hang report.
    pub hung: u64,
    /// Total faults injected across all recovered runs.
    pub injected_faults: u64,
    /// Total retry rounds the adapters spent absorbing them.
    pub fault_retries: u64,
    /// Failing seeds as `(seed, error, repro)`, in seed order.
    pub failures: Vec<(u64, String, String)>,
    /// Wall-clock of the window in seconds.
    pub elapsed_s: f64,
}

/// Runs a chaos window, fanning seeds across the sweep worker threads.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosSummary {
    let seeds: Vec<u64> = (0..spec.count as u64)
        .map(|i| spec.seed_start + i)
        .collect();
    let t0 = Instant::now();
    let results: Vec<Result<ChaosOutcome, (u64, String)>> = SweepSpec::over(seeds)
        .run(|_ctx, &seed| check_chaos_seed(seed, &spec.cfg).map_err(|e| (seed, e)));
    let mut summary = ChaosSummary {
        passed: 0,
        checks: 0,
        cycles: 0,
        recovered: 0,
        aborted: 0,
        hung: 0,
        injected_faults: 0,
        fault_retries: 0,
        failures: Vec::new(),
        elapsed_s: t0.elapsed().as_secs_f64(),
    };
    for r in results {
        match r {
            Ok(out) => {
                summary.passed += 1;
                summary.checks += out.checks;
                summary.cycles += out.cycles;
                summary.recovered += out.recovered;
                summary.aborted += out.aborted;
                summary.hung += out.hung;
                summary.injected_faults += out.injected_faults;
                summary.fault_retries += out.fault_retries;
            }
            Err((seed, error)) => {
                let repro = chaos_repro_command(seed);
                summary.failures.push((seed, error, repro));
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_window_passes_and_classifies() {
        let s = run_chaos(&ChaosSpec {
            count: 4,
            ..ChaosSpec::default()
        });
        assert_eq!(s.passed, 4);
        assert!(s.failures.is_empty());
        assert!(s.checks > 0 && s.cycles > 0);
        // Three faulted scenarios per seed (two solo kinds + topology).
        assert_eq!(s.recovered + s.aborted + s.hung, 12);
    }
}
