//! Determinism and timing-parity regression tests of the smoke tables.
//!
//! Two guarantees the allocation-free data plane must uphold:
//!
//! 1. **Cross-thread determinism** — the `figures all --smoke --check` CI
//!    gate in miniature: a figure family rendered serially and on two
//!    worker threads is byte-identical.
//! 2. **Timing parity** — performance work must change *no simulated
//!    cycle count*. The golden FNV-1a digests below fingerprint the
//!    smoke-scale tables of representative figure families (full-system
//!    kernels and the contention family). If a change alters any cell —
//!    a cycle count, a utilization, a stall counter — the digest moves
//!    and this test fails. A *deliberate* timing change (new arbitration
//!    policy, different latency model) should update the constants in
//!    the same commit, with the reasoning in its message; an
//!    optimization never should.

use axi_pack_bench::{figures, Scale};
use simkit::sweep::THREADS_ENV;

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Renders one family at smoke scale and digests its markdown tables.
fn digest(name: &str) -> u64 {
    let fig = figures::find(name).expect("family is registered");
    let mut doc = String::new();
    for t in (fig.render)(Scale::Smoke) {
        doc.push_str(&t.to_markdown());
        doc.push('\n');
    }
    fnv1a(doc.as_bytes())
}

/// Golden digests of the smoke tables (family, FNV-1a of markdown).
/// fig3a covers every kernel end-to-end on all three systems; contention
/// covers the multi-requestor mux path; fig5c covers the analytical side.
const GOLDEN: &[(&str, u64)] = &[
    ("fig3a", 0xeaccd4e9b19ebc6f),
    ("fig5c", 0xce968912868b0b9c),
    ("contention", 0x653b176e6291fbd8),
];

/// One test (not several) because the worker-thread count travels
/// through an environment variable shared by the whole process.
#[test]
fn smoke_tables_are_deterministic_and_timing_stable() {
    // Cross-thread determinism: 2 workers vs serial, byte-identical.
    for (name, _) in GOLDEN {
        let fig = figures::find(name).expect("family is registered");
        std::env::set_var(THREADS_ENV, "2");
        let threaded = (fig.render)(Scale::Smoke);
        std::env::set_var(THREADS_ENV, "1");
        let serial = (fig.render)(Scale::Smoke);
        assert_eq!(
            threaded, serial,
            "{name}: tables differ between 1 and 2 worker threads"
        );
    }
    // Timing parity against the committed goldens (serial render).
    for (name, want) in GOLDEN {
        let got = digest(name);
        assert_eq!(
            got, *want,
            "{name}: smoke tables changed (digest 0x{got:016x}, golden 0x{want:016x}). \
             If this is a deliberate timing-model change, update GOLDEN in this test; \
             a performance optimization must never get here."
        );
    }
    std::env::remove_var(THREADS_ENV);
}
