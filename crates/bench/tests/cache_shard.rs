//! End-to-end exercise of the sharded, resumable cache execution protocol
//! against a real figure family (Fig. 3a at smoke scale).
//!
//! One `#[test]` on purpose: the result cache installs into a process-wide
//! slot, and the default test harness runs `#[test]`s concurrently — two
//! of these interleaving installs would race. Sequencing the phases inside
//! one body keeps the global slot single-owner without a custom harness.

use axi_pack::cache::{self, CacheSetup, ShardSpec};
use axi_pack_bench::{figures, Scale};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("axi-pack-shard-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Renders Fig. 3a under the given cache setup and returns the markdown
/// plus the cache handle (for stats assertions after uninstall).
fn render(setup: &CacheSetup) -> (String, Arc<axi_pack::RunCache>) {
    let rc = cache::install(setup);
    let fig = figures::find("fig3a").expect("fig3a registered");
    let tables = (fig.render)(Scale::Smoke);
    cache::uninstall();
    let md: String = tables.iter().map(|t| t.to_markdown()).collect();
    (md, rc)
}

fn sharded(dir: &Path, index: u32, total: u32) -> CacheSetup {
    let mut s = CacheSetup::new(dir.to_path_buf());
    s.shard = Some(ShardSpec { index, total });
    s.manifest_tag = Some("it-fig3a".into());
    s
}

#[test]
fn shard_union_and_resume_reproduce_the_unsharded_tables() {
    // Phase 1 — baseline: cold compute, then a warm re-render must be
    // byte-identical with a 100% hit rate.
    let base_dir = tmp("base");
    let (cold, rc) = render(&CacheSetup::new(base_dir.clone()));
    assert!(rc.computed() > 0, "cold run must simulate");
    assert_eq!(rc.hits(), 0, "cold run cannot hit");
    let total_points = rc.computed();

    let (warm, rc) = render(&CacheSetup::new(base_dir.clone()));
    assert_eq!(warm, cold, "warm render must be byte-identical");
    assert_eq!(rc.computed(), 0, "warm run must not simulate");
    assert_eq!(rc.hits(), total_points, "warm run must hit every point");

    // Phase 2 — sharding: N shards into one fresh store, each computing
    // only its keyspace slice; the union then serves an unsharded render
    // with zero computation and the baseline bytes.
    let shard_dir = tmp("shards");
    let total = 3;
    let mut shard_computed = 0;
    for i in 0..total {
        let (_, rc) = render(&sharded(&shard_dir, i, total));
        shard_computed += rc.computed();
        assert_eq!(rc.resumed_skips(), 0);
    }
    // Later shards may pick earlier shards' results off the shared store
    // as plain hits, so the union covers the keyspace without recompute.
    assert!(
        shard_computed <= total_points,
        "shards must not redo work: {shard_computed} vs {total_points}"
    );
    let (union, rc) = render(&CacheSetup::new(shard_dir.clone()));
    assert_eq!(union, cold, "shard union must reproduce the baseline");
    assert_eq!(rc.computed(), 0, "shard union must serve every point");

    // Phase 3 — kill and resume: a budgeted shard dies after 5 points;
    // the --resume pass skips exactly those 5 via the manifest and
    // finishes the rest; a final plain render matches the baseline.
    let res_dir = tmp("resume");
    let mut killed = sharded(&res_dir, 0, 1);
    killed.compute_budget = Some(5);
    let (_, rc) = render(&killed);
    assert_eq!(rc.computed(), 5, "budget must stop the shard at 5 points");
    assert!(rc.budget_skips() > 0, "the rest must be deferred");

    let mut resumed = sharded(&res_dir, 0, 1);
    resumed.resume = true;
    let (_, rc) = render(&resumed);
    assert_eq!(
        rc.resumed_skips(),
        5,
        "manifest must skip the 5 done points"
    );
    assert_eq!(rc.budget_skips(), 0, "no budget: resume finishes the shard");
    assert_eq!(rc.computed() + rc.resumed_skips() + rc.hits(), total_points);

    let (finished, rc) = render(&CacheSetup::new(res_dir.clone()));
    assert_eq!(finished, cold, "resumed store must reproduce the baseline");
    assert_eq!(rc.computed(), 0);

    // Phase 4 — verification: sampled hits recompute byte-identical.
    let mut verifying = CacheSetup::new(base_dir.clone());
    verifying.verify = true;
    let (_, rc) = render(&verifying);
    assert!(rc.verified() > 0, "the 1-in-8 sample must catch some hits");
    assert_eq!(rc.verify_failures(), 0, "stored blobs must match recompute");

    for d in [base_dir, shard_dir, res_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
