//! Quickstart: run one sparse matrix-vector multiply on all three systems
//! and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use axi_pack::{run_kernel, SystemConfig};
use vproc::SystemKind;
use workloads::{spmv, CsrMatrix};

fn main() -> Result<(), String> {
    // A synthetic CSR operand: 64 rows, ~32 nonzeros per row.
    let matrix = CsrMatrix::random(64, 128, 32.0, 42);
    println!(
        "spmv on a {}x{} CSR matrix with {} nonzeros ({:.1}/row)\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.avg_nnz_per_row()
    );
    let mut baseline = None;
    for kind in [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal] {
        let cfg = SystemConfig::paper(kind);
        let kernel = spmv::build(&matrix, 42, &cfg.kernel_params());
        let report = run_kernel(&cfg, &kernel)?;
        print!("{report}");
        match &baseline {
            None => {
                baseline = Some(report);
                println!();
            }
            Some(base) => println!("  -> {:.2}x speedup", report.speedup_over(base)),
        }
    }
    println!("\nAll three runs produced the same verified result.");
    Ok(())
}
