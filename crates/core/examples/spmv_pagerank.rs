//! PageRank end to end: indirect gathers through AXI-Pack's in-memory
//! indexed loads, iterated until the ranking stabilizes.
//!
//! ```sh
//! cargo run --release --example spmv_pagerank
//! ```

use axi_pack::{run_kernel, SystemConfig};
use vproc::SystemKind;
use workloads::{prank, CsrMatrix};

fn main() -> Result<(), String> {
    let graph = CsrMatrix::random(96, 96, 12.0, 7);
    println!(
        "PageRank over a {}-node graph with {} edges, 3 iterations\n",
        graph.rows(),
        graph.nnz()
    );
    let mut reports = Vec::new();
    for kind in [SystemKind::Base, SystemKind::Pack] {
        let cfg = SystemConfig::paper(kind);
        let kernel = prank::build(&graph, 3, &cfg.kernel_params());
        let report = run_kernel(&cfg, &kernel)?;
        println!("{report}");
        reports.push((kernel, report));
    }
    let (kernel, pack) = &reports[1];
    let (_, base) = &reports[0];
    println!("\nPACK speedup: {:.2}x", pack.speedup_over(base));
    println!(
        "PACK energy-efficiency improvement: {:.2}x",
        pack.efficiency_over(base)
    );
    // Show the top-ranked nodes from the verified result.
    let mut ranked: Vec<(usize, f32)> = kernel.expected[0]
        .values
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 nodes by rank:");
    for (node, rank) in ranked.iter().take(5) {
        println!("  node {node:>3}: {rank:.5}");
    }
    Ok(())
}
