//! Explore how stride and bank count interact: the effect behind the
//! paper's Fig. 5b and its 17-bank design choice.
//!
//! ```sh
//! cargo run --release --example stride_explorer [-- <max_stride>]
//! ```

use axi_pack::requestor::{strided_read_util, SweepConfig};
use axi_proto::ElemSize;

fn main() {
    let max_stride: i32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let banks = [8usize, 16, 17, 32];
    print!("{:>7} |", "stride");
    for b in banks {
        print!(" {b:>3}-bank |");
    }
    println!();
    println!("{}", "-".repeat(9 + banks.len() * 11));
    for stride in 1..=max_stride {
        print!("{stride:>7} |");
        for b in banks {
            let cfg = SweepConfig {
                banks: b,
                bursts: 1,
                ..SweepConfig::default()
            };
            let util = strided_read_util(&cfg, ElemSize::B4, stride);
            print!("  {:>6.1}% |", 100.0 * util);
        }
        println!();
    }
    println!(
        "\nPower-of-two bank counts collapse whenever the stride shares a factor \
         with the bank count; prime counts (17) stay near peak for every stride."
    );
}
