//! Two requestors — a strided streamer and an indirect gatherer — share
//! one AXI-Pack memory controller through an ID-remapping mux, the
//! multi-requestor configuration the paper sketches in §II-A.
//!
//! ```sh
//! cargo run --release --example shared_bus
//! ```

use axi_proto::{ArBeat, AxiChannels, AxiMux, BusConfig, ElemSize, IdxSize};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig};

fn main() {
    let bus = BusConfig::new(256);
    let mut storage = Storage::new(1 << 18);
    for w in 0..(1 << 16) {
        storage.write_u32(4 * w, w as u32);
    }
    let indices: Vec<u32> = (0..512u32).map(|i| (i * 193) % 8192).collect();
    storage.write_u32_slice(0x20000, &indices);
    let mut adapter = Adapter::new(CtrlConfig::new(bus, BankConfig::default(), 4), storage);
    let mut down = AxiChannels::new();
    let mut mux = AxiMux::new(2);
    let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];

    // Manager 0 streams strided bursts, manager 1 gathers indirectly.
    let mut q0: Vec<ArBeat> = (0..4)
        .map(|i| ArBeat::packed_strided(i, 0x400 * (i as u64 + 1), 128, ElemSize::B4, 5, &bus))
        .collect();
    let mut q1: Vec<ArBeat> = (0..4)
        .map(|i| {
            ArBeat::packed_indirect(
                i,
                0x20000 + 512 * i as u64,
                128,
                ElemSize::B4,
                IdxSize::B4,
                0,
                &bus,
            )
        })
        .collect();
    q0.reverse();
    q1.reverse();

    let mut beats = [0u64; 2];
    let mut cycles = 0u64;
    loop {
        if mgrs[0].ar.can_push() {
            if let Some(ar) = q0.pop() {
                mgrs[0].ar.push(ar);
            }
        }
        if mgrs[1].ar.can_push() {
            if let Some(ar) = q1.pop() {
                mgrs[1].ar.push(ar);
            }
        }
        for (p, m) in mgrs.iter_mut().enumerate() {
            if m.r.pop().is_some() {
                beats[p] += 1;
            }
        }
        mux.tick(&mut mgrs, &mut down);
        adapter.tick(&mut down);
        adapter.end_cycle();
        down.end_cycle();
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        cycles += 1;
        if beats[0] == 64 && beats[1] == 64 {
            break;
        }
        assert!(cycles < 100_000, "hung");
    }
    println!("two requestors shared one AXI-Pack endpoint:");
    println!("  strided manager : {} beats", beats[0]);
    println!("  indirect manager: {} beats", beats[1]);
    println!("  total           : {cycles} cycles");
    println!(
        "  combined R throughput: {:.1}% of one bus",
        100.0 * (beats[0] + beats[1]) as f64 / cycles as f64
    );
}
