//! Two requestors — a strided gemv and an indirect spmv — share one
//! AXI-Pack bus and near-memory adapter through the ID-remapping mux: the
//! multi-requestor configuration the paper sketches in §II-A, now a
//! first-class [`Topology`].
//!
//! ```sh
//! cargo run --release --example shared_bus
//! ```

use axi_pack::{run_system, SystemConfig, Topology};
use vproc::SystemKind;
use workloads::{gemv, spmv, CsrMatrix, Dataflow};

fn main() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let params = cfg.kernel_params();
    let strided = gemv::build(64, 7, Dataflow::ColWise, &params);
    let indirect = spmv::build(&CsrMatrix::random(48, 64, 9.0, 5), 3, &params);
    let topo = Topology::builder(&cfg)
        .requestor(SystemKind::Pack, strided)
        .requestor(SystemKind::Pack, indirect)
        .build()
        .expect("two-requestor topology is DRC-clean");
    let report = run_system(&topo).expect("both requestors verify");
    println!("two requestors shared one AXI-Pack endpoint:");
    for r in &report.requestors {
        println!(
            "  {:>6}: {:>6} cycles, R util {:>5.1}%, {} AR stall cycles",
            r.kernel,
            r.cycles,
            100.0 * r.r_util,
            r.ar_stall_cycles
        );
    }
    println!(
        "  total : {:>6} cycles, bus busy {:.1}%, {} bank conflicts",
        report.cycles,
        100.0 * report.bus_r_busy,
        report.bank_conflicts
    );
}
