//! A guided tour of the AXI-Pack protocol itself: craft packed bursts by
//! hand, push them into the memory controller, and watch tightly-packed
//! beats come back.
//!
//! ```sh
//! cargo run --release --example protocol_tour
//! ```

use axi_proto::{ArBeat, AxiChannels, BusConfig, ElemSize, IdxSize, PackMode};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig};

fn main() {
    let bus = BusConfig::new(256);
    // 1. Encode a strided request and inspect its user field.
    let ar = ArBeat::packed_strided(1, 0x100, 16, ElemSize::B4, 5, &bus);
    println!(
        "strided AR: addr=0x{:x} beats={} user=0x{:x}",
        ar.addr, ar.beats, ar.user
    );
    println!("  decodes to: {}\n", ar.pack_mode().expect("packed"));

    // 2. Stand up a controller over a recognizable memory image.
    let mut storage = Storage::new(1 << 16);
    for w in 0..(1 << 14) {
        storage.write_u32(4 * w, w as u32);
    }
    storage.write_u32_slice(0x8000, &[3, 1, 4, 1, 5, 9, 2, 6]);
    let cfg = CtrlConfig::new(bus, BankConfig::default(), 4);
    let mut adapter = Adapter::new(cfg, storage);
    let mut ch = AxiChannels::new();

    // 3. A strided burst: every 5th word, packed 8 per beat.
    ch.ar.push(ar);
    // 4. An indirect burst: gather through the index array at 0x8000.
    let ind = ArBeat::packed_indirect(2, 0x8000, 8, ElemSize::B4, IdxSize::B4, 0, &bus);
    println!(
        "indirect AR: idx_addr=0x{:x} user decodes to: {}\n",
        ind.addr,
        ind.pack_mode().expect("packed")
    );

    let mut pending = vec![ind];
    for _cycle in 0..200 {
        if ch.ar.can_push() {
            if let Some(ar) = pending.pop() {
                ch.ar.push(ar);
            }
        }
        if let Some(beat) = ch.r.pop() {
            let words: Vec<u32> = (0..8)
                .map(|k| u32::from_le_bytes(beat.data[4 * k..4 * k + 4].try_into().expect("4")))
                .collect();
            println!("R beat ({}, last={}): {words:?}", beat.id, beat.last);
        }
        adapter.tick(&mut ch);
        adapter.end_cycle();
        ch.end_cycle();
        if adapter.quiescent() && ch.is_empty() && pending.is_empty() {
            break;
        }
    }
    println!(
        "\nplain AXI4 requestors see user=0, e.g. {:?}",
        PackMode::decode(0)
    );
}
