//! `axi-pack` — end-to-end simulation of the paper's three evaluation
//! systems.
//!
//! This is the crate a user of the reproduction drives. It assembles
//!
//! * a [`vproc::Engine`] (CVA6 + Ara model) configured as BASE, PACK or
//!   IDEAL,
//! * for BASE/PACK: an AXI(-Pack) bus ([`axi_proto::AxiChannels`]) and the
//!   banked memory controller ([`pack_ctrl::Adapter`]) over a 17-bank SRAM,
//! * for IDEAL: a per-lane-port idealized memory,
//!
//! runs a [`workloads::Kernel`] to completion, verifies the functional
//! result against the kernel's scalar reference, and reports cycles, bus
//! utilization and energy.
//!
//! Multi-requestor systems (paper §II-A/§V) are first-class: a
//! [`Topology`] — assembled panic-free through [`TopologyBuilder`] —
//! places N requestors, each with its own kernel, [`vproc::SystemKind`]
//! and private address-space window, on a hierarchical fabric
//! ([`FabricSpec`]): cascaded ID-prefix mux trees funnel up to 128
//! requestors onto address-interleaved memory channels, and
//! [`run_system`] measures them together (contention, arbitration
//! fairness, shared-bank conflicts, per-level fabric occupancy).
//!
//! ```
//! use axi_pack::{SystemConfig, run_kernel};
//! use vproc::SystemKind;
//! use workloads::{ismt, KernelParams};
//!
//! let cfg = SystemConfig::paper(SystemKind::Pack);
//! let kernel = ismt::build(16, 7, &cfg.kernel_params());
//! let report = run_kernel(&cfg, &kernel).expect("kernel verifies");
//! assert!(report.cycles > 0);
//! ```

// Public-API documentation is part of this crate's contract: every
// public item must explain what paper structure it models.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod differential;
pub mod drc;
pub mod prelude;
pub mod report;
pub mod requestor;
pub mod system;

pub use cache::{CacheSetup, RunCache, ShardSpec};
pub use chaos::{check_chaos_seed, ChaosOutcome};
pub use differential::{memory_digest, RunProbe, SchedProbe};
pub use drc::{check_single, check_topology, Diagnostic, DrcReport, Rule, Severity};
pub use report::{LevelOccupancy, RunReport, SystemReport};
pub use system::{
    default_sched_mode, run_kernel, run_kernel_probed, run_system, run_system_probed,
    set_default_sched_mode, FabricSpec, Placement, Requestor, RunError, SchedMode, SystemConfig,
    Topology, TopologyBuilder, WINDOW_ALIGN,
};

// Sweep points run on `simkit::sweep` worker threads: everything a point
// closure captures or returns must stay `Send + Sync`. Compile-time audit
// so a stray `Rc`/`RefCell` in a config or report breaks the build here,
// not in a distant figure harness.
const _: () = {
    const fn assert_thread_safe<T: Send + Sync>() {}
    assert_thread_safe::<SystemConfig>();
    assert_thread_safe::<Topology>();
    assert_thread_safe::<RunReport>();
    assert_thread_safe::<SystemReport>();
    assert_thread_safe::<requestor::SweepConfig>();
    assert_thread_safe::<RunError>();
    assert_thread_safe::<DrcReport>();
    assert_thread_safe::<FabricSpec>();
    assert_thread_safe::<Placement>();
    assert_thread_safe::<TopologyBuilder>();
    assert_thread_safe::<LevelOccupancy>();
    // The installed result cache is shared across the same workers.
    assert_thread_safe::<RunCache>();
};
