//! The chaos engine (`figures chaos`): differential fuzzing **under
//! injected faults**.
//!
//! Every seed expands into the same kernel family the differential
//! engine checks, then replays it with a deterministic
//! [`FaultSpec::transient`] plan armed — transient bank errors, access
//! delay spikes, decode rejects and arbitration grant storms, all keyed
//! on per-site operation ordinals. The contract a seed must uphold:
//!
//! 1. **Recover or abort, never wedge.** Every faulted run either
//!    completes with a **bit-identical** final memory image (the adapter
//!    absorbed every transient inside its retry budget) or returns a
//!    typed error — [`RunError::Axi`] with a [`FaultReport`] naming the
//!    site, or [`RunError::Hang`] with component forensics. A panic,
//!    a silent wrong answer, or an untyped failure fails the seed.
//! 2. **Mode determinism.** The event-driven and lockstep schedulers
//!    must agree: recovered runs produce bit-equal digests and
//!    [`RunReport`](crate::report::RunReport)s (including fault
//!    counters); aborted runs produce
//!    bit-equal [`FaultReport`]s. Hangs are compared by class only —
//!    the watchdog's firing cycle is the one quantity allowed to differ.
//! 3. **Isolation on the shared bus.** A 2-requestor topology under the
//!    same plan must report per-requestor [`RequestorOutcome`]s; both
//!    modes must classify every requestor identically, and a fully
//!    recovered topology must reproduce the fault-free composed store.
//!
//! With no [`FaultSpec`] armed, none of this code runs — `figures all`
//! output stays byte-identical and the disabled hooks are covered by the
//! `fault_overhead` probe in `BENCH_hotpath.json`.

use simkit::fault::{FaultReport, FaultSpec};
use vproc::SystemKind;
use workloads::synth::{self, SplitMix64, SynthConfig};

use crate::differential::{memory_digest, report_divergence, seed_system, RunProbe};
use crate::report::RequestorOutcome;
use crate::system::{
    run_kernel_probed, run_system_probed, Requestor, RunError, SchedMode, Topology,
};

/// Progress-watchdog window for every chaos run. Injected stalls (delay
/// spikes, grant storms) deliberately do **not** count as progress, so
/// the window must dwarf the longest plan-injected stall
/// (`bank_delay_len` + `grant_storm_len`, a few hundred cycles) while
/// still catching a genuinely wedged datapath quickly.
pub const CHAOS_WATCHDOG: u64 = 200_000;

/// What one shared-bus chaos run resolves to: the per-requestor
/// outcome vector (empty = the whole topology hung) plus, when fully
/// recovered, the verified digest and report.
type SharedOutcome = (
    Vec<RequestorOutcome>,
    Option<(u64, crate::report::SystemReport)>,
);

/// How one faulted run ended, reduced to the classes the cross-mode
/// comparison cares about.
#[derive(Debug, Clone, PartialEq)]
enum ChaosClass {
    /// Completed with a verified, digest-checked result.
    Recovered { digest: u64 },
    /// Typed abort: retry budget exhausted or unretryable fault.
    Aborted(FaultReport),
    /// Progress watchdog (or cycle ceiling) fired.
    Hung,
}

impl ChaosClass {
    fn name(&self) -> &'static str {
        match self {
            ChaosClass::Recovered { .. } => "recovered",
            ChaosClass::Aborted(_) => "aborted",
            ChaosClass::Hung => "hung",
        }
    }
}

/// What one chaos seed's checks covered (for reporting).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seed.
    pub seed: u64,
    /// One-line scenario description from the generator.
    pub summary: String,
    /// Individual assertions that held.
    pub checks: u64,
    /// Total simulated cycles across every run of this seed.
    pub cycles: u64,
    /// Faulted runs that recovered bit-identically.
    pub recovered: u64,
    /// Faulted runs that ended in a typed [`RunError::Axi`] abort.
    pub aborted: u64,
    /// Faulted runs that ended in a typed [`RunError::Hang`].
    pub hung: u64,
    /// Total faults injected across all recovered runs.
    pub injected_faults: u64,
    /// Total retry rounds spent across all recovered runs.
    pub fault_retries: u64,
}

/// Runs one chaos run and classifies the result.
///
/// `Err` means the run failed the chaos contract itself: an untyped
/// error, a protocol violation, or a recovered run whose memory image
/// diverges from `reference`.
fn classify_solo(
    sys: &crate::system::SystemConfig,
    kernel: &workloads::Kernel,
    reference: u64,
    cycles: &mut u64,
) -> Result<(ChaosClass, Option<crate::report::RunReport>), String> {
    let mut probe = RunProbe::default();
    match run_kernel_probed(sys, kernel, &mut probe) {
        Ok(report) => {
            if let Some(v) = probe.violation_summary() {
                return Err(format!("protocol violations under fault: {v}"));
            }
            let digest = probe.storage_digest.expect("probed run digests storage");
            if digest != reference {
                return Err(format!(
                    "recovered run diverges from the fault-free image \
                     (digest {digest:#018x} vs {reference:#018x})"
                ));
            }
            *cycles += report.cycles;
            Ok((ChaosClass::Recovered { digest }, Some(report)))
        }
        Err(RunError::Axi(r)) => Ok((ChaosClass::Aborted(r), None)),
        Err(RunError::Hang(r)) => {
            // A hang report must name a suspect — empty forensics would
            // make the report useless for triage.
            if r.components.is_empty() || r.suspect.is_empty() {
                return Err(format!("hang report carries no forensics: {r}"));
            }
            Ok((ChaosClass::Hung, None))
        }
        Err(e) => Err(format!("untyped failure under fault: {e}")),
    }
}

/// Runs *every* chaos check for one seed: per-kind solo runs and the
/// 2-requestor shared-bus topology, each under the seed's transient
/// fault plan in both scheduler modes.
///
/// # Errors
///
/// Returns a human-readable description of the first check that failed,
/// prefixed with enough context to localize it.
pub fn check_chaos_seed(seed: u64, cfg: &SynthConfig) -> Result<ChaosOutcome, String> {
    let mut checks = 0u64;
    let mut cycles = 0u64;
    let mut recovered = 0u64;
    let mut aborted = 0u64;
    let mut hung = 0u64;
    let mut injected = 0u64;
    let mut retries = 0u64;

    // IDEAL has no bus and no banked endpoint, so no fault site can
    // reach it — chaos covers the two bus-attached kinds.
    let kinds = [SystemKind::Base, SystemKind::Pack];
    let max_vl = seed_system(seed, SystemKind::Pack).kernel_params().max_vl;
    let built = synth::build_kinds(seed, cfg, max_vl, &kinds);
    let summary = built[0].summary.clone();
    // Every fourth seed runs with a nearly-exhausted retry budget so the
    // typed-abort path (budget exhaustion → [`RunError::Axi`]) is
    // exercised across the window, not only in unit tests.
    let mut plan = FaultSpec::transient(seed);
    if seed % 4 == 3 {
        plan.retry_budget = 1;
    }

    for (&kind, sk) in kinds.iter().zip(&built) {
        let mut sys = seed_system(seed, kind);
        sys.sched = SchedMode::Event;
        sys.watchdog = CHAOS_WATCHDOG;

        // Fault-free baseline: the digest every recovered run must hit.
        let mut base_probe = RunProbe::default();
        let base = run_kernel_probed(&sys, &sk.kernel, &mut base_probe)
            .map_err(|e| format!("seed {seed}: fault-free {kind} baseline failed: {e}"))?;
        let reference = base_probe.storage_digest.expect("probed baseline digests");
        if base.injected_faults != 0 || base.fault_retries != 0 {
            return Err(format!(
                "seed {seed}: fault-free {kind} baseline reports nonzero fault counters"
            ));
        }
        cycles += base.cycles;
        checks += 2;

        // The same kernel under the armed plan, in both modes.
        sys.fault = Some(plan);
        let (ev_class, ev_report) = classify_solo(&sys, &sk.kernel, reference, &mut cycles)
            .map_err(|e| format!("seed {seed}: {kind} event-mode chaos run: {e}"))?;
        let mut lock_sys = sys;
        lock_sys.sched = SchedMode::Lockstep;
        let (lk_class, lk_report) = classify_solo(&lock_sys, &sk.kernel, reference, &mut cycles)
            .map_err(|e| format!("seed {seed}: {kind} lockstep chaos run: {e}"))?;
        checks += 2;

        // Mode determinism: same class; recovered → bit-equal reports;
        // aborted → bit-equal fault reports.
        match (&ev_class, &lk_class) {
            (ChaosClass::Recovered { .. }, ChaosClass::Recovered { .. }) => {
                let (ev, lk) = (ev_report.expect("recovered"), lk_report.expect("recovered"));
                if let Some(field) = report_divergence(&ev, &lk) {
                    return Err(format!(
                        "seed {seed}: {kind} chaos report diverges between event and \
                         lockstep modes on {field} (scenario: {summary})"
                    ));
                }
                recovered += 1;
                injected += ev.injected_faults;
                retries += ev.fault_retries;
            }
            (ChaosClass::Aborted(a), ChaosClass::Aborted(b)) => {
                if a != b {
                    return Err(format!(
                        "seed {seed}: {kind} fault report differs between modes: \
                         [{a}] vs [{b}]"
                    ));
                }
                aborted += 1;
            }
            (ChaosClass::Hung, ChaosClass::Hung) => hung += 1,
            (a, b) => {
                return Err(format!(
                    "seed {seed}: {kind} chaos outcome class differs between modes: \
                     {} (event) vs {} (lockstep)",
                    a.name(),
                    b.name()
                ));
            }
        }
        checks += 1;
    }

    // --- Shared-bus isolation: 2 requestors under the same plan ------
    let pack_sys = {
        let mut s = seed_system(seed, SystemKind::Pack);
        s.sched = SchedMode::Event;
        s.watchdog = CHAOS_WATCHDOG;
        s
    };
    let mut rng = SplitMix64::new(seed ^ 0xC4A0_5EED_0000_0001);
    let mut requestors = Vec::with_capacity(2);
    let mut refs: Vec<std::sync::Arc<[u8]>> = Vec::with_capacity(2);
    for i in 0..2 {
        let sub_seed = simkit::sweep::point_seed(seed, i);
        let kind = if rng.below(2) == 0 {
            SystemKind::Pack
        } else {
            SystemKind::Base
        };
        let sk = synth::build(sub_seed, cfg, &pack_sys.kernel_params_for(kind));
        refs.push(sk.final_mem.clone());
        requestors.push(Requestor::new(kind, sk.kernel));
    }
    let mut topo = Topology::builder(&pack_sys)
        .requestors(requestors)
        .build()
        .map_err(|e| format!("seed {seed}: generated chaos topology violates the DRC: {e}"))?;

    // Fault-free composed reference.
    let bases = topo.placement().window_bases;
    let total = bases
        .iter()
        .zip(&refs)
        .map(|(&b, r)| b as usize + r.len())
        .max()
        .expect("two requestors");
    let mut composed = vec![0u8; total];
    for (&base, r) in bases.iter().zip(&refs) {
        composed[base as usize..base as usize + r.len()].copy_from_slice(r);
    }
    let reference = memory_digest(&composed);

    topo.system.fault = Some(plan);
    let classify_shared = |topo: &Topology| -> Result<SharedOutcome, String> {
        let mut probe = RunProbe::default();
        match run_system_probed(topo, &mut probe) {
            Ok(report) => {
                if report.all_completed() {
                    if let Some(v) = probe.violation_summary() {
                        return Err(format!("protocol violations under fault: {v}"));
                    }
                    let digest = probe.storage_digest.expect("probed run digests");
                    if digest != reference {
                        return Err(format!(
                            "recovered topology diverges from the composed fault-free \
                             image (digest {digest:#018x} vs {reference:#018x})"
                        ));
                    }
                    Ok((report.outcomes.clone(), Some((digest, report))))
                } else {
                    Ok((report.outcomes, None))
                }
            }
            Err(RunError::Hang(_)) => Ok((Vec::new(), None)),
            Err(e) => Err(format!("untyped failure under fault: {e}")),
        }
    };
    let ev = classify_shared(&topo)
        .map_err(|e| format!("seed {seed}: 2-requestor event-mode chaos run: {e}"))?;
    let mut lock_topo = topo;
    lock_topo.system.sched = SchedMode::Lockstep;
    let lk = classify_shared(&lock_topo)
        .map_err(|e| format!("seed {seed}: 2-requestor lockstep chaos run: {e}"))?;
    checks += 2;
    // An empty outcome vector encodes "the whole topology hung" — the
    // one shared-run class compared by class alone.
    if ev.0 != lk.0 {
        return Err(format!(
            "seed {seed}: 2-requestor per-requestor outcomes differ between modes: \
             {:?} (event) vs {:?} (lockstep)",
            ev.0.iter().map(|o| o.is_completed()).collect::<Vec<_>>(),
            lk.0.iter().map(|o| o.is_completed()).collect::<Vec<_>>()
        ));
    }
    checks += 1;
    match (ev.1, lk.1) {
        (Some((ed, er)), Some((ld, lr))) => {
            if ed != ld {
                return Err(format!(
                    "seed {seed}: 2-requestor recovered digests differ between modes"
                ));
            }
            for (i, (a, b)) in er.requestors.iter().zip(&lr.requestors).enumerate() {
                if let Some(field) = report_divergence(a, b) {
                    return Err(format!(
                        "seed {seed}: 2-requestor chaos, requestor {i} report diverges \
                         between modes on {field}"
                    ));
                }
            }
            recovered += 1;
            cycles += er.cycles + lr.cycles;
            checks += 3;
        }
        (None, None) => {
            if ev.0.is_empty() {
                hung += 1;
            } else {
                aborted += 1;
            }
        }
        _ => unreachable!("outcome vectors compared equal above"),
    }

    Ok(ChaosOutcome {
        seed,
        summary,
        checks,
        cycles,
        recovered,
        aborted,
        hung,
        injected_faults: injected,
        fault_retries: retries,
    })
}

/// The one-line command that reproduces a failing chaos seed.
pub fn chaos_repro_command(seed: u64) -> String {
    format!("figures chaos --seed-start {seed} --count 1")
}

/// Replays the whole fuzz regression corpus
/// ([`crate::differential::SEED_CORPUS`]) under each case's transient
/// fault plan; returns the number of cases run.
///
/// # Errors
///
/// *Every* failing case as `(seed, message)`, each message carrying the
/// case's corpus note — shared by the tier-1 chaos-corpus test and
/// `figures chaos --corpus`.
pub fn replay_chaos_corpus() -> Result<usize, Vec<(u64, String)>> {
    let corpus = crate::differential::SEED_CORPUS;
    let failures: Vec<(u64, String)> = corpus
        .iter()
        .filter_map(|c| {
            check_chaos_seed(c.seed, &c.cfg)
                .err()
                .map(|e| (c.seed, format!("corpus case '{}': {e}", c.note)))
        })
        .collect();
    if failures.is_empty() {
        Ok(corpus.len())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_chaos_seeds_uphold_the_contract() {
        let cfg = SynthConfig::default();
        let mut total_faults = 0u64;
        for seed in 0..4 {
            let out = check_chaos_seed(seed, &cfg).expect("chaos seed must pass");
            assert!(out.checks >= 8, "seed {seed} ran too few checks");
            assert_eq!(
                out.recovered + out.aborted + out.hung,
                3,
                "seed {seed}: two solo runs and one topology must each classify"
            );
            total_faults += out.injected_faults;
        }
        assert!(
            total_faults > 0,
            "the transient plan injected nothing across four seeds — \
             chaos would be vacuous"
        );
    }

    #[test]
    fn chaos_repro_is_one_line() {
        assert_eq!(
            chaos_repro_command(17),
            "figures chaos --seed-start 17 --count 1"
        );
    }
}
