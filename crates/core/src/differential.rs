//! The randomized differential scenario engine (`figures fuzz`).
//!
//! Every seed expands into a family of checks that must all agree:
//!
//! 1. **Cross-system differential** — a random kernel from
//!    [`workloads::synth`] runs on BASE, PACK and IDEAL; each run's final
//!    backing store must match the host-side reference model
//!    **bit-for-bit** ([`memory_digest`]), every AXI handshake is checked
//!    by a protocol [`axi_proto::checker::Monitor`], and the kernel's
//!    tolerance checks must pass.
//! 2. **Metamorphic invariants** — a single-requestor [`Topology`] must
//!    reproduce the solo [`crate::run_kernel`] cycle count exactly; relocating
//!    the kernel into a 4 KiB-aligned address window
//!    ([`workloads::Kernel::rebased`]) must change neither cycles nor
//!    results.
//! 3. **Topology replay** — the same seed expands into 2- and 4-requestor
//!    shared-bus topologies (mixed BASE/PACK/IDEAL kinds); the shared
//!    store must equal the composition of every requestor's reference
//!    memory in its window, with all per-port and downstream monitors
//!    violation-free.
//! 4. **Burst-level differential** — random packed/plain bursts at *all*
//!    element widths (the kernel path is 32-bit only) drive the adapter
//!    directly; R payloads must match the [`axi_proto::expand`] reference
//!    expansion and plain writes must land exactly where issued.
//! 5. **Scheduler oracle** — every solo run and the 2-requestor topology
//!    are replayed in lockstep mode ([`SchedMode::Lockstep`]); completion
//!    cycles, memory digests and every [`crate::RunReport`] counter
//!    (stalls, conflicts, utilizations bit-compared) must be identical to
//!    the event-driven run, and the lockstep replay must fast-forward
//!    zero spans.
//!
//! A failing seed reports a one-line repro command
//! ([`repro_command`]); [`minimize`] shrinks it by halving program
//! length, then element count, re-running the same seed at each rung.

use axi_proto::checker::Monitor;
use axi_proto::expand::element_addresses;
use axi_proto::{Addr, ArBeat, AxiChannels, BusConfig, ElemSize, IdxSize, WBeat};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig};
use vproc::SystemKind;
use workloads::synth::{self, SplitMix64, SynthConfig, SynthKernel};

use crate::report::RunReport;
use crate::system::{
    run_kernel_probed, run_system, run_system_probed, Requestor, SchedMode, SystemConfig, Topology,
};

/// FNV-1a digest of a memory image — the bit-for-bit comparison the
/// differential checks use (two stores are considered equal iff every
/// byte matches; FNV keeps the comparison O(n) with no allocation).
pub fn memory_digest(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Scheduler activity of one probed run.
///
/// Deliberately kept out of [`crate::RunReport`]: reports must be
/// bit-identical between event and lockstep modes (that is the oracle's
/// contract), while skip counts are a property of *how* time advanced.
/// Lockstep runs report all zeros.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedProbe {
    /// Cycles covered by fast-forwarded idle spans instead of ticks.
    pub skipped_cycles: u64,
    /// Number of idle spans fast-forwarded.
    pub skip_spans: u64,
}

impl SchedProbe {
    /// Accounts one fast-forwarded span of `span` cycles.
    #[inline]
    pub fn record_span(&mut self, span: u64) {
        self.skipped_cycles += span;
        self.skip_spans += 1;
    }
}

/// Observation state a probed run fills in: per-manager protocol
/// monitors, the shared downstream monitor (muxed runs), a digest of
/// the final backing store, and the scheduler's skip accounting.
#[derive(Debug, Default)]
pub struct RunProbe {
    /// One monitor per bus-attached manager port, in port order (empty
    /// for IDEAL-only runs).
    pub monitors: Vec<Monitor>,
    /// Monitor on the shared link below the mux; `None` without a mux.
    pub downstream: Option<Monitor>,
    /// One monitor per memory channel on the root link of its mux tree
    /// (hierarchical-fabric runs only; empty on the flat path).
    pub roots: Vec<Monitor>,
    /// [`memory_digest`] of the final backing store.
    pub storage_digest: Option<u64>,
    /// Idle spans the event-driven scheduler fast-forwarded (all zeros in
    /// lockstep mode).
    pub sched: SchedProbe,
}

impl RunProbe {
    /// Returns a description of every protocol violation and every
    /// non-quiescent monitor, or `None` when the run was protocol-clean.
    pub fn violation_summary(&self) -> Option<String> {
        let mut out = Vec::new();
        let sides = self
            .monitors
            .iter()
            .enumerate()
            .map(|(i, m)| (format!("manager {i}"), m))
            .chain(self.downstream.iter().map(|m| ("downstream".into(), m)))
            .chain(
                self.roots
                    .iter()
                    .enumerate()
                    .map(|(c, m)| (format!("channel {c} root"), m)),
            );
        for (side, mon) in sides {
            for v in mon.violations() {
                out.push(format!("{side}: {v}"));
            }
            if !mon.quiescent() {
                out.push(format!("{side}: bursts left open at end of run"));
            }
        }
        (!out.is_empty()).then(|| out.join("; "))
    }
}

/// What one seed's full differential check covered (for reporting).
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// One-line scenario description from the generator.
    pub summary: String,
    /// Individual assertions that held (digest comparisons, monitor
    /// checks, metamorphic equalities, burst payload comparisons).
    pub checks: u64,
    /// Total simulated cycles across every run of this seed.
    pub cycles: u64,
}

/// The one-line command that reproduces a failing seed.
pub fn repro_command(seed: u64, cfg: &SynthConfig) -> String {
    let mut cmd = format!("figures fuzz --seed-start {seed} --count 1");
    let d = SynthConfig::default();
    if cfg.max_ops != d.max_ops {
        cmd.push_str(&format!(" --max-ops {}", cfg.max_ops));
    }
    if cfg.max_elems != d.max_elems {
        cmd.push_str(&format!(" --max-elems {}", cfg.max_elems));
    }
    if cfg.allow_read_back != d.allow_read_back {
        cmd.push_str(" --no-read-back");
    }
    cmd
}

/// Runs *every* differential check for one seed: the kernel family
/// (cross-system + metamorphic + topologies) and the burst family.
///
/// # Errors
///
/// Returns a human-readable description of the first check that failed,
/// prefixed with enough context to localize it (system kind, topology
/// shape, or burst description).
pub fn check_seed(seed: u64, cfg: &SynthConfig) -> Result<SeedOutcome, String> {
    let mut outcome = check_kernel_seed(seed, cfg)?;
    let burst = check_burst_seed(seed)?;
    outcome.checks += burst.checks;
    outcome.cycles += burst.cycles;
    Ok(outcome)
}

/// System parameters a seed's kernel family runs under (shared by every
/// kind and topology of that seed, so the differential is apples to
/// apples).
pub(crate) fn seed_system(seed: u64, kind: SystemKind) -> SystemConfig {
    let mut rng = SplitMix64::new(seed ^ 0xD1FF_7E57_0000_0001);
    let bus_bits = [64u32, 128, 256][rng.below(3)];
    let mut sys = SystemConfig::with_bus(kind, bus_bits);
    sys.banks = [8usize, 16, 17, 32][rng.below(4)];
    sys.queue_depth = [1usize, 2, 4, 8][rng.below(4)];
    // Fuzz kernels are small; a hung datapath should fail fast.
    sys.max_cycles = 20_000_000;
    sys
}

/// First field on which two [`RunReport`]s diverge between scheduler
/// modes, or `None` when they are identical. Floating-point fields are
/// compared by bit pattern — the oracle demands exactness, not
/// tolerance.
pub(crate) fn report_divergence(event: &RunReport, lock: &RunReport) -> Option<String> {
    macro_rules! cmp {
        ($field:ident) => {
            if event.$field != lock.$field {
                return Some(format!(
                    concat!(stringify!($field), ": {:?} (event) vs {:?} (lockstep)"),
                    event.$field, lock.$field
                ));
            }
        };
    }
    macro_rules! cmp_f64 {
        ($field:ident) => {
            if event.$field.to_bits() != lock.$field.to_bits() {
                return Some(format!(
                    concat!(stringify!($field), ": {} (event) vs {} (lockstep)"),
                    event.$field, lock.$field
                ));
            }
        };
    }
    cmp!(cycles);
    cmp_f64!(r_util);
    cmp_f64!(r_util_no_idx);
    cmp_f64!(r_busy);
    cmp!(data_mismatches);
    cmp!(ar_stall_cycles);
    cmp!(w_stall_cycles);
    cmp!(bank_conflicts);
    cmp!(activity);
    cmp_f64!(power_mw);
    cmp_f64!(energy_uj);
    cmp!(injected_faults);
    cmp!(fault_retries);
    None
}

/// The kernel-family differential for one seed (checks 1–3 and 5 of the
/// [module docs](self)).
///
/// # Errors
///
/// See [`check_seed`].
pub fn check_kernel_seed(seed: u64, cfg: &SynthConfig) -> Result<SeedOutcome, String> {
    check_kernel_seed_watched(seed, cfg, 0)
}

/// [`check_kernel_seed`] with an explicit progress-watchdog window on
/// every run (0 = disabled). The shrink ladder uses a tight window so a
/// hanging rung fails in tens of thousands of cycles instead of riding
/// the full `max_cycles` ceiling.
fn check_kernel_seed_watched(
    seed: u64,
    cfg: &SynthConfig,
    watchdog: u64,
) -> Result<SeedOutcome, String> {
    let mut rng = SplitMix64::new(seed ^ 0xD1FF_7E57_0000_0002);
    let mut checks = 0u64;
    let mut cycles = 0u64;

    // --- 1. Cross-system differential -------------------------------
    // One generation + one reference-model execution, lowered per kind.
    let kinds = [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal];
    let max_vl = seed_system(seed, SystemKind::Pack).kernel_params().max_vl;
    // The primary path runs event-driven regardless of the global
    // `--lockstep` default: check 5 replays it in lockstep anyway, so
    // both modes are exercised on every seed either way, and pinning the
    // mode keeps the metamorphic equalities (2a/2b) mode-consistent.
    let built: Vec<(SystemConfig, SynthKernel)> = kinds
        .iter()
        .zip(synth::build_kinds(seed, cfg, max_vl, &kinds))
        .map(|(&kind, sk)| {
            let mut sys = seed_system(seed, kind);
            sys.sched = SchedMode::Event;
            sys.watchdog = watchdog;
            (sys, sk)
        })
        .collect();
    let reference = memory_digest(&built[0].1.final_mem);
    let summary = built[0].1.summary.clone();
    let mut solo_cycles = [0u64; 3];
    for (i, (sys, sk)) in built.iter().enumerate() {
        let mut probe = RunProbe::default();
        let report = run_kernel_probed(sys, &sk.kernel, &mut probe)
            .map_err(|e| format!("seed {seed}: {} run failed: {e}", kinds[i]))?;
        if let Some(v) = probe.violation_summary() {
            return Err(format!(
                "seed {seed}: {} protocol violations: {v}",
                kinds[i]
            ));
        }
        let got = probe.storage_digest.expect("probed run digests storage");
        if got != reference {
            return Err(format!(
                "seed {seed}: {} final memory diverges from the reference model \
                 (digest {got:#018x} vs {reference:#018x}; scenario: {summary})",
                kinds[i]
            ));
        }
        solo_cycles[i] = report.cycles;
        cycles += report.cycles;
        checks += 3;

        // --- 5. Scheduler oracle: lockstep replay must be identical --
        let mut lock_sys = *sys;
        lock_sys.sched = SchedMode::Lockstep;
        let mut lock_probe = RunProbe::default();
        let lock_report = run_kernel_probed(&lock_sys, &sk.kernel, &mut lock_probe)
            .map_err(|e| format!("seed {seed}: lockstep {} run failed: {e}", kinds[i]))?;
        if lock_probe.sched != SchedProbe::default() {
            return Err(format!(
                "seed {seed}: lockstep {} run fast-forwarded {} spans ({} cycles) — \
                 lockstep mode must never skip",
                kinds[i], lock_probe.sched.skip_spans, lock_probe.sched.skipped_cycles
            ));
        }
        if lock_probe.storage_digest != probe.storage_digest {
            return Err(format!(
                "seed {seed}: {} final memory differs between event and lockstep modes \
                 ({:#018x?} vs {:#018x?}; scenario: {summary})",
                kinds[i], probe.storage_digest, lock_probe.storage_digest
            ));
        }
        if let Some(field) = report_divergence(&report, &lock_report) {
            return Err(format!(
                "seed {seed}: {} report diverges between event and lockstep modes on \
                 {field} (scenario: {summary})",
                kinds[i]
            ));
        }
        cycles += lock_report.cycles;
        checks += 3;
    }

    // --- 2a. Metamorphic: 1-requestor topology == solo run ----------
    let (pack_sys, pack_kernel) = {
        let (sys, sk) = &built[1];
        (*sys, sk.kernel.clone())
    };
    // Static invariant: every generated topology must be DRC-clean — a
    // seed the builder's design-rule gate rejects is a generator bug,
    // not a simulation bug.
    let topo = Topology::builder(&pack_sys)
        .requestor(pack_sys.kind, pack_kernel.clone())
        .build()
        .map_err(|e| {
            format!("seed {seed}: generated single-requestor topology violates the DRC: {e}")
        })?;
    checks += 1;
    let sys_report = run_system(&topo)
        .map_err(|e| format!("seed {seed}: single-requestor topology failed: {e}"))?;
    if sys_report.requestors[0].cycles != solo_cycles[1] {
        return Err(format!(
            "seed {seed}: single-requestor topology took {} cycles, solo run took {} \
             (must be identical)",
            sys_report.requestors[0].cycles, solo_cycles[1]
        ));
    }
    cycles += sys_report.cycles;
    checks += 1;

    // --- 2b. Metamorphic: window relocation changes nothing ---------
    let offset = 0x1000u64 * (1 + rng.below(15)) as u64;
    let moved = pack_kernel.rebased(offset);
    let mut probe = RunProbe::default();
    let report = run_kernel_probed(&pack_sys, &moved, &mut probe)
        .map_err(|e| format!("seed {seed}: rebased (+{offset:#x}) pack run failed: {e}"))?;
    if report.cycles != solo_cycles[1] {
        return Err(format!(
            "seed {seed}: rebasing by {offset:#x} changed pack cycles: {} vs {}",
            report.cycles, solo_cycles[1]
        ));
    }
    if let Some(v) = probe.violation_summary() {
        return Err(format!("seed {seed}: rebased run protocol violations: {v}"));
    }
    let mut shifted = vec![0u8; offset as usize + built[1].1.final_mem.len()];
    shifted[offset as usize..].copy_from_slice(&built[1].1.final_mem);
    if probe.storage_digest != Some(memory_digest(&shifted)) {
        return Err(format!(
            "seed {seed}: rebasing by {offset:#x} changed the functional result"
        ));
    }
    cycles += report.cycles;
    checks += 3;

    // --- 3. Topology replay: 2 and 4 requestors ---------------------
    for n in [2usize, 4] {
        let mut requestors = Vec::with_capacity(n);
        let mut refs: Vec<std::sync::Arc<[u8]>> = Vec::with_capacity(n);
        for i in 0..n {
            let sub_seed = simkit::sweep::point_seed(seed, i);
            // At most one IDEAL slot (4-requestor runs), so the shared
            // bus always carries real contention.
            let kind = match rng.below(if n == 4 && i == 3 { 3 } else { 2 }) {
                0 => SystemKind::Pack,
                1 => SystemKind::Base,
                _ => SystemKind::Ideal,
            };
            let sk = synth::build(sub_seed, cfg, &pack_sys.kernel_params_for(kind));
            refs.push(sk.final_mem.clone());
            requestors.push(Requestor::new(kind, sk.kernel));
        }
        // Same static invariant for every generated multi-requestor
        // topology: the builder's design-rule gate must accept it.
        let topo = Topology::builder(&pack_sys)
            .requestors(requestors)
            .build()
            .map_err(|e| {
                format!("seed {seed}: generated {n}-requestor topology violates the DRC: {e}")
            })?;
        checks += 1;
        let bases = topo.window_bases();
        let mut probe = RunProbe::default();
        let report = run_system_probed(&topo, &mut probe)
            .map_err(|e| format!("seed {seed}: {n}-requestor topology failed: {e}"))?;
        if let Some(v) = probe.violation_summary() {
            return Err(format!(
                "seed {seed}: {n}-requestor topology protocol violations: {v}"
            ));
        }
        let total = bases
            .iter()
            .zip(&refs)
            .map(|(&b, r)| b as usize + r.len())
            .max()
            .expect("n >= 2");
        let mut composed = vec![0u8; total];
        for (&base, r) in bases.iter().zip(&refs) {
            composed[base as usize..base as usize + r.len()].copy_from_slice(r);
        }
        if probe.storage_digest != Some(memory_digest(&composed)) {
            return Err(format!(
                "seed {seed}: {n}-requestor shared store diverges from the composed \
                 per-window references"
            ));
        }
        cycles += report.cycles;
        checks += 2 + n as u64;

        // --- 5. Scheduler oracle on the shared fabric (2-requestor
        // topology only; the solo replays already cover every kind) ----
        if n == 2 {
            let mut lock_topo = topo.clone();
            lock_topo.system.sched = SchedMode::Lockstep;
            let mut lock_probe = RunProbe::default();
            let lock_report = run_system_probed(&lock_topo, &mut lock_probe)
                .map_err(|e| format!("seed {seed}: lockstep {n}-requestor topology failed: {e}"))?;
            if lock_probe.sched != SchedProbe::default() {
                return Err(format!(
                    "seed {seed}: lockstep {n}-requestor topology fast-forwarded {} spans — \
                     lockstep mode must never skip",
                    lock_probe.sched.skip_spans
                ));
            }
            if lock_report.cycles != report.cycles {
                return Err(format!(
                    "seed {seed}: {n}-requestor completion differs between modes: \
                     {} (event) vs {} (lockstep) cycles",
                    report.cycles, lock_report.cycles
                ));
            }
            if lock_probe.storage_digest != probe.storage_digest {
                return Err(format!(
                    "seed {seed}: {n}-requestor shared store differs between event and \
                     lockstep modes"
                ));
            }
            if lock_report.bus_r_busy.to_bits() != report.bus_r_busy.to_bits()
                || lock_report.bus_r_util.to_bits() != report.bus_r_util.to_bits()
                || lock_report.bank_conflicts != report.bank_conflicts
                || lock_report.word_accesses != report.word_accesses
                || lock_report.levels != report.levels
            {
                return Err(format!(
                    "seed {seed}: {n}-requestor bus/memory aggregates differ between \
                     event and lockstep modes"
                ));
            }
            for (r, (ev, lk)) in report
                .requestors
                .iter()
                .zip(&lock_report.requestors)
                .enumerate()
            {
                if let Some(field) = report_divergence(ev, lk) {
                    return Err(format!(
                        "seed {seed}: {n}-requestor topology, requestor {r} report \
                         diverges between event and lockstep modes on {field}"
                    ));
                }
            }
            cycles += lock_report.cycles;
            checks += 4 + n as u64;
        }
    }

    Ok(SeedOutcome {
        seed,
        summary,
        checks,
        cycles,
    })
}

/// Watchdog window the shrink ladder applies once a seed is known to
/// hang: any fuzz-sized kernel that makes zero datapath progress for
/// this many cycles is wedged for good (legitimate stalls are orders of
/// magnitude shorter), so each hanging rung aborts here instead of
/// burning the full `max_cycles` ceiling.
const SHRINK_WATCHDOG: u64 = 50_000;

/// Shrinks a failing kernel seed: re-runs the same seed down the
/// [`SynthConfig::shrunk`] ladder (halving program length, then element
/// count) and returns the smallest configuration that still fails,
/// together with its failure message. Returns `None` if the seed does
/// not fail at `cfg` in the first place.
///
/// When the original failure is a hang (a [`crate::RunError::Hang`]
/// "exceeded N cycles" report), every rung below it runs with a
/// 50 k-cycle progress watchdog (`SHRINK_WATCHDOG`) so the ladder descends
/// in seconds rather than re-simulating each hang to the cycle ceiling.
pub fn minimize(seed: u64, cfg: &SynthConfig) -> Option<(SynthConfig, String)> {
    let first = check_kernel_seed(seed, cfg).err()?;
    // Hang detection by message shape: a ceiling overrun says
    // "exceeded {limit} cycles"; a watchdog detection says
    // "no progress for {window} cycles".
    let watchdog = if first.contains("exceeded") || first.contains("no progress for") {
        SHRINK_WATCHDOG
    } else {
        0
    };
    let mut failing = (*cfg, first);
    while let Some(next) = failing.0.shrunk() {
        match check_kernel_seed_watched(seed, &next, watchdog) {
            Err(e) => failing = (next, e),
            Ok(_) => break,
        }
    }
    Some(failing)
}

// ---------------------------------------------------------------------
// Burst-level differential (random element widths)
// ---------------------------------------------------------------------

/// Storage layout of a burst scenario: a patterned read-only pool, a
/// region for planted index arrays, and one disjoint slot per write
/// transaction.
const READ_POOL: usize = 1 << 16;
const IDX_REGION: usize = 1 << 14;

#[derive(Debug)]
struct ExpectedBeat {
    /// Byte offset inside the beat where the comparison starts.
    at: usize,
    bytes: Vec<u8>,
}

/// One generated transaction with its reference data.
#[derive(Debug)]
struct Txn {
    ar: ArBeat,
    is_write: bool,
    /// Expected R beats, in order (reads only).
    expected: std::collections::VecDeque<ExpectedBeat>,
    /// W beats to send (writes only).
    w_beats: std::collections::VecDeque<WBeat>,
    /// `(address, bytes)` the write must have landed by the end.
    landed: Vec<(Addr, Vec<u8>)>,
    desc: String,
}

/// The burst-family differential for one seed: random packed strided /
/// packed indirect / plain incrementing / narrow transactions at every
/// element width the bus admits, checked against the
/// [`axi_proto::expand`] reference and a protocol monitor.
///
/// # Errors
///
/// See [`check_seed`].
pub fn check_burst_seed(seed: u64) -> Result<SeedOutcome, String> {
    let mut rng = SplitMix64::new(seed ^ 0xB0B5_7ED0_0000_0003);
    let bus = BusConfig::new([64u32, 128, 256][rng.below(3)]);
    let banks = [8usize, 16, 17, 32][rng.below(4)];
    let queue_depth = [1usize, 2, 4, 8][rng.below(4)];
    let bus_bytes = bus.data_bytes();

    let n_txns = 4 + rng.below(9);
    let write_slot = |i: usize| (READ_POOL + IDX_REGION + i * 1024) as Addr;
    let mut storage = Storage::new(READ_POOL + IDX_REGION + n_txns * 1024 + (1 << 12));
    // Recognizable read-pool pattern: word w holds a Knuth hash of w.
    for (w, chunk) in storage.as_bytes_mut()[..READ_POOL]
        .chunks_exact_mut(4)
        .enumerate()
    {
        chunk.copy_from_slice(&(w as u32).wrapping_mul(2654435761).to_le_bytes());
    }

    // Element sizes the packed converters admit on this bus: at least one
    // memory word (4 B), at most one beat.
    let packed_sizes: Vec<ElemSize> = ElemSize::ALL
        .into_iter()
        .filter(|e| e.bytes() >= 4 && e.bytes() <= bus_bytes)
        .collect();
    let mut idx_cursor = READ_POOL;
    let mut txns: Vec<Txn> = Vec::with_capacity(n_txns);
    for i in 0..n_txns {
        let id = i as u8;
        let snap = |storage: &Storage, addr: Addr, len: usize| {
            storage.as_bytes()[addr as usize..addr as usize + len].to_vec()
        };
        let txn = match rng.below(10) {
            0..=2 => {
                // Packed strided read.
                let esz = packed_sizes[rng.below(packed_sizes.len())];
                let eb = esz.bytes();
                let epb = bus.elems_per_beat(esz);
                let n_elems = 1 + rng.below(3 * epb);
                let stride = rng.range_i64(-8, 8) as i32;
                let span = (n_elems as i64 - 1) * stride.unsigned_abs() as i64 * eb as i64;
                let lo = if stride < 0 { span as usize } else { 0 };
                let hi = READ_POOL - eb - if stride >= 0 { span as usize } else { 0 };
                let base = (lo + rng.below((hi - lo) / 4 + 1) * 4) as Addr;
                let ar = ArBeat::packed_strided(id, base, n_elems as u32, esz, stride, &bus);
                let addrs = element_addresses(&ar, None, &bus);
                Txn {
                    expected: packed_expectation(&ar, &addrs, &storage, &bus),
                    ar,
                    is_write: false,
                    w_beats: Default::default(),
                    landed: Vec::new(),
                    desc: format!("strided read {n_elems}x{eb}B stride {stride} @ {base:#x}"),
                }
            }
            3..=4 => {
                // Packed indirect read through a freshly planted index
                // array.
                let esz = packed_sizes[rng.below(packed_sizes.len())];
                let eb = esz.bytes();
                let epb = bus.elems_per_beat(esz);
                let n_elems = 1 + rng.below(3 * epb);
                let isz = IdxSize::ALL[rng.below(IdxSize::ALL.len())];
                let pool = 200u64.min(isz.max_index().saturating_add(1));
                let elem_base = (rng.below((READ_POOL - pool as usize * eb) / 4) * 4) as Addr;
                let idx_addr = idx_cursor as Addr;
                let mut bytes = vec![0u8; (n_elems * isz.bytes() + 3) & !3];
                let mut indices = Vec::with_capacity(n_elems);
                for k in 0..n_elems {
                    let v = rng.below(pool as usize) as u64;
                    isz.write_le(v, &mut bytes[k * isz.bytes()..]);
                    indices.push(v);
                }
                storage.write(idx_addr, &bytes);
                idx_cursor += (bytes.len() + 63) & !63;
                assert!(idx_cursor < READ_POOL + IDX_REGION, "index region overflow");
                let ar = ArBeat::packed_indirect(
                    id,
                    idx_addr,
                    n_elems as u32,
                    esz,
                    isz,
                    elem_base,
                    &bus,
                );
                let addrs = element_addresses(&ar, Some(&indices), &bus);
                Txn {
                    expected: packed_expectation(&ar, &addrs, &storage, &bus),
                    ar,
                    is_write: false,
                    w_beats: Default::default(),
                    landed: Vec::new(),
                    desc: format!(
                        "indirect read {n_elems}x{eb}B idx{}B @ {idx_addr:#x}",
                        isz.bytes()
                    ),
                }
            }
            5..=6 => {
                // Plain incrementing read.
                let beats = 1 + rng.below(6);
                let base =
                    (rng.below((READ_POOL - beats * bus_bytes) / bus_bytes) * bus_bytes) as Addr;
                let ar = ArBeat::incr(id, base, beats as u32, &bus);
                let expected = (0..beats)
                    .map(|b| ExpectedBeat {
                        at: 0,
                        bytes: snap(&storage, base + (b * bus_bytes) as Addr, bus_bytes),
                    })
                    .collect();
                Txn {
                    ar,
                    is_write: false,
                    expected,
                    w_beats: Default::default(),
                    landed: Vec::new(),
                    desc: format!("incr read {beats} beats @ {base:#x}"),
                }
            }
            7 => {
                // Narrow single-element read (the BASE per-element shape).
                // The plain converter handles elements up to one memory
                // word (4 B) — BASE never issues wider narrow transfers.
                let esz = [ElemSize::B1, ElemSize::B2, ElemSize::B4][rng.below(3)];
                let eb = esz.bytes();
                let addr = (rng.below((READ_POOL - eb) / eb) * eb) as Addr;
                let lane = (addr as usize) % bus_bytes;
                let ar = ArBeat::narrow(id, addr, esz);
                let expected = std::collections::VecDeque::from([ExpectedBeat {
                    at: lane,
                    bytes: snap(&storage, addr, eb),
                }]);
                Txn {
                    ar,
                    is_write: false,
                    expected,
                    w_beats: Default::default(),
                    landed: Vec::new(),
                    desc: format!("narrow read {eb}B @ {addr:#x}"),
                }
            }
            _ => {
                // Plain incrementing write into this transaction's own
                // disjoint slot.
                let beats = 1 + rng.below(2);
                let base = write_slot(i);
                let mut w_beats = std::collections::VecDeque::new();
                let mut landed = Vec::new();
                for b in 0..beats {
                    let data: Vec<u8> = (0..bus_bytes).map(|_| rng.below(256) as u8).collect();
                    landed.push((base + (b * bus_bytes) as Addr, data.clone()));
                    w_beats.push_back(WBeat::full(data, b + 1 == beats));
                }
                Txn {
                    ar: ArBeat::incr(id, base, beats as u32, &bus),
                    is_write: true,
                    expected: Default::default(),
                    w_beats,
                    landed,
                    desc: format!("incr write {beats} beats @ {base:#x}"),
                }
            }
        };
        txns.push(txn);
    }

    // Drive the adapter to quiescence under a monitor.
    let bank = BankConfig {
        banks,
        word_bytes: 4,
        latency: 1,
        ports: 0,
        conflict_free: false,
        commit_writes: true,
        row_words: 0,
        row_miss_penalty: 0,
    };
    let mut adapter = Adapter::new(CtrlConfig::new(bus, bank, queue_depth), storage);
    let mut ch = AxiChannels::new();
    let mut mon = Monitor::new(bus);
    let mut next_txn = 0usize;
    let mut w_queue: std::collections::VecDeque<WBeat> = Default::default();
    let mut b_expected = 0usize;
    let mut b_received = 0usize;
    // Outstanding reads by transaction index. Different IDs may complete
    // in any interleaving (AXI orders only same-ID traffic), so beats are
    // matched by ID, not issue order.
    let mut open_reads: Vec<usize> = Vec::new();
    let mut cycles = 0u64;
    let mut checks = 0u64;
    loop {
        // Issue the next transaction (requests go out strictly in order;
        // the adapter interleaves service internally).
        if next_txn < txns.len() {
            let t = &mut txns[next_txn];
            let chan = if t.is_write { &mut ch.aw } else { &mut ch.ar };
            if chan.can_push() {
                chan.push(t.ar.clone());
                if t.is_write {
                    w_queue.extend(t.w_beats.drain(..));
                    b_expected += 1;
                } else {
                    open_reads.push(next_txn);
                }
                next_txn += 1;
            }
        }
        if !w_queue.is_empty() && ch.w.can_push() {
            ch.w.push(w_queue.pop_front().expect("nonempty"));
        }
        if let Some(r) = ch.r.pop() {
            let pos = open_reads
                .iter()
                .position(|&ti| txns[ti].ar.id == r.id)
                .ok_or_else(|| {
                    format!(
                        "seed {seed}: R beat {} with no matching read outstanding",
                        r.id
                    )
                })?;
            let t = &mut txns[open_reads[pos]];
            let exp = t
                .expected
                .pop_front()
                .ok_or_else(|| format!("seed {seed}: extra R beat for {}", t.desc))?;
            if r.data[exp.at..exp.at + exp.bytes.len()] != exp.bytes[..] {
                return Err(format!(
                    "seed {seed}: R payload mismatch on {} (beat {} of {}): got {:02x?}, \
                     expected {:02x?}",
                    t.desc,
                    t.ar.beats as usize - t.expected.len() - 1,
                    t.ar.beats,
                    &r.data[exp.at..exp.at + exp.bytes.len()],
                    exp.bytes
                ));
            }
            checks += 1;
            if t.expected.is_empty() {
                open_reads.remove(pos);
            }
        }
        if ch.b.pop().is_some() {
            b_received += 1;
        }
        adapter.tick(&mut ch);
        adapter.end_cycle();
        ch.end_cycle_observed(&mut mon);
        cycles += 1;
        if next_txn == txns.len()
            && open_reads.is_empty()
            && w_queue.is_empty()
            && b_received == b_expected
            && adapter.quiescent()
            && ch.is_empty()
        {
            break;
        }
        if cycles > 2_000_000 {
            let open: Vec<String> = open_reads
                .iter()
                .map(|&ti| {
                    format!(
                        "{} ({} beats still expected)",
                        txns[ti].desc,
                        txns[ti].expected.len()
                    )
                })
                .collect();
            return Err(format!(
                "seed {seed}: burst scenario hung (issued {next_txn}/{} txns; open: {})",
                txns.len(),
                open.join(", ")
            ));
        }
    }
    if !mon.violations().is_empty() {
        let v: Vec<String> = mon.violations().iter().map(|v| v.to_string()).collect();
        return Err(format!(
            "seed {seed}: burst protocol violations: {}",
            v.join("; ")
        ));
    }
    checks += 1;
    // Writes must have landed exactly as issued.
    for t in &txns {
        for (addr, bytes) in &t.landed {
            let got = &adapter.storage().as_bytes()[*addr as usize..*addr as usize + bytes.len()];
            if got != &bytes[..] {
                return Err(format!("seed {seed}: {} did not land at {addr:#x}", t.desc));
            }
            checks += 1;
        }
    }
    Ok(SeedOutcome {
        seed,
        summary: format!(
            "{} burst txns on {}b bus, {banks} banks",
            txns.len(),
            bus.data_bits()
        ),
        checks,
        cycles,
    })
}

/// Reference R-beat contents of a packed burst: elements packed from
/// lane 0 in bus order, partial tail compared only over its valid bytes.
fn packed_expectation(
    ar: &ArBeat,
    addrs: &[Addr],
    storage: &Storage,
    bus: &BusConfig,
) -> std::collections::VecDeque<ExpectedBeat> {
    let eb = ar.size.bytes();
    let epb = bus.elems_per_beat(ar.size);
    addrs
        .chunks(epb)
        .map(|chunk| {
            let mut bytes = Vec::with_capacity(chunk.len() * eb);
            for &a in chunk {
                bytes.extend_from_slice(&storage.as_bytes()[a as usize..a as usize + eb]);
            }
            ExpectedBeat { at: 0, bytes }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Regression corpus
// ---------------------------------------------------------------------

/// One corpus entry: a seed plus the generator configuration it runs at.
#[derive(Debug, Clone, Copy)]
pub struct FuzzCase {
    /// The seed to replay.
    pub seed: u64,
    /// Generator configuration.
    pub cfg: SynthConfig,
    /// Why this seed is in the corpus.
    pub note: &'static str,
}

/// Default-config corpus case.
const fn case(seed: u64, note: &'static str) -> FuzzCase {
    FuzzCase {
        seed,
        cfg: SynthConfig {
            max_ops: 24,
            max_elems: 192,
            allow_read_back: true,
        },
        note,
    }
}

/// Sized corpus case.
const fn sized(seed: u64, max_ops: usize, max_elems: usize, note: &'static str) -> FuzzCase {
    FuzzCase {
        seed,
        cfg: SynthConfig {
            max_ops,
            max_elems,
            allow_read_back: true,
        },
        note,
    }
}

/// The checked-in regression corpus: seeds that ever exposed a bug plus
/// a spread of generator shapes (tiny programs, long programs, short
/// arrays, shrink-ladder endpoints). `crates/core/tests/fuzz_corpus.rs`
/// replays it on every `cargo test`; `figures fuzz --corpus` replays it
/// from the CLI.
pub static SEED_CORPUS: &[FuzzCase] = &[
    case(0, "first seed of every CI fuzz-smoke window"),
    case(
        1,
        "found the 64-bit-index converter hang (IndexStage parsed zero \
         indices per word when idx_bytes > word_bytes, wedging the burst)",
    ),
    case(7, "duplicate-heavy scatter indices"),
    case(11, "negative strides on a 64-bit bus"),
    case(23, "read-after-write on an output array"),
    case(42, "reduction + scalar write-back mix"),
    case(63, "last seed of the CI fuzz-smoke window"),
    sized(
        2,
        2,
        4,
        "shrink-ladder floor: minimal program, minimal arrays",
    ),
    sized(3, 4, 8, "near-minimal program with indexed accesses"),
    sized(5, 48, 192, "double-length program (beyond the default cap)"),
    sized(13, 24, 16, "long program over short arrays (dense overlap)"),
    sized(17, 8, 256, "short program over long arrays (big bursts)"),
    FuzzCase {
        seed: 29,
        cfg: SynthConfig {
            max_ops: 24,
            max_elems: 192,
            allow_read_back: false,
        },
        note: "read-only streams: data_mismatches must stay zero",
    },
];

/// Replays the whole [`SEED_CORPUS`]; returns the number of cases run.
///
/// # Errors
///
/// *Every* failing case as `(seed, message)`, each message carrying the
/// case's corpus note — the tier-1 corpus test and `figures fuzz
/// --corpus` both report through this one function.
pub fn replay_corpus() -> Result<usize, Vec<(u64, String)>> {
    let failures: Vec<(u64, String)> = SEED_CORPUS
        .iter()
        .filter_map(|c| {
            check_seed(c.seed, &c.cfg)
                .err()
                .map(|e| (c.seed, format!("corpus case '{}': {e}", c.note)))
        })
        .collect();
    if failures.is_empty() {
        Ok(SEED_CORPUS.len())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        assert_eq!(memory_digest(&[]), 0xCBF2_9CE4_8422_2325);
        assert_ne!(memory_digest(&[1, 2]), memory_digest(&[2, 1]));
        assert_ne!(memory_digest(&[0]), memory_digest(&[0, 0]));
    }

    #[test]
    fn first_seeds_pass_every_differential_check() {
        let cfg = SynthConfig::default();
        for seed in 0..8 {
            let out = check_seed(seed, &cfg).expect("seed must pass");
            assert!(out.checks >= 10, "seed {seed} ran too few checks");
            assert!(out.cycles > 0);
        }
    }

    #[test]
    fn corrupted_expectation_is_caught_and_reported() {
        // A deliberately wrong reference must fail with a repro-worthy
        // message — the detection path the fuzzer relies on.
        let cfg = SynthConfig::default();
        let sys = seed_system(3, SystemKind::Pack);
        let sk = synth::build(3, &cfg, &sys.kernel_params());
        let mut probe = RunProbe::default();
        run_kernel_probed(&sys, &sk.kernel, &mut probe).expect("clean run");
        let mut corrupted = sk.final_mem.to_vec();
        corrupted[0x1000] ^= 0xFF;
        assert_ne!(
            probe.storage_digest,
            Some(memory_digest(&corrupted)),
            "a flipped reference byte must change the comparison"
        );
    }

    #[test]
    fn repro_command_reflects_non_default_config() {
        let d = SynthConfig::default();
        assert_eq!(
            repro_command(9, &d),
            "figures fuzz --seed-start 9 --count 1"
        );
        let small = SynthConfig {
            max_ops: 6,
            max_elems: 16,
            allow_read_back: false,
        };
        let cmd = repro_command(9, &small);
        assert!(cmd.contains("--max-ops 6"));
        assert!(cmd.contains("--max-elems 16"));
        assert!(cmd.contains("--no-read-back"));
    }

    #[test]
    fn minimize_returns_none_for_passing_seeds() {
        assert!(minimize(0, &SynthConfig::default()).is_none());
    }

    #[test]
    fn every_corpus_case_generates_a_drc_clean_topology() {
        // Static sweep over the whole regression corpus: each case's
        // generated kernel must assemble into a design-rule-clean
        // topology without running a single cycle.
        for case in SEED_CORPUS {
            let sys = seed_system(case.seed, SystemKind::Pack);
            let sk = synth::build(case.seed, &case.cfg, &sys.kernel_params());
            let topo = Topology::builder(&sys)
                .requestor(sys.kind, sk.kernel)
                .build();
            assert!(
                topo.is_ok(),
                "corpus seed {} ('{}') is not DRC-clean: {}",
                case.seed,
                case.note,
                topo.err().map(|e| e.to_string()).unwrap_or_default()
            );
        }
    }

    #[test]
    fn burst_seeds_pass_on_their_own() {
        for seed in 0..8 {
            let out = check_burst_seed(seed).expect("burst seed must pass");
            assert!(out.checks > 0, "seed {seed} checked nothing");
        }
    }
}
