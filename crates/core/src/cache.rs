//! The result cache: canonical content keys for simulation runs, byte
//! codecs for reports, and the cache-aware execution wrapper the run
//! loops consult.
//!
//! ## Key canon
//!
//! Every cacheable computation is named by a 128-bit digest over an
//! **explicit, field-by-field byte encoding** — never a derived hash —
//! so the key is stable across struct field reordering and survives
//! refactors that don't change simulated physics. Each key starts with
//! a domain string and [`KEY_VERSION`]; bumping the version is the
//! invalidation mechanism (old entries become unreachable, no deletion
//! pass needed). Report-**invariant** knobs are deliberately excluded
//! from keys:
//!
//! * [`SystemConfig::sched`] — the PR 7 scheduler oracle proves Event
//!   and Lockstep produce bit-identical reports, so both modes share
//!   one cache entry;
//! * thread count / sweep parallelism — per-point seeds are positional
//!   (`simkit::sweep::point_seed`), so scheduling doesn't reach results.
//!
//! Everything the simulation *can* observe is included: the full
//! [`SystemConfig`] (minus `sched`), the requestor [`SystemKind`], and
//! the complete [`Kernel`] — name, memory image bytes, program
//! instruction stream, expected-value checks, stream flags.
//!
//! ## What is never cached
//!
//! Probed runs. A [`crate::differential::RunProbe`] captures bus-level
//! event streams that reports don't carry, and the differential fuzzer's
//! lockstep oracle exists precisely to re-execute runs independently —
//! serving it from a cache would verify the cache against itself. The
//! run loops therefore consult the cache **only when no probe is
//! attached**; `figures fuzz` and `figures bench` never install one at
//! all. Errors are also never cached: only clean reports are stored.
//!
//! ## Sharding and resume
//!
//! The same keyspace partitions work across processes: shard `i/N` owns
//! the keys with `digest mod N == i`, computes those, and returns inert
//! placeholder reports for the rest (shard output is discarded; only
//! the store matters). Completed keys are appended to a per-shard
//! manifest so `--resume` can skip them after a crash. The union of N
//! shards fills the same store a single unsharded run would, which a
//! warm unsharded pass then serves byte-identically.

use crate::report::{LevelOccupancy, RequestorOutcome, RunReport, SystemReport};
use crate::requestor::SweepConfig;
use crate::system::{SystemConfig, Topology};
use axi_proto::{Addr, ElemSize, IdxSize};
use hwmodel::energy::Activity;
use pack_ctrl::StagePolicy;
use simkit_cache::{Cache, Digest, DigestWriter, Manifest, DEFAULT_MEM_BYTES};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use vproc::{SystemKind, VInsn, VprocConfig};
use workloads::kernel::Check;
use workloads::Kernel;

/// Version tag mixed into every cache key. Bump whenever the canonical
/// encoding below changes meaning, whenever simulated semantics change
/// in a way old reports no longer reflect, or whenever the digest
/// algorithm itself moves — old entries then simply stop matching.
/// (v2: topology keys gained the fabric shape — channels, arity,
/// row-buffer timing — so hierarchical-fabric runs never collide with
/// the flat runs of the same requestor set.)
pub const KEY_VERSION: u32 = 2;

/// Version tag leading every stored value blob. Bump on codec layout
/// changes; stale blobs fail decoding and are recomputed in place.
/// (v2: [`RunReport`] gained `injected_faults`/`fault_retries`;
/// v3: [`SystemReport`] gained per-level fabric occupancy.)
pub const VALUE_VERSION: u32 = 3;

/// Environment variable naming the default cache directory.
pub const ENV_CACHE_DIR: &str = "AXI_PACK_CACHE";

/// Fallback cache directory (relative to the working directory).
pub const DEFAULT_DIR: &str = ".axi-pack-cache";

/// The cache directory the CLI uses when `--cache-dir` is absent:
/// `$AXI_PACK_CACHE` if set and non-empty, else [`DEFAULT_DIR`].
pub fn default_dir() -> PathBuf {
    match std::env::var(ENV_CACHE_DIR) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_DIR),
    }
}

// ---------------------------------------------------------------------
// Key canon: explicit encoders
// ---------------------------------------------------------------------

/// Starts a key digest: domain separation string + key version.
fn key_writer(domain: &str) -> DigestWriter {
    let mut w = DigestWriter::new();
    w.put_str(domain);
    w.put_u32(KEY_VERSION);
    w
}

/// Stable tag for a [`SystemKind`] (declaration order must never leak
/// into keys, so the mapping is explicit).
fn kind_tag(kind: SystemKind) -> u8 {
    match kind {
        SystemKind::Base => 0,
        SystemKind::Pack => 1,
        SystemKind::Ideal => 2,
    }
}

fn decode_kind(tag: u8) -> Option<SystemKind> {
    match tag {
        0 => Some(SystemKind::Base),
        1 => Some(SystemKind::Pack),
        2 => Some(SystemKind::Ideal),
        _ => None,
    }
}

fn put_vproc(w: &mut DigestWriter, v: &VprocConfig) {
    w.put_usize(v.lanes);
    w.put_usize(v.vlen_bytes);
    w.put_u32(v.reduction_tail);
    w.put_usize(v.window);
    w.put_u32(v.ideal_latency);
    w.put_usize(v.max_outstanding_loads);
    w.put_u32(v.axi_id_bits);
}

/// Digests a [`SystemConfig`] field by field — except `sched`, which is
/// report-invariant by the scheduler oracle and deliberately excluded.
fn put_system_config(w: &mut DigestWriter, cfg: &SystemConfig) {
    w.put_u8(kind_tag(cfg.kind));
    w.put_u32(cfg.bus_bits);
    w.put_usize(cfg.banks);
    w.put_usize(cfg.queue_depth);
    put_vproc(w, &cfg.vproc);
    w.put_u64(cfg.max_cycles);
}

fn put_check(w: &mut DigestWriter, c: &Check) {
    w.put_u64(c.addr);
    w.put_usize(c.values.len());
    for &v in c.values.iter() {
        w.put_f32(v);
    }
    w.put_str(&c.label);
}

/// Digests one instruction: a stable variant tag, then its fields.
fn put_insn(w: &mut DigestWriter, insn: &VInsn) {
    fn reg(w: &mut DigestWriter, r: u8) {
        w.put_u8(r);
    }
    fn addr(w: &mut DigestWriter, a: Addr) {
        w.put_u64(a);
    }
    match *insn {
        VInsn::SetVl { vl } => {
            w.put_u8(0);
            w.put_usize(vl);
        }
        VInsn::Scalar { cycles } => {
            w.put_u8(1);
            w.put_u32(cycles);
        }
        VInsn::Vle { vd, base, is_index } => {
            w.put_u8(2);
            reg(w, vd);
            addr(w, base);
            w.put_bool(is_index);
        }
        VInsn::Vlse { vd, base, stride } => {
            w.put_u8(3);
            reg(w, vd);
            addr(w, base);
            w.put_i32(stride);
        }
        VInsn::Vluxei { vd, vidx, base } => {
            w.put_u8(4);
            reg(w, vd);
            reg(w, vidx);
            addr(w, base);
        }
        VInsn::Vlimxei { vd, idx_addr, base } => {
            w.put_u8(5);
            reg(w, vd);
            addr(w, idx_addr);
            addr(w, base);
        }
        VInsn::Vse { vs, base } => {
            w.put_u8(6);
            reg(w, vs);
            addr(w, base);
        }
        VInsn::Vsse { vs, base, stride } => {
            w.put_u8(7);
            reg(w, vs);
            addr(w, base);
            w.put_i32(stride);
        }
        VInsn::Vsuxei { vs, vidx, base } => {
            w.put_u8(8);
            reg(w, vs);
            reg(w, vidx);
            addr(w, base);
        }
        VInsn::Vsimxei { vs, idx_addr, base } => {
            w.put_u8(9);
            reg(w, vs);
            addr(w, idx_addr);
            addr(w, base);
        }
        VInsn::Vfadd { vd, vs1, vs2 } => {
            w.put_u8(10);
            reg(w, vd);
            reg(w, vs1);
            reg(w, vs2);
        }
        VInsn::Vfmul { vd, vs1, vs2 } => {
            w.put_u8(11);
            reg(w, vd);
            reg(w, vs1);
            reg(w, vs2);
        }
        VInsn::Vfmacc { vd, vs1, vs2 } => {
            w.put_u8(12);
            reg(w, vd);
            reg(w, vs1);
            reg(w, vs2);
        }
        VInsn::VfmaccVf { vd, rs, vs } => {
            w.put_u8(13);
            reg(w, vd);
            w.put_f32(rs);
            reg(w, vs);
        }
        VInsn::VfmulVf { vd, rs, vs } => {
            w.put_u8(14);
            reg(w, vd);
            w.put_f32(rs);
            reg(w, vs);
        }
        VInsn::VfaddVf { vd, rs, vs } => {
            w.put_u8(15);
            reg(w, vd);
            w.put_f32(rs);
            reg(w, vs);
        }
        VInsn::Vfmin { vd, vs1, vs2 } => {
            w.put_u8(16);
            reg(w, vd);
            reg(w, vs1);
            reg(w, vs2);
        }
        VInsn::VmvVf { vd, imm } => {
            w.put_u8(17);
            reg(w, vd);
            w.put_f32(imm);
        }
        VInsn::Vfredsum { vd, vs } => {
            w.put_u8(18);
            reg(w, vd);
            reg(w, vs);
        }
        VInsn::Vfredmin { vd, vs } => {
            w.put_u8(19);
            reg(w, vd);
            reg(w, vs);
        }
        VInsn::ScalarStoreF32 { vs, addr: a } => {
            w.put_u8(20);
            reg(w, vs);
            addr(w, a);
        }
    }
}

/// Digests a full [`Kernel`]: name, memory image, storage size, program
/// stream, expected-value checks, stream flags, useful-byte accounting.
fn put_kernel(w: &mut DigestWriter, k: &Kernel) {
    w.put_str(&k.name);
    w.put_usize(k.image.len());
    for (addr, bytes) in &k.image {
        w.put_u64(*addr);
        w.put_bytes(bytes);
    }
    w.put_usize(k.storage_size);
    let insns = k.program.insns();
    w.put_usize(insns.len());
    for insn in insns {
        put_insn(w, insn);
    }
    w.put_usize(k.expected.len());
    for c in &k.expected {
        put_check(w, c);
    }
    w.put_bool(k.read_only_streams);
    w.put_u64(k.useful_bytes);
}

/// Key of a single-requestor run: `(SystemConfig minus sched, requestor
/// SystemKind, Kernel)`.
pub fn single_run_key(cfg: &SystemConfig, kind: SystemKind, kernel: &Kernel) -> Digest {
    let mut w = key_writer("axi-pack.run.single");
    put_system_config(&mut w, cfg);
    w.put_u8(kind_tag(kind));
    put_kernel(&mut w, kernel);
    w.finish()
}

/// Key of a topology run: the shared [`SystemConfig`], the fabric shape
/// (channel count, mux arity, row-buffer timing), plus every requestor's
/// `(SystemKind, Kernel)` in position order.
pub fn topology_key(topo: &Topology) -> Digest {
    let mut w = key_writer("axi-pack.run.topology");
    put_system_config(&mut w, &topo.system);
    w.put_usize(topo.fabric.channels);
    w.put_usize(topo.fabric.arity);
    w.put_usize(topo.fabric.row_words);
    w.put_usize(topo.fabric.row_miss_penalty);
    w.put_usize(topo.requestors.len());
    for r in &topo.requestors {
        w.put_u8(kind_tag(r.kind));
        put_kernel(&mut w, &r.kernel);
    }
    w.finish()
}

fn stage_policy_tag(p: StagePolicy) -> u8 {
    match p {
        StagePolicy::RoundRobin => 0,
        StagePolicy::IndexPriority => 1,
        StagePolicy::ElementPriority => 2,
    }
}

fn put_sweep_config(w: &mut DigestWriter, cfg: &SweepConfig) {
    w.put_u32(cfg.bus_bits);
    w.put_usize(cfg.banks);
    w.put_bool(cfg.conflict_free);
    w.put_usize(cfg.queue_depth);
    w.put_usize(cfg.bursts);
    w.put_u8(stage_policy_tag(cfg.stage_policy));
}

/// Key of a stride-averaged utilization point (Fig. 5b family).
pub fn strided_avg_key(cfg: &SweepConfig, elem: ElemSize) -> Digest {
    let mut w = key_writer("axi-pack.util.strided-avg");
    put_sweep_config(&mut w, cfg);
    w.put_u32(elem.log2_bytes());
    w.finish()
}

/// Key of a randomized indirect-read utilization point (Fig. 5a /
/// ablation families).
pub fn indirect_key(cfg: &SweepConfig, elem: ElemSize, idx: IdxSize, seed: u64) -> Digest {
    let mut w = key_writer("axi-pack.util.indirect");
    put_sweep_config(&mut w, cfg);
    w.put_u32(elem.log2_bytes());
    w.put_u32(idx.log2_bytes());
    w.put_u64(seed);
    w.finish()
}

// ---------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------

/// Blob type tag for an encoded [`SystemReport`].
const TAG_SYSTEM_REPORT: u8 = 1;
/// Blob type tag for an encoded bare f64 (utilization points).
const TAG_F64: u8 = 2;

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_run_report(w: &mut ByteWriter, r: &RunReport) {
    w.str(&r.kernel);
    w.u8(kind_tag(r.kind));
    w.u32(r.bus_bits);
    w.u64(r.cycles);
    w.f64(r.r_util);
    w.f64(r.r_util_no_idx);
    w.f64(r.r_busy);
    w.u64(r.data_mismatches);
    w.u64(r.ar_stall_cycles);
    w.u64(r.w_stall_cycles);
    w.u64(r.bank_conflicts);
    let a = &r.activity;
    w.u64(a.cycles);
    w.u64(a.lane_elems);
    w.u64(a.r_payload_bytes);
    w.u64(a.w_payload_bytes);
    w.u64(a.word_accesses);
    w.u64(a.insns_issued);
    w.u8(u8::from(a.has_pack_adapter));
    w.f64(r.power_mw);
    w.f64(r.energy_uj);
    w.u64(r.injected_faults);
    w.u64(r.fault_retries);
}

fn decode_run_report(r: &mut ByteReader<'_>) -> Option<RunReport> {
    Some(RunReport {
        kernel: r.str()?,
        kind: decode_kind(r.u8()?)?,
        bus_bits: r.u32()?,
        cycles: r.u64()?,
        r_util: r.f64()?,
        r_util_no_idx: r.f64()?,
        r_busy: r.f64()?,
        data_mismatches: r.u64()?,
        ar_stall_cycles: r.u64()?,
        w_stall_cycles: r.u64()?,
        bank_conflicts: r.u64()?,
        activity: Activity {
            cycles: r.u64()?,
            lane_elems: r.u64()?,
            r_payload_bytes: r.u64()?,
            w_payload_bytes: r.u64()?,
            word_accesses: r.u64()?,
            insns_issued: r.u64()?,
            has_pack_adapter: r.u8()? != 0,
        },
        power_mw: r.f64()?,
        energy_uj: r.f64()?,
        injected_faults: r.u64()?,
        fault_retries: r.u64()?,
    })
}

/// Encodes a [`SystemReport`] into a versioned blob. Floats travel as
/// raw bit patterns, so decode → encode is the identity and warm runs
/// are bit-exact replicas of cold ones.
pub fn encode_system_report(rep: &SystemReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(VALUE_VERSION);
    w.u8(TAG_SYSTEM_REPORT);
    w.u64(rep.cycles);
    w.f64(rep.bus_r_busy);
    w.f64(rep.bus_r_util);
    w.u64(rep.bank_conflicts);
    w.u64(rep.word_accesses);
    w.u32(rep.requestors.len() as u32);
    for r in &rep.requestors {
        encode_run_report(&mut w, r);
    }
    w.u32(rep.levels.len() as u32);
    for l in &rep.levels {
        w.u32(l.level);
        w.u32(l.muxes);
        w.u64(l.ar_beats);
        w.u64(l.r_beats);
    }
    w.buf
}

/// Decodes a [`SystemReport`] blob. `None` on any version or layout
/// mismatch — the caller treats that as a miss and recomputes.
pub fn decode_system_report(buf: &[u8]) -> Option<SystemReport> {
    let mut r = ByteReader::new(buf);
    if r.u32()? != VALUE_VERSION || r.u8()? != TAG_SYSTEM_REPORT {
        return None;
    }
    let cycles = r.u64()?;
    let bus_r_busy = r.f64()?;
    let bus_r_util = r.f64()?;
    let bank_conflicts = r.u64()?;
    let word_accesses = r.u64()?;
    let n = r.u32()? as usize;
    // Cap requestor count well above any real topology so a corrupt
    // length can't balloon an allocation (the store checksum should
    // catch corruption first; this is defense in depth).
    if n > 4096 {
        return None;
    }
    let mut requestors = Vec::with_capacity(n);
    for _ in 0..n {
        requestors.push(decode_run_report(&mut r)?);
    }
    let nl = r.u32()? as usize;
    // A mux tree over <= 4096 requestors never exceeds a dozen levels;
    // same defense-in-depth cap as the requestor count above.
    if nl > 64 {
        return None;
    }
    let mut levels = Vec::with_capacity(nl);
    for _ in 0..nl {
        levels.push(LevelOccupancy {
            level: r.u32()?,
            muxes: r.u32()?,
            ar_beats: r.u64()?,
            r_beats: r.u64()?,
        });
    }
    if !r.done() {
        return None;
    }
    // Outcomes are not encoded: fault-injected runs bypass the cache
    // entirely, so every cached report is all-Completed by construction.
    let outcomes = vec![RequestorOutcome::Completed; n];
    Some(SystemReport {
        cycles,
        requestors,
        bus_r_busy,
        bus_r_util,
        bank_conflicts,
        word_accesses,
        outcomes,
        levels,
    })
}

/// Encodes a bare f64 (utilization point) into a versioned blob.
pub fn encode_f64(v: f64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(VALUE_VERSION);
    w.u8(TAG_F64);
    w.f64(v);
    w.buf
}

/// Decodes a bare f64 blob; `None` on mismatch.
pub fn decode_f64(buf: &[u8]) -> Option<f64> {
    let mut r = ByteReader::new(buf);
    if r.u32()? != VALUE_VERSION || r.u8()? != TAG_F64 {
        return None;
    }
    let v = r.f64()?;
    if !r.done() {
        return None;
    }
    Some(v)
}

// ---------------------------------------------------------------------
// Placeholders for keys a shard doesn't own
// ---------------------------------------------------------------------

fn placeholder_run_report(kernel: &str, kind: SystemKind, bus_bits: u32) -> RunReport {
    RunReport {
        kernel: kernel.to_string(),
        kind,
        bus_bits,
        cycles: 1,
        r_util: 0.0,
        r_util_no_idx: 0.0,
        r_busy: 0.0,
        data_mismatches: 0,
        ar_stall_cycles: 0,
        w_stall_cycles: 0,
        bank_conflicts: 0,
        activity: Activity {
            cycles: 1,
            lane_elems: 0,
            r_payload_bytes: 0,
            w_payload_bytes: 0,
            word_accesses: 0,
            insns_issued: 0,
            has_pack_adapter: false,
        },
        power_mw: 0.0,
        energy_uj: 0.0,
        injected_faults: 0,
        fault_retries: 0,
    }
}

/// An inert stand-in report for a single-requestor key this shard does
/// not own. Kernel names and kinds are preserved (table renderers key
/// on them); every metric is a harmless constant. Shard-mode output is
/// discarded, so these never reach a figure file.
pub fn placeholder_single(cfg: &SystemConfig, kind: SystemKind, kernel: &Kernel) -> SystemReport {
    SystemReport {
        cycles: 1,
        requestors: vec![placeholder_run_report(&kernel.name, kind, cfg.bus_bits)],
        bus_r_busy: 0.0,
        bus_r_util: 0.0,
        bank_conflicts: 0,
        word_accesses: 0,
        outcomes: vec![RequestorOutcome::Completed],
        levels: Vec::new(),
    }
}

/// An inert stand-in report for a topology key this shard doesn't own.
pub fn placeholder_topology(topo: &Topology) -> SystemReport {
    SystemReport {
        cycles: 1,
        requestors: topo
            .requestors
            .iter()
            .map(|r| placeholder_run_report(&r.kernel.name, r.kind, topo.system.bus_bits))
            .collect(),
        bus_r_busy: 0.0,
        bus_r_util: 0.0,
        bank_conflicts: 0,
        word_accesses: 0,
        outcomes: topo
            .requestors
            .iter()
            .map(|_| RequestorOutcome::Completed)
            .collect(),
        levels: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// The cache-aware execution wrapper
// ---------------------------------------------------------------------

/// A deterministic partition of the keyspace: shard `index` of `total`
/// owns the keys with `digest.lo mod total == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index in `0..total`.
    pub index: u32,
    /// Total number of shards.
    pub total: u32,
}

impl ShardSpec {
    /// Parses the CLI form `i/N` (`0 <= i < N`, `N >= 1`).
    pub fn parse(s: &str) -> Option<ShardSpec> {
        let (i, n) = s.split_once('/')?;
        let index: u32 = i.trim().parse().ok()?;
        let total: u32 = n.trim().parse().ok()?;
        (total >= 1 && index < total).then_some(ShardSpec { index, total })
    }

    /// True when this shard owns `key`.
    pub fn owns(&self, key: Digest) -> bool {
        key.lo % u64::from(self.total) == u64::from(self.index)
    }
}

/// Everything needed to stand up a [`RunCache`].
#[derive(Debug, Clone)]
pub struct CacheSetup {
    /// On-disk store root.
    pub dir: PathBuf,
    /// In-memory LRU budget in payload bytes.
    pub mem_bytes: usize,
    /// Keyspace partition, when running as one shard of many.
    pub shard: Option<ShardSpec>,
    /// Skip keys listed in this shard's completion manifest.
    pub resume: bool,
    /// Recompute a deterministic sample of hits and byte-compare.
    pub verify: bool,
    /// Stop computing after this many points (placeholders after) —
    /// simulates a killed shard for the resume protocol and its tests.
    pub compute_budget: Option<u64>,
    /// Names this run's completion manifest (typically family+scale);
    /// manifests are only kept for sharded runs.
    pub manifest_tag: Option<String>,
}

impl CacheSetup {
    /// A plain unsharded, unverified setup over `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> CacheSetup {
        CacheSetup {
            dir: dir.into(),
            mem_bytes: DEFAULT_MEM_BYTES,
            shard: None,
            resume: false,
            verify: false,
            compute_budget: None,
            manifest_tag: None,
        }
    }
}

/// The installed result cache: blob cache + shard plan + manifest.
///
/// All methods are `&self` and thread-safe — sweep workers share one
/// instance through [`active`].
#[derive(Debug)]
pub struct RunCache {
    cache: Cache,
    shard: Option<ShardSpec>,
    verify: bool,
    manifest: Option<Manifest>,
    done: Mutex<HashSet<Digest>>,
    budget: Option<AtomicI64>,
    computed: AtomicU64,
    foreign_skips: AtomicU64,
    resumed_skips: AtomicU64,
    budget_skips: AtomicU64,
    verified: AtomicU64,
    verify_failures: AtomicU64,
}

impl RunCache {
    /// Builds a cache from `setup`. No IO happens until first use
    /// except loading the resume manifest.
    pub fn new(setup: &CacheSetup) -> RunCache {
        let manifest = match (&setup.shard, &setup.manifest_tag) {
            (Some(shard), Some(tag)) => {
                Some(Manifest::new(setup.dir.join("manifests").join(format!(
                    "{tag}.shard-{}of{}.txt",
                    shard.index, shard.total
                ))))
            }
            _ => None,
        };
        let done = if setup.resume {
            manifest.as_ref().map(Manifest::load).unwrap_or_default()
        } else {
            HashSet::new()
        };
        RunCache {
            cache: Cache::new(&setup.dir, setup.mem_bytes),
            shard: setup.shard,
            verify: setup.verify,
            manifest,
            done: Mutex::new(done),
            budget: setup.compute_budget.map(|b| AtomicI64::new(b as i64)),
            computed: AtomicU64::new(0),
            foreign_skips: AtomicU64::new(0),
            resumed_skips: AtomicU64::new(0),
            budget_skips: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
        }
    }

    /// The shard plan, if any.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Points actually simulated by this run.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Hits served (memory + disk).
    pub fn hits(&self) -> u64 {
        self.cache.stats().hits()
    }

    /// Keys skipped because another shard owns them.
    pub fn foreign_skips(&self) -> u64 {
        self.foreign_skips.load(Ordering::Relaxed)
    }

    /// Keys skipped because a prior attempt's manifest listed them.
    pub fn resumed_skips(&self) -> u64 {
        self.resumed_skips.load(Ordering::Relaxed)
    }

    /// Keys skipped because the compute budget ran out.
    pub fn budget_skips(&self) -> u64 {
        self.budget_skips.load(Ordering::Relaxed)
    }

    /// Hits recomputed and byte-compared by `--verify-cache`.
    pub fn verified(&self) -> u64 {
        self.verified.load(Ordering::Relaxed)
    }

    /// Verified hits whose recomputation did NOT match the stored blob.
    /// Always zero unless the cache or the simulator is broken.
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures.load(Ordering::Relaxed)
    }

    /// One-line traffic summary for the CLI.
    pub fn stats_line(&self) -> String {
        let s = self.cache.stats();
        let mem = s.mem_hits.load(Ordering::Relaxed);
        let disk = s.disk_hits.load(Ordering::Relaxed);
        let hits = mem + disk;
        let computed = self.computed();
        let served = hits + computed;
        let mut line = if served == 0 {
            "[cache] no cacheable points".to_string()
        } else {
            format!(
                "[cache] {hits} hits ({mem} mem, {disk} disk), {computed} computed — {:.1}% hit rate",
                100.0 * hits as f64 / served as f64
            )
        };
        if let Some(shard) = self.shard {
            line.push_str(&format!(
                "; shard {}/{}: {} foreign, {} resumed, {} deferred",
                shard.index,
                shard.total,
                self.foreign_skips(),
                self.resumed_skips(),
                self.budget_skips()
            ));
        }
        if self.verify {
            line.push_str(&format!(
                "; verified {} hits, {} mismatches",
                self.verified(),
                self.verify_failures()
            ));
        }
        if self.cache.is_degraded() {
            line.push_str("; DEGRADED (memory only)");
        }
        line
    }

    /// Deterministic 1-in-8 sample of hits to re-check under
    /// `--verify-cache`.
    fn sampled(key: Digest) -> bool {
        key.lo & 7 == 0
    }

    fn resume_skip(&self, key: Digest) -> bool {
        self.shard.is_some()
            && self
                .done
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&key)
    }

    fn shard_foreign(&self, key: Digest) -> bool {
        self.shard.is_some_and(|s| !s.owns(key))
    }

    fn budget_exhausted(&self) -> bool {
        match &self.budget {
            Some(b) => b.fetch_sub(1, Ordering::Relaxed) <= 0,
            None => false,
        }
    }

    fn record_complete(&self, key: Digest, blob: Vec<u8>) {
        self.cache.put(key, blob);
        if let Some(m) = &self.manifest {
            m.append(key);
        }
        self.computed.fetch_add(1, Ordering::Relaxed);
    }

    /// The cache-aware run wrapper. Serves `key` from cache when
    /// possible; otherwise applies the shard plan (placeholder for
    /// foreign/resumed/deferred keys) or computes, stores, and
    /// checkpoints. `compute` errors pass through uncached.
    pub fn run_report<E: From<String>>(
        &self,
        key: Digest,
        placeholder: impl FnOnce() -> SystemReport,
        compute: impl FnOnce() -> Result<SystemReport, E>,
    ) -> Result<SystemReport, E> {
        if self.resume_skip(key) {
            self.resumed_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(placeholder());
        }
        if let Some(blob) = self.cache.get(key) {
            if let Some(report) = decode_system_report(&blob) {
                if self.verify && Self::sampled(key) {
                    let fresh = compute()?;
                    self.verified.fetch_add(1, Ordering::Relaxed);
                    if encode_system_report(&fresh) != *blob {
                        self.verify_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(E::from(format!(
                            "cache verification failed for key {key}: stored report \
                             differs from recomputation"
                        )));
                    }
                }
                return Ok(report);
            }
            // Undecodable (stale VALUE_VERSION): fall through, recompute.
        }
        if self.shard_foreign(key) {
            self.foreign_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(placeholder());
        }
        if self.budget_exhausted() {
            self.budget_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(placeholder());
        }
        let report = compute()?;
        self.record_complete(key, encode_system_report(&report));
        Ok(report)
    }

    /// [`RunCache::run_report`] for bare f64 utilization points. The
    /// compute path is infallible, so a verification mismatch is
    /// counted (see [`RunCache::verify_failures`]) and the *fresh*
    /// value returned; the CLI turns a nonzero count into a run
    /// failure.
    pub fn util_value(&self, key: Digest, compute: impl FnOnce() -> f64) -> f64 {
        if self.resume_skip(key) {
            self.resumed_skips.fetch_add(1, Ordering::Relaxed);
            return 0.0;
        }
        if let Some(blob) = self.cache.get(key) {
            if let Some(v) = decode_f64(&blob) {
                if self.verify && Self::sampled(key) {
                    let fresh = compute();
                    self.verified.fetch_add(1, Ordering::Relaxed);
                    if fresh.to_bits() != v.to_bits() {
                        self.verify_failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "error: cache verification failed for key {key}: stored \
                             {v:?} != recomputed {fresh:?}"
                        );
                        return fresh;
                    }
                }
                return v;
            }
        }
        if self.shard_foreign(key) {
            self.foreign_skips.fetch_add(1, Ordering::Relaxed);
            return 0.0;
        }
        if self.budget_exhausted() {
            self.budget_skips.fetch_add(1, Ordering::Relaxed);
            return 0.0;
        }
        let v = compute();
        self.record_complete(key, encode_f64(v));
        v
    }
}

// ---------------------------------------------------------------------
// Global installation
// ---------------------------------------------------------------------

static ACTIVE: RwLock<Option<Arc<RunCache>>> = RwLock::new(None);

/// Installs a result cache for the whole process; subsequent unprobed
/// runs consult it. Returns the handle (also retrievable via
/// [`active`]) so callers can read stats after [`uninstall`].
pub fn install(setup: &CacheSetup) -> Arc<RunCache> {
    let cache = Arc::new(RunCache::new(setup));
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(cache.clone());
    cache
}

/// Removes the installed cache; runs go back to always computing.
pub fn uninstall() {
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The currently installed cache, if any.
pub fn active() -> Option<Arc<RunCache>> {
    ACTIVE.read().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_kernel;
    use workloads::gemv;

    fn tmp(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("axi-pack-cache-mod-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn small_kernel() -> Kernel {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        gemv::build(8, 7, workloads::Dataflow::ColWise, &cfg.kernel_params())
    }

    #[test]
    fn report_codec_round_trips_bit_exactly() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let rep = run_kernel(&cfg, &small_kernel()).expect("run");
        let sys = SystemReport {
            cycles: rep.cycles,
            requestors: vec![rep],
            bus_r_busy: 0.123_456_789,
            bus_r_util: f64::from_bits(0x3fe5_5555_5555_5555),
            bank_conflicts: 7,
            word_accesses: 99,
            outcomes: vec![RequestorOutcome::Completed],
            levels: vec![LevelOccupancy {
                level: 0,
                muxes: 3,
                ar_beats: 17,
                r_beats: 170,
            }],
        };
        let blob = encode_system_report(&sys);
        let back = decode_system_report(&blob).expect("decode");
        assert_eq!(encode_system_report(&back), blob);
        assert_eq!(back.cycles, sys.cycles);
        assert_eq!(back.requestors[0].kernel, sys.requestors[0].kernel);
        assert_eq!(
            back.requestors[0].r_util.to_bits(),
            sys.requestors[0].r_util.to_bits()
        );
    }

    #[test]
    fn f64_codec_round_trips_nan_and_neg_zero() {
        for v in [0.0, -0.0, f64::NAN, 1.0 / 3.0, f64::INFINITY] {
            let blob = encode_f64(v);
            assert_eq!(decode_f64(&blob).unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(decode_f64(b"junk"), None);
        let cfg = SystemConfig::paper(SystemKind::Base);
        let topo = Topology::builder(&cfg)
            .requestor(cfg.kind, small_kernel())
            .build()
            .expect("DRC-clean");
        assert_eq!(
            decode_f64(&encode_system_report(&placeholder_topology(&topo))),
            None
        );
    }

    #[test]
    fn sched_mode_is_excluded_from_keys() {
        let kernel = small_kernel();
        let mut event = SystemConfig::paper(SystemKind::Pack);
        event.sched = crate::system::SchedMode::Event;
        let mut lockstep = event;
        lockstep.sched = crate::system::SchedMode::Lockstep;
        assert_eq!(
            single_run_key(&event, SystemKind::Pack, &kernel),
            single_run_key(&lockstep, SystemKind::Pack, &kernel)
        );
        // …but every report-visible knob separates keys.
        let mut other = event;
        other.banks = 16;
        assert_ne!(
            single_run_key(&event, SystemKind::Pack, &kernel),
            single_run_key(&other, SystemKind::Pack, &kernel)
        );
        assert_ne!(
            single_run_key(&event, SystemKind::Pack, &kernel),
            single_run_key(&event, SystemKind::Base, &kernel)
        );
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        assert_eq!(
            ShardSpec::parse("0/4"),
            Some(ShardSpec { index: 0, total: 4 })
        );
        assert_eq!(
            ShardSpec::parse("3/4"),
            Some(ShardSpec { index: 3, total: 4 })
        );
        assert_eq!(ShardSpec::parse("4/4"), None);
        assert_eq!(ShardSpec::parse("0/0"), None);
        assert_eq!(ShardSpec::parse("x/2"), None);
        assert_eq!(ShardSpec::parse("2"), None);
        // Every key is owned by exactly one shard.
        for b in 0u8..32 {
            let key = Digest::of_bytes(&[b]);
            let owners = (0..4)
                .filter(|&i| ShardSpec { index: i, total: 4 }.owns(key))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn run_report_caches_and_replays() {
        let dir = tmp("replay");
        let rc = RunCache::new(&CacheSetup::new(&dir));
        let key = Digest::of_bytes(b"k1");
        let cfg = SystemConfig::paper(SystemKind::Base);
        let kernel = small_kernel();
        let mut computes = 0;
        for _ in 0..3 {
            let rep: Result<SystemReport, crate::system::RunError> = rc.run_report(
                key,
                || placeholder_single(&cfg, cfg.kind, &kernel),
                || {
                    computes += 1;
                    Ok(SystemReport {
                        cycles: 42,
                        requestors: vec![],
                        bus_r_busy: 0.5,
                        bus_r_util: 0.25,
                        bank_conflicts: 1,
                        word_accesses: 2,
                        outcomes: vec![],
                        levels: vec![],
                    })
                },
            );
            assert_eq!(rep.unwrap().cycles, 42);
        }
        assert_eq!(computes, 1);
        assert_eq!(rc.computed(), 1);
        assert_eq!(rc.hits(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_store_degrades_but_results_stay_correct() {
        // Cache dir is a FILE → every disk write fails; the run must
        // still produce correct results from the compute path (plus
        // the memory tier).
        let path = tmp("poison");
        std::fs::write(&path, b"not a dir").unwrap();
        let rc = RunCache::new(&CacheSetup::new(&path));
        let key = Digest::of_bytes(b"p");
        for want in [7u64, 7, 7] {
            let rep: Result<SystemReport, crate::system::RunError> = rc.run_report(
                key,
                || unreachable!("unsharded runs never use placeholders"),
                || {
                    Ok(SystemReport {
                        cycles: want,
                        requestors: vec![],
                        bus_r_busy: 0.0,
                        bus_r_util: 0.0,
                        bank_conflicts: 0,
                        word_accesses: 0,
                        outcomes: vec![],
                        levels: vec![],
                    })
                },
            );
            assert_eq!(rep.unwrap().cycles, want);
        }
        // First call computed and stored to memory; the rest hit there.
        assert_eq!(rc.computed(), 1);
        assert_eq!(rc.hits(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
