//! System assembly and the run loops.
//!
//! Builds the paper's three evaluation systems (§III-A): BASE (plain
//! AXI4), PACK (AXI-Pack bus + near-memory adapter) and IDEAL (per-lane
//! conflict-free memory) — and runs kernels to completion on them.
//!
//! Assembly revolves around a [`Topology`]: one shared bus/memory
//! configuration plus N requestors, each with its own [`SystemKind`],
//! kernel, and private address-space window of the shared backing store.
//! [`run_system`] ticks all N engines; with two or more bus-attached
//! requestors they share a [`pack_ctrl::Adapter`] through ID-remapping
//! [`axi_proto::AxiMux`] levels — the multi-requestor configuration
//! the paper sketches in §II-A/§V, which is where bus contention,
//! arbitration fairness, and cross-requestor bank-conflict amplification
//! become measurable. [`run_kernel`] is the single-requestor convenience
//! wrapper behind every bar of Fig. 3.
//!
//! Topologies are built with [`TopologyBuilder`] (via
//! [`Topology::builder`]), which validates through the static design-rule
//! checker and returns typed [`RunError::Drc`] diagnostics instead of
//! panicking. A [`FabricSpec`] scales the interconnect past the flat
//! four-port mux: bus-attached requestors cascade through a tree of mux
//! levels (fan-in [`FabricSpec::arity`] per level, one ID-prefix field
//! per level), and requestor windows interleave round-robin across
//! [`FabricSpec::channels`] independent memory channels, each with its
//! own adapter and optionally a DRAM-style row-buffer timing model.

use axi_proto::checker::Monitor;
use axi_proto::{
    AxiChannels, AxiId, AxiMux, BusConfig, ID_BITS, LOCAL_ID_BITS, MAX_FAN_IN, MAX_MANAGERS,
};
use banked_mem::{BankConfig, ChannelMap, Storage, WordFault};
use hwmodel::energy::{Activity, EnergyModel};
use pack_ctrl::{Adapter, CtrlConfig};
use simkit::fault::{site, FaultReport, FaultSpec, HangComponent, HangReport};
use vproc::{BusFault, Engine, EngineStats, SystemKind, VprocConfig};
use workloads::{Kernel, KernelParams};

use crate::differential::{memory_digest, RunProbe, SchedProbe};
use crate::drc::{self, DrcReport};
use crate::report::{LevelOccupancy, RequestorOutcome, RunReport, SystemReport};

/// Why a run refused to start or failed to complete.
///
/// The run paths validate every configuration with the static design-rule
/// checker ([`crate::drc`]) before cycle 0; a rejected configuration
/// carries its full [`DrcReport`] so the caller sees every violated rule,
/// not just the first. Running-simulation failures are typed too:
/// an unrecoverable injected AXI fault aborts with a [`FaultReport`]
/// naming the site and retry history, and a stalled or over-budget run
/// aborts with a [`HangReport`] naming the stalled dependency chain.
/// Only functional divergence from the scalar reference stays a plain
/// string.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The design-rule check rejected the configuration before cycle 0.
    Drc(DrcReport),
    /// The simulation ran and the functional result diverged from the
    /// scalar reference.
    Sim(String),
    /// A requestor aborted on an unrecoverable AXI fault: the adapter's
    /// retry budget was exhausted, or a decode error (never retryable)
    /// reached the requestor.
    Axi(FaultReport),
    /// The run hung: the progress watchdog saw no real-work counter move
    /// for a whole window, or the hard `max_cycles` budget ran out. Boxed
    /// — the forensics snapshot is large and errors travel by value.
    Hang(Box<HangReport>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Drc(report) => write!(f, "{report}"),
            RunError::Sim(msg) => f.write_str(msg),
            RunError::Axi(report) => write!(f, "{report}"),
            RunError::Hang(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<String> for RunError {
    fn from(msg: String) -> Self {
        RunError::Sim(msg)
    }
}

impl From<RunError> for String {
    fn from(err: RunError) -> Self {
        err.to_string()
    }
}

impl RunError {
    /// The DRC report, when this error is a design-rule rejection.
    pub fn drc_report(&self) -> Option<&DrcReport> {
        match self {
            RunError::Drc(report) => Some(report),
            _ => None,
        }
    }

    /// The fault report, when this error is an AXI fault abort.
    pub fn fault_report(&self) -> Option<&FaultReport> {
        match self {
            RunError::Axi(report) => Some(report),
            _ => None,
        }
    }

    /// The hang forensics, when this error is a hang.
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            RunError::Hang(report) => Some(report),
            _ => None,
        }
    }
}

/// How the run loops advance simulated time.
///
/// Both modes produce bit-identical results — final memory, every
/// [`RunReport`] counter, and the completion cycle — which the
/// differential fuzzer asserts on every seed. Event mode is purely a
/// wall-clock optimization; lockstep is the oracle it is proven against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Readiness/wakeup scheduling: run loops query every component's
    /// [`simkit::sched::Wake`] at each cycle boundary and fast-forward the
    /// global cycle counter across spans where all of them are provably
    /// idle (scalar stalls, reduction tails, memory latency countdowns).
    #[default]
    Event,
    /// Tick every component every cycle — the original scheduler, kept as
    /// the differential oracle (`figures --lockstep`).
    Lockstep,
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedMode::Event => "event",
            SchedMode::Lockstep => "lockstep",
        })
    }
}

/// Process-wide default for [`SystemConfig::sched`], flipped once at
/// startup by the `figures --lockstep` flag. `true` means lockstep.
static DEFAULT_LOCKSTEP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Sets the process-wide default scheduling mode that newly built
/// [`SystemConfig`]s pick up.
///
/// Intended for CLI entry points (the `figures --lockstep` oracle mode);
/// tests and library code should set [`SystemConfig::sched`] on the
/// specific config instead of mutating process state.
pub fn set_default_sched_mode(mode: SchedMode) {
    DEFAULT_LOCKSTEP.store(
        mode == SchedMode::Lockstep,
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The process-wide default scheduling mode (see
/// [`set_default_sched_mode`]).
pub fn default_sched_mode() -> SchedMode {
    if DEFAULT_LOCKSTEP.load(std::sync::atomic::Ordering::Relaxed) {
        SchedMode::Lockstep
    } else {
        SchedMode::Event
    }
}

/// Configuration of one evaluation system.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// BASE, PACK or IDEAL (paper §III-A).
    pub kind: SystemKind,
    /// Bus width in bits (64 / 128 / 256; lanes scale with it).
    pub bus_bits: u32,
    /// Bank count of the shared SRAM (paper default 17).
    pub banks: usize,
    /// Decoupling-queue depth in the controller (paper default 4).
    pub queue_depth: usize,
    /// Vector processor parameters (derived from the bus width).
    pub vproc: VprocConfig,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Event-driven or lockstep time advancement (results are identical;
    /// see [`SchedMode`]).
    pub sched: SchedMode,
    /// Deterministic fault injection, `None` (the default) for clean
    /// runs. Installing a spec arms the bank, decode and mux grant sites
    /// and the adapter's bounded retry recovery; runs with a spec
    /// installed always bypass the result cache.
    pub fault: Option<FaultSpec>,
    /// Progress-watchdog window in cycles (0 disables it): when no
    /// real-work counter advances for a whole window the run aborts with
    /// [`RunError::Hang`] instead of spinning to `max_cycles`. Excluded
    /// from cache keys — a report-invariant knob like `sched`.
    pub watchdog: u64,
}

impl SystemConfig {
    /// The paper's evaluation system at a 256-bit bus.
    pub fn paper(kind: SystemKind) -> Self {
        SystemConfig::with_bus(kind, 256)
    }

    /// A paper system at a different bus width (Fig. 3d/3e sweeps).
    pub fn with_bus(kind: SystemKind, bus_bits: u32) -> Self {
        SystemConfig {
            kind,
            bus_bits,
            banks: 17,
            queue_depth: 4,
            vproc: VprocConfig::for_bus_bits(bus_bits),
            max_cycles: 500_000_000,
            sched: default_sched_mode(),
            fault: None,
            watchdog: 0,
        }
    }

    /// Kernel-builder parameters matching this system.
    pub fn kernel_params(&self) -> KernelParams {
        self.kernel_params_for(self.kind)
    }

    /// Kernel-builder parameters for a requestor of another kind sharing
    /// this system (programs are system-specific).
    pub fn kernel_params_for(&self, kind: SystemKind) -> KernelParams {
        KernelParams::new(kind, self.vproc.max_vl())
    }

    fn bus(&self) -> BusConfig {
        BusConfig::new(self.bus_bits)
    }

    fn ctrl(&self) -> CtrlConfig {
        let bank = BankConfig {
            banks: self.banks,
            word_bytes: 4,
            latency: 1,
            ports: 0, // derived by CtrlConfig::new
            conflict_free: false,
            // Eager-functional execution is the source of truth for
            // memory contents; timed writes keep timing only.
            commit_writes: false,
            row_words: 0,
            row_miss_penalty: 0,
        };
        CtrlConfig::new(self.bus(), bank, self.queue_depth)
    }

    /// Controller config for one channel of a fabric: the flat [`Self::ctrl`]
    /// banks plus the fabric's row-buffer timing model.
    fn ctrl_for(&self, fabric: &FabricSpec) -> CtrlConfig {
        let mut cfg = self.ctrl();
        cfg.bank.row_words = fabric.row_words;
        cfg.bank.row_miss_penalty = fabric.row_miss_penalty;
        cfg
    }
}

/// One requestor of a [`Topology`]: a system kind plus the kernel built
/// for that kind (programs are system-specific — build the kernel with
/// [`SystemConfig::kernel_params_for`] of the same kind).
#[derive(Debug, Clone)]
pub struct Requestor {
    /// How this requestor accesses memory (BASE and PACK requestors may
    /// share one bus; IDEAL requestors own per-lane ports and never
    /// contend).
    pub kind: SystemKind,
    /// The kernel this requestor executes, in window-relative addresses.
    pub kernel: Kernel,
}

impl Requestor {
    /// Bundles a kind with its kernel.
    pub fn new(kind: SystemKind, kernel: Kernel) -> Self {
        Requestor { kind, kernel }
    }
}

/// Requestor windows are 4 KiB-aligned so every kernel keeps its internal
/// 64-byte layout alignment — and therefore its bus-boundary behaviour —
/// regardless of which window it lands in. Public so the static
/// design-rule checker ([`crate::drc`]) verifies alignment against the
/// same constant the assembly code derives windows from.
pub const WINDOW_ALIGN: u64 = 0x1000;

/// Shape of the memory-side fabric of a [`Topology`]: how many
/// interleaved memory channels back the requestors, the manager fan-in
/// of each cascaded mux level, and the DRAM-style row-buffer timing of
/// each channel's banks.
///
/// The default ([`FabricSpec::flat`]) is the pre-fabric system — one
/// channel, one flat mux of up to [`MAX_MANAGERS`] ports, no row-buffer
/// model — and runs byte-identically to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricSpec {
    /// Independent memory channels, each with its own adapter and banked
    /// store behind it. Requestor windows interleave across channels
    /// round-robin by window index (window *i* on channel
    /// `i % channels`).
    pub channels: usize,
    /// Manager fan-in of one mux level (2..=[`MAX_FAN_IN`]). A channel
    /// with more bus-attached requestors than this cascades them through
    /// a tree of levels, each stacking its own ID-prefix field.
    pub arity: usize,
    /// Words per bank row: a channel access outside a bank's open row
    /// pays [`FabricSpec::row_miss_penalty`]. 0 disables the model.
    pub row_words: usize,
    /// Extra cycles a row-buffer miss costs (activate + precharge).
    pub row_miss_penalty: usize,
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec::flat()
    }
}

impl FabricSpec {
    /// The pre-fabric shape: one channel, one flat mux, SRAM-flat banks.
    pub fn flat() -> Self {
        FabricSpec {
            channels: 1,
            arity: MAX_MANAGERS,
            row_words: 0,
            row_miss_penalty: 0,
        }
    }

    /// A cascaded mux tree with the given per-level fan-in.
    pub fn tree(arity: usize) -> Self {
        FabricSpec {
            arity,
            ..FabricSpec::flat()
        }
    }

    /// Same fabric, interleaved across `channels` memory channels.
    pub fn with_channels(self, channels: usize) -> Self {
        FabricSpec { channels, ..self }
    }

    /// Same fabric, with a DRAM-style row-buffer model on every bank.
    pub fn with_row_buffer(self, row_words: usize, row_miss_penalty: usize) -> Self {
        FabricSpec {
            row_words,
            row_miss_penalty,
            ..self
        }
    }

    /// ID-prefix bits one mux level of this fabric occupies.
    pub(crate) fn level_bits(&self) -> u32 {
        (self.arity.max(2) - 1).ilog2() + 1
    }

    /// Mux levels needed to funnel `managers` ports into one — 0 when a
    /// single port (or none) needs no mux at all. Arities below 2 never
    /// converge; they are reported as a DRC error and treated as flat
    /// here so the walk terminates.
    pub(crate) fn depth_for(&self, managers: usize) -> usize {
        let arity = self.arity.max(2);
        let mut width = managers;
        let mut depth = 0;
        while width > 1 {
            width = width.div_ceil(arity);
            depth += 1;
        }
        depth
    }
}

/// Physical placement of a [`Topology`]: every requestor's address
/// window, the decoder interleaving those windows across memory
/// channels, and each requestor's owning channel. The one authoritative
/// geometry answer shared by the run loops, the DRC and the cache-key
/// canon — none of them re-derive windows or channel routing ad hoc.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Window base address per requestor (4 KiB-aligned, disjoint,
    /// requestor 0 at address 0).
    pub window_bases: Vec<u64>,
    /// Window size in bytes per requestor (its kernel's storage size).
    pub window_sizes: Vec<u64>,
    /// Address-range decoder mapping every window onto its channel.
    pub channels: ChannelMap,
    /// Owning memory channel per requestor.
    pub channel_of: Vec<usize>,
    /// Total backing-store bytes covering every window.
    pub storage_bytes: usize,
}

/// A complete system: shared bus/memory parameters plus N requestors,
/// each in its own address-space window (paper §II-A/§V), connected
/// through the fabric a [`FabricSpec`] describes.
///
/// Requestor 0's window starts at address 0, so a single-requestor
/// topology is *exactly* the classic [`run_kernel`] system — same
/// addresses, same cycle loop, byte-identical [`RunReport`].
#[derive(Debug, Clone)]
pub struct Topology {
    /// Shared system parameters: bus width, bank count, queue depth,
    /// vector-processor shape and cycle limit. (`system.kind` seeds
    /// single-requestor topologies; each requestor carries its own kind.)
    pub system: SystemConfig,
    /// The requestors sharing the system, in manager-port order.
    pub requestors: Vec<Requestor>,
    /// Interconnect and memory-channel shape. The default is the flat
    /// pre-fabric system.
    pub fabric: FabricSpec,
}

impl Topology {
    /// Starts a [`TopologyBuilder`] over the given system parameters —
    /// the panic-free way to assemble a topology.
    pub fn builder(cfg: &SystemConfig) -> TopologyBuilder {
        TopologyBuilder::new(cfg)
    }

    /// The classic single-requestor system: `cfg.kind` running `kernel`.
    #[deprecated(
        note = "use Topology::builder(cfg).requestor(cfg.kind, kernel).build() — \
                it validates through the DRC and returns typed diagnostics"
    )]
    pub fn single(cfg: &SystemConfig, kernel: Kernel) -> Self {
        Topology {
            system: *cfg,
            requestors: vec![Requestor::new(cfg.kind, kernel)],
            fabric: FabricSpec::default(),
        }
    }

    /// A shared-bus system: all `requestors` contend for one AXI(-Pack)
    /// endpoint through an ID-remapping round-robin mux.
    ///
    /// # Panics
    ///
    /// Panics on an empty requestor list, or when more than four
    /// *bus-attached* (BASE/PACK) requestors are given — the flat mux's
    /// 2 ID-prefix bits. IDEAL requestors use per-lane ports and do not
    /// count against the manager limit. [`TopologyBuilder`] has neither
    /// panic (empty topologies come back as typed DRC errors, and larger
    /// requestor counts cascade through a mux tree).
    #[deprecated(
        note = "use Topology::builder — it returns typed diagnostics instead of \
                panicking and scales past four requestors via the mux-tree fabric"
    )]
    pub fn shared_bus(cfg: &SystemConfig, requestors: Vec<Requestor>) -> Self {
        assert!(!requestors.is_empty(), "a topology needs a requestor");
        let bus_attached = requestors
            .iter()
            .filter(|r| r.kind != SystemKind::Ideal)
            .count();
        assert!(
            bus_attached <= MAX_MANAGERS,
            "a shared bus carries at most {MAX_MANAGERS} bus-attached requestors, got {bus_attached}"
        );
        Topology {
            system: *cfg,
            requestors,
            fabric: FabricSpec::default(),
        }
    }

    /// The window base address of every requestor: 4 KiB-aligned,
    /// disjoint, requestor 0 at address 0.
    pub fn window_bases(&self) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.requestors.len());
        let mut next = 0u64;
        for r in &self.requestors {
            bases.push(next);
            next = (next + r.kernel.storage_size as u64).div_ceil(WINDOW_ALIGN) * WINDOW_ALIGN;
        }
        bases
    }

    /// The full physical placement: windows, channel interleave, and the
    /// backing-store size. Never panics — degenerate fabrics (zero
    /// channels, empty requestor lists) produce a degenerate placement
    /// the DRC then diagnoses.
    pub fn placement(&self) -> Placement {
        let window_bases = self.window_bases();
        let window_sizes: Vec<u64> = self
            .requestors
            .iter()
            .map(|r| r.kernel.storage_size as u64)
            .collect();
        let windows: Vec<(u64, u64)> = window_bases
            .iter()
            .copied()
            .zip(window_sizes.iter().copied())
            .collect();
        let channels = ChannelMap::interleaved(&windows, self.fabric.channels);
        let nch = self.fabric.channels.max(1);
        let channel_of = (0..self.requestors.len()).map(|i| i % nch).collect();
        let storage_bytes = self
            .requestors
            .iter()
            .zip(&window_bases)
            .map(|(r, &b)| b as usize + r.kernel.storage_size)
            .max()
            .unwrap_or(0);
        Placement {
            window_bases,
            window_sizes,
            channels,
            channel_of,
            storage_bytes,
        }
    }

    /// Total backing-store size covering every window.
    fn storage_bytes(&self) -> usize {
        self.placement().storage_bytes
    }
}

/// Panic-free [`Topology`] assembly: collect requestors and fabric
/// knobs, then [`TopologyBuilder::build`] validates the whole
/// configuration through the static design-rule checker and returns
/// either a run-ready topology or the full typed [`DrcReport`].
///
/// # Examples
///
/// ```
/// use axi_pack::{FabricSpec, SystemConfig, Topology};
/// use vproc::SystemKind;
/// use workloads::ismt;
///
/// let cfg = SystemConfig::paper(SystemKind::Pack);
/// let p = cfg.kernel_params();
/// let topo = Topology::builder(&cfg)
///     .requestor(SystemKind::Pack, ismt::build(16, 1, &p))
///     .requestor(SystemKind::Pack, ismt::build(16, 2, &p))
///     .fabric(FabricSpec::tree(2))
///     .build()
///     .expect("DRC-clean");
/// assert_eq!(topo.requestors.len(), 2);
///
/// // Errors are typed, not panics: an empty topology is DRC-U1.
/// let err = Topology::builder(&cfg).build().expect_err("rejected");
/// assert!(err.drc_report().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    system: SystemConfig,
    requestors: Vec<Requestor>,
    fabric: FabricSpec,
}

impl TopologyBuilder {
    /// Starts a builder over the given system parameters with the flat
    /// default fabric and no requestors.
    pub fn new(cfg: &SystemConfig) -> Self {
        TopologyBuilder {
            system: *cfg,
            requestors: Vec::new(),
            fabric: FabricSpec::default(),
        }
    }

    /// Appends one requestor (window order is append order).
    pub fn requestor(mut self, kind: SystemKind, kernel: Kernel) -> Self {
        self.requestors.push(Requestor::new(kind, kernel));
        self
    }

    /// Appends every requestor of an iterator.
    pub fn requestors(mut self, reqs: impl IntoIterator<Item = Requestor>) -> Self {
        self.requestors.extend(reqs);
        self
    }

    /// Replaces the whole fabric shape.
    pub fn fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = fabric;
        self
    }

    /// Sets the memory-channel count (windows interleave round-robin).
    pub fn channels(mut self, channels: usize) -> Self {
        self.fabric.channels = channels;
        self
    }

    /// Sets the per-level mux fan-in.
    pub fn arity(mut self, arity: usize) -> Self {
        self.fabric.arity = arity;
        self
    }

    /// Enables the DRAM-style row-buffer model on every channel's banks.
    pub fn row_buffer(mut self, row_words: usize, row_miss_penalty: usize) -> Self {
        self.fabric.row_words = row_words;
        self.fabric.row_miss_penalty = row_miss_penalty;
        self
    }

    /// Validates the assembled topology through the DRC.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Drc`] with every violated rule — empty
    /// topologies (DRC-U1), fabric arities outside `2..=MAX_FAN_IN`
    /// (DRC-I2), dead or overlapping channel ranges (DRC-F1), ID spaces
    /// too small for the mux-tree prefixes (DRC-I1), zero-capacity
    /// queues, misaligned windows, and the rest of the rule book. This
    /// method never panics.
    pub fn build(self) -> Result<Topology, RunError> {
        let topo = Topology {
            system: self.system,
            requestors: self.requestors,
            fabric: self.fabric,
        };
        let report = if topo.requestors.len() == 1 {
            // A single requestor never enters the fabric — run paths use
            // the classic solo loop — so the solo rule set applies.
            let r = &topo.requestors[0];
            drc::check_single(&topo.system, r.kind, &r.kernel)
        } else {
            drc::check_topology(&topo)
        };
        if report.is_clean() {
            Ok(topo)
        } else {
            Err(RunError::Drc(report))
        }
    }
}

/// Builds one requestor's [`RunReport`] from its engine statistics.
///
/// `adapter_stats` carries `(word_accesses, bank_conflicts)` when the
/// whole adapter's activity belongs to this requestor (single-requestor
/// AXI runs); otherwise — IDEAL, or a shared adapter — word accesses are
/// charged as one word per element moved and conflicts are reported at
/// the system level only.
fn build_report(
    kernel: &Kernel,
    kind: SystemKind,
    bus_bits: u32,
    cycles: u64,
    stats: &EngineStats,
    adapter_stats: Option<(u64, u64)>,
    fault_stats: (u64, u64),
) -> RunReport {
    let (word_accesses, bank_conflicts) =
        adapter_stats.unwrap_or((stats.load_elems + stats.store_elems, 0));
    let (injected_faults, fault_retries) = fault_stats;
    let activity = Activity {
        cycles,
        lane_elems: stats.lane_elems,
        r_payload_bytes: stats.r_util.payload_bytes(),
        w_payload_bytes: stats.w_payload,
        word_accesses,
        insns_issued: stats.issued,
        has_pack_adapter: kind == SystemKind::Pack,
    };
    RunReport {
        kernel: kernel.name.clone(),
        kind,
        bus_bits,
        cycles,
        r_util: stats.r_util.payload_fraction(),
        r_util_no_idx: stats.r_util_data.payload_fraction(),
        r_busy: stats.r_util.busy_fraction(),
        data_mismatches: stats.data_mismatches,
        ar_stall_cycles: stats.ar_stall_cycles,
        w_stall_cycles: stats.w_stall_cycles,
        bank_conflicts,
        activity,
        power_mw: EnergyModel::default().power_mw(&activity),
        energy_uj: EnergyModel::default().energy_uj(&activity),
        injected_faults,
        fault_retries,
    }
}

/// Real-work progress signature of one engine: advances whenever the
/// engine issues, computes, moves data, or burns a *programmed* scalar
/// stall. Deliberately excludes injected stall classes (bank-delay
/// spikes, mux grant storms) so a fault-stalled system reads as making
/// no progress and the watchdog can name it.
fn engine_progress(stats: &EngineStats) -> u64 {
    stats.issued
        + stats.lane_elems
        + stats.load_elems
        + stats.store_elems
        + stats.w_beats
        + stats.scalar_stall_cycles
}

/// Progress watchdog: fires when the caller-computed signature stays
/// flat for a whole window. A window of 0 disables it.
struct Watchdog {
    window: u64,
    last_sig: u64,
    last_change: u64,
}

impl Watchdog {
    fn new(window: u64) -> Self {
        Watchdog {
            window,
            last_sig: 0,
            last_change: 0,
        }
    }

    /// Accounts the signature at `cycles`; `true` means no progress for
    /// a full window — abort with hang forensics.
    #[inline]
    fn expired(&mut self, cycles: u64, sig: u64) -> bool {
        if self.window == 0 {
            return false;
        }
        if sig != self.last_sig {
            self.last_sig = sig;
            self.last_change = cycles;
            return false;
        }
        cycles.saturating_sub(self.last_change) >= self.window
    }
}

/// Snapshot of one [`AxiChannels`] bundle for hang forensics.
fn channels_component(name: &str, ch: &AxiChannels) -> HangComponent {
    HangComponent {
        name: name.to_string(),
        state: format!(
            "ar {} aw {} w {} r {} b {}",
            ch.ar.len(),
            ch.aw.len(),
            ch.w.len(),
            ch.r.len(),
            ch.b.len()
        ),
        busy: !ch.is_empty(),
    }
}

/// Builds the [`RunError::Hang`] for a run: the dependency-ordered
/// component snapshots plus the computed suspect (the *deepest* busy
/// component — the thing everything upstream is waiting on).
fn hang_error(
    subject: String,
    cycle: u64,
    limit: u64,
    no_progress: bool,
    components: Vec<HangComponent>,
) -> RunError {
    let suspect = components.iter().rev().find(|c| c.busy).map_or_else(
        || "none (all components idle)".to_string(),
        |c| c.name.clone(),
    );
    RunError::Hang(Box::new(HangReport {
        cycle,
        limit,
        no_progress,
        subject,
        components,
        suspect,
    }))
}

/// The adapter-side fault evidence, snapshotted before the adapter is
/// consumed for its storage.
struct AdapterFaultSnap {
    first_surfaced: Option<(u64, bool, WordFault)>,
    retries_spent: u64,
    retry_budget: u32,
    injected: u64,
}

impl AdapterFaultSnap {
    fn of(adapter: &Adapter) -> Self {
        AdapterFaultSnap {
            first_surfaced: adapter.first_surfaced_fault(),
            retries_spent: adapter.fault_retries(),
            retry_budget: adapter.retry_budget(),
            injected: adapter.injected_faults(),
        }
    }
}

/// Builds the typed abort for a requestor whose bus traffic carried an
/// unrecoverable error response. The word-level anchor (site, address)
/// comes from the adapter's first unabsorbed fault; the burst-level
/// anchor (AXI id, direction, response class) from the requestor's own
/// first errored beat.
fn fault_abort(
    requestor: usize,
    bus_fault: BusFault,
    axi_id: u16,
    spec: Option<&FaultSpec>,
    snap: &AdapterFaultSnap,
) -> FaultReport {
    let (word_addr, _, fault) =
        snap.first_surfaced
            .unwrap_or((0, bus_fault.is_write, WordFault::Slave));
    let site = match fault {
        WordFault::Decode => site::DECODE.0,
        WordFault::Slave => {
            if spec.is_some_and(|s| s.persistent_bank) {
                site::BANK_PERSISTENT.0
            } else {
                site::BANK_ACCESS.0
            }
        }
    };
    FaultReport {
        site,
        requestor,
        axi_id,
        resp: bus_fault.resp,
        is_write: bus_fault.is_write,
        word_addr,
        retries_spent: snap.retries_spent,
        retry_budget: snap.retry_budget,
        injected_faults: snap.injected,
    }
}

/// Post-run functional checks shared by both run loops.
fn verify_requestor(kernel: &Kernel, stats: &EngineStats, storage: &Storage) -> Result<(), String> {
    kernel.verify(storage)?;
    if kernel.read_only_streams && stats.data_mismatches > 0 {
        return Err(format!(
            "{}: {} R-payload mismatches on read-only streams",
            kernel.name, stats.data_mismatches
        ));
    }
    Ok(())
}

/// Runs a kernel to completion on the configured system.
///
/// A thin wrapper over [`run_system`] with a single-requestor
/// [`Topology`]: the returned [`RunReport`] contains cycle counts, bus
/// utilizations and energy activity. Functional verification against the
/// kernel's scalar reference runs before returning.
///
/// # Examples
///
/// ```
/// use axi_pack::{run_kernel, SystemConfig};
/// use vproc::SystemKind;
/// use workloads::gemv;
///
/// let base = SystemConfig::paper(SystemKind::Base);
/// let pack = SystemConfig::paper(SystemKind::Pack);
/// let run = |cfg: &SystemConfig| {
///     let kernel = gemv::build(32, 7, workloads::Dataflow::ColWise, &cfg.kernel_params());
///     run_kernel(cfg, &kernel).expect("kernel verifies")
/// };
/// // Column-wise gemv is exactly the strided traffic AXI-Pack packs.
/// assert!(run(&pack).cycles < run(&base).cycles);
/// ```
///
/// # Errors
///
/// Returns [`RunError::Drc`] when the static design-rule check rejects
/// the configuration before cycle 0, and [`RunError::Sim`] if the
/// functional result diverges from the scalar reference, if the engine
/// observed R-payload mismatches on a kernel with read-only streams, or
/// if the simulation exceeds `max_cycles`.
pub fn run_kernel(cfg: &SystemConfig, kernel: &Kernel) -> Result<RunReport, RunError> {
    // Borrow the kernel straight into the single-requestor loop — no
    // Topology allocation or image clone on this hot sweep path.
    let mut report = run_single(cfg, cfg.kind, kernel, None)?;
    Ok(report.requestors.remove(0))
}

/// [`run_kernel`] with a [`RunProbe`] attached: every bus handshake is fed
/// to a protocol [`Monitor`] and the final backing store is digested for
/// bit-exact differential comparison. Timing is unchanged — a probed run
/// returns the same report as an unprobed one.
///
/// # Errors
///
/// Exactly as [`run_kernel`]; protocol violations do *not* error here —
/// inspect `probe` after the run (see
/// [`RunProbe::violation_summary`]).
pub fn run_kernel_probed(
    cfg: &SystemConfig,
    kernel: &Kernel,
    probe: &mut RunProbe,
) -> Result<RunReport, RunError> {
    let mut report = run_single(cfg, cfg.kind, kernel, Some(probe))?;
    Ok(report.requestors.remove(0))
}

/// Runs every requestor of a [`Topology`] to completion.
///
/// Bus-attached (BASE/PACK) requestors share one near-memory adapter and
/// banked SRAM; with two or more of them an [`AxiMux`] arbitrates the
/// request channels round-robin and demultiplexes responses by ID prefix.
/// IDEAL requestors execute against the same shared storage through their
/// per-lane ports without touching the bus. Every requestor's functional
/// result is verified against its own scalar reference inside its own
/// address window.
///
/// # Examples
///
/// ```
/// use axi_pack::{run_system, SystemConfig, Topology};
/// use vproc::SystemKind;
/// use workloads::{gemv, Dataflow};
///
/// let cfg = SystemConfig::paper(SystemKind::Pack);
/// let mk = |seed| gemv::build(24, seed, Dataflow::ColWise, &cfg.kernel_params());
/// let topo = Topology::builder(&cfg)
///     .requestor(SystemKind::Pack, mk(1))
///     .requestor(SystemKind::Pack, mk(2))
///     .build()
///     .expect("DRC-clean");
/// let report = run_system(&topo).expect("both requestors verify");
/// assert_eq!(report.requestors.len(), 2);
/// assert!(report.cycles >= report.slowest().cycles);
/// ```
///
/// # Errors
///
/// Returns [`RunError::Drc`] when the static design-rule check rejects
/// the topology before cycle 0 — overlapping or misaligned windows, an
/// AXI ID space too small for the outstanding-transaction limit, too many
/// bus-attached requestors, zero-capacity queues — and [`RunError::Sim`]
/// if any requestor's functional result diverges from its scalar
/// reference, if a read-only-stream kernel saw R-payload mismatches, or
/// if the simulation exceeds `max_cycles`.
pub fn run_system(topo: &Topology) -> Result<SystemReport, RunError> {
    run_system_inner(topo, None)
}

/// [`run_system`] with a [`RunProbe`] attached: one protocol [`Monitor`]
/// per bus-attached manager port (ID-width-aware when a mux is present),
/// one on the shared downstream link below the mux, plus a digest of the
/// final shared store. Timing is unchanged.
///
/// # Errors
///
/// Exactly as [`run_system`].
pub fn run_system_probed(topo: &Topology, probe: &mut RunProbe) -> Result<SystemReport, RunError> {
    run_system_inner(topo, Some(probe))
}

fn run_system_inner(
    topo: &Topology,
    probe: Option<&mut RunProbe>,
) -> Result<SystemReport, RunError> {
    if topo.requestors.len() == 1 && uses_flat_path(topo) {
        // run_single gates itself (it is also the run_kernel hot path).
        // Only flat-fabric solos take it: a 1-requestor topology that
        // asks for row-buffer timing (or several channels) must run the
        // fabric path, or the solo baseline of a scaling sweep would
        // silently measure a different memory model than every other
        // point.
        let req = &topo.requestors[0];
        run_single(&topo.system, req.kind, &req.kernel, probe)
    } else {
        // Empty and overfull topologies land here too: DRC-U1 / DRC-I2
        // reject them with a typed report where asserts used to panic.
        let report = drc::check_topology(topo);
        if !report.is_clean() {
            return Err(RunError::Drc(report));
        }
        run_shared(topo, probe)
    }
}

/// Cache gate in front of [`run_single_uncached`]. Probed runs NEVER
/// consult the cache: a [`RunProbe`] captures bus-level event streams
/// reports don't carry, and the differential oracle must re-execute
/// runs independently, not read back its own answers. Unprobed runs
/// with an installed [`crate::cache::RunCache`] are served by key.
fn run_single(
    cfg: &SystemConfig,
    kind: SystemKind,
    kernel: &Kernel,
    probe: Option<&mut RunProbe>,
) -> Result<SystemReport, RunError> {
    // Fault-injected runs also bypass the cache: their reports depend on
    // the FaultSpec, which is deliberately not part of the key canon
    // (chaos runs are cheap and never feed figures).
    if probe.is_none() && cfg.fault.is_none() {
        if let Some(rc) = crate::cache::active() {
            let key = crate::cache::single_run_key(cfg, kind, kernel);
            return rc.run_report(
                key,
                || crate::cache::placeholder_single(cfg, kind, kernel),
                || run_single_uncached(cfg, kind, kernel, None),
            );
        }
    }
    run_single_uncached(cfg, kind, kernel, probe)
}

/// The classic one-requestor loop — kept as a dedicated path so a
/// 1-requestor [`Topology`] reproduces the historical `run_kernel`
/// cycle-for-cycle (no mux hop, no window offset).
fn run_single_uncached(
    cfg: &SystemConfig,
    kind: SystemKind,
    kernel: &Kernel,
    probe: Option<&mut RunProbe>,
) -> Result<SystemReport, RunError> {
    let report = drc::check_single(cfg, kind, kernel);
    if !report.is_clean() {
        return Err(RunError::Drc(report));
    }
    let mut engine = Engine::new(cfg.vproc, kind, cfg.bus(), kernel.program.clone());
    let mut cycles = 0u64;
    let event = cfg.sched == SchedMode::Event;
    let mut sched_stats = SchedProbe::default();
    // IDEAL has no bus to monitor; a probed AXI run gets one full-ID-space
    // monitor on its single channel bundle.
    let mut monitor = match (&probe, kind) {
        (Some(_), SystemKind::Base | SystemKind::Pack) => Some(Monitor::new(cfg.bus())),
        _ => None,
    };
    let mut watchdog = Watchdog::new(cfg.watchdog);
    let (storage, adapter_stats, fault_counters) = match kind {
        SystemKind::Ideal => {
            let mut storage = kernel.build_storage();
            while !engine.done() {
                // Event mode: with no bus, the engine's own wake is the
                // whole story. A sleep span is fast-forwarded in one step;
                // the cap keeps the max_cycles overrun on a normal tick at
                // the same cycle as lockstep.
                if event {
                    if let simkit::sched::Wake::Sleep(n) = engine.next_wake() {
                        let span = n.min(cfg.max_cycles.saturating_sub(cycles));
                        if span > 0 {
                            engine.fast_forward(span);
                            cycles += span;
                            sched_stats.record_span(span);
                            continue;
                        }
                    }
                }
                engine.tick(None, &mut storage);
                cycles += 1;
                let hung = cycles > cfg.max_cycles;
                if hung || watchdog.expired(cycles, engine_progress(engine.stats())) {
                    return Err(hang_error(
                        kernel.name.clone(),
                        cycles,
                        if hung { cfg.max_cycles } else { cfg.watchdog },
                        !hung,
                        vec![HangComponent {
                            name: "engine".into(),
                            state: engine.describe_state(),
                            busy: !engine.done(),
                        }],
                    ));
                }
            }
            (storage, None, None)
        }
        SystemKind::Base | SystemKind::Pack => {
            let mut adapter = Adapter::new(cfg.ctrl(), kernel.build_storage());
            if let Some(spec) = cfg.fault.as_ref() {
                adapter.install_faults(spec);
            }
            let mut ch = AxiChannels::new();
            while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
                // Event mode: skip only when the fabric is fully drained —
                // empty channels and a quiescent adapter mean no beat can
                // arrive without the engine acting first, so the engine's
                // sleep span is a whole-system idle span. (A draining
                // load/store implies beats in flight somewhere, which
                // fails this gate, so blocked-on-bus waits always tick.)
                if event && ch.is_empty() && adapter.quiescent() {
                    if let simkit::sched::Wake::Sleep(n) = engine.next_wake() {
                        let span = n.min(cfg.max_cycles.saturating_sub(cycles));
                        if span > 0 {
                            engine.fast_forward(span);
                            adapter.skip_idle(span);
                            cycles += span;
                            sched_stats.record_span(span);
                            continue;
                        }
                    }
                }
                engine.tick(Some(&mut ch), adapter.storage_mut());
                adapter.tick(&mut ch);
                adapter.end_cycle();
                match monitor.as_mut() {
                    Some(mon) => ch.end_cycle_observed(mon),
                    None => ch.end_cycle(),
                }
                cycles += 1;
                let hung = cycles > cfg.max_cycles;
                let sig = engine_progress(engine.stats())
                    + adapter.word_reads()
                    + adapter.word_writes()
                    + adapter.fault_retries();
                if hung || watchdog.expired(cycles, sig) {
                    return Err(hang_error(
                        kernel.name.clone(),
                        cycles,
                        if hung { cfg.max_cycles } else { cfg.watchdog },
                        !hung,
                        vec![
                            HangComponent {
                                name: "engine".into(),
                                state: engine.describe_state(),
                                busy: !engine.done(),
                            },
                            channels_component("channels", &ch),
                            HangComponent {
                                name: "adapter".into(),
                                state: adapter.describe_state(),
                                busy: !adapter.quiescent(),
                            },
                        ],
                    ));
                }
            }
            // An error response that reached the requestor is a typed
            // abort — checked before functional verification, because the
            // eager-functional model's architectural state is correct
            // even when the timed bus traffic was not.
            if let Some(bf) = engine.first_fault() {
                return Err(RunError::Axi(fault_abort(
                    0,
                    bf,
                    bf.axi_id,
                    cfg.fault.as_ref(),
                    &AdapterFaultSnap::of(&adapter),
                )));
            }
            let stats = (
                adapter.word_reads() + adapter.word_writes(),
                adapter.bank_conflicts(),
            );
            let faults = (adapter.injected_faults(), adapter.fault_retries());
            (adapter.into_storage(), Some(stats), Some(faults))
        }
    };
    if let Some(p) = probe {
        p.monitors = monitor.take().into_iter().collect();
        p.downstream = None;
        p.storage_digest = Some(memory_digest(storage.as_bytes()));
        p.sched = sched_stats;
    }
    let stats = engine.stats();
    verify_requestor(kernel, stats, &storage)?;
    let fault_stats = fault_counters.unwrap_or((0, 0));
    let report = build_report(
        kernel,
        kind,
        cfg.bus_bits,
        cycles,
        stats,
        adapter_stats,
        fault_stats,
    );
    let (word_accesses, bank_conflicts) = (
        report.activity.word_accesses,
        adapter_stats.map_or(0, |(_, c)| c),
    );
    Ok(SystemReport {
        cycles,
        bus_r_busy: if kind == SystemKind::Ideal {
            0.0
        } else {
            stats.r_util.busy_fraction()
        },
        bus_r_util: if kind == SystemKind::Ideal {
            0.0
        } else {
            stats.r_util.payload_fraction()
        },
        bank_conflicts,
        word_accesses,
        requestors: vec![report],
        outcomes: vec![RequestorOutcome::Completed],
        levels: Vec::new(),
    })
}

/// Cache gate in front of [`run_shared_uncached`]; same doctrine as
/// [`run_single`] — probed topology runs always re-execute.
fn run_shared(topo: &Topology, probe: Option<&mut RunProbe>) -> Result<SystemReport, RunError> {
    if probe.is_none() && topo.system.fault.is_none() {
        if let Some(rc) = crate::cache::active() {
            let key = crate::cache::topology_key(topo);
            return rc.run_report(
                key,
                || crate::cache::placeholder_topology(topo),
                || run_shared_uncached(topo, None),
            );
        }
    }
    run_shared_uncached(topo, probe)
}

/// `true` when a topology runs on the classic flat path: one memory
/// channel, no row-buffer model, and few enough bus-attached requestors
/// for a single mux. Such topologies reproduce the pre-fabric runs
/// byte-for-byte; everything else takes [`run_fabric_uncached`].
fn uses_flat_path(topo: &Topology) -> bool {
    let managers = topo
        .requestors
        .iter()
        .filter(|r| r.kind != SystemKind::Ideal)
        .count();
    topo.fabric.channels == 1
        && topo.fabric.row_words == 0
        && managers <= MAX_MANAGERS
        && managers <= topo.fabric.arity
}

/// The N-requestor loop: engines in private windows of one shared
/// backing store, bus-attached ones funneled through the mux into the
/// shared adapter. Topologies whose fabric needs cascaded mux levels,
/// several memory channels, or row-buffer timing branch off to
/// [`run_fabric_uncached`]; flat ones keep the historical loop (and its
/// byte-identical reports) below.
fn run_shared_uncached(
    topo: &Topology,
    probe: Option<&mut RunProbe>,
) -> Result<SystemReport, RunError> {
    if !uses_flat_path(topo) {
        return run_fabric_uncached(topo, probe);
    }
    let sys = &topo.system;
    let bases = topo.window_bases();
    // Window relocation is zero-copy: `rebased` shares image payloads and
    // reference data via `Arc`, and only offset-0 requestors share the
    // program itself (nonzero windows rewrite instruction addresses).
    let kernels: Vec<Kernel> = topo
        .requestors
        .iter()
        .zip(&bases)
        .map(|(r, &b)| r.kernel.rebased(b))
        .collect();
    let mut storage = Storage::new(topo.storage_bytes());
    for k in &kernels {
        k.apply_image(&mut storage);
    }
    let kinds: Vec<SystemKind> = topo.requestors.iter().map(|r| r.kind).collect();
    // Manager-port slot of every bus-attached engine.
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(kinds.len());
    let mut managers = 0usize;
    for &kind in &kinds {
        if kind == SystemKind::Ideal {
            slots.push(None);
        } else {
            slots.push(Some(managers));
            managers += 1;
        }
    }
    let mut engines: Vec<Engine> = kernels
        .iter()
        .zip(&kinds)
        .map(|(k, &kind)| {
            let mut vcfg = sys.vproc;
            if kind != SystemKind::Ideal && managers > 1 {
                // Behind the mux, local IDs must leave room for the
                // manager-index prefix.
                vcfg.axi_id_bits = LOCAL_ID_BITS;
            }
            Engine::new(vcfg, kind, sys.bus(), k.program.clone())
        })
        .collect();
    // The adapter owns the shared storage even when every requestor is
    // IDEAL; it is simply never ticked then.
    let mut adapter = Adapter::new(sys.ctrl(), storage);
    let mut mgr: Vec<AxiChannels> = (0..managers).map(|_| AxiChannels::new()).collect();
    let mut down = AxiChannels::new();
    let mut mux = (managers > 1).then(|| AxiMux::new(managers));
    if let Some(spec) = sys.fault.as_ref() {
        adapter.install_faults(spec);
        if let Some(mux) = mux.as_mut() {
            mux.install_faults(spec);
        }
    }
    // Probed runs monitor every manager port (narrow ID space when the
    // port sits behind the mux) and the shared downstream link.
    let mut monitors: Vec<Monitor> = match &probe {
        Some(_) => {
            let id_bits = if managers > 1 { LOCAL_ID_BITS } else { 8 };
            (0..managers)
                .map(|_| Monitor::with_id_bits(sys.bus(), id_bits))
                .collect()
        }
        None => Vec::new(),
    };
    let mut down_monitor = match (&probe, &mux) {
        (Some(_), Some(_)) => Some(Monitor::new(sys.bus())),
        _ => None,
    };

    let mut cycles = 0u64;
    let mut done_at: Vec<Option<u64>> = vec![None; engines.len()];
    let mut sched_stats = SchedProbe::default();
    let mut watchdog = Watchdog::new(sys.watchdog);
    // Event mode: a wake-condition registry with one component per engine.
    // The fabric (channels, mux, adapter) is gated separately below — it
    // is either drained (skippable) or ready, never on a countdown.
    let mut scheduler = (sys.sched == SchedMode::Event).then(|| {
        let mut s = simkit::sched::Scheduler::new();
        let ids: Vec<simkit::sched::CompId> = (0..engines.len())
            .map(|_| s.add_component("engine", simkit::sched::WakeCond::Countdown))
            .collect();
        (s, ids)
    });
    loop {
        if let Some((s, ids)) = scheduler.as_mut() {
            // The skip gate: every channel drained, mux and adapter
            // quiescent. Then no beat can reach any engine without some
            // engine acting first, so the engines' merged wake governs the
            // whole system. (This is exactly the loop's `drained` check.)
            let fabric_idle = adapter.quiescent()
                && down.is_empty()
                && mgr.iter().all(AxiChannels::is_empty)
                && mux.as_ref().is_none_or(AxiMux::quiescent);
            if fabric_idle {
                for (i, engine) in engines.iter().enumerate() {
                    let wake = if done_at[i].is_some() {
                        // Finished requestors are not ticked in lockstep
                        // either; they contribute no deadline.
                        simkit::sched::Wake::Idle
                    } else {
                        engine.next_wake()
                    };
                    s.note(ids[i], wake);
                }
                // `idle_span` is None when an engine is ready or when no
                // live engine holds a deadline (a genuine deadlock must
                // tick normally into the max_cycles error, exactly as
                // lockstep would).
                if let Some(n) = s.idle_span() {
                    let span = n.min(sys.max_cycles.saturating_sub(cycles));
                    if span > 0 {
                        for (i, engine) in engines.iter_mut().enumerate() {
                            if done_at[i].is_none() {
                                engine.fast_forward(span);
                            }
                        }
                        if managers > 0 {
                            adapter.skip_idle(span);
                        }
                        cycles += span;
                        s.advance(span);
                        sched_stats.record_span(span);
                        for (i, engine) in engines.iter().enumerate() {
                            if done_at[i].is_none() && engine.done() {
                                done_at[i] = Some(cycles);
                            }
                        }
                        // `fabric_idle` above is the `drained` condition
                        // and a skip leaves the fabric untouched.
                        if done_at.iter().all(Option::is_some) {
                            break;
                        }
                        continue;
                    }
                }
            }
        }
        for (i, engine) in engines.iter_mut().enumerate() {
            // A finished requestor contributes nothing to any channel;
            // not ticking it freezes its stats (cycles, utilization
            // denominators) at its own completion cycle, so its
            // RunReport describes *its* run, not the slowest one's.
            if done_at[i].is_some() {
                continue;
            }
            match slots[i] {
                Some(m) => engine.tick(Some(&mut mgr[m]), adapter.storage_mut()),
                None => engine.tick(None, adapter.storage_mut()),
            }
        }
        match mux.as_mut() {
            Some(mux) => {
                mux.tick(&mut mgr, &mut down);
                adapter.tick(&mut down);
            }
            None if managers == 1 => adapter.tick(&mut mgr[0]),
            None => {}
        }
        if managers > 0 {
            adapter.end_cycle();
        }
        match down_monitor.as_mut() {
            Some(mon) => down.end_cycle_observed(mon),
            None => down.end_cycle(),
        }
        for (m, ch) in mgr.iter_mut().enumerate() {
            match monitors.get_mut(m) {
                Some(mon) => ch.end_cycle_observed(mon),
                None => ch.end_cycle(),
            }
        }
        cycles += 1;
        for (i, engine) in engines.iter().enumerate() {
            if done_at[i].is_none() && engine.done() {
                done_at[i] = Some(cycles);
            }
        }
        let drained = adapter.quiescent()
            && down.is_empty()
            && mgr.iter().all(AxiChannels::is_empty)
            && mux.as_ref().is_none_or(AxiMux::quiescent);
        if done_at.iter().all(Option::is_some) && drained {
            break;
        }
        let hung = cycles > sys.max_cycles;
        let sig = engines
            .iter()
            .map(|e| engine_progress(e.stats()))
            .sum::<u64>()
            + adapter.word_reads()
            + adapter.word_writes()
            + adapter.fault_retries();
        if hung || watchdog.expired(cycles, sig) {
            let mut components: Vec<HangComponent> = engines
                .iter()
                .enumerate()
                .map(|(i, e)| HangComponent {
                    name: format!("requestor {i} engine"),
                    state: e.describe_state(),
                    busy: done_at[i].is_none(),
                })
                .collect();
            for (m, ch) in mgr.iter().enumerate() {
                components.push(channels_component(&format!("manager {m} channels"), ch));
            }
            if let Some(mux) = mux.as_ref() {
                components.push(HangComponent {
                    name: "mux".into(),
                    state: mux.describe_state(),
                    busy: !mux.quiescent() || mux.storm_active(),
                });
                components.push(channels_component("downstream channels", &down));
            }
            if managers > 0 {
                components.push(HangComponent {
                    name: "adapter".into(),
                    state: adapter.describe_state(),
                    busy: !adapter.quiescent(),
                });
            }
            return Err(hang_error(
                format!("topology of {} requestors", engines.len()),
                cycles,
                if hung { sys.max_cycles } else { sys.watchdog },
                !hung,
                components,
            ));
        }
    }
    let word_accesses = adapter.word_reads() + adapter.word_writes();
    let bank_conflicts = adapter.bank_conflicts();
    let bus_beats: u64 = adapter.r_beats();
    let adapter_faults = AdapterFaultSnap::of(&adapter);
    let storage = adapter.into_storage();
    if let Some(p) = probe {
        p.monitors = monitors;
        p.downstream = down_monitor.take();
        p.storage_digest = Some(memory_digest(storage.as_bytes()));
        p.sched = sched_stats;
    }
    let bus_bytes = sys.bus().data_bytes() as u64;
    let mut payload_bytes = 0u64;
    let mut reports = Vec::with_capacity(engines.len());
    let mut outcomes = Vec::with_capacity(engines.len());
    for (i, engine) in engines.iter().enumerate() {
        let stats = engine.stats();
        // A faulting requestor is isolated: its abort is recorded as a
        // per-requestor outcome (functional verification is meaningless
        // for it), while healthy requestors still verify normally.
        match engine.first_fault() {
            Some(bf) => {
                // Report the ID as the shared endpoint saw it: behind a
                // mux the manager index rides the top prefix bits.
                let axi_id = match (slots[i], managers > 1) {
                    (Some(m), true) => AxiMux::prefix_id(LOCAL_ID_BITS, m, AxiId(bf.axi_id)).0,
                    _ => bf.axi_id,
                };
                outcomes.push(RequestorOutcome::Faulted(fault_abort(
                    i,
                    bf,
                    axi_id,
                    sys.fault.as_ref(),
                    &adapter_faults,
                )));
            }
            None => {
                verify_requestor(&kernels[i], stats, &storage)
                    .map_err(|e| format!("requestor {i}: {e}"))?;
                outcomes.push(RequestorOutcome::Completed);
            }
        }
        if kinds[i] != SystemKind::Ideal {
            payload_bytes += stats.r_util.payload_bytes();
        }
        reports.push(build_report(
            &kernels[i],
            kinds[i],
            sys.bus_bits,
            done_at[i].expect("loop exits only when all done"),
            stats,
            None,
            (0, 0),
        ));
    }
    Ok(SystemReport {
        cycles,
        requestors: reports,
        bus_r_busy: bus_beats as f64 / cycles as f64,
        bus_r_util: payload_bytes as f64 / (cycles * bus_bytes) as f64,
        bank_conflicts,
        word_accesses,
        outcomes,
        levels: mux
            .as_ref()
            .map(|m| {
                vec![LevelOccupancy {
                    level: 0,
                    muxes: 1,
                    ar_beats: m.ar_forwarded(),
                    r_beats: m.r_forwarded(),
                }]
            })
            .unwrap_or_default(),
    })
}

/// One memory channel of the hierarchical fabric: a cascaded tree of
/// round-robin muxes funneling the channel's bus-attached requestors
/// into its own near-memory adapter, which owns the channel's copy of
/// the backing store (only this channel's windows are live in it).
struct ChannelHw {
    /// Requestor index of every leaf port, in port order.
    members: Vec<usize>,
    /// Leaf bundles, one per member; engines tick directly into these.
    leaves: Vec<AxiChannels>,
    /// Mux levels bottom-up; `levels[l][k]` drains into `links[l][k]`.
    /// The last level always holds exactly one mux — the tree root.
    levels: Vec<Vec<AxiMux>>,
    links: Vec<Vec<AxiChannels>>,
    adapter: Adapter,
    arity: usize,
    /// Monitors on the leaf bundles (probed runs only), one per member.
    leaf_monitors: Vec<Monitor>,
    /// Monitor on the root link below the tree — probed runs with two or
    /// more members only; a single member's leaf *is* the root link.
    root_monitor: Option<Monitor>,
}

impl ChannelHw {
    fn new(
        sys: &SystemConfig,
        fabric: &FabricSpec,
        members: Vec<usize>,
        storage: Storage,
        probed: bool,
    ) -> Self {
        // The DRC rejects arities outside 2..=MAX_FAN_IN before any run
        // reaches this point; the clamp keeps construction panic-free
        // for direct callers of the uncached internals.
        let arity = fabric.arity.clamp(2, MAX_FAN_IN);
        let level_bits = fabric.level_bits();
        let leaves: Vec<AxiChannels> = (0..members.len()).map(|_| AxiChannels::new()).collect();
        let mut levels: Vec<Vec<AxiMux>> = Vec::new();
        let mut links: Vec<Vec<AxiChannels>> = Vec::new();
        let mut width = members.len();
        let mut shift = LOCAL_ID_BITS;
        while width > 1 {
            let groups = width.div_ceil(arity);
            levels.push(
                (0..groups)
                    .map(|k| AxiMux::cascade((width - k * arity).min(arity), shift))
                    .collect(),
            );
            links.push((0..groups).map(|_| AxiChannels::new()).collect());
            width = groups;
            shift += level_bits;
        }
        let mut adapter = Adapter::new(sys.ctrl_for(fabric), storage);
        if let Some(spec) = sys.fault.as_ref() {
            adapter.install_faults(spec);
            for mux in levels.iter_mut().flatten() {
                mux.install_faults(spec);
            }
        }
        let leaf_monitors: Vec<Monitor> = if probed {
            let id_bits = if members.len() > 1 { LOCAL_ID_BITS } else { 8 };
            members
                .iter()
                .map(|_| Monitor::with_id_bits(sys.bus(), id_bits))
                .collect()
        } else {
            Vec::new()
        };
        // Below the root every level's prefix has been stacked on, so
        // the root link carries the channel's full ID width.
        let root_monitor = (probed && !levels.is_empty())
            .then(|| Monitor::with_id_bits(sys.bus(), shift.min(ID_BITS)));
        ChannelHw {
            members,
            leaves,
            levels,
            links,
            adapter,
            arity,
            leaf_monitors,
            root_monitor,
        }
    }

    /// One cycle: each mux level bottom-up, then the adapter on the root
    /// link. The FIFO register stages make every hop visible only at the
    /// cycle boundary, so each level adds one cycle of honest latency in
    /// both directions.
    fn tick(&mut self) {
        for l in 0..self.levels.len() {
            if l == 0 {
                for (k, mux) in self.levels[0].iter_mut().enumerate() {
                    let lo = k * self.arity;
                    let hi = (lo + self.arity).min(self.leaves.len());
                    mux.tick(&mut self.leaves[lo..hi], &mut self.links[0][k]);
                }
            } else {
                let (lower, upper) = self.links.split_at_mut(l);
                let ups = &mut lower[l - 1];
                for (k, mux) in self.levels[l].iter_mut().enumerate() {
                    let lo = k * self.arity;
                    let hi = (lo + self.arity).min(ups.len());
                    mux.tick(&mut ups[lo..hi], &mut upper[0][k]);
                }
            }
        }
        if self.members.is_empty() {
            // An all-IDEAL channel has no bus hardware to tick; its
            // adapter merely owns the storage.
            return;
        }
        match self.links.last_mut() {
            Some(root) => self.adapter.tick(&mut root[0]),
            None => self.adapter.tick(&mut self.leaves[0]),
        }
        self.adapter.end_cycle();
    }

    /// Cycle-boundary register stage for every bundle in the channel,
    /// feeding the probe monitors where attached.
    fn end_cycle(&mut self) {
        for (j, ch) in self.leaves.iter_mut().enumerate() {
            match self.leaf_monitors.get_mut(j) {
                Some(mon) => ch.end_cycle_observed(mon),
                None => ch.end_cycle(),
            }
        }
        let last = self.links.len();
        for (l, row) in self.links.iter_mut().enumerate() {
            for ch in row.iter_mut() {
                match self.root_monitor.as_mut() {
                    Some(mon) if l + 1 == last => ch.end_cycle_observed(mon),
                    _ => ch.end_cycle(),
                }
            }
        }
    }

    /// All bundles empty, all muxes and the adapter quiescent — nothing
    /// in flight anywhere in the channel.
    fn drained(&self) -> bool {
        self.adapter.quiescent()
            && self.leaves.iter().all(AxiChannels::is_empty)
            && self.links.iter().flatten().all(AxiChannels::is_empty)
            && self.levels.iter().flatten().all(AxiMux::quiescent)
    }

    /// Appends this channel's component snapshots for hang forensics, in
    /// dependency order (leaves, then levels bottom-up, then adapter).
    fn hang_components(&self, c: usize, out: &mut Vec<HangComponent>) {
        for (j, ch) in self.leaves.iter().enumerate() {
            out.push(channels_component(
                &format!("ch{c} requestor {} leaf channels", self.members[j]),
                ch,
            ));
        }
        for (l, row) in self.levels.iter().enumerate() {
            for (k, mux) in row.iter().enumerate() {
                out.push(HangComponent {
                    name: format!("ch{c} level {l} mux {k}"),
                    state: mux.describe_state(),
                    busy: !mux.quiescent() || mux.storm_active(),
                });
            }
            for (k, ch) in self.links[l].iter().enumerate() {
                out.push(channels_component(&format!("ch{c} level {l} link {k}"), ch));
            }
        }
        if !self.members.is_empty() {
            out.push(HangComponent {
                name: format!("ch{c} adapter"),
                state: self.adapter.describe_state(),
                busy: !self.adapter.quiescent(),
            });
        }
    }
}

/// The hierarchical-fabric loop: per-channel adapters behind cascaded
/// mux trees, windows interleaved across the channels, engines in
/// private windows. Flat topologies never come here (see
/// [`uses_flat_path`] — they keep the historical loop byte-for-byte);
/// this path generalizes the same loop shape to any requestor count the
/// 16-bit ID space can carry.
fn run_fabric_uncached(
    topo: &Topology,
    probe: Option<&mut RunProbe>,
) -> Result<SystemReport, RunError> {
    let sys = &topo.system;
    let fabric = &topo.fabric;
    let placement = topo.placement();
    let bases = &placement.window_bases;
    let kernels: Vec<Kernel> = topo
        .requestors
        .iter()
        .zip(bases)
        .map(|(r, &b)| r.kernel.rebased(b))
        .collect();
    let kinds: Vec<SystemKind> = topo.requestors.iter().map(|r| r.kind).collect();
    let nch = fabric.channels.max(1);
    // Channel membership: requestor i lives on channel `channel_of[i]`;
    // bus-attached ones additionally occupy a leaf port of that
    // channel's mux tree, in requestor order.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nch];
    // (channel, leaf port) of every bus-attached engine.
    let mut slots: Vec<Option<(usize, usize)>> = Vec::with_capacity(kinds.len());
    for (i, &kind) in kinds.iter().enumerate() {
        let c = placement.channel_of[i];
        if kind == SystemKind::Ideal {
            slots.push(None);
        } else {
            slots.push(Some((c, members[c].len())));
            members[c].push(i);
        }
    }
    let probed = probe.is_some();
    let mut storages: Vec<Storage> = (0..nch)
        .map(|_| Storage::new(placement.storage_bytes))
        .collect();
    for (i, k) in kernels.iter().enumerate() {
        k.apply_image(&mut storages[placement.channel_of[i]]);
    }
    let mut channels_hw: Vec<ChannelHw> = members
        .into_iter()
        .zip(storages)
        .map(|(m, s)| ChannelHw::new(sys, fabric, m, s, probed))
        .collect();
    let mut engines: Vec<Engine> = kernels
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let mut vcfg = sys.vproc;
            if let Some((c, _)) = slots[i] {
                if channels_hw[c].members.len() > 1 {
                    // Behind a mux tree, local IDs must leave room for
                    // the stacked level prefixes.
                    vcfg.axi_id_bits = LOCAL_ID_BITS;
                }
            }
            Engine::new(vcfg, kinds[i], sys.bus(), k.program.clone())
        })
        .collect();

    let mut cycles = 0u64;
    let mut done_at: Vec<Option<u64>> = vec![None; engines.len()];
    let mut sched_stats = SchedProbe::default();
    let mut watchdog = Watchdog::new(sys.watchdog);
    // Event mode: the same per-engine wake registry as the flat loop;
    // the fabric as a whole is either drained (skippable) or ready.
    let mut scheduler = (sys.sched == SchedMode::Event).then(|| {
        let mut s = simkit::sched::Scheduler::new();
        let ids: Vec<simkit::sched::CompId> = (0..engines.len())
            .map(|_| s.add_component("engine", simkit::sched::WakeCond::Countdown))
            .collect();
        (s, ids)
    });
    loop {
        if let Some((s, ids)) = scheduler.as_mut() {
            let fabric_idle = channels_hw.iter().all(ChannelHw::drained);
            if fabric_idle {
                for (i, engine) in engines.iter().enumerate() {
                    let wake = if done_at[i].is_some() {
                        simkit::sched::Wake::Idle
                    } else {
                        engine.next_wake()
                    };
                    s.note(ids[i], wake);
                }
                if let Some(n) = s.idle_span() {
                    let span = n.min(sys.max_cycles.saturating_sub(cycles));
                    if span > 0 {
                        for (i, engine) in engines.iter_mut().enumerate() {
                            if done_at[i].is_none() {
                                engine.fast_forward(span);
                            }
                        }
                        for hw in channels_hw.iter_mut() {
                            if !hw.members.is_empty() {
                                hw.adapter.skip_idle(span);
                            }
                        }
                        cycles += span;
                        s.advance(span);
                        sched_stats.record_span(span);
                        for (i, engine) in engines.iter().enumerate() {
                            if done_at[i].is_none() && engine.done() {
                                done_at[i] = Some(cycles);
                            }
                        }
                        if done_at.iter().all(Option::is_some) {
                            break;
                        }
                        continue;
                    }
                }
            }
        }
        for (i, engine) in engines.iter_mut().enumerate() {
            if done_at[i].is_some() {
                continue;
            }
            match slots[i] {
                Some((c, j)) => {
                    let hw = &mut channels_hw[c];
                    engine.tick(Some(&mut hw.leaves[j]), hw.adapter.storage_mut());
                }
                None => {
                    let hw = &mut channels_hw[placement.channel_of[i]];
                    engine.tick(None, hw.adapter.storage_mut());
                }
            }
        }
        for hw in channels_hw.iter_mut() {
            hw.tick();
            hw.end_cycle();
        }
        cycles += 1;
        for (i, engine) in engines.iter().enumerate() {
            if done_at[i].is_none() && engine.done() {
                done_at[i] = Some(cycles);
            }
        }
        let drained = channels_hw.iter().all(ChannelHw::drained);
        if done_at.iter().all(Option::is_some) && drained {
            break;
        }
        let hung = cycles > sys.max_cycles;
        let sig = engines
            .iter()
            .map(|e| engine_progress(e.stats()))
            .sum::<u64>()
            + channels_hw
                .iter()
                .map(|hw| {
                    hw.adapter.word_reads() + hw.adapter.word_writes() + hw.adapter.fault_retries()
                })
                .sum::<u64>();
        if hung || watchdog.expired(cycles, sig) {
            let mut components: Vec<HangComponent> = engines
                .iter()
                .enumerate()
                .map(|(i, e)| HangComponent {
                    name: format!("requestor {i} engine"),
                    state: e.describe_state(),
                    busy: done_at[i].is_none(),
                })
                .collect();
            for (c, hw) in channels_hw.iter().enumerate() {
                hw.hang_components(c, &mut components);
            }
            return Err(hang_error(
                format!(
                    "fabric topology of {} requestors over {nch} channels",
                    engines.len()
                ),
                cycles,
                if hung { sys.max_cycles } else { sys.watchdog },
                !hung,
                components,
            ));
        }
    }
    // Per-level occupancy, aggregated across channels (level 0 is the
    // leaf level of every channel's tree).
    let depth = channels_hw
        .iter()
        .map(|hw| hw.levels.len())
        .max()
        .unwrap_or(0);
    let levels: Vec<LevelOccupancy> = (0..depth)
        .map(|l| {
            let mut muxes = 0u32;
            let (mut ar_beats, mut r_beats) = (0u64, 0u64);
            for hw in &channels_hw {
                if let Some(row) = hw.levels.get(l) {
                    muxes += row.len() as u32;
                    ar_beats += row.iter().map(AxiMux::ar_forwarded).sum::<u64>();
                    r_beats += row.iter().map(AxiMux::r_forwarded).sum::<u64>();
                }
            }
            LevelOccupancy {
                level: l as u32,
                muxes,
                ar_beats,
                r_beats,
            }
        })
        .collect();
    let word_accesses: u64 = channels_hw
        .iter()
        .map(|hw| hw.adapter.word_reads() + hw.adapter.word_writes())
        .sum();
    let bank_conflicts: u64 = channels_hw
        .iter()
        .map(|hw| hw.adapter.bank_conflicts())
        .sum();
    let bus_beats: u64 = channels_hw.iter().map(|hw| hw.adapter.r_beats()).sum();
    let fault_snaps: Vec<AdapterFaultSnap> = channels_hw
        .iter()
        .map(|hw| AdapterFaultSnap::of(&hw.adapter))
        .collect();
    let chan_depth: Vec<usize> = channels_hw.iter().map(|hw| hw.levels.len()).collect();
    // Consume the hardware: monitors out, per-channel storages out.
    let mut leaf_monitors: Vec<Monitor> = Vec::new();
    let mut root_monitors: Vec<Monitor> = Vec::new();
    let mut storages: Vec<Storage> = Vec::with_capacity(chan_depth.len());
    for hw in channels_hw {
        leaf_monitors.extend(hw.leaf_monitors);
        root_monitors.extend(hw.root_monitor);
        storages.push(hw.adapter.into_storage());
    }
    if let Some(p) = probe {
        p.monitors = leaf_monitors;
        p.roots = root_monitors;
        p.downstream = None;
        // Digest over the composed windows — every window read from its
        // owning channel's storage, gaps zero: the same layout a flat
        // shared store holds, so digests compare across fabric shapes.
        let mut composed = vec![0u8; placement.storage_bytes];
        for (i, &b) in bases.iter().enumerate() {
            let (lo, hi) = (
                b as usize,
                b as usize + topo.requestors[i].kernel.storage_size,
            );
            composed[lo..hi].copy_from_slice(&storages[placement.channel_of[i]].as_bytes()[lo..hi]);
        }
        p.storage_digest = Some(memory_digest(&composed));
        p.sched = sched_stats;
    }
    // Fabric endpoint ID of a leaf-port fault: each level of the path
    // stacks its port prefix, exactly as the tree remaps on the way down.
    let level_bits = fabric.level_bits();
    let arity = fabric.arity.clamp(2, MAX_FAN_IN);
    let endpoint_id = |c: usize, leaf: usize, local: u16| -> u16 {
        let mut id = AxiId(local);
        let mut port = leaf;
        let mut shift = LOCAL_ID_BITS;
        for _ in 0..chan_depth[c] {
            id = AxiMux::prefix_id(shift, port % arity, id);
            port /= arity;
            shift += level_bits;
        }
        id.0
    };
    let bus_bytes = sys.bus().data_bytes() as u64;
    let mut payload_bytes = 0u64;
    let mut reports = Vec::with_capacity(engines.len());
    let mut outcomes = Vec::with_capacity(engines.len());
    for (i, engine) in engines.iter().enumerate() {
        let stats = engine.stats();
        let chan = placement.channel_of[i];
        match engine.first_fault() {
            Some(bf) => {
                let axi_id = match slots[i] {
                    Some((c, j)) => endpoint_id(c, j, bf.axi_id),
                    None => bf.axi_id,
                };
                outcomes.push(RequestorOutcome::Faulted(fault_abort(
                    i,
                    bf,
                    axi_id,
                    sys.fault.as_ref(),
                    &fault_snaps[chan],
                )));
            }
            None => {
                verify_requestor(&kernels[i], stats, &storages[chan])
                    .map_err(|e| format!("requestor {i}: {e}"))?;
                outcomes.push(RequestorOutcome::Completed);
            }
        }
        if kinds[i] != SystemKind::Ideal {
            payload_bytes += stats.r_util.payload_bytes();
        }
        reports.push(build_report(
            &kernels[i],
            kinds[i],
            sys.bus_bits,
            done_at[i].expect("loop exits only when all done"),
            stats,
            None,
            (0, 0),
        ));
    }
    Ok(SystemReport {
        cycles,
        requestors: reports,
        // Several channels each move up to one R beat per cycle, so the
        // fabric busy figure is beats-per-cycle across all channels (it
        // may exceed 1.0); utilization normalizes by the aggregate width.
        bus_r_busy: bus_beats as f64 / cycles as f64,
        bus_r_util: payload_bytes as f64 / (cycles * bus_bytes * nch as u64) as f64,
        bank_conflicts,
        word_accesses,
        outcomes,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{gemv, ismt, spmv, CsrMatrix, Dataflow};

    #[test]
    fn ismt_verifies_on_all_three_systems() {
        for kind in [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal] {
            let cfg = SystemConfig::paper(kind);
            let k = ismt::build(24, 3, &cfg.kernel_params());
            let r = run_kernel(&cfg, &k).expect("ismt verifies");
            assert!(r.cycles > 0, "{kind}");
        }
    }

    #[test]
    fn pack_beats_base_on_strided_gemv() {
        let mk = |kind| {
            let cfg = SystemConfig::paper(kind);
            let k = gemv::build(48, 5, Dataflow::ColWise, &cfg.kernel_params());
            run_kernel(&cfg, &k).expect("gemv verifies")
        };
        let base = mk(SystemKind::Base);
        let pack = mk(SystemKind::Pack);
        let ideal = mk(SystemKind::Ideal);
        assert!(
            base.cycles > 2 * pack.cycles,
            "pack speedup missing: {} vs {}",
            base.cycles,
            pack.cycles
        );
        assert!(ideal.cycles <= pack.cycles, "ideal is the lower bound");
    }

    #[test]
    fn spmv_verifies_and_reports_utilization() {
        let m = CsrMatrix::random(48, 48, 8.0, 2);
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let cfg = SystemConfig::paper(kind);
            let k = spmv::build(&m, 1, &cfg.kernel_params());
            let r = run_kernel(&cfg, &k).expect("spmv verifies");
            assert!(r.r_util > 0.0 && r.r_util < 1.0);
            if kind == SystemKind::Pack {
                // In-memory indirection: no index beats on the bus.
                assert!((r.r_util - r.r_util_no_idx).abs() < 1e-9);
            } else {
                assert!(r.r_util > r.r_util_no_idx);
            }
        }
    }

    #[test]
    fn power_is_reported_in_a_sane_band() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let k = ismt::build(32, 1, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        assert!((100.0..500.0).contains(&r.power_mw), "{} mW", r.power_mw);
        assert!(r.energy_uj > 0.0);
    }

    #[test]
    fn windows_are_aligned_and_disjoint() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let topo = Topology::builder(&cfg)
            .requestor(SystemKind::Pack, ismt::build(16, 1, &p))
            .requestor(SystemKind::Pack, ismt::build(24, 2, &p))
            .requestor(SystemKind::Pack, ismt::build(16, 3, &p))
            .build()
            .expect("DRC-clean");
        let bases = topo.window_bases();
        assert_eq!(bases[0], 0);
        for (i, w) in bases.windows(2).enumerate() {
            assert_eq!(w[1] % WINDOW_ALIGN, 0);
            assert!(
                w[1] >= w[0] + topo.requestors[i].kernel.storage_size as u64,
                "windows overlap"
            );
        }
        assert!(topo.storage_bytes() >= *bases.last().unwrap() as usize);
    }

    #[test]
    fn shared_bus_requestors_slow_each_other_down() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let solo =
            run_kernel(&cfg, &gemv::build(32, 7, Dataflow::ColWise, &p)).expect("solo verifies");
        let topo = Topology::builder(&cfg)
            .requestor(SystemKind::Pack, gemv::build(32, 7, Dataflow::ColWise, &p))
            .requestor(SystemKind::Pack, gemv::build(32, 8, Dataflow::ColWise, &p))
            .build()
            .expect("DRC-clean");
        let shared = run_system(&topo).expect("shared bus verifies");
        assert_eq!(shared.requestors.len(), 2);
        // Two identical bus-bound kernels sharing one endpoint: both run
        // slower than solo, but not worse than full serialization plus
        // mux overhead.
        for r in &shared.requestors {
            assert!(
                r.cycles > solo.cycles,
                "{} vs solo {}",
                r.cycles,
                solo.cycles
            );
            assert!(r.cycles < 3 * solo.cycles, "sharing cost exploded");
        }
        assert!(shared.slowest().cycles >= shared.fastest().cycles);
        assert!(shared.bus_r_busy > 0.0 && shared.bus_r_busy <= 1.0);
    }

    #[test]
    fn ideal_requestors_do_not_count_against_the_manager_cap() {
        // 2 bus-attached + 3 IDEAL requestors: only the bus-attached ones
        // occupy mux ports, so this 5-requestor topology is valid.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let ip = cfg.kernel_params_for(SystemKind::Ideal);
        let mut reqs = vec![
            Requestor::new(SystemKind::Pack, ismt::build(16, 1, &p)),
            Requestor::new(SystemKind::Pack, ismt::build(16, 2, &p)),
        ];
        for s in 3..6 {
            reqs.push(Requestor::new(SystemKind::Ideal, ismt::build(16, s, &ip)));
        }
        let topo = Topology::builder(&cfg)
            .requestors(reqs)
            .build()
            .expect("DRC-clean");
        let report = run_system(&topo).expect("all five verify");
        assert_eq!(report.requestors.len(), 5);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "bus-attached")]
    fn legacy_shared_bus_shim_still_rejects_five_managers() {
        // The deprecated shim keeps its documented panic — it predates
        // the mux-tree fabric. The builder accepts the same five
        // requestors by cascading (see builder_scales_past_the_flat_cap).
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let reqs = (0..5)
            .map(|s| Requestor::new(SystemKind::Pack, ismt::build(16, s, &p)))
            .collect();
        let _ = Topology::shared_bus(&cfg, reqs);
    }

    #[test]
    fn builder_scales_past_the_flat_cap() {
        // Five bus-attached requestors used to be a hard panic; the
        // fabric cascades them through two mux levels and every one
        // still verifies against its own scalar reference.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let topo = Topology::builder(&cfg)
            .requestors((0..5).map(|s| Requestor::new(SystemKind::Pack, ismt::build(16, s, &p))))
            .build()
            .expect("five bus-attached requestors are DRC-clean now");
        let report = run_system(&topo).expect("all five verify");
        assert_eq!(report.requestors.len(), 5);
        // 5 leaves at arity 4 -> level 0 (2 muxes) + root level (1 mux).
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.levels[0].muxes, 2);
        assert_eq!(report.levels[1].muxes, 1);
        assert!(report.levels[0].r_beats > 0, "leaf level moved beats");
        assert_eq!(
            report.levels[0].r_beats, report.levels[1].r_beats,
            "every R beat crosses every level of a single-channel tree"
        );
    }

    #[test]
    fn interleaved_channels_split_the_load() {
        // Four requestors over two channels: two managers per channel,
        // one single-level mux each. Both channels carry beats and the
        // aggregate busy figure may legitimately exceed a single bus.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let topo = Topology::builder(&cfg)
            .requestors((0..4).map(|s| Requestor::new(SystemKind::Pack, ismt::build(16, s, &p))))
            .channels(2)
            .build()
            .expect("DRC-clean");
        let place = topo.placement();
        assert_eq!(place.channel_of, vec![0, 1, 0, 1]);
        let report = run_system(&topo).expect("all verify");
        assert_eq!(report.levels.len(), 1);
        assert_eq!(report.levels[0].muxes, 2, "one mux per channel");
        // The same four requestors on one channel contend harder.
        let flat = Topology::builder(&cfg)
            .requestors((0..4).map(|s| Requestor::new(SystemKind::Pack, ismt::build(16, s, &p))))
            .build()
            .expect("DRC-clean");
        let flat_report = run_system(&flat).expect("all verify");
        assert!(
            report.cycles <= flat_report.cycles,
            "two channels must not be slower than one: {} vs {}",
            report.cycles,
            flat_report.cycles
        );
    }

    #[test]
    fn row_buffer_misses_cost_cycles() {
        // The DRAM-ish timing model: same topology, same kernels, but a
        // narrow row with a heavy miss penalty must run strictly slower
        // than the flat-SRAM fabric — and still verify.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let build = |spec: FabricSpec| {
            Topology::builder(&cfg)
                .requestor(SystemKind::Pack, gemv::build(24, 3, Dataflow::ColWise, &p))
                .requestor(SystemKind::Pack, gemv::build(24, 4, Dataflow::ColWise, &p))
                .fabric(spec)
                .build()
                .expect("DRC-clean")
        };
        // row_words > 0 forces the fabric path even on one channel.
        let dram = run_system(&build(FabricSpec::flat().with_row_buffer(8, 16)))
            .expect("row-buffer run verifies");
        let sram = run_system(&build(FabricSpec::flat())).expect("flat run verifies");
        assert!(
            dram.cycles > sram.cycles,
            "row misses must cost cycles: {} vs {}",
            dram.cycles,
            sram.cycles
        );
    }

    #[test]
    fn a_solo_requestor_pays_the_row_buffer_too() {
        // Regression: the 1-requestor shortcut used to ignore the
        // fabric, so a scaling sweep's solo baseline ran on flat SRAM
        // timing while every other point paid DRAM-ish row misses.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let build = |spec: FabricSpec| {
            Topology::builder(&cfg)
                .requestor(SystemKind::Pack, gemv::build(24, 3, Dataflow::ColWise, &p))
                .fabric(spec)
                .build()
                .expect("DRC-clean")
        };
        let dram = run_system(&build(FabricSpec::flat().with_row_buffer(8, 16)))
            .expect("row-buffer solo verifies");
        let sram = run_system(&build(FabricSpec::flat())).expect("flat solo verifies");
        assert!(
            dram.cycles > sram.cycles,
            "a solo run must pay row misses like any other point: {} vs {}",
            dram.cycles,
            sram.cycles
        );
        // A flat-fabric solo still reproduces the classic
        // single-requestor loop cycle-for-cycle.
        let single =
            run_kernel(&cfg, &gemv::build(24, 3, Dataflow::ColWise, &p)).expect("single verifies");
        assert_eq!(sram.cycles, single.cycles);
    }

    #[test]
    fn builder_surfaces_every_error_as_typed_diagnostics() {
        // The zero-panic guarantee: every malformed configuration comes
        // back as RunError::Drc naming the violated rule.
        use crate::drc::Rule;
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let two = |b: TopologyBuilder| {
            b.requestor(SystemKind::Pack, ismt::build(16, 1, &p))
                .requestor(SystemKind::Pack, ismt::build(16, 2, &p))
        };
        let rule_of = |err: RunError| -> Vec<Rule> {
            let report = err.drc_report().expect("typed DRC rejection").clone();
            Rule::ALL
                .into_iter()
                .filter(|r| report.violates(*r))
                .collect()
        };
        // Empty topology: dead-logic rule.
        let err = Topology::builder(&cfg).build().expect_err("empty rejected");
        assert!(rule_of(err).contains(&Rule::Unreachable));
        // Arity below 2 can never converge; above MAX_FAN_IN overflows a
        // level's port budget. Both are manager-overflow diagnostics.
        for arity in [0, 1, MAX_FAN_IN + 1] {
            let err = two(Topology::builder(&cfg))
                .arity(arity)
                .build()
                .expect_err("bad arity rejected");
            assert!(
                rule_of(err).contains(&Rule::ManagerOverflow),
                "arity {arity}"
            );
        }
        // Zero channels: nothing can route anywhere.
        let err = two(Topology::builder(&cfg))
            .channels(0)
            .build()
            .expect_err("zero channels rejected");
        assert!(rule_of(err).contains(&Rule::FabricRange));
        // Outstanding-load limit that cannot fit the mux-narrowed local
        // ID space: a capacity rejection, not a silent allocator wrap.
        let mut idcfg = cfg;
        idcfg.vproc.max_outstanding_loads = 1 << LOCAL_ID_BITS;
        let err = two(Topology::builder(&idcfg))
            .build()
            .expect_err("aliasing IDs rejected");
        assert!(rule_of(err).contains(&Rule::IdCapacity));
        // Zero-depth queues: the classic pre-cycle-0 rejection.
        let mut qcfg = cfg;
        qcfg.queue_depth = 0;
        let err = two(Topology::builder(&qcfg))
            .build()
            .expect_err("zero-depth queues rejected");
        assert!(rule_of(err).contains(&Rule::QueueStall));
    }

    #[test]
    fn id_aliasing_behind_the_mux_is_a_hard_drc_error() {
        // Regression: the mux narrows every engine to LOCAL_ID_BITS local
        // IDs. An outstanding limit that exceeds that masked space used to
        // be silently accepted — the allocator would wrap and alias a
        // live transaction. It is now a typed DRC rejection.
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.vproc.max_outstanding_loads = 1 << LOCAL_ID_BITS;
        let p = cfg.kernel_params();
        // A hand-rolled literal (not the builder) so the run path's own
        // DRC gate is what rejects it.
        let topo = Topology {
            system: cfg,
            requestors: vec![
                Requestor::new(SystemKind::Pack, ismt::build(16, 1, &p)),
                Requestor::new(SystemKind::Pack, ismt::build(16, 2, &p)),
            ],
            fabric: FabricSpec::default(),
        };
        let err = run_system(&topo).expect_err("aliasing IDs must be rejected");
        let report = err.drc_report().expect("a DRC rejection, not a sim error");
        assert!(report.violates(crate::drc::Rule::IdCapacity), "{report}");
        // Solo, the full 8-bit ID space covers the same limit: the run
        // is legal and completes.
        run_kernel(&cfg, &ismt::build(16, 1, &p)).expect("solo run is legal");
    }

    #[test]
    fn empty_topology_is_a_typed_error_not_a_panic() {
        let topo = Topology {
            system: SystemConfig::paper(SystemKind::Pack),
            requestors: Vec::new(),
            fabric: FabricSpec::default(),
        };
        let err = run_system(&topo).expect_err("empty topology rejected");
        let report = err.drc_report().expect("a DRC rejection");
        assert!(report.violates(crate::drc::Rule::Unreachable), "{report}");
        // And the error converts losslessly into the legacy String shape.
        let msg: String = err.into();
        assert!(msg.contains("DRC-U1"), "{msg}");
    }

    #[test]
    fn zero_depth_queues_are_rejected_before_cycle_zero() {
        // queue_depth = 0 used to panic inside CtrlConfig::new mid-setup;
        // the DRC now reports it as a typed diagnostic first.
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.queue_depth = 0;
        let k = ismt::build(16, 1, &cfg.kernel_params());
        let err = run_kernel(&cfg, &k).expect_err("zero-depth queues rejected");
        let report = err.drc_report().expect("a DRC rejection");
        assert!(report.violates(crate::drc::Rule::QueueStall), "{report}");
    }

    #[test]
    fn finished_requestors_keep_their_own_utilization_denominator() {
        // A short kernel next to a long one: the short requestor's stats
        // must describe its own run, not be diluted by the tail it sat
        // out (its engine stops ticking once done).
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let p = cfg.kernel_params();
        let topo = Topology::builder(&cfg)
            .requestor(SystemKind::Pack, ismt::build(12, 1, &p))
            .requestor(SystemKind::Pack, ismt::build(40, 2, &p))
            .build()
            .expect("DRC-clean");
        let report = run_system(&topo).expect("verifies");
        let (short, long) = (&report.requestors[0], &report.requestors[1]);
        assert!(short.cycles < long.cycles);
        // busy_fraction × cycles recovers the requestor's R beat count;
        // that count is workload-determined and must match the solo run
        // of the same kernel. If the idle tail diluted the fraction, the
        // product would undershoot badly.
        let solo = run_kernel(&cfg, &ismt::build(12, 1, &p)).expect("solo verifies");
        let beats_shared = short.r_busy * short.cycles as f64;
        let beats_solo = solo.r_busy * solo.cycles as f64;
        assert!(
            (beats_shared - beats_solo).abs() < 1.0,
            "beat accounting drifted: {beats_shared:.1} vs {beats_solo:.1}"
        );
    }

    #[test]
    fn ideal_requestors_share_storage_without_bus_contention() {
        let cfg = SystemConfig::paper(SystemKind::Ideal);
        let p = cfg.kernel_params();
        let solo = run_kernel(&cfg, &ismt::build(16, 4, &p)).expect("solo verifies");
        let topo = Topology::builder(&cfg)
            .requestor(SystemKind::Ideal, ismt::build(16, 4, &p))
            .requestor(SystemKind::Ideal, ismt::build(16, 5, &p))
            .build()
            .expect("DRC-clean");
        let shared = run_system(&topo).expect("ideal pair verifies");
        // Per-lane ports: no shared resource, no slowdown.
        assert_eq!(shared.requestors[0].cycles, solo.cycles);
        assert_eq!(shared.bank_conflicts, 0);
        assert_eq!(shared.bus_r_busy, 0.0);
    }
}
