//! System assembly and the kernel run loop.
//!
//! Builds the paper's three evaluation systems (§III-A): BASE (plain
//! AXI4), PACK (AXI-Pack bus + near-memory adapter) and IDEAL (per-lane
//! conflict-free memory), and runs one kernel to completion on one of
//! them — the measurement behind every bar of Fig. 3.

use axi_proto::{AxiChannels, BusConfig};
use banked_mem::BankConfig;
use hwmodel::energy::{Activity, EnergyModel};
use pack_ctrl::{Adapter, CtrlConfig};
use vproc::{Engine, SystemKind, VprocConfig};
use workloads::{Kernel, KernelParams};

use crate::report::RunReport;

/// Configuration of one evaluation system.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// BASE, PACK or IDEAL (paper §III-A).
    pub kind: SystemKind,
    /// Bus width in bits (64 / 128 / 256; lanes scale with it).
    pub bus_bits: u32,
    /// Bank count of the shared SRAM (paper default 17).
    pub banks: usize,
    /// Decoupling-queue depth in the controller (paper default 4).
    pub queue_depth: usize,
    /// Vector processor parameters (derived from the bus width).
    pub vproc: VprocConfig,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl SystemConfig {
    /// The paper's evaluation system at a 256-bit bus.
    pub fn paper(kind: SystemKind) -> Self {
        SystemConfig::with_bus(kind, 256)
    }

    /// A paper system at a different bus width (Fig. 3d/3e sweeps).
    pub fn with_bus(kind: SystemKind, bus_bits: u32) -> Self {
        SystemConfig {
            kind,
            bus_bits,
            banks: 17,
            queue_depth: 4,
            vproc: VprocConfig::for_bus_bits(bus_bits),
            max_cycles: 500_000_000,
        }
    }

    /// Kernel-builder parameters matching this system.
    pub fn kernel_params(&self) -> KernelParams {
        KernelParams::new(self.kind, self.vproc.max_vl())
    }

    fn bus(&self) -> BusConfig {
        BusConfig::new(self.bus_bits)
    }

    fn ctrl(&self) -> CtrlConfig {
        let bank = BankConfig {
            banks: self.banks,
            word_bytes: 4,
            latency: 1,
            ports: 0, // derived by CtrlConfig::new
            conflict_free: false,
            // Eager-functional execution is the source of truth for
            // memory contents; timed writes keep timing only.
            commit_writes: false,
        };
        CtrlConfig::new(self.bus(), bank, self.queue_depth)
    }
}

/// Runs a kernel to completion on the configured system.
///
/// The returned [`RunReport`] contains cycle counts, bus utilizations and
/// energy activity. Functional verification against the kernel's scalar
/// reference runs before returning.
///
/// # Examples
///
/// ```
/// use axi_pack::{run_kernel, SystemConfig};
/// use vproc::SystemKind;
/// use workloads::gemv;
///
/// let base = SystemConfig::paper(SystemKind::Base);
/// let pack = SystemConfig::paper(SystemKind::Pack);
/// let run = |cfg: &SystemConfig| {
///     let kernel = gemv::build(32, 7, workloads::Dataflow::ColWise, &cfg.kernel_params());
///     run_kernel(cfg, &kernel).expect("kernel verifies")
/// };
/// // Column-wise gemv is exactly the strided traffic AXI-Pack packs.
/// assert!(run(&pack).cycles < run(&base).cycles);
/// ```
///
/// # Errors
///
/// Returns an error if the functional result diverges from the scalar
/// reference, if the engine observed R-payload mismatches on a kernel with
/// read-only streams, or if the simulation exceeds `max_cycles`.
pub fn run_kernel(cfg: &SystemConfig, kernel: &Kernel) -> Result<RunReport, String> {
    let mut engine = Engine::new(cfg.vproc, cfg.kind, cfg.bus(), kernel.program.clone());
    let mut cycles = 0u64;
    let (storage, adapter_stats) = match cfg.kind {
        SystemKind::Ideal => {
            let mut storage = kernel.build_storage();
            while !engine.done() {
                engine.tick(None, &mut storage);
                cycles += 1;
                if cycles > cfg.max_cycles {
                    return Err(format!(
                        "{}: exceeded {} cycles",
                        kernel.name, cfg.max_cycles
                    ));
                }
            }
            (storage, None)
        }
        SystemKind::Base | SystemKind::Pack => {
            let mut adapter = Adapter::new(cfg.ctrl(), kernel.build_storage());
            let mut ch = AxiChannels::new();
            while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
                engine.tick(Some(&mut ch), adapter.storage_mut());
                adapter.tick(&mut ch);
                adapter.end_cycle();
                ch.end_cycle();
                cycles += 1;
                if cycles > cfg.max_cycles {
                    return Err(format!(
                        "{}: exceeded {} cycles",
                        kernel.name, cfg.max_cycles
                    ));
                }
            }
            let stats = (
                adapter.word_reads() + adapter.word_writes(),
                adapter.bank_conflicts(),
            );
            (adapter.into_storage(), Some(stats))
        }
    };
    kernel.verify(&storage)?;
    let stats = engine.stats();
    if kernel.read_only_streams && stats.data_mismatches > 0 {
        return Err(format!(
            "{}: {} R-payload mismatches on read-only streams",
            kernel.name, stats.data_mismatches
        ));
    }
    let (word_accesses, bank_conflicts) = adapter_stats.unwrap_or((
        // IDEAL has no controller; charge one word per element moved so
        // energy comparisons stay meaningful.
        stats.load_elems + stats.store_elems,
        0,
    ));
    let activity = Activity {
        cycles,
        lane_elems: stats.lane_elems,
        r_payload_bytes: stats.r_util.payload_bytes(),
        w_payload_bytes: stats.w_payload,
        word_accesses,
        insns_issued: stats.issued,
        has_pack_adapter: cfg.kind == SystemKind::Pack,
    };
    Ok(RunReport {
        kernel: kernel.name.clone(),
        kind: cfg.kind,
        bus_bits: cfg.bus_bits,
        cycles,
        r_util: stats.r_util.payload_fraction(),
        r_util_no_idx: stats.r_util_data.payload_fraction(),
        r_busy: stats.r_util.busy_fraction(),
        data_mismatches: stats.data_mismatches,
        bank_conflicts,
        activity,
        power_mw: EnergyModel::default().power_mw(&activity),
        energy_uj: EnergyModel::default().energy_uj(&activity),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{gemv, ismt, spmv, CsrMatrix, Dataflow};

    #[test]
    fn ismt_verifies_on_all_three_systems() {
        for kind in [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal] {
            let cfg = SystemConfig::paper(kind);
            let k = ismt::build(24, 3, &cfg.kernel_params());
            let r = run_kernel(&cfg, &k).expect("ismt verifies");
            assert!(r.cycles > 0, "{kind}");
        }
    }

    #[test]
    fn pack_beats_base_on_strided_gemv() {
        let mk = |kind| {
            let cfg = SystemConfig::paper(kind);
            let k = gemv::build(48, 5, Dataflow::ColWise, &cfg.kernel_params());
            run_kernel(&cfg, &k).expect("gemv verifies")
        };
        let base = mk(SystemKind::Base);
        let pack = mk(SystemKind::Pack);
        let ideal = mk(SystemKind::Ideal);
        assert!(
            base.cycles > 2 * pack.cycles,
            "pack speedup missing: {} vs {}",
            base.cycles,
            pack.cycles
        );
        assert!(ideal.cycles <= pack.cycles, "ideal is the lower bound");
    }

    #[test]
    fn spmv_verifies_and_reports_utilization() {
        let m = CsrMatrix::random(48, 48, 8.0, 2);
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let cfg = SystemConfig::paper(kind);
            let k = spmv::build(&m, 1, &cfg.kernel_params());
            let r = run_kernel(&cfg, &k).expect("spmv verifies");
            assert!(r.r_util > 0.0 && r.r_util < 1.0);
            if kind == SystemKind::Pack {
                // In-memory indirection: no index beats on the bus.
                assert!((r.r_util - r.r_util_no_idx).abs() < 1e-9);
            } else {
                assert!(r.r_util > r.r_util_no_idx);
            }
        }
    }

    #[test]
    fn power_is_reported_in_a_sane_band() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let k = ismt::build(32, 1, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        assert!((100.0..500.0).contains(&r.power_mw), "{} mW", r.power_mw);
        assert!(r.energy_uj > 0.0);
    }
}
