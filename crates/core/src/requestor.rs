//! The "ideal requestor" of the paper's parameter-sensitivity study
//! (§III-E): a traffic generator that drives the AXI-Pack controller
//! directly with continuous packed read bursts of length 256, so the
//! measured R utilization isolates controller and bank behaviour from the
//! vector processor.

use axi_proto::{ArBeat, AxiChannels, BusConfig, ElemSize, IdxSize};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig, StagePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one sensitivity measurement.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Bus width in bits (paper: 256).
    pub bus_bits: u32,
    /// Bank count; ignored when `conflict_free`.
    pub banks: usize,
    /// `true` models the paper's "ideal" conflict-free memory.
    pub conflict_free: bool,
    /// Decoupling-queue depth (paper uses 32 here, not the system's 4,
    /// "to avoid bottlenecks unrelated to our analysis").
    pub queue_depth: usize,
    /// Number of length-256 bursts to stream.
    pub bursts: usize,
    /// Index/element stage arbitration policy (ablation; paper uses
    /// round-robin).
    pub stage_policy: StagePolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            bus_bits: 256,
            banks: 17,
            conflict_free: false,
            queue_depth: 32,
            bursts: 4,
            stage_policy: StagePolicy::default(),
        }
    }
}

/// Beats per burst used by the study.
const BURST_BEATS: u32 = 256;
/// Cycle budget per burst before the measurement is declared hung.
const CYCLE_CAP_PER_BURST: u64 = 256 * 64;

fn adapter(cfg: &SweepConfig, storage_bytes: usize) -> (Adapter, AxiChannels) {
    let bank = BankConfig {
        banks: cfg.banks,
        word_bytes: 4,
        latency: 1,
        ports: 0,
        conflict_free: cfg.conflict_free,
        commit_writes: true,
        row_words: 0,
        row_miss_penalty: 0,
    };
    let mut ctrl = CtrlConfig::new(BusConfig::new(cfg.bus_bits), bank, cfg.queue_depth);
    ctrl.stage_policy = cfg.stage_policy;
    let mut storage = Storage::new(storage_bytes);
    // Nonzero fill so reads demonstrably move data; one pass over the raw
    // bytes, not 64Ki bounds-checked word writes per sweep point.
    let words = (storage_bytes / 4).min(1 << 16);
    for (w, chunk) in storage.as_bytes_mut()[..4 * words]
        .chunks_exact_mut(4)
        .enumerate()
    {
        chunk.copy_from_slice(&(w as u32).to_le_bytes());
    }
    (Adapter::new(ctrl, storage), AxiChannels::new())
}

/// Streams the prepared bursts and returns the R-channel busy fraction
/// (beats per cycle — with full-width packed beats this equals the paper's
/// bus utilization).
fn measure(mut adapter: Adapter, mut ch: AxiChannels, mut requests: Vec<ArBeat>) -> f64 {
    requests.reverse(); // pop from the back
    let total: u64 = requests.iter().map(|r| r.beats as u64).sum();
    let cap = CYCLE_CAP_PER_BURST * requests.len() as u64;
    let mut beats = 0u64;
    let mut cycles = 0u64;
    while beats < total {
        if ch.ar.can_push() {
            if let Some(ar) = requests.pop() {
                ch.ar.push(ar);
            }
        }
        if ch.r.pop().is_some() {
            beats += 1;
        }
        adapter.tick(&mut ch);
        adapter.end_cycle();
        ch.end_cycle();
        cycles += 1;
        assert!(cycles < cap, "sensitivity measurement hung");
    }
    beats as f64 / cycles as f64
}

/// R utilization of continuous strided reads at one element size and
/// stride (one point of Fig. 5b before stride averaging).
pub fn strided_read_util(cfg: &SweepConfig, elem: ElemSize, stride: i32) -> f64 {
    let bus = BusConfig::new(cfg.bus_bits);
    let epb = bus.elems_per_beat(elem) as u32;
    let n_elems = BURST_BEATS * epb;
    // Span of one burst plus slack; bursts reuse the same base.
    let span = (n_elems as usize) * (stride.unsigned_abs() as usize).max(1) * elem.bytes();
    let (adapter, ch) = adapter(cfg, span + (1 << 16));
    let reqs = (0..cfg.bursts)
        .map(|i| ArBeat::packed_strided(i as u8, 0, n_elems, elem, stride, &bus))
        .collect();
    measure(adapter, ch, reqs)
}

/// R utilization of strided reads averaged across strides 0–63, as
/// Fig. 5b reports. Served from the installed result cache when one is
/// active (the 64 per-stride measurements collapse to one f64 blob).
pub fn strided_read_util_avg(cfg: &SweepConfig, elem: ElemSize) -> f64 {
    if let Some(rc) = crate::cache::active() {
        let key = crate::cache::strided_avg_key(cfg, elem);
        return rc.util_value(key, || strided_read_util_avg_uncached(cfg, elem));
    }
    strided_read_util_avg_uncached(cfg, elem)
}

fn strided_read_util_avg_uncached(cfg: &SweepConfig, elem: ElemSize) -> f64 {
    let total: f64 = (0..64).map(|s| strided_read_util(cfg, elem, s)).sum();
    total / 64.0
}

/// R utilization of continuous indirect reads with random indices at one
/// element/index size pair (one point of Fig. 5a). Cache-aware like
/// [`strided_read_util_avg`]: the seed is part of the key, so the
/// randomized index stream stays deterministic per point.
pub fn indirect_read_util(cfg: &SweepConfig, elem: ElemSize, idx: IdxSize, seed: u64) -> f64 {
    if let Some(rc) = crate::cache::active() {
        let key = crate::cache::indirect_key(cfg, elem, idx, seed);
        return rc.util_value(key, || indirect_read_util_uncached(cfg, elem, idx, seed));
    }
    indirect_read_util_uncached(cfg, elem, idx, seed)
}

fn indirect_read_util_uncached(cfg: &SweepConfig, elem: ElemSize, idx: IdxSize, seed: u64) -> f64 {
    let bus = BusConfig::new(cfg.bus_bits);
    let epb = bus.elems_per_beat(elem) as u32;
    let n_elems = BURST_BEATS * epb;
    // Element pool: whatever the index width can address, capped to a
    // few MiB of backing store.
    let pool_elems = (idx.max_index() + 1).min(1 << 18);
    let elem_base: u64 = 1 << 22;
    let storage_bytes = elem_base as usize + (pool_elems as usize) * elem.bytes() + (1 << 16);
    let (mut adapter, ch) = adapter(cfg, storage_bytes);
    // Plant one index array per burst.
    let mut rng = StdRng::seed_from_u64(seed);
    let idx_array_stride = (n_elems as usize * idx.bytes() + 63) & !63;
    let mut reqs = Vec::with_capacity(cfg.bursts);
    for b in 0..cfg.bursts {
        let idx_addr = (b * idx_array_stride) as u64;
        let mut bytes = vec![0u8; n_elems as usize * idx.bytes()];
        for k in 0..n_elems as usize {
            let v = rng.gen_range(0..pool_elems);
            idx.write_le(v, &mut bytes[k * idx.bytes()..]);
        }
        adapter.storage_mut().write(idx_addr, &bytes);
        reqs.push(ArBeat::packed_indirect(
            b as u8, idx_addr, n_elems, elem, idx, elem_base, &bus,
        ));
    }
    measure(adapter, ch, reqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepConfig {
        SweepConfig {
            bursts: 2,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn unit_stride_on_prime_banks_is_near_ideal() {
        let u = strided_read_util(&quick(), ElemSize::B4, 1);
        assert!(u > 0.85, "unit stride should stream: {u:.2}");
    }

    #[test]
    fn pathological_stride_on_pow2_banks_collapses() {
        let cfg = SweepConfig {
            banks: 8,
            ..quick()
        };
        let u = strided_read_util(&cfg, ElemSize::B4, 8);
        assert!(u < 0.25, "stride 8 on 8 banks must serialize: {u:.2}");
        let prime = strided_read_util(&quick(), ElemSize::B4, 8);
        assert!(prime > 2.0 * u, "17 banks must rescue stride 8: {prime:.2}");
    }

    #[test]
    fn more_banks_help_indirect_reads() {
        let few = indirect_read_util(
            &SweepConfig {
                banks: 8,
                bursts: 2,
                ..SweepConfig::default()
            },
            ElemSize::B4,
            IdxSize::B4,
            1,
        );
        let many = indirect_read_util(
            &SweepConfig {
                banks: 32,
                bursts: 2,
                ..SweepConfig::default()
            },
            ElemSize::B4,
            IdxSize::B4,
            1,
        );
        assert!(many > few, "bank count must help: {few:.2} vs {many:.2}");
    }

    #[test]
    fn index_ratio_bound_holds() {
        // 32-bit elements, 32-bit indices, conflict-free memory: the
        // r/(r+1) = 1/2 bound caps utilization.
        let cfg = SweepConfig {
            conflict_free: true,
            bursts: 2,
            ..SweepConfig::default()
        };
        let u11 = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B4, 2);
        assert!((0.35..=0.55).contains(&u11), "r/(r+1)=0.5 bound: {u11:.2}");
        // 8-bit indices: bound rises to 0.8.
        let u41 = indirect_read_util(&cfg, ElemSize::B4, IdxSize::B1, 2);
        assert!(u41 > u11 + 0.1, "smaller indices must raise util: {u41:.2}");
    }
}
