//! Static design-rule checking (`simcheck` analyzer 1).
//!
//! A [`Topology`] can be silently wrong in ways no unit test of a single
//! component catches: overlapping address windows, an AXI ID space too
//! small for the engine's outstanding-transaction limit (the ID-remapping
//! mux masks IDs, so overflow *aliases* transactions instead of failing),
//! zero-capacity queues that wedge the datapath at cycle 0, or wait-for
//! cycles between back-pressured components that deadlock mid-run. This
//! module rejects those configurations *before* cycle 0:
//!
//! 1. [`extract`] lowers a `Topology` into a [`SystemModel`] — a plain-data
//!    description of every window, engine, queue capacity and the
//!    back-pressure wait-for graph between components;
//! 2. [`check_model`] runs the rule suite over the model and returns a
//!    [`DrcReport`] of typed diagnostics (rule ID, severity, offending
//!    component path, fix hint).
//!
//! [`check_topology`] composes the two. The run paths
//! ([`crate::run_system`], [`crate::run_kernel`]) validate by default and
//! return [`crate::RunError::Drc`] instead of panicking or wedging;
//! `workloads::synth`-generated topologies are asserted DRC-clean by the
//! differential engine (a rejected seed is a generator bug); and
//! `figures drc` pretty-prints reports for the in-tree config grids.
//!
//! The rule catalog is stable: every rule has a short ID ([`Rule::id`],
//! e.g. `DRC-I1`) that tests and fix hints reference. Rules detect either
//! **errors** (the run would panic, wedge, or silently corrupt — the run
//! paths refuse to start) or **warnings** (legal but suspicious; reported,
//! never fatal).

use std::fmt;

use axi_proto::{CHANNEL_DEPTH, ID_BITS, LOCAL_ID_BITS, MAX_FAN_IN};
use banked_mem::{ChannelMap, MAX_WORD_BYTES};
use pack_ctrl::{BASE_TXNS, PACKED_BURSTS};
use vproc::SystemKind;
use workloads::Kernel;

use crate::system::{FabricSpec, SystemConfig, Topology, WINDOW_ALIGN};

// ---------------------------------------------------------------------
// Rules and diagnostics
// ---------------------------------------------------------------------

/// One design rule of the catalog. The numeric IDs are stable across
/// releases — tests assert on them and fix hints cite them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `DRC-W1` — requestor windows must be 4 KiB-aligned.
    WindowAlign,
    /// `DRC-W2` — requestor windows must be disjoint.
    WindowOverlap,
    /// `DRC-W3` — a window must be non-empty, fit inside the backing
    /// store, and contain its kernel's image and expected-output regions.
    WindowBounds,
    /// `DRC-I1` — the effective AXI ID space must cover the engine's
    /// outstanding-transaction limit (ID masking aliases on overflow),
    /// and the deepest mux tree's stacked ID-prefix fields must fit the
    /// bus's [`ID_BITS`]-bit ID on top of the leaf-local width.
    IdCapacity,
    /// `DRC-I2` — the fabric's per-level mux fan-in (arity) must be
    /// between 2 and [`MAX_FAN_IN`]: below 2 a tree never converges,
    /// above it a level overflows its port budget.
    ManagerOverflow,
    /// `DRC-Q1` — queues and channel FIFOs must have stall-free capacity.
    QueueStall,
    /// `DRC-C1` — the back-pressure wait-for graph must be free of cycles
    /// made entirely of conditional edges (deadlock freedom).
    CreditCycle,
    /// `DRC-B1` — bank, word and port counts must be mutually consistent.
    BankPorts,
    /// `DRC-U1` — every component must be reachable from a requestor; a
    /// topology needs at least one requestor.
    Unreachable,
    /// `DRC-V1` — vector-processor and bus shape parameters must be in
    /// the ranges the engine supports.
    VprocShape,
    /// `DRC-F1` — the fabric's channel ranges must be disjoint, point at
    /// existing channels, and leave no channel unreachable.
    FabricRange,
}

impl Rule {
    /// Every rule of the catalog, in ID order.
    pub const ALL: [Rule; 11] = [
        Rule::WindowAlign,
        Rule::WindowOverlap,
        Rule::WindowBounds,
        Rule::IdCapacity,
        Rule::ManagerOverflow,
        Rule::QueueStall,
        Rule::CreditCycle,
        Rule::BankPorts,
        Rule::Unreachable,
        Rule::VprocShape,
        Rule::FabricRange,
    ];

    /// The stable rule ID (`DRC-W1` … `DRC-V1`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::WindowAlign => "DRC-W1",
            Rule::WindowOverlap => "DRC-W2",
            Rule::WindowBounds => "DRC-W3",
            Rule::IdCapacity => "DRC-I1",
            Rule::ManagerOverflow => "DRC-I2",
            Rule::QueueStall => "DRC-Q1",
            Rule::CreditCycle => "DRC-C1",
            Rule::BankPorts => "DRC-B1",
            Rule::Unreachable => "DRC-U1",
            Rule::VprocShape => "DRC-V1",
            Rule::FabricRange => "DRC-F1",
        }
    }

    /// One-line catalog description (for `figures drc` and the docs).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::WindowAlign => "requestor windows are 4 KiB-aligned",
            Rule::WindowOverlap => "requestor windows are disjoint",
            Rule::WindowBounds => "kernel images fit inside their windows",
            Rule::IdCapacity => "AXI ID space covers the outstanding-transaction limit",
            Rule::ManagerOverflow => "mux fan-in per fabric level is between 2 and 8",
            Rule::QueueStall => "queues and channel FIFOs have stall-free capacity",
            Rule::CreditCycle => "the back-pressure wait-for graph is deadlock-free",
            Rule::BankPorts => "bank, word and port counts are consistent",
            Rule::Unreachable => "every component is reachable from a requestor",
            Rule::VprocShape => "vector-processor and bus parameters are supported",
            Rule::FabricRange => "fabric ranges are disjoint and every channel reachable",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Legal but suspicious; reported, never fatal.
    Warning,
    /// The run would panic, wedge, or silently corrupt — the run paths
    /// refuse to start.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation: which rule, how severe, where, what, and how to
/// fix it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Error (run refused) or warning (reported only).
    pub severity: Severity,
    /// Path of the offending component (e.g. `requestor[1].engine`).
    pub path: String,
    /// What is wrong, with the offending values.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.rule.id(),
            self.path,
            self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, " (hint: {})", self.hint)?;
        }
        Ok(())
    }
}

/// The result of one DRC pass: every diagnostic, plus how much was
/// checked (so a clean report still says what it covered).
#[derive(Debug, Clone, Default)]
pub struct DrcReport {
    /// Every diagnostic, in rule-catalog order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of components (graph nodes) the pass examined.
    pub components: usize,
}

impl DrcReport {
    /// `true` when no *error*-severity diagnostic fired (warnings are
    /// allowed — they never block a run).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `true` when any diagnostic of `rule` fired (any severity).
    pub fn violates(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    fn push(
        &mut self,
        rule: Rule,
        severity: Severity,
        path: impl Into<String>,
        message: String,
        hint: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            path: path.into(),
            message,
            hint: hint.into(),
        });
    }
}

impl fmt::Display for DrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if self.diagnostics.is_empty() {
            return write!(
                f,
                "DRC clean: {} rules over {} components",
                Rule::ALL.len(),
                self.components
            );
        }
        write!(
            f,
            "DRC: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The static system model
// ---------------------------------------------------------------------

/// One requestor's private address-space window.
#[derive(Debug, Clone)]
pub struct WindowModel {
    /// Component path (`requestor[i].window`).
    pub path: String,
    /// Window base address in the shared store.
    pub base: u64,
    /// Window size in bytes (the kernel's `storage_size`).
    pub size: usize,
    /// One past the highest window-relative byte the kernel's image or
    /// expected-output regions touch (0 for an empty image).
    pub content_end: u64,
}

/// One requestor's vector engine, as the DRC sees it.
#[derive(Debug, Clone)]
pub struct EngineModel {
    /// Component path (`requestor[i].engine`).
    pub path: String,
    /// BASE, PACK or IDEAL.
    pub kind: SystemKind,
    /// `axi_id_bits` as configured on the [`SystemConfig`].
    pub configured_id_bits: u32,
    /// The ID width the engine will actually run with: behind an
    /// ID-remapping mux the run loop narrows it to
    /// [`LOCAL_ID_BITS`] so the manager-index prefix fits.
    pub effective_id_bits: u32,
    /// Maximum concurrently outstanding load transactions.
    pub max_outstanding_loads: usize,
    /// Vector lanes.
    pub lanes: usize,
    /// Vector register length in bytes.
    pub vlen_bytes: usize,
    /// Sequencer in-flight instruction window.
    pub window: usize,
}

impl EngineModel {
    /// `true` when this engine drives the shared AXI(-Pack) bus (IDEAL
    /// engines use per-lane memory ports instead).
    pub fn bus_attached(&self) -> bool {
        self.kind != SystemKind::Ideal
    }
}

/// Whether a wait-for edge can stall forever or is guaranteed to drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The source makes progress only if the target does (back-pressure:
    /// "waits while the target is full/busy").
    Conditional,
    /// The target always makes progress regardless of anything upstream
    /// (a fixed-latency pipeline, or a consumer that pops every cycle).
    Unconditional,
}

/// The component/channel wait-for graph of a system: nodes are pipeline
/// stages (engine issue/drain sides, channel bundles, the mux, the
/// adapter, the banked memory), directed edges mean "the source waits on
/// the target". A cycle made entirely of [`EdgeKind::Conditional`] edges
/// is a potential deadlock ([`Rule::CreditCycle`]).
#[derive(Debug, Clone, Default)]
pub struct ComponentGraph {
    nodes: Vec<String>,
    edges: Vec<(usize, usize, EdgeKind)>,
}

impl ComponentGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ComponentGraph::default()
    }

    /// Adds a component node; returns its index.
    pub fn add_node(&mut self, path: impl Into<String>) -> usize {
        self.nodes.push(path.into());
        self.nodes.len() - 1
    }

    /// Adds a directed wait-for edge.
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        self.edges.push((from, to, kind));
    }

    /// Number of component nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The path of node `i`.
    pub fn path(&self, i: usize) -> &str {
        &self.nodes[i]
    }

    /// Finds a cycle made entirely of conditional edges, as a list of
    /// node indices along the cycle; `None` when the conditional
    /// subgraph is acyclic (deadlock-free).
    pub fn conditional_cycle(&self) -> Option<Vec<usize>> {
        // Iterative DFS with colors over the Conditional-only subgraph.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(a, b, kind) in &self.edges {
            if kind == EdgeKind::Conditional {
                succ[a].push(b);
            }
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        let mut parent = vec![usize::MAX; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (node, next-successor-index).
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < succ[node].len() {
                    let n = succ[node][*next];
                    *next += 1;
                    match color[n] {
                        Color::White => {
                            color[n] = Color::Gray;
                            parent[n] = node;
                            stack.push((n, 0));
                        }
                        Color::Gray => {
                            // Found a back edge node -> n: walk parents
                            // back to n to materialize the cycle.
                            let mut cycle = vec![node];
                            let mut at = node;
                            while at != n {
                                at = parent[at];
                                cycle.push(at);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Nodes not connected (in either edge direction) to any of `roots`.
    pub fn unreachable_from(&self, roots: &[usize]) -> Vec<usize> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(a, b, _) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = roots.iter().copied().filter(|&r| r < seen.len()).collect();
        for &r in &queue {
            seen[r] = true;
        }
        while let Some(n) = queue.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push(m);
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| !seen[i]).collect()
    }
}

/// The plain-data model the rules run over, extracted from a
/// [`Topology`] by [`extract`]. All fields are public so tests can
/// doctor a model into each failure mode — a well-formed `Topology`
/// *derives* aligned, disjoint windows, so some rules are only reachable
/// through a corrupted model.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// Bus width in bits (unvalidated — rule `DRC-V1` checks it).
    pub bus_bits: u32,
    /// Bank count of the shared SRAM.
    pub banks: usize,
    /// Memory word width in bytes.
    pub bank_word_bytes: usize,
    /// Per-lane decoupling-queue depth in the controller.
    pub queue_depth: usize,
    /// Register depth of every AXI channel FIFO.
    pub channel_depth: usize,
    /// Outstanding-transaction capacity of the adapter's plain-AXI4
    /// converter.
    pub plain_txn_slots: usize,
    /// Concurrent packed bursts per packed converter.
    pub packed_burst_slots: usize,
    /// Simulation cycle limit.
    pub max_cycles: u64,
    /// Total backing-store size covering every window.
    pub storage_bytes: usize,
    /// Memory channels of the fabric, as configured (1 is the classic
    /// flat shared endpoint; 0 is a `DRC-F1` error).
    pub fabric_channels: usize,
    /// Manager fan-in of one mux level of the fabric.
    pub fabric_arity: usize,
    /// ID-prefix bits each mux level stacks onto a transaction ID.
    pub level_bits: u32,
    /// Mux-tree depth of the channel with the most bus-attached
    /// requestors (0 when no channel needs a mux).
    pub fabric_depth: u32,
    /// The fabric's address-to-channel decoder.
    pub channel_map: ChannelMap,
    /// Owning memory channel of each requestor's window, in requestor
    /// order.
    pub channel_of: Vec<usize>,
    /// One window per requestor, in requestor order.
    pub windows: Vec<WindowModel>,
    /// One engine per requestor, in requestor order.
    pub engines: Vec<EngineModel>,
    /// The back-pressure wait-for graph.
    pub graph: ComponentGraph,
    /// Graph nodes that are engine issue sides (roots for reachability).
    pub engine_nodes: Vec<usize>,
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

/// One past the highest window-relative byte a kernel's image and
/// expected-output regions touch.
fn kernel_content_end(kernel: &Kernel) -> u64 {
    let image_end = kernel
        .image
        .iter()
        .map(|(addr, bytes)| addr + bytes.len() as u64)
        .max()
        .unwrap_or(0);
    let check_end = kernel
        .expected
        .iter()
        .map(|c| c.addr + 4 * c.values.len() as u64)
        .max()
        .unwrap_or(0);
    image_end.max(check_end)
}

/// Extracts the static model of a topology: windows (from the derived
/// window bases), engines (with the *effective* ID width the run loop
/// will impose), capacities, and the wait-for graph. Never panics — even
/// on configurations the run paths would reject.
pub fn extract(topo: &Topology) -> SystemModel {
    let reqs: Vec<(SystemKind, &Kernel)> = topo
        .requestors
        .iter()
        .map(|r| (r.kind, &r.kernel))
        .collect();
    let placement = topo.placement();
    build_model(
        &topo.system,
        &reqs,
        &placement.window_bases,
        topo.fabric,
        placement.channels,
        placement.channel_of,
    )
}

/// [`extract`] for the classic single-requestor system, without building
/// a [`Topology`] (the `run_kernel` hot path stays allocation-lean).
pub fn extract_single(cfg: &SystemConfig, kind: SystemKind, kernel: &Kernel) -> SystemModel {
    let map = ChannelMap::interleaved(&[(0, kernel.storage_size as u64)], 1);
    build_model(
        cfg,
        &[(kind, kernel)],
        &[0],
        FabricSpec::default(),
        map,
        vec![0],
    )
}

fn build_model(
    sys: &SystemConfig,
    reqs: &[(SystemKind, &Kernel)],
    bases: &[u64],
    fabric: FabricSpec,
    channel_map: ChannelMap,
    channel_of: Vec<usize>,
) -> SystemModel {
    let nch = fabric.channels.max(1);
    // Bus-attached (and total) member counts per channel: a requestor is
    // narrowed to manager-local IDs only when it shares *its channel's*
    // mux tree with another bus-attached requestor.
    let mut bus_members = vec![0usize; nch];
    let mut members = vec![0usize; nch];
    for (i, (kind, _)) in reqs.iter().enumerate() {
        let c = channel_of.get(i).copied().unwrap_or(0).min(nch - 1);
        members[c] += 1;
        if *kind != SystemKind::Ideal {
            bus_members[c] += 1;
        }
    }
    let fabric_depth = bus_members
        .iter()
        .map(|&m| fabric.depth_for(m))
        .max()
        .unwrap_or(0) as u32;

    let windows: Vec<WindowModel> = reqs
        .iter()
        .zip(bases)
        .enumerate()
        .map(|(i, ((_, kernel), &base))| WindowModel {
            path: format!("requestor[{i}].window"),
            base,
            size: kernel.storage_size,
            content_end: kernel_content_end(kernel),
        })
        .collect();
    let engines: Vec<EngineModel> = reqs
        .iter()
        .enumerate()
        .map(|(i, (kind, _))| EngineModel {
            path: format!("requestor[{i}].engine"),
            kind: *kind,
            configured_id_bits: sys.vproc.axi_id_bits,
            // The run loops narrow a bus-attached engine to the
            // manager-local ID width when it shares its channel's mux
            // tree with another bus-attached requestor.
            effective_id_bits: if *kind != SystemKind::Ideal
                && bus_members[channel_of.get(i).copied().unwrap_or(0).min(nch - 1)] > 1
            {
                LOCAL_ID_BITS
            } else {
                sys.vproc.axi_id_bits
            },
            max_outstanding_loads: sys.vproc.max_outstanding_loads,
            lanes: sys.vproc.lanes,
            vlen_bytes: sys.vproc.vlen_bytes,
            window: sys.vproc.window,
        })
        .collect();
    let storage_bytes = windows
        .iter()
        .map(|w| w.base as usize + w.size)
        .max()
        .unwrap_or(0);

    // The wait-for graph. Nodes are pipeline stages; an edge A -> B means
    // "A makes progress only when B does" (Conditional) or "A feeds B,
    // which always drains" (Unconditional). The request path is
    // back-pressured end to end; the response path terminates in the
    // engine's drain side, which pops R/B every cycle regardless of the
    // engine's own issue state — that unconditional sink is what makes
    // the in-tree systems deadlock-free. Each channel is an independent
    // memory + adapter + mux-tree stack; the single-channel case keeps
    // the historical unprefixed node names.
    let mut graph = ComponentGraph::new();
    let mut engine_nodes = Vec::with_capacity(reqs.len());
    struct ChanNodes {
        memory: usize,
        adapter: usize,
        mux: Option<(usize, usize)>,
    }
    let mut chans: Vec<Option<ChanNodes>> = Vec::with_capacity(nch);
    for c in 0..nch {
        // Empty channels get no hardware (DRC-F1 reports them as
        // unreachable) — except the classic single-channel system, which
        // always has its memory node, even with no requestors.
        if nch > 1 && members[c] == 0 {
            chans.push(None);
            continue;
        }
        let prefix = if nch == 1 {
            String::new()
        } else {
            format!("ch{c}.")
        };
        let memory = graph.add_node(format!("{prefix}memory.banks"));
        let (adapter, mux) = if bus_members[c] > 0 {
            let adapter = graph.add_node(format!("{prefix}adapter"));
            graph.add_edge(adapter, memory, EdgeKind::Conditional);
            if bus_members[c] > 1 {
                let mux_req = graph.add_node(format!("{prefix}mux.request"));
                let mux_resp = graph.add_node(format!("{prefix}mux.response"));
                let down_req = graph.add_node(format!("{prefix}bus.downstream.request"));
                let down_resp = graph.add_node(format!("{prefix}bus.downstream.response"));
                graph.add_edge(mux_req, down_req, EdgeKind::Conditional);
                graph.add_edge(down_req, adapter, EdgeKind::Conditional);
                graph.add_edge(adapter, down_resp, EdgeKind::Conditional);
                graph.add_edge(down_resp, mux_resp, EdgeKind::Conditional);
                (adapter, Some((mux_req, mux_resp)))
            } else {
                (adapter, None)
            }
        } else {
            (usize::MAX, None)
        };
        chans.push(Some(ChanNodes {
            memory,
            adapter,
            mux,
        }));
    }
    for (i, (kind, _)) in reqs.iter().enumerate() {
        let issue = graph.add_node(format!("requestor[{i}].engine.issue"));
        engine_nodes.push(issue);
        let c = channel_of.get(i).copied().unwrap_or(0).min(nch - 1);
        let Some(chan) = &chans[c] else { continue };
        if *kind == SystemKind::Ideal {
            // Per-lane ports into the channel's store: fixed latency,
            // always drains — no response path to model.
            graph.add_edge(issue, chan.memory, EdgeKind::Unconditional);
            continue;
        }
        let drain = graph.add_node(format!("requestor[{i}].engine.drain"));
        let req_ch = graph.add_node(format!("requestor[{i}].axi.request"));
        let resp_ch = graph.add_node(format!("requestor[{i}].axi.response"));
        graph.add_edge(issue, req_ch, EdgeKind::Conditional);
        match chan.mux {
            Some((mq, mr)) => {
                graph.add_edge(req_ch, mq, EdgeKind::Conditional);
                graph.add_edge(mr, resp_ch, EdgeKind::Conditional);
            }
            None => {
                graph.add_edge(req_ch, chan.adapter, EdgeKind::Conditional);
                graph.add_edge(chan.adapter, resp_ch, EdgeKind::Conditional);
            }
        }
        // The engine pops R/B every cycle: the response channel always
        // drains into the engine's drain side, which waits on nothing.
        graph.add_edge(resp_ch, drain, EdgeKind::Unconditional);
    }

    SystemModel {
        bus_bits: sys.bus_bits,
        banks: sys.banks,
        bank_word_bytes: 4, // SystemConfig::ctrl always runs 32-bit words
        queue_depth: sys.queue_depth,
        channel_depth: CHANNEL_DEPTH,
        plain_txn_slots: BASE_TXNS,
        packed_burst_slots: PACKED_BURSTS,
        max_cycles: sys.max_cycles,
        storage_bytes,
        fabric_channels: fabric.channels,
        fabric_arity: fabric.arity,
        level_bits: fabric.level_bits(),
        fabric_depth,
        channel_map,
        channel_of,
        windows,
        engines,
        graph,
        engine_nodes,
    }
}

// ---------------------------------------------------------------------
// The rule suite
// ---------------------------------------------------------------------

/// Runs the whole rule suite over a model.
pub fn check_model(model: &SystemModel) -> DrcReport {
    let mut report = DrcReport {
        diagnostics: Vec::new(),
        components: model.graph.len(),
    };
    check_windows(model, &mut report);
    check_ids(model, &mut report);
    check_queues(model, &mut report);
    check_credit_cycles(model, &mut report);
    check_banks(model, &mut report);
    check_reachability(model, &mut report);
    check_vproc_shape(model, &mut report);
    check_fabric(model, &mut report);
    report
}

/// Extracts and checks a topology in one call — the default gate of the
/// run paths.
pub fn check_topology(topo: &Topology) -> DrcReport {
    check_model(&extract(topo))
}

/// [`check_topology`] for the classic single-requestor system.
pub fn check_single(cfg: &SystemConfig, kind: SystemKind, kernel: &Kernel) -> DrcReport {
    check_model(&extract_single(cfg, kind, kernel))
}

/// `DRC-W1`/`DRC-W2`/`DRC-W3`: window alignment, disjointness, bounds.
fn check_windows(model: &SystemModel, report: &mut DrcReport) {
    for w in &model.windows {
        if w.base % WINDOW_ALIGN != 0 {
            report.push(
                Rule::WindowAlign,
                Severity::Error,
                &w.path,
                format!(
                    "window base {:#x} is not {} KiB-aligned",
                    w.base,
                    WINDOW_ALIGN / 1024
                ),
                "window bases must be multiples of 0x1000 so kernels keep \
                 their 64-byte layout alignment",
            );
        }
        if w.size == 0 {
            report.push(
                Rule::WindowBounds,
                Severity::Error,
                &w.path,
                "window is empty (kernel storage_size is 0)".into(),
                "give the kernel a non-zero storage_size",
            );
        } else if w.content_end > w.size as u64 {
            report.push(
                Rule::WindowBounds,
                Severity::Error,
                &w.path,
                format!(
                    "kernel image/checks reach byte {:#x}, past the window's \
                     {:#x}-byte storage",
                    w.content_end, w.size
                ),
                "grow the kernel's storage_size to cover every image and \
                 expected-output region",
            );
        }
        if w.base as usize + w.size > model.storage_bytes {
            report.push(
                Rule::WindowBounds,
                Severity::Error,
                &w.path,
                format!(
                    "window [{:#x}, {:#x}) exceeds the {:#x}-byte backing store",
                    w.base,
                    w.base + w.size as u64,
                    model.storage_bytes
                ),
                "grow storage_bytes to cover every window",
            );
        }
    }
    // Pairwise disjointness. Windows are few (<= requestor count), so the
    // quadratic check stays trivial.
    for (i, a) in model.windows.iter().enumerate() {
        for b in model.windows.iter().skip(i + 1) {
            let a_end = a.base + a.size as u64;
            let b_end = b.base + b.size as u64;
            if a.base < b_end && b.base < a_end {
                report.push(
                    Rule::WindowOverlap,
                    Severity::Error,
                    &b.path,
                    format!(
                        "window [{:#x}, {b_end:#x}) overlaps {} [{:#x}, {a_end:#x})",
                        b.base, a.path, a.base
                    ),
                    "windows must be disjoint; derive them with \
                     Topology::window_bases",
                );
            }
        }
    }
}

/// `DRC-I1`/`DRC-I2`: ID-space capacity and the manager-port limit.
fn check_ids(model: &SystemModel, report: &mut DrcReport) {
    for e in model.engines.iter().filter(|e| e.bus_attached()) {
        // Loads and stores never share IDs in flight: the engine caps
        // outstanding loads and allows at most one outstanding store, so
        // the ID allocator must cover max_outstanding_loads + 1 live IDs
        // before it wraps into a still-outstanding one.
        let needed = e.max_outstanding_loads as u64 + 1;
        let have = match e.effective_id_bits {
            0 => 0,
            bits => 1u64 << bits.min(16),
        };
        if have < needed {
            let narrowed = e.effective_id_bits != e.configured_id_bits;
            report.push(
                Rule::IdCapacity,
                Severity::Error,
                &e.path,
                format!(
                    "{} AXI IDs ({} ID bits{}) cannot cover {} outstanding \
                     transactions ({} loads + 1 store) — the allocator would \
                     wrap and alias a live transaction",
                    have,
                    e.effective_id_bits,
                    if narrowed {
                        format!(
                            ", narrowed from {} behind the ID-remapping mux",
                            e.configured_id_bits
                        )
                    } else {
                        String::new()
                    },
                    needed,
                    e.max_outstanding_loads
                ),
                format!(
                    "lower vproc.max_outstanding_loads to at most {} or widen \
                     the ID space",
                    have.saturating_sub(1)
                ),
            );
        }
    }
    let arity = model.fabric_arity;
    if !(2..=MAX_FAN_IN).contains(&arity) {
        report.push(
            Rule::ManagerOverflow,
            Severity::Error,
            "fabric",
            format!(
                "mux fan-in (arity) of {arity} is outside the supported \
                 2..={MAX_FAN_IN}: below 2 a tree never converges, above \
                 it a level overflows its port budget"
            ),
            "pick a per-level fan-in between 2 and 8",
        );
    }
    // Per-level ID budget: every mux level of the deepest tree stacks
    // level_bits of port prefix onto the leaf-local ID; the total must
    // still fit the bus's transaction-ID field.
    let total_bits = LOCAL_ID_BITS + model.fabric_depth * model.level_bits;
    if model.fabric_depth > 0 && total_bits > ID_BITS {
        report.push(
            Rule::IdCapacity,
            Severity::Error,
            "fabric",
            format!(
                "a {}-level mux tree needs {} ID bits ({} leaf-local + \
                 {} levels x {} prefix bits), past the {ID_BITS}-bit \
                 transaction ID",
                model.fabric_depth, total_bits, LOCAL_ID_BITS, model.fabric_depth, model.level_bits
            ),
            "spread requestors over more channels or raise the arity to \
             shrink the tree",
        );
    }
}

/// `DRC-F1`: every address the fabric accepts routes to exactly one,
/// existing, reachable channel.
fn check_fabric(model: &SystemModel, report: &mut DrcReport) {
    if model.fabric_channels == 0 {
        report.push(
            Rule::FabricRange,
            Severity::Error,
            "fabric",
            "channel count is 0: no address can route anywhere".into(),
            "a fabric needs at least one memory channel",
        );
    }
    if let Some((a, b)) = model.channel_map.overlapping() {
        report.push(
            Rule::FabricRange,
            Severity::Error,
            format!("fabric.ch{}", b.channel),
            format!(
                "range [{:#x}, {:#x}) of channel {} overlaps \
                 [{:#x}, {:#x}) of channel {}",
                b.base,
                b.end(),
                b.channel,
                a.base,
                a.end(),
                a.channel
            ),
            "fabric ranges must be disjoint so every address routes to \
             exactly one channel",
        );
    }
    if let Some(r) = model.channel_map.out_of_range() {
        report.push(
            Rule::FabricRange,
            Severity::Error,
            format!("fabric.ch{}", r.channel),
            format!(
                "range [{:#x}, {:#x}) claims channel {}, but the fabric \
                 has only {}",
                r.base,
                r.end(),
                r.channel,
                model.channel_map.channels()
            ),
            "point every range at an existing channel",
        );
    }
    // An empty topology has no windows at all; DRC-U1 already owns that
    // failure, so only flag dead channels when there is something routed.
    if !model.windows.is_empty() {
        if let Some(c) = model.channel_map.unreachable() {
            report.push(
                Rule::FabricRange,
                Severity::Error,
                format!("fabric.ch{c}"),
                format!("no address range routes to channel {c}: dead hardware"),
                "interleave at least one window onto every channel, or \
                 drop the channel",
            );
        }
    }
}

/// `DRC-Q1`: stall-free queue and FIFO capacities.
fn check_queues(model: &SystemModel, report: &mut DrcReport) {
    if model.queue_depth == 0 {
        report.push(
            Rule::QueueStall,
            Severity::Error,
            "adapter.queues",
            "decoupling-queue depth is 0: no word request can ever issue".into(),
            "queue_depth must be >= 1 (paper default 4)",
        );
    }
    if model.channel_depth == 0 {
        report.push(
            Rule::QueueStall,
            Severity::Error,
            "bus.channels",
            "zero-depth channel FIFOs can never carry a beat".into(),
            "channel FIFOs need depth >= 1",
        );
    } else if model.channel_depth < 2 {
        report.push(
            Rule::QueueStall,
            Severity::Warning,
            "bus.channels",
            format!(
                "channel FIFO depth {} sustains at most one beat per two \
                 cycles (a full-rate register slice needs 2)",
                model.channel_depth
            ),
            "use depth-2 skid buffers for full-rate channels",
        );
    }
    if model.engines.iter().any(|e| e.bus_attached()) {
        if model.plain_txn_slots == 0 {
            report.push(
                Rule::QueueStall,
                Severity::Error,
                "adapter.base",
                "the plain-AXI4 converter has no transaction slots: any BASE \
                 burst would wedge the AR channel forever"
                    .into(),
                "the base converter needs >= 1 outstanding-transaction slot",
            );
        }
        if model.packed_burst_slots == 0 {
            report.push(
                Rule::QueueStall,
                Severity::Error,
                "adapter.packed",
                "the packed converters have no burst slots: any packed burst \
                 would wedge the AR channel forever"
                    .into(),
                "the packed converters need >= 1 concurrent-burst slot",
            );
        }
    }
    if model.max_cycles == 0 {
        report.push(
            Rule::QueueStall,
            Severity::Error,
            "system",
            "max_cycles is 0: the run would be reported as hung at cycle 1".into(),
            "set a positive simulation cycle limit",
        );
    }
}

/// `DRC-C1`: deadlock freedom of the back-pressure wait-for graph.
fn check_credit_cycles(model: &SystemModel, report: &mut DrcReport) {
    if let Some(cycle) = model.graph.conditional_cycle() {
        let path: Vec<&str> = cycle.iter().map(|&n| model.graph.path(n)).collect();
        let first = path.first().copied().unwrap_or("?");
        report.push(
            Rule::CreditCycle,
            Severity::Error,
            first,
            format!(
                "back-pressure cycle with no guaranteed drain: {} -> {first}",
                path.join(" -> ")
            ),
            "break the cycle with an unconditional consumer (e.g. a drain \
             side that pops every cycle) or a credit reserve",
        );
    }
}

/// `DRC-B1`: bank/word/port consistency.
fn check_banks(model: &SystemModel, report: &mut DrcReport) {
    if model.banks == 0 {
        report.push(
            Rule::BankPorts,
            Severity::Error,
            "memory.banks",
            "bank count is 0: no address can be mapped".into(),
            "use >= 1 bank (paper default 17)",
        );
    }
    let wb = model.bank_word_bytes;
    if wb == 0 || !wb.is_power_of_two() || wb > MAX_WORD_BYTES {
        report.push(
            Rule::BankPorts,
            Severity::Error,
            "memory.banks",
            format!(
                "word width of {wb} B is unsupported (must be a power of two \
                 up to {MAX_WORD_BYTES} B)"
            ),
            "use a power-of-two word width within the inline word buffer",
        );
    } else if model.bus_bits.is_multiple_of(8) {
        let bus_bytes = model.bus_bits as usize / 8;
        if !bus_bytes.is_multiple_of(wb) || bus_bytes / wb == 0 {
            report.push(
                Rule::BankPorts,
                Severity::Error,
                "adapter.ports",
                format!(
                    "a {}-bit bus does not decompose into {wb}-B words: the \
                     n-port crossbar would have {} ports",
                    model.bus_bits,
                    bus_bytes / wb
                ),
                "the bus width must be a positive multiple of the memory \
                 word width",
            );
        }
    }
}

/// `DRC-U1`: at least one requestor; every component reachable.
fn check_reachability(model: &SystemModel, report: &mut DrcReport) {
    if model.engines.is_empty() {
        report.push(
            Rule::Unreachable,
            Severity::Error,
            "topology",
            "a topology needs at least one requestor".into(),
            "add a requestor",
        );
        return;
    }
    for n in model.graph.unreachable_from(&model.engine_nodes) {
        report.push(
            Rule::Unreachable,
            Severity::Error,
            model.graph.path(n).to_string(),
            "component is not connected to any requestor".into(),
            "remove the dangling component or wire it into the datapath",
        );
    }
}

/// `DRC-V1`: engine/bus parameter ranges.
fn check_vproc_shape(model: &SystemModel, report: &mut DrcReport) {
    let bits = model.bus_bits;
    if !(32..=1024).contains(&bits) || !bits.is_power_of_two() {
        report.push(
            Rule::VprocShape,
            Severity::Error,
            "bus",
            format!(
                "bus width of {bits} bits is unsupported (power of two \
                 between 32 and 1024)"
            ),
            "the paper pairs 64/128/256-bit buses with 2/4/8 lanes",
        );
    }
    for e in &model.engines {
        let mut bad = |message: String, hint: &str| {
            report.push(Rule::VprocShape, Severity::Error, &e.path, message, hint);
        };
        if e.lanes == 0 {
            bad(
                "engine has 0 lanes".into(),
                "lanes must be >= 1 (paper: bus bits / 32)",
            );
        }
        if e.vlen_bytes < 4 || e.vlen_bytes % 4 != 0 {
            bad(
                format!("VLEN of {} B cannot hold 32-bit elements", e.vlen_bytes),
                "vlen_bytes must be a positive multiple of 4",
            );
        }
        if e.window == 0 {
            bad(
                "sequencer window is 0: no instruction can issue".into(),
                "window must be >= 1 (paper default 16)",
            );
        }
        if e.max_outstanding_loads == 0 {
            bad(
                "max_outstanding_loads is 0: no load can ever issue".into(),
                "allow at least one outstanding load",
            );
        }
        if e.bus_attached() && !(1..=8).contains(&e.configured_id_bits) {
            bad(
                format!(
                    "axi_id_bits of {} outside the engine's supported 1..=8",
                    e.configured_id_bits
                ),
                "AXI IDs are u8: configure 1 to 8 ID bits",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::ismt;

    fn paper_model() -> SystemModel {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let k = ismt::build(16, 1, &cfg.kernel_params());
        extract_single(&cfg, SystemKind::Pack, &k)
    }

    #[test]
    fn paper_single_system_is_clean() {
        let report = check_model(&paper_model());
        assert!(report.is_clean(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
        assert!(report.components >= 4);
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let mut ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len());
        assert_eq!(Rule::IdCapacity.id(), "DRC-I1");
        assert_eq!(Rule::CreditCycle.to_string(), "DRC-C1");
    }

    #[test]
    fn conditional_cycle_detection_ignores_unconditional_edges() {
        let mut g = ComponentGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, EdgeKind::Conditional);
        g.add_edge(b, c, EdgeKind::Conditional);
        g.add_edge(c, a, EdgeKind::Unconditional);
        assert!(
            g.conditional_cycle().is_none(),
            "unconditional edge breaks it"
        );
        g.add_edge(c, a, EdgeKind::Conditional);
        let cycle = g.conditional_cycle().expect("now fully conditional");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn clean_report_pretty_prints_coverage() {
        let report = check_model(&paper_model());
        let text = report.to_string();
        assert!(text.contains("DRC clean"), "{text}");
    }

    #[test]
    fn doctored_model_fires_window_rules() {
        let mut model = paper_model();
        model.windows[0].base = 0x800; // unaligned
        let report = check_model(&model);
        assert!(report.violates(Rule::WindowAlign), "{report}");
        assert!(!report.is_clean());
    }

    // --- one deliberately broken fixture per rule of the catalog ------

    fn pack_pair_topology(cfg: &SystemConfig) -> Topology {
        // A literal, not the builder: several fixtures below doctor the
        // config into states build() would reject, then assert the DRC
        // is what rejects them.
        let p = cfg.kernel_params();
        Topology {
            system: *cfg,
            requestors: vec![
                crate::Requestor::new(SystemKind::Pack, ismt::build(16, 1, &p)),
                crate::Requestor::new(SystemKind::Pack, ismt::build(16, 2, &p)),
            ],
            fabric: FabricSpec::default(),
        }
    }

    #[test]
    fn w2_overlapping_windows_are_an_error() {
        let topo = pack_pair_topology(&SystemConfig::paper(SystemKind::Pack));
        let mut model = extract(&topo);
        model.windows[1].base = model.windows[0].base; // collide
        let report = check_model(&model);
        assert!(report.violates(Rule::WindowOverlap), "{report}");
    }

    #[test]
    fn w3_kernel_escaping_its_window_is_an_error() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let mut k = ismt::build(16, 1, &cfg.kernel_params());
        k.storage_size = 0x40; // far smaller than the image it carries
        let report = check_single(&cfg, SystemKind::Pack, &k);
        assert!(report.violates(Rule::WindowBounds), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn i1_masked_id_space_smaller_than_outstanding_limit_is_an_error() {
        // Behind the mux the run loop narrows every engine to
        // LOCAL_ID_BITS; 64 outstanding loads + 1 store need 65 live IDs
        // against 64 available — the allocator would wrap and alias.
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.vproc.max_outstanding_loads = 1 << LOCAL_ID_BITS;
        let topo = pack_pair_topology(&cfg);
        let report = check_topology(&topo);
        assert!(report.violates(Rule::IdCapacity), "{report}");
        // Solo, the full 8-bit ID space covers the same limit: clean.
        let k = ismt::build(16, 1, &cfg.kernel_params());
        let solo = check_single(&cfg, SystemKind::Pack, &k);
        assert!(solo.is_clean(), "{solo}");
    }

    #[test]
    fn i2_fan_in_outside_the_supported_range_is_an_error() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        for arity in [0, 1, MAX_FAN_IN + 1] {
            let mut topo = pack_pair_topology(&cfg);
            topo.fabric.arity = arity;
            let report = check_topology(&topo);
            assert!(
                report.violates(Rule::ManagerOverflow),
                "arity {arity}: {report}"
            );
        }
        // Five bus-attached requestors — once a flat-mux overflow — now
        // cascade legally through a two-level tree.
        let p = cfg.kernel_params();
        let topo = Topology {
            system: cfg,
            requestors: (0..5)
                .map(|s| crate::Requestor::new(SystemKind::Pack, ismt::build(16, s, &p)))
                .collect(),
            fabric: FabricSpec::default(),
        };
        let report = check_topology(&topo);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn i1_a_tree_too_deep_for_the_id_field_is_an_error() {
        // Doctored: 6 leaf-local bits + 6 levels x 2 prefix bits = 18,
        // past the 16-bit transaction ID. (Reaching this with real
        // requestors needs > 4^5 of them; the model is the fixture.)
        let mut model = paper_model();
        model.fabric_depth = 6;
        model.level_bits = 2;
        let report = check_model(&model);
        assert!(report.violates(Rule::IdCapacity), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn f1_malformed_channel_maps_are_errors() {
        use banked_mem::ChannelRange;
        // Zero channels can route nothing.
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let mut topo = pack_pair_topology(&cfg);
        topo.fabric.channels = 0;
        let report = check_topology(&topo);
        assert!(report.violates(Rule::FabricRange), "{report}");

        // Overlapping ranges double-route an address.
        let mut model = paper_model();
        model.channel_map = ChannelMap::new(
            1,
            vec![
                ChannelRange {
                    base: 0x0,
                    size: 0x2000,
                    channel: 0,
                },
                ChannelRange {
                    base: 0x1000,
                    size: 0x1000,
                    channel: 0,
                },
            ],
        );
        assert!(check_model(&model).violates(Rule::FabricRange));

        // A channel no range routes to is dead hardware.
        let mut model = paper_model();
        model.channel_map = ChannelMap::interleaved(&[(0x0, 0x1000)], 2);
        assert!(check_model(&model).violates(Rule::FabricRange));
    }

    #[test]
    fn q1_zero_capacity_queues_are_errors_and_shallow_channels_warn() {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.queue_depth = 0;
        let k = ismt::build(16, 1, &cfg.kernel_params());
        let report = check_single(&cfg, SystemKind::Pack, &k);
        assert!(report.violates(Rule::QueueStall), "{report}");
        assert!(!report.is_clean());

        let mut model = paper_model();
        model.channel_depth = 1;
        let report = check_model(&model);
        assert!(report.violates(Rule::QueueStall), "{report}");
        assert!(
            report.is_clean(),
            "depth-1 channels are a warning: {report}"
        );

        let mut model = paper_model();
        model.plain_txn_slots = 0;
        model.max_cycles = 0;
        let report = check_model(&model);
        assert_eq!(
            report
                .errors()
                .filter(|d| d.rule == Rule::QueueStall)
                .count(),
            2,
            "{report}"
        );
    }

    #[test]
    fn c1_all_conditional_wait_cycle_is_an_error() {
        let mut model = paper_model();
        let mut g = ComponentGraph::new();
        let a = g.add_node("requestor[0].engine.issue");
        let b = g.add_node("adapter");
        g.add_edge(a, b, EdgeKind::Conditional);
        g.add_edge(b, a, EdgeKind::Conditional);
        model.engine_nodes = vec![a];
        model.graph = g;
        let report = check_model(&model);
        assert!(report.violates(Rule::CreditCycle), "{report}");
        let diag = report
            .errors()
            .find(|d| d.rule == Rule::CreditCycle)
            .expect("cycle diagnostic");
        assert!(diag.message.contains("adapter"), "{diag}");
    }

    #[test]
    fn b1_inconsistent_bank_geometry_is_an_error() {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.banks = 0;
        let k = ismt::build(16, 1, &cfg.kernel_params());
        let report = check_single(&cfg, SystemKind::Pack, &k);
        assert!(report.violates(Rule::BankPorts), "{report}");

        let mut model = paper_model();
        model.bank_word_bytes = 3; // not a power of two
        assert!(check_model(&model).violates(Rule::BankPorts));
    }

    #[test]
    fn u1_empty_topology_and_dangling_components_are_errors() {
        let topo = Topology {
            system: SystemConfig::paper(SystemKind::Pack),
            requestors: Vec::new(),
            fabric: FabricSpec::default(),
        };
        let report = check_topology(&topo);
        assert!(report.violates(Rule::Unreachable), "{report}");

        let mut model = paper_model();
        model.graph.add_node("orphan");
        let report = check_model(&model);
        assert!(report.violates(Rule::Unreachable), "{report}");
        assert!(report.errors().any(|d| d.path == "orphan"));
    }

    #[test]
    fn v1_unsupported_shapes_are_errors() {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.bus_bits = 96; // not a power of two
        let k = ismt::build(16, 1, &cfg.kernel_params());
        let report = check_single(&cfg, SystemKind::Pack, &k);
        assert!(report.violates(Rule::VprocShape), "{report}");

        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.vproc.axi_id_bits = 0;
        let report = check_single(&cfg, SystemKind::Pack, &k);
        assert!(report.violates(Rule::VprocShape), "{report}");
        assert!(report.violates(Rule::IdCapacity), "{report}");
    }

    #[test]
    fn multi_requestor_paper_topologies_are_clean() {
        let cfg = SystemConfig::paper(SystemKind::Pack);
        let topo = pack_pair_topology(&cfg);
        let report = check_topology(&topo);
        assert!(report.is_clean(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
    }
}
