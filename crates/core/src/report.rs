//! Run reports: the measurements every figure is built from.
//!
//! One [`RunReport`] per (kernel × system) point carries the cycles and
//! utilizations of Fig. 3, and the activity counts the energy model of
//! Fig. 4c charges.

use hwmodel::energy::Activity;
use simkit::fault::FaultReport;
use vproc::SystemKind;

/// The outcome of one kernel run on one system.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel name (e.g. `"spmv"`).
    pub kernel: String,
    /// System kind the kernel ran on.
    pub kind: SystemKind,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Total cycles to completion (the paper's performance metric).
    pub cycles: u64,
    /// R-bus utilization: payload bytes over theoretical bytes
    /// (the paper's headline bus metric, including index traffic).
    pub r_util: f64,
    /// R-bus utilization with index-fetch beats counted as idle
    /// (Fig. 3a's "no indices" series).
    pub r_util_no_idx: f64,
    /// Fraction of cycles the R channel carried *any* beat.
    pub r_busy: f64,
    /// R beats whose payload differed from the issue-time snapshot
    /// (nonzero only for kernels with overlapping load/store streams).
    pub data_mismatches: u64,
    /// Cycles this requestor had an AR request ready but the channel was
    /// full — per-requestor bus back-pressure, the counter that makes
    /// shared-bus contention attributable (zero on IDEAL).
    pub ar_stall_cycles: u64,
    /// Cycles a data-ready W beat waited on a full channel (zero on
    /// IDEAL).
    pub w_stall_cycles: u64,
    /// Bank-conflict serialization events in the memory. In a
    /// multi-requestor run conflicts happen at the shared banks and are
    /// not attributable to one requestor; see
    /// [`SystemReport::bank_conflicts`] for the aggregate (this field is
    /// then zero).
    pub bank_conflicts: u64,
    /// Raw activity counts, for energy modeling.
    pub activity: Activity,
    /// Average power under the default [`hwmodel::energy::EnergyModel`],
    /// in mW.
    pub power_mw: f64,
    /// Total energy in µJ.
    pub energy_uj: f64,
    /// Faults injected by an installed [`simkit::fault::FaultSpec`]
    /// (bank and decode errors; zero when no plan is installed).
    pub injected_faults: u64,
    /// Transient-error retries the adapter spent recovering (zero when no
    /// plan is installed or nothing faulted).
    pub fault_retries: u64,
}

impl RunReport {
    /// Speedup of this run relative to a baseline run of the same kernel.
    ///
    /// # Panics
    ///
    /// Panics when comparing runs of different kernels.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.kernel, baseline.kernel,
            "speedups compare the same kernel"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy-efficiency improvement relative to a baseline run.
    ///
    /// # Panics
    ///
    /// Panics when comparing runs of different kernels.
    pub fn efficiency_over(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.kernel, baseline.kernel,
            "efficiency compares the same kernel"
        );
        baseline.energy_uj / self.energy_uj
    }
}

/// Per-requestor completion status of a multi-requestor run.
///
/// A faulting requestor is *isolated*: its abort is recorded here while
/// healthy requestors still finish and verify. Single-requestor runs
/// never produce `Faulted` — they return [`crate::RunError::Axi`]
/// instead.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestorOutcome {
    /// The requestor completed and its functional result verified.
    Completed,
    /// The requestor aborted on an unrecoverable AXI fault; its
    /// [`RunReport`] entry still carries the cycles it ran.
    Faulted(FaultReport),
}

impl RequestorOutcome {
    /// `true` for [`RequestorOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RequestorOutcome::Completed)
    }

    /// The fault report, when this requestor aborted.
    pub fn fault(&self) -> Option<&FaultReport> {
        match self {
            RequestorOutcome::Completed => None,
            RequestorOutcome::Faulted(f) => Some(f),
        }
    }
}

/// Aggregate occupancy of one mux level of the hierarchical fabric,
/// summed across every channel's tree (level 0 is the leaf level; the
/// flat single-mux system reports exactly one level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelOccupancy {
    /// Level index, 0 at the leaves.
    pub level: u32,
    /// Muxes instantiated at this level across all channels.
    pub muxes: u32,
    /// AR requests forwarded downstream through this level.
    pub ar_beats: u64,
    /// R beats routed back upstream through this level.
    pub r_beats: u64,
}

/// The outcome of one system run: per-requestor reports plus the
/// aggregate view of the shared bus and memory.
///
/// Produced by [`crate::run_system`]. A single-requestor topology yields
/// exactly one entry in `requestors`, identical to what
/// [`crate::run_kernel`] returns.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Cycles until the whole system quiesced: every engine done, the mux
    /// drained, the adapter and banks idle.
    pub cycles: u64,
    /// One report per requestor, in topology (manager-port) order. Each
    /// entry's `cycles` is that requestor's own completion cycle, so the
    /// spread across entries measures arbitration fairness.
    pub requestors: Vec<RunReport>,
    /// Fraction of cycles the shared R channel carried any beat,
    /// aggregated over all requestors (0 when no requestor uses the bus).
    pub bus_r_busy: f64,
    /// Aggregate R-channel utilization: summed payload bytes of all
    /// bus-attached requestors over the bus's theoretical capacity.
    pub bus_r_util: f64,
    /// Bank-conflict serialization events in the shared memory.
    pub bank_conflicts: u64,
    /// Word accesses issued to the shared banks.
    pub word_accesses: u64,
    /// Per-requestor completion status, index-aligned with `requestors`.
    /// All `Completed` on fault-free runs.
    pub outcomes: Vec<RequestorOutcome>,
    /// Per-level fabric occupancy, leaf level first. Empty for
    /// single-requestor and all-IDEAL runs (no mux anywhere).
    pub levels: Vec<LevelOccupancy>,
}

impl SystemReport {
    /// The requestor that finished last.
    ///
    /// # Panics
    ///
    /// Panics on an empty report (never produced by `run_system`).
    pub fn slowest(&self) -> &RunReport {
        self.requestors
            .iter()
            .max_by_key(|r| r.cycles)
            .expect("at least one requestor")
    }

    /// The requestor that finished first.
    ///
    /// # Panics
    ///
    /// Panics on an empty report (never produced by `run_system`).
    pub fn fastest(&self) -> &RunReport {
        self.requestors
            .iter()
            .min_by_key(|r| r.cycles)
            .expect("at least one requestor")
    }

    /// `true` when every requestor completed (no isolated faults).
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(RequestorOutcome::is_completed)
    }

    /// The faulted requestors as `(index, report)` pairs.
    pub fn faulted(&self) -> impl Iterator<Item = (usize, &FaultReport)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.fault().map(|f| (i, f)))
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>12} on {:>5} ({:>3}b): {:>9} cycles, R util {:>5.1}% ({:>5.1}% w/o idx), {:>5.0} mW",
            self.kernel,
            self.kind.to_string(),
            self.bus_bits,
            self.cycles,
            100.0 * self.r_util,
            100.0 * self.r_util_no_idx,
            self.power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kernel: &str, cycles: u64, energy: f64) -> RunReport {
        RunReport {
            kernel: kernel.into(),
            kind: SystemKind::Pack,
            bus_bits: 256,
            cycles,
            r_util: 0.5,
            r_util_no_idx: 0.5,
            r_busy: 0.5,
            data_mismatches: 0,
            ar_stall_cycles: 0,
            w_stall_cycles: 0,
            bank_conflicts: 0,
            activity: Activity {
                cycles,
                ..Activity::default()
            },
            power_mw: 200.0,
            energy_uj: energy,
            injected_faults: 0,
            fault_retries: 0,
        }
    }

    #[test]
    fn speedup_and_efficiency_ratios() {
        let base = report("k", 1000, 10.0);
        let pack = report("k", 250, 4.0);
        assert_eq!(pack.speedup_over(&base), 4.0);
        assert_eq!(pack.efficiency_over(&base), 2.5);
    }

    #[test]
    #[should_panic(expected = "same kernel")]
    fn cross_kernel_speedup_rejected() {
        let a = report("a", 10, 1.0);
        let b = report("b", 10, 1.0);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn slowest_and_fastest_requestors() {
        let sys = SystemReport {
            cycles: 1200,
            requestors: vec![report("a", 1000, 1.0), report("b", 1200, 1.0)],
            bus_r_busy: 0.5,
            bus_r_util: 0.4,
            bank_conflicts: 3,
            word_accesses: 10,
            outcomes: vec![RequestorOutcome::Completed; 2],
            levels: vec![LevelOccupancy {
                level: 0,
                muxes: 1,
                ar_beats: 5,
                r_beats: 9,
            }],
        };
        assert_eq!(sys.slowest().kernel, "b");
        assert!(sys.all_completed());
        assert_eq!(sys.faulted().count(), 0);
        assert_eq!(sys.fastest().kernel, "a");
    }

    #[test]
    fn display_is_informative() {
        let s = report("spmv", 1234, 1.0).to_string();
        assert!(s.contains("spmv"));
        assert!(s.contains("1234"));
    }
}
