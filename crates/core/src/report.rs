//! Run reports: the measurements every figure is built from.
//!
//! One [`RunReport`] per (kernel × system) point carries the cycles and
//! utilizations of Fig. 3, and the activity counts the energy model of
//! Fig. 4c charges.

use hwmodel::energy::Activity;
use vproc::SystemKind;

/// The outcome of one kernel run on one system.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel name (e.g. `"spmv"`).
    pub kernel: String,
    /// System kind the kernel ran on.
    pub kind: SystemKind,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Total cycles to completion (the paper's performance metric).
    pub cycles: u64,
    /// R-bus utilization: payload bytes over theoretical bytes
    /// (the paper's headline bus metric, including index traffic).
    pub r_util: f64,
    /// R-bus utilization with index-fetch beats counted as idle
    /// (Fig. 3a's "no indices" series).
    pub r_util_no_idx: f64,
    /// Fraction of cycles the R channel carried *any* beat.
    pub r_busy: f64,
    /// R beats whose payload differed from the issue-time snapshot
    /// (nonzero only for kernels with overlapping load/store streams).
    pub data_mismatches: u64,
    /// Bank-conflict serialization events in the memory.
    pub bank_conflicts: u64,
    /// Raw activity counts, for energy modeling.
    pub activity: Activity,
    /// Average power under the default [`hwmodel::energy::EnergyModel`],
    /// in mW.
    pub power_mw: f64,
    /// Total energy in µJ.
    pub energy_uj: f64,
}

impl RunReport {
    /// Speedup of this run relative to a baseline run of the same kernel.
    ///
    /// # Panics
    ///
    /// Panics when comparing runs of different kernels.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.kernel, baseline.kernel,
            "speedups compare the same kernel"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy-efficiency improvement relative to a baseline run.
    ///
    /// # Panics
    ///
    /// Panics when comparing runs of different kernels.
    pub fn efficiency_over(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.kernel, baseline.kernel,
            "efficiency compares the same kernel"
        );
        baseline.energy_uj / self.energy_uj
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>12} on {:>5} ({:>3}b): {:>9} cycles, R util {:>5.1}% ({:>5.1}% w/o idx), {:>5.0} mW",
            self.kernel,
            self.kind.to_string(),
            self.bus_bits,
            self.cycles,
            100.0 * self.r_util,
            100.0 * self.r_util_no_idx,
            self.power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kernel: &str, cycles: u64, energy: f64) -> RunReport {
        RunReport {
            kernel: kernel.into(),
            kind: SystemKind::Pack,
            bus_bits: 256,
            cycles,
            r_util: 0.5,
            r_util_no_idx: 0.5,
            r_busy: 0.5,
            data_mismatches: 0,
            bank_conflicts: 0,
            activity: Activity {
                cycles,
                ..Activity::default()
            },
            power_mw: 200.0,
            energy_uj: energy,
        }
    }

    #[test]
    fn speedup_and_efficiency_ratios() {
        let base = report("k", 1000, 10.0);
        let pack = report("k", 250, 4.0);
        assert_eq!(pack.speedup_over(&base), 4.0);
        assert_eq!(pack.efficiency_over(&base), 2.5);
    }

    #[test]
    #[should_panic(expected = "same kernel")]
    fn cross_kernel_speedup_rejected() {
        let a = report("a", 10, 1.0);
        let b = report("b", 10, 1.0);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn display_is_informative() {
        let s = report("spmv", 1234, 1.0).to_string();
        assert!(s.contains("spmv"));
        assert!(s.contains("1234"));
    }
}
