//! One-stop imports for driving the simulator.
//!
//! Everything a typical caller needs to build a system and run a kernel
//! — the run entry points (plain and probed), the panic-free topology
//! builder, the fabric shape, and the unified [`RunError`] every one of
//! them returns — in a single glob:
//!
//! ```
//! use axi_pack::prelude::*;
//! use vproc::SystemKind;
//! use workloads::ismt;
//!
//! let cfg = SystemConfig::paper(SystemKind::Pack);
//! let kernel = ismt::build(16, 7, &cfg.kernel_params());
//! let report = run_kernel(&cfg, &kernel).expect("kernel verifies");
//! assert!(report.cycles > 0);
//!
//! let topo = Topology::builder(&cfg)
//!     .requestor(SystemKind::Pack, ismt::build(16, 1, &cfg.kernel_params()))
//!     .build()
//!     .expect("DRC-clean");
//! assert!(run_system(&topo).is_ok());
//! ```

pub use crate::differential::RunProbe;
pub use crate::report::{LevelOccupancy, RequestorOutcome, RunReport, SystemReport};
pub use crate::system::{
    run_kernel, run_kernel_probed, run_system, run_system_probed, FabricSpec, Placement, Requestor,
    RunError, SchedMode, SystemConfig, Topology, TopologyBuilder,
};
