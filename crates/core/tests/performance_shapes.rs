//! Performance-shape assertions at moderate scale: the paper's headline
//! qualitative results must hold in this reproduction.

use axi_pack::requestor::{indirect_read_util, strided_read_util, SweepConfig};
use axi_pack::{run_kernel, SystemConfig};
use axi_proto::{ElemSize, IdxSize};
use vproc::SystemKind;
use workloads::{gemv, ismt, spmv, CsrMatrix, Dataflow};

/// Dense-kernel comparison helper at a paper-relevant size.
fn speedup(build: impl Fn(&workloads::KernelParams) -> workloads::Kernel) -> f64 {
    let base_cfg = SystemConfig::paper(SystemKind::Base);
    let pack_cfg = SystemConfig::paper(SystemKind::Pack);
    let rb = run_kernel(&base_cfg, &build(&base_cfg.kernel_params())).expect("base verifies");
    let rp = run_kernel(&pack_cfg, &build(&pack_cfg.kernel_params())).expect("pack verifies");
    rb.cycles as f64 / rp.cycles as f64
}

#[test]
fn strided_speedups_are_large_and_indirect_speedups_meaningful() {
    // ismt at dim 96: strided loads and stores.
    let s_ismt = speedup(|p| ismt::build(96, 1, p));
    assert!(
        s_ismt > 2.5,
        "ismt pack speedup collapsed: {s_ismt:.2} (paper: 5.4x at dim 256)"
    );
    // spmv with heart1-like rows: indirect gathers.
    let m = CsrMatrix::random(32, 1024, 200.0, 2);
    let s_spmv = speedup(|p| spmv::build(&m, 2, p));
    assert!(
        (1.5..4.0).contains(&s_spmv),
        "spmv pack speedup out of band: {s_spmv:.2} (paper: 2.4x)"
    );
    assert!(
        s_ismt > s_spmv,
        "strided must out-speed indirect: {s_ismt:.2} vs {s_spmv:.2}"
    );
}

#[test]
fn dataflow_crossover_matches_fig3b() {
    // On BASE, row-wise beats column-wise (strided accesses crawl).
    // On PACK, column-wise beats row-wise (reductions dominate instead).
    let n = 96;
    let run = |kind, df| {
        let cfg = SystemConfig::paper(kind);
        let k = gemv::build(n, 3, df, &cfg.kernel_params());
        run_kernel(&cfg, &k).expect("verifies").cycles
    };
    let base_row = run(SystemKind::Base, Dataflow::RowWise);
    let base_col = run(SystemKind::Base, Dataflow::ColWise);
    let pack_row = run(SystemKind::Pack, Dataflow::RowWise);
    let pack_col = run(SystemKind::Pack, Dataflow::ColWise);
    assert!(
        base_row < base_col,
        "BASE must prefer row-wise: {base_row} vs {base_col}"
    );
    assert!(
        pack_col < pack_row,
        "PACK must prefer col-wise: {pack_col} vs {pack_row}"
    );
    // Row-wise performance is (nearly) identical on BASE and PACK: the
    // contiguous path is untouched by the extension.
    let rel = (base_row as f64 - pack_row as f64).abs() / base_row as f64;
    assert!(rel < 0.05, "row-wise must match across systems ({rel:.3})");
}

#[test]
fn wider_buses_amplify_pack_speedup() {
    let mut last = 0.0;
    for bus in [64u32, 128, 256] {
        let base_cfg = SystemConfig::with_bus(SystemKind::Base, bus);
        let pack_cfg = SystemConfig::with_bus(SystemKind::Pack, bus);
        let kb = ismt::build(64, 4, &base_cfg.kernel_params());
        let kp = ismt::build(64, 4, &pack_cfg.kernel_params());
        let s = run_kernel(&base_cfg, &kb).expect("base").cycles as f64
            / run_kernel(&pack_cfg, &kp).expect("pack").cycles as f64;
        assert!(
            s > last,
            "{bus}-bit speedup {s:.2} must exceed the narrower bus ({last:.2})"
        );
        last = s;
    }
    assert!(last > 2.5, "256-bit ismt speedup too small: {last:.2}");
}

#[test]
fn index_size_ratio_bound_shapes_indirect_utilization() {
    // Paper Fig. 5a: the ideal utilization is r/(r+1) for an
    // element:index ratio of r. Measured on conflict-free memory.
    let cfg = SweepConfig {
        conflict_free: true,
        bursts: 2,
        ..SweepConfig::default()
    };
    let cases = [
        (ElemSize::B4, IdxSize::B4, 0.50),
        (ElemSize::B4, IdxSize::B2, 0.67),
        (ElemSize::B4, IdxSize::B1, 0.80),
        (ElemSize::B8, IdxSize::B4, 0.67),
    ];
    for (elem, idx, bound) in cases {
        let u = indirect_read_util(&cfg, elem, idx, 5);
        assert!(
            u <= bound + 0.02,
            "{elem}/{idx}: util {u:.2} exceeds the r/(r+1) bound {bound:.2}"
        );
        assert!(
            u >= bound - 0.12,
            "{elem}/{idx}: util {u:.2} far below its bound {bound:.2}"
        );
    }
}

#[test]
fn prime_banks_beat_power_of_two_on_strided_averages() {
    // A handful of strides; primes must win on average (Fig. 5b).
    let avg = |banks: usize| {
        let cfg = SweepConfig {
            banks,
            bursts: 1,
            ..SweepConfig::default()
        };
        let strides = [1, 2, 4, 8, 16, 3, 5, 12];
        strides
            .iter()
            .map(|&s| strided_read_util(&cfg, ElemSize::B4, s))
            .sum::<f64>()
            / strides.len() as f64
    };
    let prime17 = avg(17);
    let pow16 = avg(16);
    assert!(
        prime17 > pow16 + 0.1,
        "17 banks must clearly beat 16: {prime17:.2} vs {pow16:.2}"
    );
}

#[test]
fn energy_efficiency_improves_at_scale() {
    let base_cfg = SystemConfig::paper(SystemKind::Base);
    let pack_cfg = SystemConfig::paper(SystemKind::Pack);
    let kb = ismt::build(96, 1, &base_cfg.kernel_params());
    let kp = ismt::build(96, 1, &pack_cfg.kernel_params());
    let rb = run_kernel(&base_cfg, &kb).expect("base");
    let rp = run_kernel(&pack_cfg, &kp).expect("pack");
    let imp = rp.efficiency_over(&rb);
    assert!(
        imp > 1.8,
        "ismt energy efficiency must improve substantially: {imp:.2} (paper: 5.3x)"
    );
    // Power rises only moderately (paper: at most +31%).
    assert!(
        rp.power_mw < 1.8 * rb.power_mw,
        "pack power out of band: {} vs {}",
        rp.power_mw,
        rb.power_mw
    );
}
