//! Tier-1 replay of the differential-fuzzing regression corpus.
//!
//! Every corpus entry (seeds that ever exposed a bug, plus a spread of
//! generator shapes) runs the *full* differential check on every `cargo
//! test`: cross-system bit-for-bit agreement with the reference model,
//! protocol monitors, metamorphic invariants, topology replay, and the
//! burst-level width fuzz. `figures fuzz --corpus` replays the same list
//! from the CLI.

use axi_pack::differential::{check_seed, replay_corpus, SEED_CORPUS};

#[test]
fn corpus_replays_clean() {
    let n = replay_corpus().unwrap_or_else(|failures| {
        panic!("corpus cases failed: {failures:#?}");
    });
    assert_eq!(n, SEED_CORPUS.len());
    assert!(n >= 10, "corpus shrank suspiciously");
}

#[test]
fn corpus_is_deterministic() {
    // A corpus entry must expand to the exact same work on every replay —
    // the property that makes a checked-in seed a regression test at all.
    for case in SEED_CORPUS.iter().take(3) {
        let a = check_seed(case.seed, &case.cfg).expect("passes");
        let b = check_seed(case.seed, &case.cfg).expect("passes");
        assert_eq!(a.checks, b.checks, "seed {}", case.seed);
        assert_eq!(a.cycles, b.cycles, "seed {}", case.seed);
        assert_eq!(a.summary, b.summary, "seed {}", case.seed);
    }
}

#[test]
fn corpus_covers_the_known_bug_seeds() {
    // Seed 1 found the 64-bit-index converter hang; it must stay pinned.
    assert!(
        SEED_CORPUS.iter().any(|c| c.seed == 1),
        "seed 1 (indirect wide-index hang) must remain in the corpus"
    );
    // The CI fuzz-smoke window is seeds 0..64; its endpoints stay pinned
    // so a corpus replay always intersects the PR gate's window.
    assert!(SEED_CORPUS.iter().any(|c| c.seed == 0));
    assert!(SEED_CORPUS.iter().any(|c| c.seed == 63));
}
