//! Fabric-era compatibility pins and the hierarchical-fabric oracle.
//!
//! The hierarchical fabric must not move a single bit of the flat-era
//! results: 1-requestor runs and flat shared-bus topologies (up to four
//! bus-attached requestors, one channel, no row buffer) keep the
//! historical simulation loop. The golden numbers below were captured
//! by running the same probe on the last pre-fabric commit and on this
//! tree and diffing the output — they pin that equivalence against
//! future drift.
//!
//! The second half replays the fuzz regression corpus over an
//! 8-requestor arity-2 mux tree with two interleaved, row-buffered
//! memory channels — the deep-fabric path — and demands the event-driven
//! and lockstep schedulers agree on every observable, the same oracle
//! the flat corpus replay enforces.

use axi_pack::differential::SEED_CORPUS;
use axi_pack::{
    run_kernel, run_system, run_system_probed, FabricSpec, Requestor, RunProbe, SchedMode,
    SystemConfig, Topology,
};
use vproc::SystemKind;
use workloads::{gemv, synth, Dataflow};

#[test]
fn flat_reports_are_pinned_byte_for_byte() {
    // Captured from the pre-fabric tree (commit before the fabric
    // landed): pack/gemv solo and the 4x pack/gemv shared bus. Floats
    // are pinned by bit pattern — parity means *byte*-identical.
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let p = cfg.kernel_params();
    let solo = run_kernel(&cfg, &gemv::build(24, 2, Dataflow::ColWise, &p)).expect("verifies");
    assert_eq!(solo.cycles, 146);
    assert_eq!(solo.r_util.to_bits(), 0x3fdf8fc7e3f1f8fc);
    assert_eq!(solo.energy_uj.to_bits(), 0x3f9ec2ce4649906c);

    let reqs: Vec<Requestor> = (0..4)
        .map(|i| {
            Requestor::new(
                SystemKind::Pack,
                gemv::build(24, 3 + i as u64, Dataflow::ColWise, &p),
            )
        })
        .collect();
    let topo = Topology::builder(&cfg)
        .requestors(reqs)
        .build()
        .expect("DRC-clean");
    let r = run_system(&topo).expect("verifies");
    assert_eq!(r.cycles, 325);
    assert_eq!(r.bus_r_busy.to_bits(), 0x3fec5b5f4f8e9283);
    assert_eq!(r.word_accesses, 2400);
    let per_req: Vec<u64> = r.requestors.iter().map(|q| q.cycles).collect();
    assert_eq!(per_req, [313, 319, 322, 325]);
    // The flat shared bus is a one-level fabric: its single mux shows up
    // in the (new, additive) per-level occupancy without disturbing any
    // of the pinned legacy fields above.
    assert_eq!(r.levels.len(), 1, "flat topologies have exactly one level");
    assert_eq!(r.levels[0].muxes, 1);
    assert!(r.levels[0].r_beats > 0, "the mux carried every response");
}

#[test]
fn an_explicit_flat_fabric_is_the_default_fabric() {
    // Spelling out FabricSpec::flat() must select the same (historical)
    // loop as leaving the fabric unset — not a near-identical variant.
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let p = cfg.kernel_params();
    let build = |fabric: Option<FabricSpec>| {
        let mut b = Topology::builder(&cfg);
        for i in 0..2 {
            b = b.requestor(
                SystemKind::Pack,
                gemv::build(24, 3 + i, Dataflow::ColWise, &p),
            );
        }
        if let Some(f) = fabric {
            b = b.fabric(f);
        }
        run_system(&b.build().expect("DRC-clean")).expect("verifies")
    };
    let implicit = build(None);
    let explicit = build(Some(FabricSpec::flat()));
    assert_eq!(implicit.cycles, explicit.cycles);
    assert_eq!(implicit.bus_r_busy.to_bits(), explicit.bus_r_busy.to_bits());
    assert_eq!(implicit.word_accesses, explicit.word_accesses);
    assert_eq!(implicit.levels, explicit.levels);
}

#[test]
fn corpus_replays_on_an_eight_requestor_tree_across_modes() {
    // Every corpus seed, fanned out to 8 requestors (its PACK and BASE
    // synth kernels alternating across disjoint windows) on an arity-2
    // tree over two row-buffered channels. Event and lockstep must agree
    // bit-for-bit on cycles, the shared store, and every per-requestor
    // and per-level counter — run_fabric under the same oracle as the
    // flat loop.
    let fabric = FabricSpec::tree(2).with_channels(2).with_row_buffer(8, 6);
    let mk_sys = |sched: SchedMode| {
        let mut sys = SystemConfig::with_bus(SystemKind::Pack, 128);
        sys.max_cycles = 40_000_000;
        sys.sched = sched;
        sys
    };
    let max_vl = mk_sys(SchedMode::Event).kernel_params().max_vl;
    let mut corpus_r_beats = 0u64;
    for case in SEED_CORPUS {
        let kinds = [SystemKind::Pack, SystemKind::Base];
        let built = synth::build_kinds(case.seed, &case.cfg, max_vl, &kinds);
        let requestors: Vec<Requestor> = (0..8)
            .map(|i| {
                let (kind, sk) = (kinds[i % 2], &built[i % 2]);
                Requestor::new(kind, sk.kernel.clone())
            })
            .collect();
        let run = |sched: SchedMode| {
            let topo = Topology::builder(&mk_sys(sched))
                .requestors(requestors.clone())
                .fabric(fabric)
                .build()
                .unwrap_or_else(|e| panic!("seed {}: 8-way tree not DRC-clean: {e}", case.seed));
            let mut probe = RunProbe::default();
            let report = run_system_probed(&topo, &mut probe)
                .unwrap_or_else(|e| panic!("seed {} ({sched}): tree run failed: {e}", case.seed));
            (report, probe)
        };
        let (ev, ev_probe) = run(SchedMode::Event);
        let (lk, lk_probe) = run(SchedMode::Lockstep);
        let ctx = format!("seed {} 8-way tree", case.seed);
        assert_eq!(
            lk_probe.sched.skip_spans, 0,
            "{ctx}: lockstep mode must never fast-forward"
        );
        assert_eq!(ev.cycles, lk.cycles, "{ctx}: completion cycles");
        assert_eq!(
            ev_probe.storage_digest, lk_probe.storage_digest,
            "{ctx}: shared store differs between modes"
        );
        assert_eq!(
            ev.bus_r_busy.to_bits(),
            lk.bus_r_busy.to_bits(),
            "{ctx}: bus_r_busy"
        );
        assert_eq!(
            ev.bank_conflicts, lk.bank_conflicts,
            "{ctx}: bank_conflicts"
        );
        assert_eq!(ev.word_accesses, lk.word_accesses, "{ctx}: word_accesses");
        assert_eq!(ev.levels, lk.levels, "{ctx}: per-level occupancy");
        // 4 bus-attached members per channel through arity-2 muxes is a
        // 2-level cascade; the report must expose both levels. (A
        // write-only corpus kernel legitimately moves zero AR/R beats,
        // so response traffic is asserted corpus-wide below.)
        assert_eq!(ev.levels.len(), 2, "{ctx}: tree depth in the report");
        let muxes: Vec<u32> = ev.levels.iter().map(|l| l.muxes).collect();
        assert_eq!(muxes, [4, 2], "{ctx}: mux population per level");
        corpus_r_beats += ev.levels.iter().map(|l| l.r_beats).sum::<u64>();
        for (r, (e, l)) in ev.requestors.iter().zip(&lk.requestors).enumerate() {
            assert_eq!(e.cycles, l.cycles, "{ctx}, requestor {r}: cycles");
            assert_eq!(
                e.energy_uj.to_bits(),
                l.energy_uj.to_bits(),
                "{ctx}, requestor {r}: energy"
            );
            assert_eq!(
                e.bank_conflicts, l.bank_conflicts,
                "{ctx}, requestor {r}: bank_conflicts"
            );
        }
        // One probe monitor per channel watched the root links.
        assert_eq!(ev_probe.roots.len(), 2, "{ctx}: root monitors");
    }
    assert!(
        corpus_r_beats > 0,
        "no corpus seed moved a response beat through the trees — the \
         level counters are not wired"
    );
}
