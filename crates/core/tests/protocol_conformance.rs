//! Protocol conformance: the AXI-Pack controller's bus behaviour upholds
//! AXI4's burst invariants, checked by the axi-proto Monitor, and the
//! user-field encoding round-trips for arbitrary parameters.

use axi_proto::checker::Monitor;
use axi_proto::{element_addresses, ArBeat, AxiChannels, BusConfig, ElemSize, IdxSize, PackMode};
use banked_mem::{BankConfig, Storage};
use pack_ctrl::{Adapter, CtrlConfig};
use proptest::prelude::*;

fn system() -> (Adapter, AxiChannels, Monitor) {
    let bus = BusConfig::new(256);
    let mut storage = Storage::new(1 << 18);
    for w in 0..(1 << 16) {
        storage.write_u32(4 * w, w as u32);
    }
    storage.write_u32_slice(
        0x10000,
        &(0..2048u32).map(|i| (i * 97) % 4096).collect::<Vec<_>>(),
    );
    let cfg = CtrlConfig::new(bus, BankConfig::default(), 4);
    (
        Adapter::new(cfg, storage),
        AxiChannels::new(),
        Monitor::new(bus),
    )
}

/// Runs a request list through the adapter under the protocol monitor.
fn run_monitored(requests: Vec<ArBeat>) -> Monitor {
    let (mut adapter, mut ch, mut monitor) = system();
    let mut pending = requests;
    pending.reverse();
    for _ in 0..200_000 {
        if ch.ar.can_push() {
            if let Some(ar) = pending.pop() {
                monitor.observe_ar(&ar);
                ch.ar.push(ar);
            }
        }
        if let Some(r) = ch.r.pop() {
            monitor.observe_r(&r);
        }
        adapter.tick(&mut ch);
        adapter.end_cycle();
        ch.end_cycle();
        if pending.is_empty() && adapter.quiescent() && ch.is_empty() {
            return monitor;
        }
    }
    panic!("monitored run did not quiesce");
}

#[test]
fn mixed_burst_traffic_is_protocol_clean() {
    let bus = BusConfig::new(256);
    let reqs = vec![
        ArBeat::incr(0, 0x0, 8, &bus),
        ArBeat::packed_strided(1, 0x40, 64, ElemSize::B4, 3, &bus),
        ArBeat::narrow(2, 0x1234 & !3, ElemSize::B4),
        ArBeat::packed_indirect(3, 0x10000, 48, ElemSize::B4, IdxSize::B4, 0x0, &bus),
        ArBeat::packed_strided(4, 0x2000, 17, ElemSize::B8, -2i32, &bus),
    ];
    let monitor = run_monitored(reqs);
    assert!(
        monitor.violations().is_empty(),
        "protocol violations: {:?}",
        monitor.violations()
    );
    assert!(monitor.quiescent());
    // 8 incr + 8 strided (64 B4 elems) + 1 narrow + 6 indirect (48 elems)
    // + 5 strided (17 B8 elems at 4 per beat).
    assert_eq!(monitor.r_beats(), 8 + 8 + 1 + 6 + 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_mode_encoding_roundtrips(stride in i32::MIN..i32::MAX) {
        let m = PackMode::Strided { stride };
        prop_assert_eq!(PackMode::decode(m.encode()), Some(m));
    }

    #[test]
    fn indirect_encoding_roundtrips(base in 0u64..(1 << 48), idx in 0usize..4) {
        let m = PackMode::Indirect {
            idx_size: IdxSize::ALL[idx],
            elem_base: base,
        };
        prop_assert_eq!(PackMode::decode(m.encode()), Some(m));
    }

    #[test]
    fn strided_bursts_stay_protocol_clean(
        n_elems in 1u32..256,
        stride in 0i32..32,
        base_words in 0u64..256,
    ) {
        let bus = BusConfig::new(256);
        let ar = ArBeat::packed_strided(1, base_words * 4, n_elems, ElemSize::B4, stride, &bus);
        let expected_beats = ar.beats() as u64;
        let monitor = run_monitored(vec![ar]);
        prop_assert!(monitor.violations().is_empty(), "{:?}", monitor.violations());
        prop_assert_eq!(monitor.r_beats(), expected_beats);
    }

    #[test]
    fn strided_expansion_matches_converter_order(
        n_elems in 1u32..64,
        stride in 1i32..16,
    ) {
        // The reference expansion and the wire protocol agree on which
        // elements a burst names.
        let bus = BusConfig::new(256);
        let ar = ArBeat::packed_strided(0, 0x400, n_elems, ElemSize::B4, stride, &bus);
        let addrs = element_addresses(&ar, None, &bus);
        prop_assert_eq!(addrs.len() as u32, n_elems);
        for (k, a) in addrs.iter().enumerate() {
            prop_assert_eq!(*a, 0x400 + (k as u64) * (stride as u64) * 4);
        }
    }
}

#[test]
fn two_requestors_share_one_packed_endpoint() {
    // The paper's multi-requestor claim: two managers — one issuing
    // strided bursts, one issuing indirect bursts — share a single
    // AXI-Pack controller through an ID-remapping mux, and both get
    // exactly their own data back.
    use axi_proto::AxiMux;
    let bus = BusConfig::new(256);
    let (mut adapter, mut down, _) = system();
    let mut mux = AxiMux::new(2);
    let mut mgrs = vec![AxiChannels::new(), AxiChannels::new()];
    // Manager 0: every 3rd word from 0x400. Manager 1: gather through the
    // index array at 0x10000.
    let mut pending0 = vec![ArBeat::packed_strided(1, 0x400, 32, ElemSize::B4, 3, &bus)];
    let mut pending1 = vec![ArBeat::packed_indirect(
        2,
        0x10000,
        32,
        ElemSize::B4,
        IdxSize::B4,
        0x0,
        &bus,
    )];
    let mut got: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..2000 {
        if mgrs[0].ar.can_push() {
            if let Some(ar) = pending0.pop() {
                mgrs[0].ar.push(ar);
            }
        }
        if mgrs[1].ar.can_push() {
            if let Some(ar) = pending1.pop() {
                mgrs[1].ar.push(ar);
            }
        }
        for (p, m) in mgrs.iter_mut().enumerate() {
            if let Some(r) = m.r.pop() {
                for k in 0..8 {
                    got[p].push(u32::from_le_bytes(
                        r.data[4 * k..4 * k + 4].try_into().expect("4 bytes"),
                    ));
                }
            }
        }
        mux.tick(&mut mgrs, &mut down);
        adapter.tick(&mut down);
        adapter.end_cycle();
        down.end_cycle();
        for m in mgrs.iter_mut() {
            m.end_cycle();
        }
        if got[0].len() == 32 && got[1].len() == 32 {
            break;
        }
    }
    // Manager 0 sees words 0x100 + 3k (the image stores word index w at
    // word address 4w).
    for (k, v) in got[0].iter().enumerate() {
        assert_eq!(*v, 0x100 + 3 * k as u32, "manager 0 element {k}");
    }
    // Manager 1 sees the gathered values named by the planted indices.
    for (k, v) in got[1].iter().enumerate() {
        assert_eq!(*v, (k as u32 * 97) % 4096, "manager 1 element {k}");
    }
    assert!(mux.quiescent());
}
