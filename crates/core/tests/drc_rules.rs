//! Deliberately-broken fixtures for the fabric-era DRC rules.
//!
//! Each test assembles one topology that violates exactly one of the
//! rules the hierarchical fabric generalized (DRC-I1 per-level ID
//! budgets, DRC-I2 per-level fan-in) or introduced (DRC-F1 channel
//! ranges), and pins the typed diagnostic — rule, severity, and the
//! component path the report points at. The clean control at the end
//! pins the flip side: a deep tree that *fits* the ID budget must pass.
//!
//! Broken shapes that [`TopologyBuilder`] can express are driven through
//! `build()` so the test doubles as proof the builder returns typed
//! errors instead of panicking; shapes the builder cannot reach (it
//! never emits an out-of-range arity on its own) use raw `Topology`
//! literals against [`check_topology`].

use axi_pack::drc::{check_topology, Rule, Severity};
use axi_pack::{FabricSpec, Requestor, SystemConfig, Topology};
use vproc::SystemKind;
use workloads::ismt;

fn pack_cfg() -> SystemConfig {
    SystemConfig::paper(SystemKind::Pack)
}

/// `count` clones of one tiny PACK kernel — rule checks are static, so
/// identical kernels are as good as distinct ones and far cheaper.
fn clones(cfg: &SystemConfig, count: usize) -> Vec<Requestor> {
    let kernel = ismt::build(16, 1, &cfg.kernel_params());
    (0..count)
        .map(|_| Requestor::new(SystemKind::Pack, kernel.clone()))
        .collect()
}

#[test]
fn i2_an_arity_the_mux_cannot_cascade_is_a_typed_error() {
    // The builder refuses arity 1 up front; a hand-rolled literal must
    // hit the same wall inside the rule suite instead of panicking in
    // AxiMux::cascade at run time.
    let cfg = pack_cfg();
    let topo = Topology {
        system: cfg,
        requestors: clones(&cfg, 2),
        fabric: FabricSpec {
            arity: 1,
            ..FabricSpec::flat()
        },
    };
    let report = check_topology(&topo);
    let diag = report
        .errors()
        .find(|d| d.rule == Rule::ManagerOverflow)
        .expect("arity 1 must violate DRC-I2");
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.path, "fabric");
    assert_eq!(diag.rule.id(), "DRC-I2");
}

#[test]
fn i1_a_tree_deeper_than_the_id_field_is_a_typed_error() {
    // 520 requestors through arity-8 muxes need 4 levels; 4 levels x 3
    // prefix bits on top of the 6-bit local IDs is 18 bits — two more
    // than the 16-bit AXI ID field carries. The builder must hand back
    // the budget arithmetic as a DRC-I1 report, not truncate IDs.
    let cfg = pack_cfg();
    let err = Topology::builder(&cfg)
        .requestors(clones(&cfg, 520))
        .fabric(FabricSpec::tree(8))
        .build()
        .expect_err("an over-deep tree must be rejected");
    let report = err.drc_report().expect("typed DRC report, not a string");
    let diag = report
        .errors()
        .find(|d| d.rule == Rule::IdCapacity)
        .expect("ID budget overflow must violate DRC-I1");
    assert_eq!(diag.path, "fabric");
    assert!(
        diag.message.contains("18") && diag.message.contains("16"),
        "the diagnostic must show the budget arithmetic: {}",
        diag.message
    );
}

#[test]
fn f1_zero_memory_channels_is_a_typed_error() {
    let cfg = pack_cfg();
    let err = Topology::builder(&cfg)
        .requestors(clones(&cfg, 2))
        .channels(0)
        .build()
        .expect_err("a fabric with no channels routes nothing");
    let report = err.drc_report().expect("typed DRC report");
    assert!(
        report.errors().any(|d| d.rule == Rule::FabricRange),
        "zero channels must violate DRC-F1: {report}"
    );
}

#[test]
fn f1_a_channel_no_window_interleaves_onto_is_a_typed_error() {
    // Two windows striped across three channels leave channel 2 with no
    // address range at all — dead hardware the DRC must name.
    let cfg = pack_cfg();
    let err = Topology::builder(&cfg)
        .requestors(clones(&cfg, 2))
        .channels(3)
        .build()
        .expect_err("a dead channel must be rejected");
    let report = err.drc_report().expect("typed DRC report");
    let diag = report
        .errors()
        .find(|d| d.rule == Rule::FabricRange)
        .expect("dead channel must violate DRC-F1");
    assert_eq!(diag.path, "fabric.ch2", "the report names the dead channel");
}

#[test]
fn a_deep_tree_inside_the_id_budget_is_clean() {
    // The control for I1/I2: 32 requestors through arity-4 muxes (3
    // levels x 2 bits + 6 local bits = 12 <= 16) on two interleaved
    // channels passes the whole suite with zero diagnostics.
    let cfg = pack_cfg();
    let topo = Topology::builder(&cfg)
        .requestors(clones(&cfg, 32))
        .fabric(FabricSpec::tree(4).with_channels(2))
        .build()
        .expect("a within-budget tree is DRC-clean");
    let report = check_topology(&topo);
    assert!(
        report.is_clean() && report.diagnostics.is_empty(),
        "{report}"
    );
}
