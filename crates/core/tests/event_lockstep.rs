//! Tier-1 event-vs-lockstep oracle: replays the full fuzz corpus in both
//! scheduler modes and demands bit-identical results.
//!
//! The event-driven scheduler ([`axi_pack::SchedMode::Event`]) may
//! fast-forward across provably idle spans, but nothing observable is
//! allowed to change: completion cycles, the final backing store, every
//! report counter and every utilization ratio must match a lockstep run
//! exactly. This suite replays every [`SEED_CORPUS`] entry solo on all
//! three system kinds and as a 2-requestor shared-bus topology, once per
//! mode, and compares everything.

use axi_pack::differential::SEED_CORPUS;
use axi_pack::{
    run_kernel_probed, run_system_probed, Requestor, RunProbe, RunReport, SchedMode, SystemConfig,
    Topology,
};
use vproc::SystemKind;
use workloads::synth;

const KINDS: [SystemKind; 3] = [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal];

fn system(kind: SystemKind, sched: SchedMode) -> SystemConfig {
    let mut sys = SystemConfig::with_bus(kind, 128);
    sys.max_cycles = 20_000_000;
    sys.sched = sched;
    sys
}

/// Panics on the first field where the two reports differ. Floats are
/// compared by bit pattern: the oracle demands exactness, not tolerance.
fn assert_reports_identical(ev: &RunReport, lk: &RunReport, ctx: &str) {
    assert_eq!(ev.cycles, lk.cycles, "{ctx}: cycles");
    assert_eq!(ev.r_util.to_bits(), lk.r_util.to_bits(), "{ctx}: r_util");
    assert_eq!(
        ev.r_util_no_idx.to_bits(),
        lk.r_util_no_idx.to_bits(),
        "{ctx}: r_util_no_idx"
    );
    assert_eq!(ev.r_busy.to_bits(), lk.r_busy.to_bits(), "{ctx}: r_busy");
    assert_eq!(
        ev.data_mismatches, lk.data_mismatches,
        "{ctx}: data_mismatches"
    );
    assert_eq!(
        ev.ar_stall_cycles, lk.ar_stall_cycles,
        "{ctx}: ar_stall_cycles"
    );
    assert_eq!(
        ev.w_stall_cycles, lk.w_stall_cycles,
        "{ctx}: w_stall_cycles"
    );
    assert_eq!(
        ev.bank_conflicts, lk.bank_conflicts,
        "{ctx}: bank_conflicts"
    );
    assert_eq!(ev.activity, lk.activity, "{ctx}: activity");
    assert_eq!(
        ev.power_mw.to_bits(),
        lk.power_mw.to_bits(),
        "{ctx}: power_mw"
    );
    assert_eq!(
        ev.energy_uj.to_bits(),
        lk.energy_uj.to_bits(),
        "{ctx}: energy_uj"
    );
}

#[test]
fn corpus_solo_runs_agree_across_modes() {
    let max_vl = system(SystemKind::Pack, SchedMode::Event)
        .kernel_params()
        .max_vl;
    let mut skipped = 0u64;
    for case in SEED_CORPUS {
        let built = synth::build_kinds(case.seed, &case.cfg, max_vl, &KINDS);
        for (kind, sk) in KINDS.iter().zip(built) {
            let ctx = format!("seed {} on {kind}", case.seed);
            let mut ev_probe = RunProbe::default();
            let ev = run_kernel_probed(&system(*kind, SchedMode::Event), &sk.kernel, &mut ev_probe)
                .unwrap_or_else(|e| panic!("{ctx}: event run failed: {e}"));
            let mut lk_probe = RunProbe::default();
            let lk = run_kernel_probed(
                &system(*kind, SchedMode::Lockstep),
                &sk.kernel,
                &mut lk_probe,
            )
            .unwrap_or_else(|e| panic!("{ctx}: lockstep run failed: {e}"));
            assert_eq!(
                lk_probe.sched.skip_spans, 0,
                "{ctx}: lockstep mode must never fast-forward"
            );
            assert_eq!(
                ev_probe.storage_digest, lk_probe.storage_digest,
                "{ctx}: final memory differs between modes"
            );
            assert_reports_identical(&ev, &lk, &ctx);
            skipped += ev_probe.sched.skipped_cycles;
        }
    }
    assert!(
        skipped > 0,
        "event mode never fast-forwarded across the whole corpus — the scheduler is not engaged"
    );
}

#[test]
fn corpus_topologies_agree_across_modes() {
    let max_vl = system(SystemKind::Pack, SchedMode::Event)
        .kernel_params()
        .max_vl;
    for case in SEED_CORPUS {
        let kinds = [SystemKind::Pack, SystemKind::Base];
        let built = synth::build_kinds(case.seed, &case.cfg, max_vl, &kinds);
        let requestors: Vec<Requestor> = kinds
            .iter()
            .zip(&built)
            .map(|(&kind, sk)| Requestor::new(kind, sk.kernel.clone()))
            .collect();
        let run = |sched: SchedMode| {
            let topo = Topology::builder(&system(SystemKind::Pack, sched))
                .requestors(requestors.clone())
                .build()
                .unwrap_or_else(|e| panic!("seed {}: topology not DRC-clean: {e}", case.seed));
            let mut probe = RunProbe::default();
            let report = run_system_probed(&topo, &mut probe)
                .unwrap_or_else(|e| panic!("seed {} ({sched}): topology failed: {e}", case.seed));
            (report, probe)
        };
        let (ev, ev_probe) = run(SchedMode::Event);
        let (lk, lk_probe) = run(SchedMode::Lockstep);
        let ctx = format!("seed {} shared-bus", case.seed);
        assert_eq!(
            lk_probe.sched.skip_spans, 0,
            "{ctx}: lockstep mode must never fast-forward"
        );
        assert_eq!(ev.cycles, lk.cycles, "{ctx}: completion cycles");
        assert_eq!(
            ev_probe.storage_digest, lk_probe.storage_digest,
            "{ctx}: shared store differs between modes"
        );
        assert_eq!(
            ev.bus_r_busy.to_bits(),
            lk.bus_r_busy.to_bits(),
            "{ctx}: bus_r_busy"
        );
        assert_eq!(
            ev.bus_r_util.to_bits(),
            lk.bus_r_util.to_bits(),
            "{ctx}: bus_r_util"
        );
        assert_eq!(
            ev.bank_conflicts, lk.bank_conflicts,
            "{ctx}: bank_conflicts"
        );
        assert_eq!(ev.word_accesses, lk.word_accesses, "{ctx}: word_accesses");
        for (r, (e, l)) in ev.requestors.iter().zip(&lk.requestors).enumerate() {
            assert_reports_identical(e, l, &format!("{ctx}, requestor {r}"));
        }
    }
}
