//! Pins the event scheduler's idle-span fast-forward behavior.
//!
//! Two anchors: a sparse kernel (one long scalar stall) must skip exactly
//! the predicted number of cycles in one span, and a fully-saturated
//! kernel (back-to-back loads keeping the bus busy) must skip nothing —
//! event mode degenerates to exact lockstep when there is no idle time.

use axi_pack::{run_kernel_probed, RunProbe, SchedMode, SystemConfig};
use std::sync::Arc;
use vproc::{Program, ProgramBuilder, SystemKind};
use workloads::Kernel;

fn kernel(name: &str, program: Program) -> Kernel {
    Kernel {
        name: name.into(),
        image: Vec::new(),
        storage_size: 0x1000,
        program: Arc::new(program),
        expected: Vec::new(),
        read_only_streams: true,
        useful_bytes: 0,
    }
}

fn run(kind: SystemKind, sched: SchedMode, k: &Kernel) -> (u64, RunProbe) {
    let mut sys = SystemConfig::with_bus(kind, 256);
    sys.sched = sched;
    let mut probe = RunProbe::default();
    let report = run_kernel_probed(&sys, k, &mut probe).expect("kernel runs clean");
    (report.cycles, probe)
}

#[test]
fn sparse_kernel_skips_the_predicted_span() {
    // scalar(101): one issue tick, then a 100-cycle stall the scheduler
    // can prove idle — a single span of exactly 100 skipped cycles, on
    // both the AXI and the IDEAL run loop.
    let k = kernel("sparse", ProgramBuilder::new().scalar(101).build());
    for kind in [SystemKind::Pack, SystemKind::Base, SystemKind::Ideal] {
        let (ev_cycles, ev) = run(kind, SchedMode::Event, &k);
        let (lk_cycles, lk) = run(kind, SchedMode::Lockstep, &k);
        assert_eq!(ev_cycles, lk_cycles, "{kind}: modes disagree on cycles");
        assert_eq!(ev_cycles, 101, "{kind}: issue tick + 100 stall cycles");
        assert_eq!(ev.sched.skipped_cycles, 100, "{kind}: skipped cycles");
        assert_eq!(ev.sched.skip_spans, 1, "{kind}: one contiguous span");
        assert_eq!(lk.sched.skip_spans, 0, "{kind}: lockstep never skips");
    }
}

#[test]
fn interleaved_stalls_skip_every_gap() {
    // Alternating stalls and loads: every stall is skippable, every load
    // phase is not. The skip count is the sum of the provable gaps and
    // the cycle count still matches lockstep exactly.
    let k = kernel(
        "gaps",
        ProgramBuilder::new()
            .scalar(64)
            .set_vl(8)
            .vle(1, 0x100)
            .scalar(64)
            .vle(2, 0x200)
            .scalar(64)
            .build(),
    );
    for kind in [SystemKind::Pack, SystemKind::Ideal] {
        let (ev_cycles, ev) = run(kind, SchedMode::Event, &k);
        let (lk_cycles, _) = run(kind, SchedMode::Lockstep, &k);
        assert_eq!(ev_cycles, lk_cycles, "{kind}: modes disagree on cycles");
        assert!(
            ev.sched.skip_spans >= 3,
            "{kind}: each scalar gap must fast-forward (got {} spans)",
            ev.sched.skip_spans
        );
        assert!(
            ev.sched.skipped_cycles >= 150,
            "{kind}: most of the 192 stall cycles are provably idle (got {})",
            ev.sched.skipped_cycles
        );
    }
}

#[test]
fn saturated_kernel_never_skips() {
    // Back-to-back unit-stride loads keep request/response traffic in
    // flight on every cycle: the scheduler must find zero idle spans and
    // the run must be cycle-for-cycle identical to lockstep.
    let mut b = ProgramBuilder::new().set_vl(64);
    for v in 1..=8 {
        b = b.vle(v, 0x100 * v as u64);
    }
    let k = kernel("saturated", b.build());
    for kind in [SystemKind::Pack, SystemKind::Base, SystemKind::Ideal] {
        let (ev_cycles, ev) = run(kind, SchedMode::Event, &k);
        let (lk_cycles, _) = run(kind, SchedMode::Lockstep, &k);
        assert_eq!(ev_cycles, lk_cycles, "{kind}: modes disagree on cycles");
        assert_eq!(
            ev.sched.skip_spans, 0,
            "{kind}: a saturated pipeline has no idle span to skip"
        );
        assert_eq!(ev.sched.skipped_cycles, 0, "{kind}");
    }
}
