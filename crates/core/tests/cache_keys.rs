//! Golden pins for the result-cache key canon.
//!
//! The content-addressed store survives across commits, so key digests are
//! an on-disk compatibility surface: if any of these pins move, old cache
//! entries silently become unreachable (stale entries are never *served* —
//! they just rot). That is sometimes the right call — an encoder bug, a
//! semantic change to what a key must capture — but it must be a *decision*:
//! bump `KEY_VERSION` (which moves every pin at once) and update the pins
//! here in the same commit. A pin moving without a `KEY_VERSION` bump means
//! the encoder drifted by accident.

use axi_pack::cache::{indirect_key, single_run_key, strided_avg_key, topology_key};
use axi_pack::requestor::SweepConfig;
use axi_pack::{FabricSpec, SystemConfig, Topology};
use axi_proto::{ElemSize, IdxSize};
use vproc::SystemKind;
use workloads::sparse::CsrMatrix;
use workloads::{gemv, spmv, Dataflow};

/// The fixture kernel: small deterministic GEMV, seed 7.
fn fixture_gemv(cfg: &SystemConfig) -> workloads::Kernel {
    gemv::build(8, 7, Dataflow::ColWise, &cfg.kernel_params())
}

#[test]
fn single_run_keys_are_pinned() {
    let cases = [
        (SystemKind::Base, "403b2fe66aa95d194aaa3cba24821fe1"),
        (SystemKind::Pack, "69360235aac12175d9d5ec3395ec6012"),
        (SystemKind::Ideal, "9cf08c38f688e397dcda44231330cf52"),
    ];
    for (kind, pin) in cases {
        let cfg = SystemConfig::paper(kind);
        let key = single_run_key(&cfg, kind, &fixture_gemv(&cfg));
        assert_eq!(
            key.to_hex(),
            pin,
            "single-run key for {kind:?} moved — bump KEY_VERSION if intentional"
        );
    }
}

#[test]
fn topology_key_is_pinned() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let m = CsrMatrix::random(16, 16, 4.0, 3);
    let topo = Topology::builder(&cfg)
        .requestor(SystemKind::Pack, fixture_gemv(&cfg))
        .requestor(SystemKind::Base, spmv::build(&m, 5, &cfg.kernel_params()))
        .build()
        .expect("two-requestor fixture is DRC-clean");
    assert_eq!(
        topology_key(&topo).to_hex(),
        "2c0c8ec8fea869fd7d593a2341cd7785",
        "topology key moved — bump KEY_VERSION if intentional"
    );
}

#[test]
fn utilization_keys_are_pinned() {
    let sweep = SweepConfig::default();
    assert_eq!(
        strided_avg_key(&sweep, ElemSize::B2).to_hex(),
        "384efe642919c6b1048dfac66e27855b",
        "strided-avg key moved — bump KEY_VERSION if intentional"
    );
    assert_eq!(
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 11).to_hex(),
        "33247794a583ca9c464c5e6db6b0af51",
        "indirect key moved — bump KEY_VERSION if intentional"
    );
}

#[test]
fn keys_separate_what_must_be_separate() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = fixture_gemv(&cfg);
    let base = single_run_key(&cfg, SystemKind::Pack, &kernel);

    // A different kernel seed is a different workload image.
    let reseeded = gemv::build(8, 8, Dataflow::ColWise, &cfg.kernel_params());
    assert_ne!(base, single_run_key(&cfg, SystemKind::Pack, &reseeded));

    // The backend kind is part of the key even with identical configs.
    assert_ne!(base, single_run_key(&cfg, SystemKind::Base, &kernel));

    // A config knob that changes timing (queue depth) must move the key.
    let mut deeper = cfg;
    deeper.queue_depth += 1;
    assert_ne!(base, single_run_key(&deeper, SystemKind::Pack, &kernel));

    // The sweep seed separates indirect-utilization points.
    let sweep = SweepConfig::default();
    assert_ne!(
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 11),
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 12)
    );

    // The fabric shape is part of a topology key: the same requestors on
    // a different channel count or mux arity are different measurements.
    let topo = Topology::builder(&cfg)
        .requestor(SystemKind::Pack, fixture_gemv(&cfg))
        .requestor(
            SystemKind::Pack,
            gemv::build(8, 9, Dataflow::ColWise, &cfg.kernel_params()),
        )
        .build()
        .expect("DRC-clean");
    let flat_key = topology_key(&topo);
    let mut channels2 = topo.clone();
    channels2.fabric = FabricSpec::flat().with_channels(2);
    assert_ne!(flat_key, topology_key(&channels2));
    let mut tree2 = topo.clone();
    tree2.fabric = FabricSpec::tree(2);
    assert_ne!(flat_key, topology_key(&tree2));
    let mut dram = topo;
    dram.fabric = FabricSpec::flat().with_row_buffer(8, 16);
    assert_ne!(flat_key, topology_key(&dram));
}
