//! Golden pins for the result-cache key canon.
//!
//! The content-addressed store survives across commits, so key digests are
//! an on-disk compatibility surface: if any of these pins move, old cache
//! entries silently become unreachable (stale entries are never *served* —
//! they just rot). That is sometimes the right call — an encoder bug, a
//! semantic change to what a key must capture — but it must be a *decision*:
//! bump `KEY_VERSION` (which moves every pin at once) and update the pins
//! here in the same commit. A pin moving without a `KEY_VERSION` bump means
//! the encoder drifted by accident.

use axi_pack::cache::{indirect_key, single_run_key, strided_avg_key, topology_key};
use axi_pack::requestor::SweepConfig;
use axi_pack::{Requestor, SystemConfig, Topology};
use axi_proto::{ElemSize, IdxSize};
use vproc::SystemKind;
use workloads::sparse::CsrMatrix;
use workloads::{gemv, spmv, Dataflow};

/// The fixture kernel: small deterministic GEMV, seed 7.
fn fixture_gemv(cfg: &SystemConfig) -> workloads::Kernel {
    gemv::build(8, 7, Dataflow::ColWise, &cfg.kernel_params())
}

#[test]
fn single_run_keys_are_pinned() {
    let cases = [
        (SystemKind::Base, "d2859859caf48a3ad634b80c9edc1eb2"),
        (SystemKind::Pack, "559a09f01fd48c68e156ba0ea5c1eed2"),
        (SystemKind::Ideal, "8cbb453d40ab11b1b8b003c02494b9de"),
    ];
    for (kind, pin) in cases {
        let cfg = SystemConfig::paper(kind);
        let key = single_run_key(&cfg, kind, &fixture_gemv(&cfg));
        assert_eq!(
            key.to_hex(),
            pin,
            "single-run key for {kind:?} moved — bump KEY_VERSION if intentional"
        );
    }
}

#[test]
fn topology_key_is_pinned() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let mut topo = Topology::single(&cfg, fixture_gemv(&cfg));
    let m = CsrMatrix::random(16, 16, 4.0, 3);
    topo.requestors.push(Requestor {
        kind: SystemKind::Base,
        kernel: spmv::build(&m, 5, &cfg.kernel_params()),
    });
    assert_eq!(
        topology_key(&topo).to_hex(),
        "686babbd2528d851c9a70a545a3bedd9",
        "topology key moved — bump KEY_VERSION if intentional"
    );
}

#[test]
fn utilization_keys_are_pinned() {
    let sweep = SweepConfig::default();
    assert_eq!(
        strided_avg_key(&sweep, ElemSize::B2).to_hex(),
        "8aa55475f9fc7d7c38a580678b921efa",
        "strided-avg key moved — bump KEY_VERSION if intentional"
    );
    assert_eq!(
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 11).to_hex(),
        "89da7c67f4e5b6d5b0d474f7154df2e4",
        "indirect key moved — bump KEY_VERSION if intentional"
    );
}

#[test]
fn keys_separate_what_must_be_separate() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = fixture_gemv(&cfg);
    let base = single_run_key(&cfg, SystemKind::Pack, &kernel);

    // A different kernel seed is a different workload image.
    let reseeded = gemv::build(8, 8, Dataflow::ColWise, &cfg.kernel_params());
    assert_ne!(base, single_run_key(&cfg, SystemKind::Pack, &reseeded));

    // The backend kind is part of the key even with identical configs.
    assert_ne!(base, single_run_key(&cfg, SystemKind::Base, &kernel));

    // A config knob that changes timing (queue depth) must move the key.
    let mut deeper = cfg;
    deeper.queue_depth += 1;
    assert_ne!(base, single_run_key(&deeper, SystemKind::Pack, &kernel));

    // The sweep seed separates indirect-utilization points.
    let sweep = SweepConfig::default();
    assert_ne!(
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 11),
        indirect_key(&sweep, ElemSize::B4, IdxSize::B2, 12)
    );
}
