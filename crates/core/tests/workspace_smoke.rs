//! Workspace smoke test: every paper system configuration assembles and
//! runs a small kernel end-to-end, with functional verification.
//!
//! This is the cheapest whole-stack check — it exercises the workspace's
//! full dependency chain (simkit → axi-proto → banked-mem → pack-ctrl →
//! vproc → workloads → axi-pack) once per system kind, so a wiring
//! regression in any crate fails here within seconds.

use axi_pack::{run_kernel, SystemConfig};
use vproc::SystemKind;
use workloads::{ismt, spmv, CsrMatrix};

#[test]
fn every_system_kind_runs_a_strided_kernel() {
    for kind in [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal] {
        let cfg = SystemConfig::paper(kind);
        let kernel = ismt::build(16, 7, &cfg.kernel_params());
        // `run_kernel` verifies the simulated result against the kernel's
        // scalar reference; an `Err` is a functional failure.
        let report = run_kernel(&cfg, &kernel)
            .unwrap_or_else(|e| panic!("{kind:?} failed functional verification: {e}"));
        assert!(report.cycles > 0, "{kind:?} reported zero cycles");
        assert_eq!(report.kind, kind);
    }
}

#[test]
fn every_system_kind_runs_an_indirect_kernel() {
    let m = CsrMatrix::random(24, 32, 6.0, 11);
    for kind in [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal] {
        let cfg = SystemConfig::paper(kind);
        let kernel = spmv::build(&m, 11, &cfg.kernel_params());
        let report = run_kernel(&cfg, &kernel)
            .unwrap_or_else(|e| panic!("{kind:?} failed functional verification: {e}"));
        assert!(report.cycles > 0, "{kind:?} reported zero cycles");
        assert!(
            report.r_util > 0.0 && report.r_util <= 1.0,
            "{kind:?} r_util out of range: {}",
            report.r_util
        );
    }
}
