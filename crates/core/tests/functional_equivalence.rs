//! Property-based functional equivalence: for randomized kernel inputs,
//! the cycle-level simulation of every system produces results matching
//! the scalar reference — the packing protocol never corrupts data.

use axi_pack::{run_kernel, SystemConfig};
use proptest::prelude::*;
use vproc::SystemKind;
use workloads::{gemv, ismt, spmv, sssp, CsrMatrix, Dataflow};

fn kinds() -> [SystemKind; 3] {
    [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transpose_is_exact_for_any_size_and_seed(n in 2usize..28, seed in 0u64..1000) {
        for kind in kinds() {
            let cfg = SystemConfig::paper(kind);
            let k = ismt::build(n, seed, &cfg.kernel_params());
            run_kernel(&cfg, &k).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn gemv_matches_reference_for_any_dataflow(
        n in 4usize..40,
        seed in 0u64..1000,
        col in proptest::bool::ANY,
    ) {
        let dataflow = if col { Dataflow::ColWise } else { Dataflow::RowWise };
        for kind in kinds() {
            let cfg = SystemConfig::paper(kind);
            let k = gemv::build(n, seed, dataflow, &cfg.kernel_params());
            run_kernel(&cfg, &k).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn spmv_matches_reference_for_random_sparsity(
        rows in 4usize..32,
        nnz in 1.0f64..12.0,
        seed in 0u64..1000,
    ) {
        let m = CsrMatrix::random(rows, 2 * rows.max(16), nnz, seed);
        for kind in kinds() {
            let cfg = SystemConfig::paper(kind);
            let k = spmv::build(&m, seed, &cfg.kernel_params());
            run_kernel(&cfg, &k).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn sssp_matches_reference_for_random_graphs(
        nodes in 4usize..28,
        deg in 1.0f64..6.0,
        seed in 0u64..1000,
        sweeps in 1usize..4,
    ) {
        let g = CsrMatrix::random_graph(nodes, deg, seed);
        for kind in kinds() {
            let cfg = SystemConfig::paper(kind);
            let k = sssp::build(&g, 0, sweeps, &cfg.kernel_params());
            run_kernel(&cfg, &k).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn pack_never_loses_to_base(n in 6usize..32, seed in 0u64..1000) {
        // The paper's request-bundling claim: AXI-Pack never causes a
        // slowdown, no matter how short the streams are.
        let base_cfg = SystemConfig::paper(SystemKind::Base);
        let pack_cfg = SystemConfig::paper(SystemKind::Pack);
        let kb = ismt::build(n, seed, &base_cfg.kernel_params());
        let kp = ismt::build(n, seed, &pack_cfg.kernel_params());
        let rb = run_kernel(&base_cfg, &kb).map_err(TestCaseError::fail)?;
        let rp = run_kernel(&pack_cfg, &kp).map_err(TestCaseError::fail)?;
        prop_assert!(
            rp.cycles <= rb.cycles,
            "pack {} vs base {} at n={n}",
            rp.cycles,
            rb.cycles
        );
    }
}
