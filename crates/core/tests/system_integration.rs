//! Cross-crate integration: every benchmark kernel runs to completion and
//! verifies against its scalar reference on every system, deterministically.

use axi_pack::{run_kernel, run_system, Requestor, RunReport, SystemConfig, Topology};
use vproc::SystemKind;
use workloads::{gemv, ismt, prank, spmv, sssp, trmv, CsrMatrix, Dataflow, Kernel, KernelParams};

const KINDS: [SystemKind; 3] = [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal];

fn kernels(p: &KernelParams) -> Vec<Kernel> {
    let m = CsrMatrix::random(40, 64, 9.0, 5);
    let g = CsrMatrix::random_graph(40, 5.0, 6);
    vec![
        ismt::build(20, 1, p),
        gemv::build(24, 2, Dataflow::RowWise, p),
        gemv::build(24, 2, Dataflow::ColWise, p),
        trmv::build(24, 3, Dataflow::RowWise, p),
        trmv::build(24, 3, Dataflow::ColWise, p),
        spmv::build(&m, 4, p),
        prank::build(&g, 2, p),
        sssp::build(&g, 0, 3, p),
    ]
}

fn run(kind: SystemKind, kernel: &Kernel) -> RunReport {
    let cfg = SystemConfig::paper(kind);
    run_kernel(&cfg, kernel).unwrap_or_else(|e| panic!("{kind}: {e}"))
}

#[test]
fn every_kernel_verifies_on_every_system() {
    for kind in KINDS {
        let cfg = SystemConfig::paper(kind);
        for kernel in kernels(&cfg.kernel_params()) {
            let r = run(kind, &kernel);
            assert!(r.cycles > 0, "{kind}/{}", kernel.name);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for kind in [SystemKind::Base, SystemKind::Pack] {
        let cfg = SystemConfig::paper(kind);
        let k1 = spmv::build(&CsrMatrix::random(32, 48, 7.0, 9), 9, &cfg.kernel_params());
        let k2 = spmv::build(&CsrMatrix::random(32, 48, 7.0, 9), 9, &cfg.kernel_params());
        let a = run(kind, &k1);
        let b = run(kind, &k2);
        assert_eq!(a.cycles, b.cycles, "{kind}: cycle counts must reproduce");
        assert_eq!(a.bank_conflicts, b.bank_conflicts);
        assert_eq!(
            a.activity.r_payload_bytes, b.activity.r_payload_bytes,
            "{kind}: bus traffic must reproduce"
        );
    }
}

#[test]
fn read_only_kernels_have_exact_bus_payloads() {
    // The engine compares every R beat against its issue-time snapshot;
    // for kernels without overlapping load/store streams there must be no
    // mismatch on either AXI system — the packing datapath moves the
    // right bytes.
    for kind in [SystemKind::Base, SystemKind::Pack] {
        let cfg = SystemConfig::paper(kind);
        for kernel in kernels(&cfg.kernel_params()) {
            if !kernel.read_only_streams {
                continue;
            }
            let r = run(kind, &kernel);
            assert_eq!(
                r.data_mismatches, 0,
                "{kind}/{}: bus payload diverged",
                kernel.name
            );
        }
    }
}

#[test]
fn smaller_buses_run_strictly_slower_on_pack() {
    let mut last = 0u64;
    for bus in [256u32, 128, 64] {
        let cfg = SystemConfig::with_bus(SystemKind::Pack, bus);
        let k = gemv::build(32, 4, Dataflow::ColWise, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        assert!(
            r.cycles > last,
            "{bus}-bit bus should be slower than the previous width"
        );
        last = r.cycles;
    }
}

#[test]
fn queue_depth_matters_under_conflict_pressure() {
    // Deeper decoupling queues ride out bank conflicts better: with a
    // conflict-heavy configuration, depth 32 must not be slower than depth 2.
    let mk = |depth: usize| {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.queue_depth = depth;
        cfg.banks = 16; // power-of-two: conflicts bite
        let k = ismt::build(32, 5, &cfg.kernel_params());
        run_kernel(&cfg, &k).expect("verifies").cycles
    };
    let shallow = mk(2);
    let deep = mk(32);
    assert!(
        deep <= shallow,
        "deeper queues can't hurt: depth2={shallow} depth32={deep}"
    );
}

#[test]
fn bank_count_sensitivity_is_visible_system_level() {
    // The ismt column accesses stride by the matrix dimension; a
    // power-of-two dimension on power-of-two banks conflicts hard, while
    // 17 banks stay fast (the paper's reason for choosing 17).
    let mk = |banks: usize| {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.banks = banks;
        let k = ismt::build(32, 5, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        (r.cycles, r.bank_conflicts)
    };
    let (cycles_pow2, conflicts_pow2) = mk(8);
    let (cycles_prime, conflicts_prime) = mk(17);
    assert!(conflicts_pow2 > 4 * conflicts_prime.max(1));
    assert!(cycles_prime < cycles_pow2);
}

#[test]
fn single_requestor_topology_matches_run_kernel() {
    // The acceptance contract of the Topology refactor: a 1-requestor
    // run_system is byte-identical to the classic run_kernel on every
    // system kind — cycles, beats, utilizations, energy.
    for kind in KINDS {
        let cfg = SystemConfig::paper(kind);
        let k = gemv::build(
            24,
            2,
            if kind == SystemKind::Base {
                Dataflow::RowWise
            } else {
                Dataflow::ColWise
            },
            &cfg.kernel_params(),
        );
        let classic = run_kernel(&cfg, &k).expect("run_kernel verifies");
        let topo = Topology::builder(&cfg)
            .requestor(kind, k.clone())
            .build()
            .expect("DRC-clean");
        let sys = run_system(&topo).expect("run_system verifies");
        assert_eq!(sys.requestors.len(), 1);
        let topo = &sys.requestors[0];
        assert_eq!(classic.cycles, topo.cycles, "{kind}");
        assert_eq!(classic.cycles, sys.cycles, "{kind}");
        assert_eq!(classic.bank_conflicts, topo.bank_conflicts, "{kind}");
        assert_eq!(
            classic.activity.r_payload_bytes, topo.activity.r_payload_bytes,
            "{kind}"
        );
        assert_eq!(
            classic.activity.word_accesses, topo.activity.word_accesses,
            "{kind}"
        );
        assert_eq!(classic.r_util, topo.r_util, "{kind}");
        assert_eq!(classic.r_util_no_idx, topo.r_util_no_idx, "{kind}");
        assert_eq!(classic.energy_uj, topo.energy_uj, "{kind}");
    }
}

#[test]
fn two_requestors_in_disjoint_windows_both_match_their_references() {
    // Each engine writes only its own address window; run_system verifies
    // each functional result against that requestor's scalar reference.
    // Exercise a write-heavy strided kernel next to an indirect one, on a
    // homogeneous PACK pair and on a mixed BASE+PACK bus.
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let g = CsrMatrix::random_graph(32, 5.0, 11);
    for second_kind in [SystemKind::Pack, SystemKind::Base] {
        let topo = Topology::builder(&cfg)
            .requestor(
                SystemKind::Pack,
                ismt::build(20, 6, &cfg.kernel_params_for(SystemKind::Pack)),
            )
            .requestor(
                second_kind,
                sssp::build(&g, 0, 2, &cfg.kernel_params_for(second_kind)),
            )
            .build()
            .expect("DRC-clean");
        // run_system errors if either requestor's memory image diverges
        // from its own scalar reference, so success IS the equivalence
        // check for both disjoint regions.
        let report = run_system(&topo).expect("both requestors verify");
        assert_eq!(report.requestors.len(), 2);
        assert_eq!(report.requestors[0].kernel, "ismt");
        assert_eq!(report.requestors[1].kernel, "sssp");
        for r in &report.requestors {
            assert!(r.cycles > 0 && r.cycles <= report.cycles);
        }
        assert!(report.word_accesses > 0);
    }
}

#[test]
fn four_requestors_saturate_the_shared_bus() {
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let p = cfg.kernel_params();
    let solo = run_kernel(&cfg, &gemv::build(24, 3, Dataflow::ColWise, &p)).expect("verifies");
    let reqs: Vec<Requestor> = (0..4)
        .map(|i| {
            Requestor::new(
                SystemKind::Pack,
                gemv::build(24, 3 + i as u64, Dataflow::ColWise, &p),
            )
        })
        .collect();
    let topo = Topology::builder(&cfg)
        .requestors(reqs)
        .build()
        .expect("DRC-clean");
    let report = run_system(&topo).expect("all four verify");
    assert_eq!(report.requestors.len(), 4);
    // Four bus-bound kernels through one endpoint: higher aggregate bus
    // occupancy than one alone, and everyone slower than solo.
    assert!(report.bus_r_busy > solo.r_busy);
    for r in &report.requestors {
        assert!(r.cycles > solo.cycles);
    }
    // Round-robin arbitration keeps the finish spread tight: the slowest
    // identical requestor must not take twice as long as the fastest.
    assert!(report.slowest().cycles < 2 * report.fastest().cycles);
}

#[test]
fn indirect_write_path_works_end_to_end() {
    // The scatter kernel (extension beyond the paper's read-only plots)
    // drives the indirect *write* converter on PACK and the per-element
    // scatter path on BASE; both must produce the verified permutation,
    // and PACK must be faster.
    use workloads::scatter;
    let base_cfg = SystemConfig::paper(SystemKind::Base);
    let pack_cfg = SystemConfig::paper(SystemKind::Pack);
    let kb = scatter::build(256, 2.5, 7, &base_cfg.kernel_params());
    let kp = scatter::build(256, 2.5, 7, &pack_cfg.kernel_params());
    let rb = run_kernel(&base_cfg, &kb).expect("base scatter verifies");
    let rp = run_kernel(&pack_cfg, &kp).expect("pack scatter verifies");
    assert!(
        rp.cycles < rb.cycles,
        "packed scatter must win: {} vs {}",
        rp.cycles,
        rb.cycles
    );
    let ideal_cfg = SystemConfig::paper(SystemKind::Ideal);
    let ki = scatter::build(256, 2.5, 7, &ideal_cfg.kernel_params());
    run_kernel(&ideal_cfg, &ki).expect("ideal scatter verifies");
}
