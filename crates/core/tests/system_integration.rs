//! Cross-crate integration: every benchmark kernel runs to completion and
//! verifies against its scalar reference on every system, deterministically.

use axi_pack::{run_kernel, RunReport, SystemConfig};
use vproc::SystemKind;
use workloads::{gemv, ismt, prank, spmv, sssp, trmv, CsrMatrix, Dataflow, Kernel, KernelParams};

const KINDS: [SystemKind; 3] = [SystemKind::Base, SystemKind::Pack, SystemKind::Ideal];

fn kernels(p: &KernelParams) -> Vec<Kernel> {
    let m = CsrMatrix::random(40, 64, 9.0, 5);
    let g = CsrMatrix::random_graph(40, 5.0, 6);
    vec![
        ismt::build(20, 1, p),
        gemv::build(24, 2, Dataflow::RowWise, p),
        gemv::build(24, 2, Dataflow::ColWise, p),
        trmv::build(24, 3, Dataflow::RowWise, p),
        trmv::build(24, 3, Dataflow::ColWise, p),
        spmv::build(&m, 4, p),
        prank::build(&g, 2, p),
        sssp::build(&g, 0, 3, p),
    ]
}

fn run(kind: SystemKind, kernel: &Kernel) -> RunReport {
    let cfg = SystemConfig::paper(kind);
    run_kernel(&cfg, kernel).unwrap_or_else(|e| panic!("{kind}: {e}"))
}

#[test]
fn every_kernel_verifies_on_every_system() {
    for kind in KINDS {
        let cfg = SystemConfig::paper(kind);
        for kernel in kernels(&cfg.kernel_params()) {
            let r = run(kind, &kernel);
            assert!(r.cycles > 0, "{kind}/{}", kernel.name);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for kind in [SystemKind::Base, SystemKind::Pack] {
        let cfg = SystemConfig::paper(kind);
        let k1 = spmv::build(&CsrMatrix::random(32, 48, 7.0, 9), 9, &cfg.kernel_params());
        let k2 = spmv::build(&CsrMatrix::random(32, 48, 7.0, 9), 9, &cfg.kernel_params());
        let a = run(kind, &k1);
        let b = run(kind, &k2);
        assert_eq!(a.cycles, b.cycles, "{kind}: cycle counts must reproduce");
        assert_eq!(a.bank_conflicts, b.bank_conflicts);
        assert_eq!(
            a.activity.r_payload_bytes, b.activity.r_payload_bytes,
            "{kind}: bus traffic must reproduce"
        );
    }
}

#[test]
fn read_only_kernels_have_exact_bus_payloads() {
    // The engine compares every R beat against its issue-time snapshot;
    // for kernels without overlapping load/store streams there must be no
    // mismatch on either AXI system — the packing datapath moves the
    // right bytes.
    for kind in [SystemKind::Base, SystemKind::Pack] {
        let cfg = SystemConfig::paper(kind);
        for kernel in kernels(&cfg.kernel_params()) {
            if !kernel.read_only_streams {
                continue;
            }
            let r = run(kind, &kernel);
            assert_eq!(
                r.data_mismatches, 0,
                "{kind}/{}: bus payload diverged",
                kernel.name
            );
        }
    }
}

#[test]
fn smaller_buses_run_strictly_slower_on_pack() {
    let mut last = 0u64;
    for bus in [256u32, 128, 64] {
        let cfg = SystemConfig::with_bus(SystemKind::Pack, bus);
        let k = gemv::build(32, 4, Dataflow::ColWise, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        assert!(
            r.cycles > last,
            "{bus}-bit bus should be slower than the previous width"
        );
        last = r.cycles;
    }
}

#[test]
fn queue_depth_matters_under_conflict_pressure() {
    // Deeper decoupling queues ride out bank conflicts better: with a
    // conflict-heavy configuration, depth 32 must not be slower than depth 2.
    let mk = |depth: usize| {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.queue_depth = depth;
        cfg.banks = 16; // power-of-two: conflicts bite
        let k = ismt::build(32, 5, &cfg.kernel_params());
        run_kernel(&cfg, &k).expect("verifies").cycles
    };
    let shallow = mk(2);
    let deep = mk(32);
    assert!(
        deep <= shallow,
        "deeper queues can't hurt: depth2={shallow} depth32={deep}"
    );
}

#[test]
fn bank_count_sensitivity_is_visible_system_level() {
    // The ismt column accesses stride by the matrix dimension; a
    // power-of-two dimension on power-of-two banks conflicts hard, while
    // 17 banks stay fast (the paper's reason for choosing 17).
    let mk = |banks: usize| {
        let mut cfg = SystemConfig::paper(SystemKind::Pack);
        cfg.banks = banks;
        let k = ismt::build(32, 5, &cfg.kernel_params());
        let r = run_kernel(&cfg, &k).expect("verifies");
        (r.cycles, r.bank_conflicts)
    };
    let (cycles_pow2, conflicts_pow2) = mk(8);
    let (cycles_prime, conflicts_prime) = mk(17);
    assert!(conflicts_pow2 > 4 * conflicts_prime.max(1));
    assert!(cycles_prime < cycles_pow2);
}

#[test]
fn indirect_write_path_works_end_to_end() {
    // The scatter kernel (extension beyond the paper's read-only plots)
    // drives the indirect *write* converter on PACK and the per-element
    // scatter path on BASE; both must produce the verified permutation,
    // and PACK must be faster.
    use workloads::scatter;
    let base_cfg = SystemConfig::paper(SystemKind::Base);
    let pack_cfg = SystemConfig::paper(SystemKind::Pack);
    let kb = scatter::build(256, 2.5, 7, &base_cfg.kernel_params());
    let kp = scatter::build(256, 2.5, 7, &pack_cfg.kernel_params());
    let rb = run_kernel(&base_cfg, &kb).expect("base scatter verifies");
    let rp = run_kernel(&pack_cfg, &kp).expect("pack scatter verifies");
    assert!(
        rp.cycles < rb.cycles,
        "packed scatter must win: {} vs {}",
        rp.cycles,
        rb.cycles
    );
    let ideal_cfg = SystemConfig::paper(SystemKind::Ideal);
    let ki = scatter::build(256, 2.5, 7, &ideal_cfg.kernel_params());
    run_kernel(&ideal_cfg, &ki).expect("ideal scatter verifies");
}
