//! Tier-1 replay of the regression corpus **under injected faults**,
//! plus hang-forensics checks.
//!
//! Every fuzz corpus entry re-runs through the chaos engine on every
//! `cargo test`: the differential kernel family under a deterministic
//! transient fault plan, in both scheduler modes, each run required to
//! recover bit-identically or return a typed fault/hang report.
//! `figures chaos --corpus` replays the same list from the CLI.
//!
//! The hang tests pin the forensics contract: a deliberately wedged
//! datapath must produce a [`axi_pack::RunError::Hang`] whose computed
//! suspect names the component that actually stalled.

use axi_pack::chaos::{check_chaos_seed, replay_chaos_corpus};
use axi_pack::differential::SEED_CORPUS;
use axi_pack::{run_kernel, run_system, Requestor, SystemConfig, Topology};
use simkit::fault::FaultSpec;
use vproc::SystemKind;
use workloads::ismt;
use workloads::synth::SynthConfig;

#[test]
fn corpus_replays_clean_under_faults() {
    let n = replay_chaos_corpus().unwrap_or_else(|failures| {
        panic!("chaos corpus cases failed: {failures:#?}");
    });
    assert_eq!(n, SEED_CORPUS.len());
    assert!(n >= 10, "corpus shrank suspiciously");
}

#[test]
fn chaos_checks_are_deterministic() {
    // A chaos seed must expand to the exact same faults and the exact
    // same classification on every replay — the property that makes a
    // failing chaos seed reproducible from its one-line repro command.
    for seed in [2u64, 3] {
        let cfg = SynthConfig::default();
        let a = check_chaos_seed(seed, &cfg).expect("passes");
        let b = check_chaos_seed(seed, &cfg).expect("passes");
        assert_eq!(a.checks, b.checks, "seed {seed}");
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(
            (a.recovered, a.aborted, a.hung),
            (b.recovered, b.aborted, b.hung),
            "seed {seed}"
        );
        assert_eq!(a.injected_faults, b.injected_faults, "seed {seed}");
        assert_eq!(a.fault_retries, b.fault_retries, "seed {seed}");
    }
}

#[test]
fn permanent_bank_delay_hang_names_the_adapter() {
    // A latency spike that never ends starves every converter; the
    // progress watchdog must fire and the forensics must point at the
    // adapter (the deepest busy component), not the engine that is
    // merely waiting on it.
    let mut cfg = SystemConfig::paper(SystemKind::Pack);
    cfg.watchdog = 5_000;
    let mut spec = FaultSpec::silent(1);
    spec.bank_delay_period = 1;
    spec.bank_delay_len = u32::MAX;
    cfg.fault = Some(spec);
    let kernel = ismt::build(16, 7, &cfg.kernel_params());
    let err = run_kernel(&cfg, &kernel).expect_err("a permanently stalled memory must hang");
    let hang = err.hang_report().expect("typed hang report, not a string");
    assert!(
        hang.no_progress,
        "the watchdog, not the cycle ceiling, fired"
    );
    assert_eq!(hang.limit, 5_000);
    assert_eq!(hang.suspect, "adapter", "forensics:\n{hang}");
    assert!(
        hang.busy_components().count() >= 2,
        "the engine waiting on the adapter must also show busy:\n{hang}"
    );
    // The rendered report keeps enough state to triage from a log line.
    let text = err.to_string();
    assert!(text.contains("suspect: adapter"), "{text}");
    assert!(text.contains("latency spike"), "{text}");
}

#[test]
fn permanent_grant_storm_hang_names_the_mux() {
    // A storm that never lifts wedges arbitration: requests pile up in
    // the manager channels while the adapter below drains and goes
    // idle. The deepest busy component — the suspect — is the mux.
    let base = SystemConfig::paper(SystemKind::Pack);
    let mut spec = FaultSpec::silent(2);
    spec.grant_storm_period = 1;
    spec.grant_storm_len = u32::MAX;
    let kernels = [
        ismt::build(16, 7, &base.kernel_params()),
        ismt::build(16, 5, &base.kernel_params()),
    ];
    let mut topo = Topology::builder(&base)
        .requestors(
            kernels
                .into_iter()
                .map(|k| Requestor::new(SystemKind::Pack, k)),
        )
        .build()
        .expect("DRC-clean");
    topo.system.watchdog = 5_000;
    topo.system.fault = Some(spec);
    let err = run_system(&topo).expect_err("a permanently stormed mux must hang");
    let hang = err.hang_report().expect("typed hang report, not a string");
    assert!(
        hang.no_progress,
        "the watchdog, not the cycle ceiling, fired"
    );
    assert_eq!(hang.suspect, "mux", "forensics:\n{hang}");
    assert!(
        hang.components.iter().any(|c| c.name.contains("engine")),
        "per-requestor engine snapshots must be present:\n{hang}"
    );
    assert!(
        err.to_string().contains("storm suppression"),
        "the mux state must show the active storm: {err}"
    );
}

#[test]
fn watchdog_stays_out_of_clean_runs() {
    // An armed watchdog on a healthy run must change nothing: same
    // cycles, same result, no typed error.
    let cfg = SystemConfig::paper(SystemKind::Pack);
    let kernel = ismt::build(16, 7, &cfg.kernel_params());
    let clean = run_kernel(&cfg, &kernel).expect("clean run");
    let mut watched = cfg;
    watched.watchdog = 5_000;
    let report = run_kernel(&watched, &kernel).expect("watchdog must not fire");
    assert_eq!(report.cycles, clean.cycles);
    assert_eq!(report.injected_faults, 0);
    assert_eq!(report.fault_retries, 0);
}
