//! `scatter` — permuted vector scatter, exercising the indirect *write*
//! path (an extension beyond the paper's read-only plots).
//!
//! Computes `y[p[k]] = a · x[k]` for a permutation `p`: a contiguous load,
//! a scalar multiply, and an indexed scatter. On PACK the scatter is one
//! `vsimxei` per chunk — an AXI-Pack indirect *write* burst whose index
//! fetching happens controller-side. BASE loads the permutation into a
//! register and scatters element by element; IDEAL does the same over its
//! per-lane ports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vproc::{ProgramBuilder, SystemKind};

use crate::dense::random_vector;
use crate::kernel::{f32_bytes, u32_bytes, Check, Kernel, KernelParams, Layout};

/// A seeded random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Builds the scatter kernel `y[p[k]] = a · x[k]` over `n` elements.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn build(n: usize, scale: f32, seed: u64, p: &KernelParams) -> Kernel {
    assert!(n > 0, "empty scatter");
    let x = random_vector(n, seed);
    let perm = random_permutation(n, seed ^ 0x5ca7);
    let mut layout = Layout::new();
    let xa = layout.alloc_elems(n);
    let pa = layout.alloc_elems(n);
    let ya = layout.alloc_elems(n);

    let mut b = ProgramBuilder::new();
    let mut k = 0;
    while k < n {
        let len = (n - k).min(p.max_vl);
        b = b
            .set_vl(len)
            .scalar(p.chunk_overhead)
            .vle(1, xa + 4 * k as u64)
            .vfmul_vf(2, scale, 1);
        b = match p.kind {
            SystemKind::Pack => b.vsimxei(2, pa + 4 * k as u64, ya),
            SystemKind::Base | SystemKind::Ideal => {
                b.vle_index(3, pa + 4 * k as u64).vsuxei(2, 3, ya)
            }
        };
        k += len;
    }

    let mut expected = vec![0.0f32; n];
    for (k, &pk) in perm.iter().enumerate() {
        expected[pk as usize] = scale * x[k];
    }
    Kernel {
        name: "scatter".into(),
        image: vec![(xa, f32_bytes(&x)), (pa, u32_bytes(&perm))],
        storage_size: layout.storage_size(),
        program: b.build().into(),
        expected: vec![Check {
            addr: ya,
            values: expected.into(),
            label: "y".into(),
        }],
        read_only_streams: true,
        useful_bytes: 4 * 3 * n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::VInsn;

    #[test]
    fn permutation_is_a_bijection() {
        let p = random_permutation(97, 3);
        let mut seen = [false; 97];
        for v in &p {
            assert!(!seen[*v as usize], "duplicate {v}");
            seen[*v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn pack_uses_in_memory_indexed_stores() {
        let params = KernelParams::new(SystemKind::Pack, 32);
        let k = build(64, 2.0, 1, &params);
        assert!(k
            .program
            .insns()
            .iter()
            .any(|i| matches!(i, VInsn::Vsimxei { .. })));
        assert!(!k
            .program
            .insns()
            .iter()
            .any(|i| matches!(i, VInsn::Vsuxei { .. })));
    }

    #[test]
    fn base_scatters_through_a_register() {
        let params = KernelParams::new(SystemKind::Base, 32);
        let k = build(64, 2.0, 1, &params);
        assert!(k
            .program
            .insns()
            .iter()
            .any(|i| matches!(i, VInsn::Vsuxei { .. })));
    }

    #[test]
    fn expected_is_the_scaled_permutation() {
        let params = KernelParams::new(SystemKind::Pack, 16);
        let k = build(20, 3.0, 9, &params);
        let x = random_vector(20, 9);
        let perm = random_permutation(20, 9 ^ 0x5ca7);
        for (kk, &pk) in perm.iter().enumerate() {
            assert_eq!(k.expected[0].values[pk as usize], 3.0 * x[kk]);
        }
    }
}
