//! `prank` — PageRank power iterations over a sparse adjacency matrix.
//!
//! Each iteration computes `r' = (1−d)/N + d · (P · r)` with damping
//! d = 0.85, where `P` is the column-stochastic transition matrix in CSR
//! form (row *v* holds the incoming edges of node *v*). The sparse sweep
//! reuses the spmv row loop; the rank update is an element-wise pass.

use vproc::ProgramBuilder;

use crate::kernel::{f32_bytes, u32_bytes, Check, Kernel, KernelParams, Layout};
use crate::sparse::CsrMatrix;
use crate::spmv::{emit_sparse_sweep, CsrImage, Semiring};

/// Damping factor used by the paper's reference PageRank.
pub const DAMPING: f32 = 0.85;

/// Builds a PageRank kernel: `iters` power iterations over `graph`
/// (which is normalized internally).
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn build(graph: &CsrMatrix, iters: usize, p: &KernelParams) -> Kernel {
    assert!(iters > 0, "pagerank needs at least one iteration");
    let mut m = graph.clone();
    m.normalize_for_pagerank();
    let n = m.rows();
    let teleport = (1.0 - DAMPING) / n as f32;
    let init = vec![1.0 / n as f32; n];

    let mut layout = Layout::new();
    let col = layout.alloc_elems(m.nnz().max(1));
    let val = layout.alloc_elems(m.nnz().max(1));
    let bufs = [layout.alloc_elems(n), layout.alloc_elems(n)];
    let tmp = layout.alloc_elems(n);
    let img = CsrImage { col, val };

    let mut b = ProgramBuilder::new();
    for t in 0..iters {
        let src = bufs[t % 2];
        let dst = bufs[(t + 1) % 2];
        // Sparse sweep: tmp = P · r_src. Empty rows rely on tmp's zeroed
        // prefill below.
        b = emit_prefill(b, tmp, n, 0.0, p);
        b = emit_sparse_sweep(b, &m, img, src, tmp, Semiring::PlusTimes, p);
        // Element-wise rank update: r_dst = teleport + d · tmp.
        let mut r = 0;
        while r < n {
            let len = (n - r).min(p.max_vl);
            b = b
                .set_vl(len)
                .scalar(p.chunk_overhead)
                .vle(1, tmp + 4 * r as u64)
                .vfmul_vf(2, DAMPING, 1)
                .vfadd_vf(3, teleport, 2)
                .vse(3, dst + 4 * r as u64);
            r += len;
        }
    }

    // Scalar reference with the same iteration structure.
    let mut rank = init.clone();
    for _ in 0..iters {
        let spmv = m.matvec(&rank);
        rank = spmv.iter().map(|y| teleport + DAMPING * y).collect();
    }

    Kernel {
        name: "prank".into(),
        image: vec![
            (col, u32_bytes(m.col_idx())),
            (val, f32_bytes(m.vals())),
            (bufs[0], f32_bytes(&init)),
        ],
        storage_size: layout.storage_size(),
        program: b.build().into(),
        expected: vec![Check {
            addr: bufs[iters % 2],
            values: rank.into(),
            label: "rank".into(),
        }],
        // The tmp buffer is re-prefilled at the start of each iteration
        // while the previous iteration's last update-pass loads may still
        // be draining in the instruction window, so timed R payloads can
        // post-date eager stores. Functional results stay exact.
        read_only_streams: false,
        useful_bytes: (iters * (8 * m.nnz() + 12 * n)) as u64,
    }
}

/// Emits a vectorized fill of `n` elements at `addr` with `value`.
pub(crate) fn emit_prefill(
    mut b: ProgramBuilder,
    addr: u64,
    n: usize,
    value: f32,
    p: &KernelParams,
) -> ProgramBuilder {
    let mut r = 0;
    while r < n {
        let len = (n - r).min(p.max_vl);
        b = b.set_vl(len).vmv_vf(1, value).vse(1, addr + 4 * r as u64);
        r += len;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::SystemKind;

    #[test]
    fn reference_converges_toward_uniform_on_symmetric_ring() {
        // A ring graph (each node one incoming edge) keeps rank uniform.
        let n = 8;
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        for v in 0..n {
            col_idx.push(((v + n - 1) % n) as u32);
            row_ptr.push(col_idx.len() as u32);
        }
        let g = CsrMatrix::from_parts(n, n, row_ptr, col_idx, vec![1.0; n]);
        let p = KernelParams::new(SystemKind::Pack, 8);
        let k = build(&g, 3, &p);
        for v in k.expected[0].values.iter() {
            assert!((v - 1.0 / n as f32).abs() < 1e-5);
        }
    }

    #[test]
    fn rank_mass_is_conserved_approximately() {
        let g = CsrMatrix::random(32, 32, 4.0, 3);
        let p = KernelParams::new(SystemKind::Base, 16);
        let k = build(&g, 2, &p);
        let total: f32 = k.expected[0].values.iter().sum();
        // Dangling-node mass leaks, so total ≤ 1 but well above teleport-only.
        assert!(total <= 1.0 + 1e-4);
        assert!(total > 0.15);
    }

    #[test]
    fn iterations_alternate_buffers() {
        let g = CsrMatrix::random(16, 16, 3.0, 1);
        let p = KernelParams::new(SystemKind::Pack, 16);
        let k1 = build(&g, 1, &p);
        let k2 = build(&g, 2, &p);
        assert_ne!(k1.expected[0].addr, k2.expected[0].addr);
    }
}
