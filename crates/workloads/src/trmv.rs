//! `trmv` — upper-triangular matrix-vector multiply (paper Fig. 3c).
//!
//! Like gemv but only the nonzero triangle is streamed, so burst lengths
//! vary from 1 to *n* — exercising AXI-Pack's request-bundling claim that
//! short packed bursts never lose to the baseline.

use vproc::ProgramBuilder;

use crate::dense::{random_vector, DenseMatrix};
use crate::kernel::{f32_bytes, Check, Dataflow, Kernel, KernelParams, Layout};

/// Builds the trmv kernel `y = U·x` for an upper-triangular `n × n` matrix.
pub fn build(n: usize, seed: u64, dataflow: Dataflow, p: &KernelParams) -> Kernel {
    let m = DenseMatrix::random_upper_triangular(n, seed);
    let x = random_vector(n, seed ^ 0x7777);
    let mut layout = Layout::new();
    let a = layout.alloc_elems(n * n);
    let xa = layout.alloc_elems(n);
    let ya = layout.alloc_elems(n);
    let program = match dataflow {
        Dataflow::RowWise => row_wise(n, a, xa, ya, p),
        Dataflow::ColWise => col_wise(n, a, ya, &x, p),
    };
    let nnz = n * (n + 1) / 2;
    Kernel {
        name: "trmv".into(),
        image: vec![(a, f32_bytes(m.as_slice())), (xa, f32_bytes(&x))],
        storage_size: layout.storage_size(),
        program: program.into(),
        expected: vec![Check {
            addr: ya,
            values: m.matvec(&x).into(),
            label: "y".into(),
        }],
        read_only_streams: true,
        useful_bytes: 4 * (nnz + 2 * n) as u64,
    }
}

fn row_wise(n: usize, a: u64, xa: u64, ya: u64, p: &KernelParams) -> vproc::Program {
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let row_len = n - i;
        let acc_vl = row_len.min(p.max_vl);
        b = b.scalar(p.row_overhead).set_vl(acc_vl).vmv_vf(4, 0.0);
        let mut j = i;
        while j < n {
            let len = (n - j).min(p.max_vl);
            b = b
                .set_vl(len)
                .scalar(p.chunk_overhead)
                .vle(1, a + 4 * (i * n + j) as u64)
                .vle(2, xa + 4 * j as u64)
                .vfmacc(4, 1, 2);
            j += len;
        }
        b = b
            .set_vl(acc_vl)
            .vfredsum(5, 4)
            .scalar_store_f32(5, ya + 4 * i as u64);
    }
    b.build()
}

fn col_wise(n: usize, a: u64, ya: u64, x: &[f32], p: &KernelParams) -> vproc::Program {
    let mut b = ProgramBuilder::new();
    let mut r = 0;
    while r < n {
        let block = (n - r).min(p.max_vl);
        b = b.scalar(p.row_overhead).set_vl(block).vmv_vf(4, 0.0);
        // Column j intersects rows [r, r+block) only for j >= r; the
        // segment covers rows r..=min(j, r+block-1).
        let mut cur_vl = block;
        for (j, &xj) in x.iter().enumerate().skip(r) {
            let seg = (j + 1 - r).min(block);
            if seg != cur_vl {
                b = b.set_vl(seg);
                cur_vl = seg;
            }
            b = b
                .scalar(p.chunk_overhead)
                .vlse(1, a + 4 * (r * n + j) as u64, n as i32)
                .vfmacc_vf(4, xj, 1);
        }
        if cur_vl != block {
            b = b.set_vl(block);
        }
        b = b.vse(4, ya + 4 * r as u64);
        r += block;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::{SystemKind, VInsn};

    #[test]
    fn expected_matches_triangular_reference() {
        let p = KernelParams::new(SystemKind::Pack, 16);
        let k = build(12, 5, Dataflow::RowWise, &p);
        let m = DenseMatrix::random_upper_triangular(12, 5);
        let x = random_vector(12, 5 ^ 0x7777);
        assert_eq!(*k.expected[0].values, *m.matvec(&x));
    }

    #[test]
    fn col_wise_bursts_shorten_near_the_diagonal() {
        let p = KernelParams::new(SystemKind::Pack, 8);
        let k = build(8, 1, Dataflow::ColWise, &p);
        // First column of the first block covers a single row.
        let first_setvl_after_mv = k
            .program
            .insns()
            .iter()
            .skip_while(|i| !matches!(i, VInsn::VmvVf { .. }))
            .find_map(|i| match i {
                VInsn::SetVl { vl } => Some(*vl),
                _ => None,
            });
        assert_eq!(first_setvl_after_mv, Some(1));
    }

    #[test]
    fn both_dataflows_share_the_same_expectation() {
        let p = KernelParams::new(SystemKind::Base, 16);
        let kr = build(10, 2, Dataflow::RowWise, &p);
        let kc = build(10, 2, Dataflow::ColWise, &p);
        assert_eq!(kr.expected[0].values, kc.expected[0].values);
    }
}
