//! `gemv` — dense matrix-vector multiply, in both dataflows of Fig. 3b.
//!
//! *Row-wise*: long contiguous streams over each row, one slow reduction
//! per row — identical on BASE and PACK, bottlenecked by reductions.
//! *Column-wise*: one strided load per column, accumulating a block of
//! results at once with `vfmacc.vf` — no reductions, but worthless on BASE
//! where strided loads crawl at one element per transaction.

use vproc::ProgramBuilder;

use crate::dense::{random_vector, DenseMatrix};
use crate::kernel::{f32_bytes, Check, Dataflow, Kernel, KernelParams, Layout};

/// Builds the gemv kernel `y = A·x` for an `n × n` matrix.
pub fn build(n: usize, seed: u64, dataflow: Dataflow, p: &KernelParams) -> Kernel {
    let m = DenseMatrix::random(n, n, seed);
    let x = random_vector(n, seed ^ 0xabcd);
    let mut layout = Layout::new();
    let a = layout.alloc_elems(n * n);
    let xa = layout.alloc_elems(n);
    let ya = layout.alloc_elems(n);
    let program = match dataflow {
        Dataflow::RowWise => row_wise(n, a, xa, ya, p),
        Dataflow::ColWise => col_wise(n, a, ya, &x, p),
    };
    Kernel {
        name: "gemv".into(),
        image: vec![(a, f32_bytes(m.as_slice())), (xa, f32_bytes(&x))],
        storage_size: layout.storage_size(),
        program: program.into(),
        expected: vec![Check {
            addr: ya,
            values: m.matvec(&x).into(),
            label: "y".into(),
        }],
        read_only_streams: true,
        useful_bytes: 4 * (n * n + 2 * n) as u64,
    }
}

fn row_wise(n: usize, a: u64, xa: u64, ya: u64, p: &KernelParams) -> vproc::Program {
    let mut b = ProgramBuilder::new();
    let acc_vl = n.min(p.max_vl);
    for i in 0..n {
        b = b.scalar(p.row_overhead).set_vl(acc_vl).vmv_vf(4, 0.0);
        let mut j = 0;
        while j < n {
            let len = (n - j).min(p.max_vl);
            b = b
                .set_vl(len)
                .scalar(p.chunk_overhead)
                .vle(1, a + 4 * (i * n + j) as u64)
                .vle(2, xa + 4 * j as u64)
                .vfmacc(4, 1, 2);
            j += len;
        }
        b = b
            .set_vl(acc_vl)
            .vfredsum(5, 4)
            .scalar_store_f32(5, ya + 4 * i as u64);
    }
    b.build()
}

fn col_wise(n: usize, a: u64, ya: u64, x: &[f32], p: &KernelParams) -> vproc::Program {
    let mut b = ProgramBuilder::new();
    let mut r = 0;
    while r < n {
        let block = (n - r).min(p.max_vl);
        b = b.scalar(p.row_overhead).set_vl(block).vmv_vf(4, 0.0);
        for (j, &xj) in x.iter().enumerate() {
            // The scalar marker charges the x[j] load and pointer bump.
            b = b
                .scalar(p.chunk_overhead)
                .vlse(1, a + 4 * (r * n + j) as u64, n as i32)
                .vfmacc_vf(4, xj, 1);
        }
        b = b.vse(4, ya + 4 * r as u64);
        r += block;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::{SystemKind, VInsn};

    #[test]
    fn row_wise_uses_contiguous_loads_and_reductions() {
        let p = KernelParams::new(SystemKind::Base, 32);
        let k = build(16, 1, Dataflow::RowWise, &p);
        let insns = k.program.insns();
        assert!(insns.iter().any(|i| matches!(i, VInsn::Vfredsum { .. })));
        assert!(!insns.iter().any(|i| matches!(i, VInsn::Vlse { .. })));
    }

    #[test]
    fn col_wise_uses_strided_loads_and_no_reductions() {
        let p = KernelParams::new(SystemKind::Pack, 32);
        let k = build(16, 1, Dataflow::ColWise, &p);
        let insns = k.program.insns();
        assert!(insns.iter().any(|i| matches!(i, VInsn::Vlse { .. })));
        assert!(!insns.iter().any(|i| matches!(i, VInsn::Vfredsum { .. })));
        assert!(insns.iter().any(|i| matches!(i, VInsn::Vse { .. })));
    }

    #[test]
    fn expected_matches_reference_matvec() {
        let p = KernelParams::new(SystemKind::Pack, 32);
        let k = build(8, 7, Dataflow::ColWise, &p);
        let m = DenseMatrix::random(8, 8, 7);
        let x = random_vector(8, 7 ^ 0xabcd);
        assert_eq!(*k.expected[0].values, *m.matvec(&x));
    }
}
