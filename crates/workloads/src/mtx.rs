//! Matrix Market (`.mtx`) reader.
//!
//! The paper evaluates its indirect workloads on SuiteSparse matrices such
//! as `heart1`; this reader lets the reproduction run the *actual* inputs
//! when they are available, instead of the synthetic stand-ins. Supports
//! the coordinate format with `real`, `integer` and `pattern` fields and
//! the `general` / `symmetric` symmetry modes — which covers the
//! SuiteSparse collection's sparse matrices.

use std::io::BufRead;
use std::path::Path;

use crate::sparse::CsrMatrix;

/// An error while parsing a Matrix Market file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMtxError {
    /// 1-based line where the problem was found (0 = preamble / IO).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseMtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix market parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseMtxError {}

fn err(line: usize, message: impl Into<String>) -> ParseMtxError {
    ParseMtxError {
        line,
        message: message.into(),
    }
}

/// Reads a coordinate-format Matrix Market stream into a [`CsrMatrix`].
///
/// Duplicate entries are summed (the Matrix Market convention);
/// `symmetric` matrices are expanded to full storage; `pattern` matrices
/// get unit values.
///
/// # Errors
///
/// Returns a [`ParseMtxError`] for malformed headers, out-of-range
/// coordinates, or unsupported format variants (`array`, `complex`).
///
/// # Examples
///
/// ```
/// use workloads::mtx::read_mtx;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n\
///             2 2 2\n1 1 3.5\n2 2 1.0\n";
/// let m = read_mtx(text.as_bytes())?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.nnz(), 2);
/// # Ok::<(), workloads::mtx::ParseMtxError>(())
/// ```
pub fn read_mtx<R: BufRead>(reader: R) -> Result<CsrMatrix, ParseMtxError> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(h))) => h,
        Some((_, Err(e))) => return Err(err(1, e.to_string())),
        None => return Err(err(0, "empty input")),
    };
    let parts: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if parts.len() < 5 || parts[0] != "%%matrixmarket" || parts[1] != "matrix" {
        return Err(err(1, "expected '%%MatrixMarket matrix ...' header"));
    }
    if parts[2] != "coordinate" {
        return Err(err(
            1,
            format!("unsupported format '{}' (only coordinate)", parts[2]),
        ));
    }
    let field = parts[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(err(1, format!("unsupported field '{field}'")));
    }
    let symmetric = match parts[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(err(1, format!("unsupported symmetry '{other}'"))),
    };

    let mut size: Option<(usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f32)> = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.map_err(|e| err(lineno, e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        match size {
            None => {
                if toks.len() != 3 {
                    return Err(err(lineno, "size line needs 'rows cols nnz'"));
                }
                let rows = toks[0].parse().map_err(|_| err(lineno, "bad row count"))?;
                let cols = toks[1].parse().map_err(|_| err(lineno, "bad col count"))?;
                let nnz: usize = toks[2].parse().map_err(|_| err(lineno, "bad nnz count"))?;
                entries.reserve(if symmetric { 2 * nnz } else { nnz });
                size = Some((rows, cols));
            }
            Some((rows, cols)) => {
                let need = if field == "pattern" { 2 } else { 3 };
                if toks.len() < need {
                    return Err(err(lineno, "truncated entry"));
                }
                let r: usize = toks[0].parse().map_err(|_| err(lineno, "bad row index"))?;
                let c: usize = toks[1].parse().map_err(|_| err(lineno, "bad col index"))?;
                if r == 0 || c == 0 || r > rows || c > cols {
                    return Err(err(lineno, format!("coordinate ({r},{c}) out of range")));
                }
                let v: f32 = if field == "pattern" {
                    1.0
                } else {
                    toks[2].parse().map_err(|_| err(lineno, "bad value"))?
                };
                entries.push((r as u32 - 1, c as u32 - 1, v));
                if symmetric && r != c {
                    entries.push((c as u32 - 1, r as u32 - 1, v));
                }
            }
        }
    }
    let (rows, cols) = size.ok_or_else(|| err(0, "missing size line"))?;

    // Sort by (row, col) and sum duplicates.
    entries.sort_unstable_by_key(|(r, c, _)| (*r, *c));
    let mut dedup: Vec<(u32, u32, f32)> = Vec::with_capacity(entries.len());
    for (r, c, v) in entries {
        match dedup.last_mut() {
            Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
            _ => dedup.push((r, c, v)),
        }
    }
    // Assemble CSR.
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::with_capacity(dedup.len());
    let mut vals = Vec::with_capacity(dedup.len());
    row_ptr.push(0u32);
    let mut cursor = 0usize;
    for row in 0..rows as u32 {
        while cursor < dedup.len() && dedup[cursor].0 == row {
            col_idx.push(dedup[cursor].1);
            vals.push(dedup[cursor].2);
            cursor += 1;
        }
        row_ptr.push(col_idx.len() as u32);
    }
    Ok(CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, vals))
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
///
/// Returns a [`ParseMtxError`] for IO or parse failures.
pub fn read_mtx_file(path: impl AsRef<Path>) -> Result<CsrMatrix, ParseMtxError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| err(0, format!("{}: {e}", path.as_ref().display())))?;
    read_mtx(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_real_roundtrips() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 5\n\
                    1 1 1.5\n\
                    1 3 2.5\n\
                    2 2 -1.0\n\
                    3 1 4.0\n\
                    3 4 0.5\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 5));
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(m.col_idx(), &[0, 2, 1, 0, 3]);
        assert_eq!(m.vals(), &[1.5, 2.5, -1.0, 4.0, 0.5]);
    }

    #[test]
    fn symmetric_expands_both_triangles() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 2.0\n\
                    2 1 5.0\n\
                    3 2 7.0\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        assert_eq!(m.nnz(), 5); // diagonal once, off-diagonals twice
        let y = m.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![2.0 + 5.0, 5.0 + 7.0, 7.0]);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        assert_eq!(m.vals(), &[1.0, 1.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    1 1 2\n\
                    1 1 1.0\n\
                    1 1 2.0\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals(), &[3.0]);
    }

    #[test]
    fn unordered_entries_are_sorted() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 3\n\
                    2 2 9.0\n\
                    1 2 2.0\n\
                    1 1 1.0\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        assert_eq!(m.col_idx(), &[0, 1, 1]);
        assert_eq!(m.vals(), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn bad_inputs_produce_located_errors() {
        assert!(read_mtx("garbage\n".as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n1 1 1\n2 1 1.0\n";
        let e = read_mtx(oob.as_bytes()).expect_err("out of range");
        assert_eq!(e.line, 3);
        let arr = "%%MatrixMarket matrix array real general\n";
        assert!(read_mtx(arr.as_bytes()).is_err());
        let complex = "%%MatrixMarket matrix coordinate complex general\n";
        assert!(read_mtx(complex.as_bytes()).is_err());
    }

    #[test]
    fn parsed_matrix_drives_spmv() {
        use crate::kernel::KernelParams;
        use vproc::SystemKind;
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    4 4 6\n\
                    1 1 1.0\n1 4 2.0\n2 2 3.0\n3 1 4.0\n3 3 5.0\n4 2 6.0\n";
        let m = read_mtx(text.as_bytes()).expect("parses");
        let p = KernelParams::new(SystemKind::Pack, 16);
        let k = crate::spmv::build(&m, 1, &p);
        assert_eq!(k.expected[0].values.len(), 4);
    }
}
