//! The kernel abstraction: memory image + system-specific program +
//! scalar-reference expectations.

use std::sync::Arc;

use axi_proto::Addr;
use banked_mem::Storage;
use vproc::{Program, SystemKind};

/// Parameters shared by all kernel builders.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Which system the program targets (changes how strided/indexed
    /// accesses are expressed).
    pub kind: SystemKind,
    /// Maximum vector length in elements (from
    /// [`vproc::VprocConfig::max_vl`]).
    pub max_vl: usize,
    /// CVA6 scalar cycles per outer-loop iteration (row / column / node) —
    /// the overhead that bottlenecks short streams (paper Fig. 3d/3e).
    pub row_overhead: u32,
    /// CVA6 scalar cycles per inner chunk or column step.
    pub chunk_overhead: u32,
}

impl KernelParams {
    /// Defaults calibrated against Ara's published loop overheads.
    pub fn new(kind: SystemKind, max_vl: usize) -> Self {
        KernelParams {
            kind,
            max_vl,
            row_overhead: 14,
            chunk_overhead: 3,
        }
    }
}

/// Which dataflow a dense matrix-vector kernel uses (paper Fig. 3b/3c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Long contiguous row streams, one slow reduction per row.
    RowWise,
    /// Strided column streams, no reductions (many results at once).
    ColWise,
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataflow::RowWise => write!(f, "row-wise"),
            Dataflow::ColWise => write!(f, "col-wise"),
        }
    }
}

/// One expected output region for post-run verification.
#[derive(Debug, Clone)]
pub struct Check {
    /// Start address of the FP32 array.
    pub addr: Addr,
    /// Expected values (scalar reference), shared so relocating a kernel
    /// into an address window never deep-copies the reference data.
    pub values: Arc<[f32]>,
    /// Human-readable label for error messages.
    pub label: String,
}

/// A fully-prepared benchmark: image, program, and expectations.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name for reports (e.g. `"ismt"`).
    pub name: String,
    /// Initial memory contents as `(address, bytes)` regions. The byte
    /// payloads are shared (`Arc`), so cloning or relocating a kernel
    /// copies addresses, never data.
    pub image: Vec<(Addr, Arc<[u8]>)>,
    /// Required backing-store size (includes over-fetch slack).
    pub storage_size: usize,
    /// The vector program for the chosen system, shared with every
    /// engine that executes it (engines keep a cursor, not a copy).
    pub program: Arc<Program>,
    /// Expected memory contents after the run.
    pub expected: Vec<Check>,
    /// `true` when no timed store can overlap a timed load's region, so
    /// the engine's R-payload verification must report zero mismatches.
    pub read_only_streams: bool,
    /// Useful data bytes the kernel semantically moves (for reports).
    pub useful_bytes: u64,
}

impl Kernel {
    /// Writes the initial image into a backing store.
    ///
    /// # Panics
    ///
    /// Panics if a region exceeds the store.
    pub fn apply_image(&self, storage: &mut Storage) {
        for (addr, bytes) in &self.image {
            storage.write(*addr, bytes);
        }
    }

    /// Creates a backing store of the right size with the image applied.
    pub fn build_storage(&self) -> Storage {
        let mut s = Storage::new(self.storage_size);
        self.apply_image(&mut s);
        s
    }

    /// Relocates the kernel into an address-space window starting at
    /// `offset`: image regions, program addresses and expected-output
    /// checks all shift together, and `storage_size` grows to cover the
    /// window. Element indices stay relative to their (shifted) bases, so
    /// indirect kernels relocate unchanged. This is how a multi-requestor
    /// topology gives each requestor a private window of one shared
    /// backing store; `offset == 0` is the identity.
    pub fn rebased(&self, offset: Addr) -> Kernel {
        if offset == 0 {
            // The identity window: share everything, copy nothing.
            return self.clone();
        }
        Kernel {
            name: self.name.clone(),
            image: self
                .image
                .iter()
                .map(|(addr, bytes)| (addr + offset, Arc::clone(bytes)))
                .collect(),
            storage_size: self.storage_size + offset as usize,
            program: Arc::new(self.program.offset_addrs(offset)),
            expected: self
                .expected
                .iter()
                .map(|c| Check {
                    addr: c.addr + offset,
                    values: Arc::clone(&c.values),
                    label: c.label.clone(),
                })
                .collect(),
            read_only_streams: self.read_only_streams,
            useful_bytes: self.useful_bytes,
        }
    }

    /// Verifies all expected output regions against the store.
    ///
    /// Uses a relative tolerance of `1e-3` (vectorized accumulation order
    /// differs from the scalar reference; both are FP32).
    ///
    /// # Errors
    ///
    /// Returns the first mismatch as a human-readable message.
    pub fn verify(&self, storage: &Storage) -> Result<(), String> {
        for check in &self.expected {
            let got = storage.read_f32_slice(check.addr, check.values.len());
            for (k, (g, e)) in got.iter().zip(check.values.iter()).enumerate() {
                if !close(*g, *e) {
                    return Err(format!(
                        "{}: {}[{}] = {} expected {}",
                        self.name, check.label, k, g, e
                    ));
                }
            }
        }
        Ok(())
    }
}

/// FP32 comparison with relative tolerance (handles infinities exactly).
fn close(got: f32, expect: f32) -> bool {
    if got == expect {
        return true; // covers ±inf and exact values
    }
    if !got.is_finite() || !expect.is_finite() {
        return false; // one infinite/NaN, the other not (or different signs)
    }
    let scale = expect.abs().max(got.abs()).max(1.0);
    (got - expect).abs() <= 1e-3 * scale
}

/// Converts FP32 values to shared little-endian bytes for image regions.
pub(crate) fn f32_bytes(vals: &[f32]) -> Arc<[u8]> {
    vals.iter()
        .flat_map(|v| v.to_le_bytes())
        .collect::<Vec<u8>>()
        .into()
}

/// Converts u32 values to shared little-endian bytes for image regions.
pub(crate) fn u32_bytes(vals: &[u32]) -> Arc<[u8]> {
    vals.iter()
        .flat_map(|v| v.to_le_bytes())
        .collect::<Vec<u8>>()
        .into()
}

/// A bump allocator for kernel address layout: 64-byte aligned regions
/// starting at 4 KiB, with generous tail slack for full-beat over-fetch.
#[derive(Debug)]
pub(crate) struct Layout {
    next: Addr,
}

/// Over-fetch slack appended behind the last array.
const TAIL_SLACK: usize = 1 << 16;

impl Layout {
    pub(crate) fn new() -> Self {
        Layout { next: 0x1000 }
    }

    /// Reserves space for `n` 32-bit elements; returns the base address.
    pub(crate) fn alloc_elems(&mut self, n: usize) -> Addr {
        let a = (self.next + 63) & !63;
        self.next = a + 4 * n as Addr;
        a
    }

    /// Total storage size including tail slack.
    pub(crate) fn storage_size(&self) -> usize {
        self.next as usize + TAIL_SLACK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_handles_infinities_and_tolerance() {
        assert!(close(f32::INFINITY, f32::INFINITY));
        assert!(!close(f32::INFINITY, 1.0));
        assert!(close(100.0, 100.05));
        assert!(!close(100.0, 101.0));
        assert!(close(0.0, 0.0));
    }

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc_elems(10);
        let b = l.alloc_elems(100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 40);
        assert!(l.storage_size() > b as usize + 400);
    }

    #[test]
    fn rebased_kernel_verifies_in_its_window() {
        let k = Kernel {
            name: "toy".into(),
            image: vec![(0x100, f32_bytes(&[3.0, 4.0]))],
            storage_size: 0x1000,
            program: Program::default().into(),
            expected: vec![Check {
                addr: 0x100,
                values: vec![3.0, 4.0].into(),
                label: "in".into(),
            }],
            read_only_streams: true,
            useful_bytes: 8,
        };
        let moved = k.rebased(0x4000);
        assert_eq!(moved.image[0].0, 0x4100);
        assert_eq!(moved.expected[0].addr, 0x4100);
        assert_eq!(moved.storage_size, 0x5000);
        let s = moved.build_storage();
        moved.verify(&s).expect("window image verifies");
        assert_eq!(s.read_f32(0x4100), 3.0);
    }

    #[test]
    fn kernel_roundtrip_through_storage() {
        let k = Kernel {
            name: "toy".into(),
            image: vec![(0x100, f32_bytes(&[1.0, 2.0]))],
            storage_size: 0x1000,
            program: Program::default().into(),
            expected: vec![Check {
                addr: 0x100,
                values: vec![1.0, 2.0].into(),
                label: "in".into(),
            }],
            read_only_streams: true,
            useful_bytes: 8,
        };
        let s = k.build_storage();
        k.verify(&s).expect("image must verify against itself");
    }
}
