//! `synth` — the seeded random-kernel generator behind the differential
//! fuzzing engine (`axi_pack::differential`, `figures fuzz`).
//!
//! Every hand-written benchmark in this crate exercises one access
//! pattern; the generator here emits *arbitrary* well-formed kernels —
//! random strides (positive, negative, zero), random index distributions
//! (uniform, clustered, duplicate-heavy, sequential), mixed load/store
//! programs with chained compute and reductions — so scenario coverage
//! grows with fuzzing budget instead of with hand-written kernels.
//!
//! A scenario is generated *abstractly* (system-independent), then
//!
//! * lowered to a per-[`SystemKind`] [`vproc::Program`] exactly like the
//!   hand-written kernels are (PACK uses in-memory indexed accesses,
//!   BASE/IDEAL fetch indices into a scratch register), and
//! * executed by a host-side **reference model** ([scalar, program-order
//!   semantics identical to the engine's eager-functional execution) that
//!   produces the expected final memory image **bit-for-bit**.
//!
//! The same seed always produces the same scenario, the same programs and
//! the same reference memory — `figures fuzz --seed-start N --count 1`
//! reproduces any failure exactly.

use std::sync::Arc;

use axi_proto::Addr;
use vproc::{ProgramBuilder, SystemKind, VReg};

use crate::kernel::{f32_bytes, u32_bytes, Check, Kernel, KernelParams, Layout};

/// Stream RNG over the splitmix64 finalizer — the same mixing function
/// `simkit::sweep::point_seed` uses, so fuzz seeds and sweep seeds share
/// one reproducibility story. Self-contained (no external RNG crate) and
/// deterministic across platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as usize) as i64
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A finite f32 in roughly ±250, quantized so products and sums of a
    /// whole scenario stay comfortably inside f32 range.
    fn value(&mut self) -> f32 {
        (self.range_i64(-2000, 2000) as f32) / 8.0
    }
}

/// Generator knobs. Shrinking a failing seed re-generates the *same seed*
/// with smaller caps — the scenario stays in-family while the program and
/// element counts halve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Maximum abstract operations per scenario.
    pub max_ops: usize,
    /// Maximum array length in elements (also caps the vector lengths).
    pub max_elems: usize,
    /// Allow loads from output arrays (read-after-write traffic; the
    /// kernel then reports `read_only_streams = false` because timed R
    /// payloads may legitimately trail the eager functional state).
    pub allow_read_back: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_ops: 24,
            max_elems: 192,
            allow_read_back: true,
        }
    }
}

impl SynthConfig {
    /// The next rung of the shrinking ladder: halves the program length
    /// first, then the element count; `None` once minimal.
    pub fn shrunk(&self) -> Option<SynthConfig> {
        if self.max_ops > 2 {
            Some(SynthConfig {
                max_ops: (self.max_ops / 2).max(2),
                ..*self
            })
        } else if self.max_elems > 4 {
            Some(SynthConfig {
                max_elems: (self.max_elems / 2).max(4),
                ..*self
            })
        } else if self.allow_read_back {
            Some(SynthConfig {
                allow_read_back: false,
                ..*self
            })
        } else {
            None
        }
    }
}

/// Role of a scenario array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Load source, planted in the image.
    Data,
    /// Store target, zero-initialized.
    Output,
    /// Index array (u32 element indices), planted in the image and never
    /// written.
    Index,
    /// Reduction write-back slots.
    Scalars,
}

#[derive(Debug, Clone)]
struct Array {
    base: Addr,
    len: usize,
    role: Role,
}

/// Access mode of one abstract memory operation.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Unit-stride from element offset `off`.
    Unit { off: usize },
    /// Strided from element `start` with element stride `stride`.
    Strided { start: usize, stride: i32 },
    /// Indexed through `idx_arr` at element offset `idx_off`.
    Indexed { idx_arr: usize, idx_off: usize },
}

/// One abstract (system-independent) scenario operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    SetVl(usize),
    Scalar(u32),
    Load {
        vd: VReg,
        arr: usize,
        mode: Mode,
    },
    Store {
        vs: VReg,
        arr: usize,
        mode: Mode,
    },
    /// `vd = a·vs + b` (covers splat via `vs`-independent a=0).
    Affine {
        vd: VReg,
        vs: VReg,
        a: f32,
        b: f32,
    },
    Macc {
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
    },
    Add {
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
    },
    Mul {
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
    },
    Min {
        vd: VReg,
        vs1: VReg,
        vs2: VReg,
    },
    /// Reduction (`min` or sum) of `vs` into `vd[0]`, scalar-stored to
    /// `slot` of the scalars array.
    Reduce {
        min: bool,
        vd: VReg,
        vs: VReg,
        slot: usize,
    },
}

/// Registers the generator assigns data to; everything above is scratch
/// for the BASE/IDEAL index-fetch lowering.
const DATA_REGS: u8 = 12;
/// Scratch register for lowered index fetches.
const IDX_SCRATCH: VReg = 31;

/// A generated scenario: arrays, abstract program, and derived kernels.
#[derive(Debug, Clone)]
struct Scenario {
    arrays: Vec<Array>,
    idx_values: Vec<Vec<u32>>,  // per Index array, planted values
    data_values: Vec<Vec<f32>>, // per Data array, planted values
    ops: Vec<Op>,
    storage_size: usize,
    read_back_used: bool,
    initial_vl: usize,
}

/// A generated kernel plus its bit-exact reference result.
#[derive(Debug, Clone)]
pub struct SynthKernel {
    /// The runnable kernel (image, per-system program, tolerance checks).
    pub kernel: Kernel,
    /// The reference model's final memory — the *entire* backing store a
    /// run of `kernel` must reproduce byte-for-byte (differential check).
    pub final_mem: Arc<[u8]>,
    /// One-line scenario description for failure reports.
    pub summary: String,
}

/// Generates the scenario for `(seed, cfg)` at a given maximum vector
/// length. Deliberately independent of the system kind so every
/// [`SystemKind`] lowers the *same* abstract scenario.
fn generate(seed: u64, cfg: &SynthConfig, max_vl: usize) -> Scenario {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_F00D_u64);
    let vl_cap = max_vl.min(cfg.max_elems.max(4));
    let len = |rng: &mut SplitMix64| vl_cap + rng.below(cfg.max_elems.saturating_sub(vl_cap) + 1);

    let mut layout = Layout::new();
    let mut arrays = Vec::new();
    let mut data_values = Vec::new();
    let n_data = 1 + rng.below(3);
    for _ in 0..n_data {
        let l = len(&mut rng);
        arrays.push(Array {
            base: layout.alloc_elems(l),
            len: l,
            role: Role::Data,
        });
        data_values.push((0..l).map(|_| rng.value()).collect());
    }
    let n_out = 1 + rng.below(2);
    for _ in 0..n_out {
        let l = len(&mut rng);
        arrays.push(Array {
            base: layout.alloc_elems(l),
            len: l,
            role: Role::Output,
        });
    }
    arrays.push(Array {
        base: layout.alloc_elems(8),
        len: 8,
        role: Role::Scalars,
    });
    // Indices must be valid into *any* data/output array a later roll
    // pairs them with.
    let idx_bound = arrays
        .iter()
        .filter(|a| matches!(a.role, Role::Data | Role::Output))
        .map(|a| a.len)
        .min()
        .expect("at least one array") as u32;
    let n_idx = 1 + rng.below(2);
    let mut idx_values = Vec::new();
    for _ in 0..n_idx {
        let l = len(&mut rng);
        let values: Vec<u32> = match rng.below(4) {
            // Uniform over the valid range.
            0 => (0..l)
                .map(|_| rng.below(idx_bound as usize) as u32)
                .collect(),
            // Clustered in a small window (bank-conflict pressure).
            1 => {
                let window = 1 + rng.below(16) as u32;
                let center = rng.below(idx_bound as usize) as u32;
                (0..l)
                    .map(|_| (center + rng.below(window as usize) as u32) % idx_bound)
                    .collect()
            }
            // Duplicate-heavy: a tiny pool of distinct values.
            2 => {
                let pool: Vec<u32> = (0..1 + rng.below(4))
                    .map(|_| rng.below(idx_bound as usize) as u32)
                    .collect();
                (0..l).map(|_| pool[rng.below(pool.len())]).collect()
            }
            // Sequential ramp (gather that is secretly contiguous).
            _ => {
                let start = rng.below(idx_bound as usize) as u32;
                (0..l).map(|k| (start + k as u32) % idx_bound).collect()
            }
        };
        arrays.push(Array {
            base: layout.alloc_elems(l),
            len: l,
            role: Role::Index,
        });
        idx_values.push(values);
    }

    // The program: a SetVl first (the engine's initial vl is max_vl, which
    // may exceed short arrays), then random ops.
    let mut vl = 1 + rng.below(vl_cap);
    let mut ops = vec![Op::SetVl(vl)];
    let mut read_back_used = false;
    let mut any_store = false;
    let n_ops = 1 + rng.below(cfg.max_ops);
    let initial_vl = vl;

    let data_arrays: Vec<usize> = (0..arrays.len())
        .filter(|&i| arrays[i].role == Role::Data)
        .collect();
    let out_arrays: Vec<usize> = (0..arrays.len())
        .filter(|&i| arrays[i].role == Role::Output)
        .collect();
    let index_arrays: Vec<usize> = (0..arrays.len())
        .filter(|&i| arrays[i].role == Role::Index)
        .collect();
    for _ in 0..n_ops {
        let roll = rng.below(100);
        if roll < 10 {
            vl = 1 + rng.below(vl_cap);
            ops.push(Op::SetVl(vl));
        } else if roll < 16 {
            ops.push(Op::Scalar(1 + rng.below(12) as u32));
        } else if roll < 45 {
            // Load. Source: a data array, or (read-back) an output array.
            let arr = if cfg.allow_read_back && rng.chance(1, 4) {
                read_back_used = true;
                out_arrays[rng.below(out_arrays.len())]
            } else {
                data_arrays[rng.below(data_arrays.len())]
            };
            let mode = gen_mode(&mut rng, &arrays, &idx_values, &index_arrays, arr, vl);
            let vd = rng.below(DATA_REGS as usize) as VReg;
            ops.push(Op::Load { vd, arr, mode });
        } else if roll < 68 {
            // Compute.
            let vd = rng.below(DATA_REGS as usize) as VReg;
            let vs1 = rng.below(DATA_REGS as usize) as VReg;
            let vs2 = rng.below(DATA_REGS as usize) as VReg;
            ops.push(match rng.below(6) {
                0 => Op::Add { vd, vs1, vs2 },
                1 => Op::Mul { vd, vs1, vs2 },
                2 => Op::Min { vd, vs1, vs2 },
                3 => Op::Macc { vd, vs1, vs2 },
                4 => Op::Affine {
                    vd,
                    vs: vs1,
                    a: rng.value(),
                    b: 0.0,
                },
                _ => Op::Affine {
                    vd,
                    vs: vs1,
                    a: 0.0,
                    b: rng.value(),
                },
            });
        } else if roll < 92 {
            // Store to an output array.
            let arr = out_arrays[rng.below(out_arrays.len())];
            let mode = gen_mode(&mut rng, &arrays, &idx_values, &index_arrays, arr, vl);
            let vs = rng.below(DATA_REGS as usize) as VReg;
            ops.push(Op::Store { vs, arr, mode });
            any_store = true;
        } else {
            ops.push(Op::Reduce {
                min: rng.chance(1, 2),
                vd: rng.below(DATA_REGS as usize) as VReg,
                vs: rng.below(DATA_REGS as usize) as VReg,
                slot: rng.below(8),
            });
            any_store = true;
        }
    }
    if !any_store {
        // Guarantee at least one observable effect.
        ops.push(Op::Store {
            vs: 0,
            arr: out_arrays[0],
            mode: Mode::Unit { off: 0 },
        });
    }

    Scenario {
        storage_size: layout.storage_size(),
        arrays,
        idx_values,
        data_values,
        ops,
        read_back_used,
        initial_vl,
    }
}

/// Rolls an in-bounds access mode for `vl` elements of array `arr`.
fn gen_mode(
    rng: &mut SplitMix64,
    arrays: &[Array],
    idx_values: &[Vec<u32>],
    index_arrays: &[usize],
    arr: usize,
    vl: usize,
) -> Mode {
    let len = arrays[arr].len;
    debug_assert!(len >= vl);
    match rng.below(3) {
        0 => Mode::Unit {
            off: rng.below(len - vl + 1),
        },
        1 => {
            // Stride such that start + k·stride stays in 0..len for all
            // k < vl; negatives walk backwards from a high start.
            let smax = if vl > 1 {
                ((len - 1) / (vl - 1)).min(6)
            } else {
                6
            };
            let stride = rng.range_i64(-(smax as i64), smax as i64) as i32;
            let span = (vl as i64 - 1) * stride.unsigned_abs() as i64;
            let start = if stride >= 0 {
                rng.below(len - span as usize)
            } else {
                span as usize + rng.below(len - span as usize)
            };
            Mode::Strided { start, stride }
        }
        _ => {
            let i = rng.below(index_arrays.len());
            let idx_arr = index_arrays[i];
            let idx_len = idx_values[i].len();
            Mode::Indexed {
                idx_arr,
                idx_off: rng.below(idx_len - vl + 1),
            }
        }
    }
}

/// Lowers the scenario to a program for one system kind, mirroring how
/// the hand-written kernels express each access pattern.
fn lower(s: &Scenario, kind: SystemKind) -> vproc::Program {
    let mut b = ProgramBuilder::new();
    let addr_of = |arr: usize, elem: usize| s.arrays[arr].base + 4 * elem as Addr;
    for op in &s.ops {
        b = match *op {
            Op::SetVl(vl) => b.set_vl(vl),
            Op::Scalar(c) => b.scalar(c),
            Op::Load { vd, arr, mode } => match mode {
                Mode::Unit { off } => b.vle(vd, addr_of(arr, off)),
                Mode::Strided { start, stride } => b.vlse(vd, addr_of(arr, start), stride),
                Mode::Indexed { idx_arr, idx_off } => {
                    let idx_addr = addr_of(idx_arr, idx_off);
                    match kind {
                        SystemKind::Pack => b.vlimxei(vd, idx_addr, s.arrays[arr].base),
                        _ => b.vle_index(IDX_SCRATCH, idx_addr).vluxei(
                            vd,
                            IDX_SCRATCH,
                            s.arrays[arr].base,
                        ),
                    }
                }
            },
            Op::Store { vs, arr, mode } => match mode {
                Mode::Unit { off } => b.vse(vs, addr_of(arr, off)),
                Mode::Strided { start, stride } => b.vsse(vs, addr_of(arr, start), stride),
                Mode::Indexed { idx_arr, idx_off } => {
                    let idx_addr = addr_of(idx_arr, idx_off);
                    match kind {
                        SystemKind::Pack => b.vsimxei(vs, idx_addr, s.arrays[arr].base),
                        _ => b.vle_index(IDX_SCRATCH, idx_addr).vsuxei(
                            vs,
                            IDX_SCRATCH,
                            s.arrays[arr].base,
                        ),
                    }
                }
            },
            Op::Affine { vd, vs, a, b: c } => {
                if a == 0.0 && c == 0.0 {
                    b.vmv_vf(vd, 0.0)
                } else if a == 0.0 {
                    b.vfadd_vf(vd, c, vs)
                } else {
                    b.vfmul_vf(vd, a, vs)
                }
            }
            Op::Macc { vd, vs1, vs2 } => b.vfmacc(vd, vs1, vs2),
            Op::Add { vd, vs1, vs2 } => b.vfadd(vd, vs1, vs2),
            Op::Mul { vd, vs1, vs2 } => b.vfmul(vd, vs1, vs2),
            Op::Min { vd, vs1, vs2 } => b.vfmin(vd, vs1, vs2),
            Op::Reduce { min, vd, vs, slot } => {
                let addr = addr_of(
                    s.arrays
                        .iter()
                        .position(|a| a.role == Role::Scalars)
                        .unwrap(),
                    slot,
                );
                let b2 = if min {
                    b.vfredmin(vd, vs)
                } else {
                    b.vfredsum(vd, vs)
                };
                b2.scalar_store_f32(vd, addr)
            }
        };
    }
    b.build()
}

/// The host-side reference model: executes the abstract scenario with the
/// engine's eager-functional semantics (program order, element order
/// `0..vl`, f32 arithmetic) and returns the final memory image.
// Indexed `0..vl` loops deliberately mirror `vproc::Engine`'s functional
// execution statement for statement, so a reviewer can diff the two
// semantics side by side; iterator rewrites would obscure that.
#[allow(clippy::needless_range_loop)]
fn reference(s: &Scenario, image: &[(Addr, Arc<[u8]>)], max_vl: usize) -> Vec<u8> {
    let mut mem = vec![0u8; s.storage_size];
    // The reference model starts from the *same* image the simulator
    // loads — one source of planted bytes, no drift possible.
    for (addr, bytes) in image {
        mem[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
    }
    let mut regs = vec![vec![0f32; max_vl]; 32];
    let mut vl = max_vl;
    let rd_f32 = |mem: &[u8], a: Addr| {
        f32::from_le_bytes(mem[a as usize..a as usize + 4].try_into().expect("4 bytes"))
    };
    let rd_u32 = |mem: &[u8], a: Addr| {
        u32::from_le_bytes(mem[a as usize..a as usize + 4].try_into().expect("4 bytes"))
    };
    let wr_f32 = |mem: &mut [u8], a: Addr, v: f32| {
        mem[a as usize..a as usize + 4].copy_from_slice(&v.to_le_bytes());
    };
    let addr_of = |arr: usize, elem: usize| s.arrays[arr].base + 4 * elem as Addr;
    let elem_addr = |mode: Mode, arr: usize, k: usize, mem: &[u8]| -> Addr {
        match mode {
            Mode::Unit { off } => addr_of(arr, off + k),
            Mode::Strided { start, stride } => {
                (addr_of(arr, start) as i64 + k as i64 * stride as i64 * 4) as Addr
            }
            Mode::Indexed { idx_arr, idx_off } => {
                let i = rd_u32(mem, addr_of(idx_arr, idx_off + k));
                s.arrays[arr].base + 4 * i as Addr
            }
        }
    };
    for op in &s.ops {
        match *op {
            Op::SetVl(v) => vl = v,
            Op::Scalar(_) => {}
            Op::Load { vd, arr, mode } => {
                for k in 0..vl {
                    let a = elem_addr(mode, arr, k, &mem);
                    regs[vd as usize][k] = rd_f32(&mem, a);
                }
            }
            Op::Store { vs, arr, mode } => {
                for k in 0..vl {
                    let a = elem_addr(mode, arr, k, &mem);
                    let v = regs[vs as usize][k];
                    wr_f32(&mut mem, a, v);
                }
            }
            Op::Affine { vd, vs, a, b } => {
                for k in 0..vl {
                    regs[vd as usize][k] = if a == 0.0 && b == 0.0 {
                        0.0
                    } else if a == 0.0 {
                        b + regs[vs as usize][k]
                    } else {
                        a * regs[vs as usize][k]
                    };
                }
            }
            Op::Macc { vd, vs1, vs2 } => {
                for k in 0..vl {
                    regs[vd as usize][k] += regs[vs1 as usize][k] * regs[vs2 as usize][k];
                }
            }
            Op::Add { vd, vs1, vs2 } => {
                for k in 0..vl {
                    regs[vd as usize][k] = regs[vs1 as usize][k] + regs[vs2 as usize][k];
                }
            }
            Op::Mul { vd, vs1, vs2 } => {
                for k in 0..vl {
                    regs[vd as usize][k] = regs[vs1 as usize][k] * regs[vs2 as usize][k];
                }
            }
            Op::Min { vd, vs1, vs2 } => {
                for k in 0..vl {
                    regs[vd as usize][k] = regs[vs1 as usize][k].min(regs[vs2 as usize][k]);
                }
            }
            Op::Reduce { min, vd, vs, slot } => {
                let mut acc = if min { f32::INFINITY } else { 0.0 };
                for k in 0..vl {
                    let v = regs[vs as usize][k];
                    acc = if min { acc.min(v) } else { acc + v };
                }
                regs[vd as usize][0] = acc;
                let scalars = s
                    .arrays
                    .iter()
                    .position(|a| a.role == Role::Scalars)
                    .unwrap();
                wr_f32(&mut mem, addr_of(scalars, slot), acc);
            }
        }
    }
    mem
}

/// Assembles the planted data and index arrays as shared image regions —
/// the single source of initial-memory bytes for both the simulator
/// ([`Kernel::image`]) and the reference model.
fn make_image(s: &Scenario) -> Vec<(Addr, Arc<[u8]>)> {
    let mut image = Vec::new();
    let mut data_i = 0;
    let mut idx_i = 0;
    for a in &s.arrays {
        match a.role {
            Role::Data => {
                image.push((a.base, f32_bytes(&s.data_values[data_i])));
                data_i += 1;
            }
            Role::Index => {
                image.push((a.base, u32_bytes(&s.idx_values[idx_i])));
                idx_i += 1;
            }
            _ => {}
        }
    }
    image
}

/// Builds the synthetic kernel for `(seed, cfg)` on the system selected
/// by `params`, together with its bit-exact reference memory.
///
/// Two calls with the same seed and config but different system kinds
/// produce the *same* scenario (same image, same layout, same reference
/// memory) with differently-lowered programs — the property the
/// differential runner checks: all three systems must reproduce the
/// reference memory byte-for-byte.
///
/// # Panics
///
/// Panics if `cfg.max_ops` or `cfg.max_elems` is zero.
pub fn build(seed: u64, cfg: &SynthConfig, params: &KernelParams) -> SynthKernel {
    build_kinds(seed, cfg, params.max_vl, &[params.kind])
        .pop()
        .expect("one kind in, one kernel out")
}

/// [`build`] for several system kinds at once: the scenario is generated
/// and the reference model executed a single time, then lowered once per
/// kind — the shape the cross-system differential runner wants (it runs
/// every seed on all three systems).
///
/// # Panics
///
/// Panics if `cfg.max_ops` or `cfg.max_elems` is zero.
pub fn build_kinds(
    seed: u64,
    cfg: &SynthConfig,
    max_vl: usize,
    kinds: &[SystemKind],
) -> Vec<SynthKernel> {
    assert!(
        cfg.max_ops > 0 && cfg.max_elems > 0,
        "degenerate SynthConfig"
    );
    let s = generate(seed, cfg, max_vl);
    let image = make_image(&s);
    let final_mem: Arc<[u8]> = reference(&s, &image, max_vl).into();

    // Tolerance-based expectations over every written region (outputs and
    // scalar slots), derived from the reference memory; the differential
    // runner additionally compares the whole store bit-for-bit.
    let expected: Vec<Check> = s
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.role, Role::Output | Role::Scalars))
        .map(|(i, a)| {
            let values: Vec<f32> = (0..a.len)
                .map(|k| {
                    let at = a.base as usize + 4 * k;
                    f32::from_le_bytes(final_mem[at..at + 4].try_into().expect("4 bytes"))
                })
                .collect();
            Check {
                addr: a.base,
                values: values.into(),
                label: format!("arr{i}"),
            }
        })
        .collect();

    let (loads, stores) = s.ops.iter().fold((0usize, 0usize), |(l, st), op| match op {
        Op::Load { .. } => (l + 1, st),
        Op::Store { .. } | Op::Reduce { .. } => (l, st + 1),
        _ => (l, st),
    });
    let moved: u64 = 4 * (loads + stores) as u64 * s.initial_vl as u64;
    let summary = format!(
        "{} ops ({loads} loads, {stores} stores), {} arrays, vl0={}{}",
        s.ops.len(),
        s.arrays.len(),
        s.initial_vl,
        if s.read_back_used { ", read-back" } else { "" },
    );
    kinds
        .iter()
        .map(|&kind| SynthKernel {
            summary: summary.clone(),
            kernel: Kernel {
                name: format!("synth-{seed:#x}"),
                image: image.clone(),
                storage_size: s.storage_size,
                program: lower(&s, kind).into(),
                expected: expected.clone(),
                read_only_streams: !s.read_back_used,
                useful_bytes: moved.max(4),
            },
            final_mem: final_mem.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::VInsn;

    fn params(kind: SystemKind) -> KernelParams {
        KernelParams::new(kind, 64)
    }

    #[test]
    fn same_seed_same_scenario() {
        let cfg = SynthConfig::default();
        let a = build(7, &cfg, &params(SystemKind::Pack));
        let b = build(7, &cfg, &params(SystemKind::Pack));
        assert_eq!(a.kernel.program.insns(), b.kernel.program.insns());
        assert_eq!(a.final_mem, b.final_mem);
        assert_ne!(
            build(8, &cfg, &params(SystemKind::Pack)).final_mem,
            a.final_mem,
            "different seeds must differ"
        );
    }

    #[test]
    fn kinds_share_image_and_reference() {
        let cfg = SynthConfig::default();
        for seed in 0..32u64 {
            let p = build(seed, &cfg, &params(SystemKind::Pack));
            let b = build(seed, &cfg, &params(SystemKind::Base));
            let i = build(seed, &cfg, &params(SystemKind::Ideal));
            assert_eq!(p.final_mem, b.final_mem, "seed {seed}");
            assert_eq!(p.final_mem, i.final_mem, "seed {seed}");
            assert_eq!(p.kernel.image, b.kernel.image, "seed {seed}");
            assert_eq!(p.kernel.storage_size, i.kernel.storage_size, "seed {seed}");
            // BASE/IDEAL never carry in-memory indexed forms; PACK never
            // fetches indices into registers.
            assert!(!b
                .kernel
                .program
                .insns()
                .iter()
                .any(|x| matches!(x, VInsn::Vlimxei { .. } | VInsn::Vsimxei { .. })));
            assert!(!p
                .kernel
                .program
                .insns()
                .iter()
                .any(|x| matches!(x, VInsn::Vluxei { .. } | VInsn::Vsuxei { .. })));
        }
    }

    #[test]
    fn reference_verifies_its_own_kernel_checks() {
        // The kernel's tolerance checks are derived from the reference
        // memory, so a storage holding exactly the reference must verify.
        let cfg = SynthConfig::default();
        for seed in 0..32u64 {
            let sk = build(seed, &cfg, &params(SystemKind::Base));
            let mut storage = banked_mem::Storage::new(sk.kernel.storage_size);
            storage.as_bytes_mut().copy_from_slice(&sk.final_mem);
            sk.kernel.verify(&storage).expect("reference self-verifies");
        }
    }

    #[test]
    fn generated_addresses_stay_in_bounds() {
        let cfg = SynthConfig::default();
        for seed in 0..64u64 {
            let sk = build(seed, &cfg, &params(SystemKind::Base));
            let size = sk.kernel.storage_size as u64;
            for insn in sk.kernel.program.insns() {
                let ok = |a: Addr| a.is_multiple_of(4) && a + 4 <= size;
                match *insn {
                    VInsn::Vle { base, .. } | VInsn::Vse { base, .. } => assert!(ok(base)),
                    VInsn::Vlse { base, .. } | VInsn::Vsse { base, .. } => assert!(ok(base)),
                    VInsn::Vluxei { base, .. } | VInsn::Vsuxei { base, .. } => assert!(ok(base)),
                    VInsn::ScalarStoreF32 { addr, .. } => assert!(ok(addr)),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn shrink_ladder_terminates() {
        let mut cfg = SynthConfig::default();
        let mut steps = 0;
        while let Some(next) = cfg.shrunk() {
            assert!(
                next.max_ops < cfg.max_ops
                    || next.max_elems < cfg.max_elems
                    || (cfg.allow_read_back && !next.allow_read_back),
                "shrink must make progress"
            );
            cfg = next;
            steps += 1;
            assert!(steps < 64, "ladder runs away");
        }
        assert_eq!(cfg.max_ops, 2);
        assert!(cfg.max_elems <= 4);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(2);
        assert_ne!(a.next_u64(), c.next_u64());
        // below() stays in range.
        for n in 1..50usize {
            assert!(a.below(n) < n);
        }
    }
}
