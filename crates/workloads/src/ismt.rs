//! `ismt` — in-situ matrix transpose (strided loads *and* stores).
//!
//! Transposes a square matrix in place by swapping the row segment
//! `A[i][i+1..n]` with the column segment `A[i+1..n][i]` for every `i`.
//! Row segments are contiguous; column segments are strided by the matrix
//! dimension. Ara's conservative read-write ordering serializes the load
//! and store phases, capping R-bus utilization at 50 % (paper §III-B).

use vproc::ProgramBuilder;

use crate::dense::DenseMatrix;
use crate::kernel::{f32_bytes, Check, Kernel, KernelParams, Layout};

/// Builds the in-situ transpose kernel for an `n × n` matrix.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn build(n: usize, seed: u64, p: &KernelParams) -> Kernel {
    assert!(n >= 2, "transpose needs at least a 2x2 matrix");
    let m = DenseMatrix::random(n, n, seed);
    let mut layout = Layout::new();
    let a = layout.alloc_elems(n * n);
    let mut b = ProgramBuilder::new();
    for i in 0..n - 1 {
        b = b.scalar(p.row_overhead);
        let mut j = i + 1;
        while j < n {
            let len = (n - j).min(p.max_vl);
            b = b
                .set_vl(len)
                .scalar(p.chunk_overhead)
                .vle(1, a + 4 * (i * n + j) as u64)
                .vlse(2, a + 4 * (j * n + i) as u64, n as i32)
                .vsse(1, a + 4 * (j * n + i) as u64, n as i32)
                .vse(2, a + 4 * (i * n + j) as u64);
            j += len;
        }
    }
    let transposed = m.transposed();
    Kernel {
        name: "ismt".into(),
        image: vec![(a, f32_bytes(m.as_slice()))],
        storage_size: layout.storage_size(),
        program: b.build().into(),
        expected: vec![Check {
            addr: a,
            values: transposed.as_slice().to_vec().into(),
            label: "A^T".into(),
        }],
        // Loads and stores interleave over the same matrix inside the
        // instruction window, so timed R payloads may post-date eager
        // stores; functional results stay exact.
        read_only_streams: false,
        useful_bytes: 2 * 4 * (n * n - n) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::SystemKind;

    #[test]
    fn program_touches_every_off_diagonal_pair_once() {
        let p = KernelParams::new(SystemKind::Pack, 16);
        let k = build(8, 1, &p);
        // 4 memory insns per chunk; n-1 rows, each one chunk at vl=16.
        let mems = k.program.insns().iter().filter(|i| i.is_mem()).count();
        assert_eq!(mems, 7 * 4);
        assert_eq!(k.expected[0].values.len(), 64);
    }

    #[test]
    fn expected_is_the_transpose() {
        let p = KernelParams::new(SystemKind::Pack, 32);
        let k = build(6, 3, &p);
        let m = DenseMatrix::random(6, 6, 3);
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(k.expected[0].values[r * 6 + c], m.at(c, r));
            }
        }
    }

    #[test]
    fn chunking_respects_max_vl() {
        let p = KernelParams::new(SystemKind::Base, 4);
        let k = build(10, 2, &p);
        for insn in k.program.insns() {
            if let vproc::VInsn::SetVl { vl } = insn {
                assert!(*vl <= 4);
            }
        }
    }
}
