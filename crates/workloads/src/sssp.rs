//! `sssp` — single-source shortest paths via vectorized Bellman-Ford.
//!
//! The graph is a weighted CSR matrix whose row *v* holds the incoming
//! edges of node *v*. Each sweep relaxes every node: gather the
//! predecessors' distances, add the edge weights (min-plus semiring),
//! reduce with `vfredmin`, and merge candidates into the distance vector
//! with an element-wise min pass.

use vproc::ProgramBuilder;

use crate::kernel::{f32_bytes, u32_bytes, Check, Kernel, KernelParams, Layout};
use crate::prank::emit_prefill;
use crate::sparse::CsrMatrix;
use crate::spmv::{emit_sparse_sweep, CsrImage, Semiring};

/// Builds an SSSP kernel: `sweeps` Bellman-Ford relaxation sweeps from
/// node `source`.
///
/// # Panics
///
/// Panics if `sweeps` is zero or `source` is out of range.
pub fn build(graph: &CsrMatrix, source: usize, sweeps: usize, p: &KernelParams) -> Kernel {
    assert!(sweeps > 0, "sssp needs at least one sweep");
    assert!(source < graph.rows(), "source node out of range");
    let n = graph.rows();
    let mut init = vec![f32::INFINITY; n];
    init[source] = 0.0;

    let mut layout = Layout::new();
    let col = layout.alloc_elems(graph.nnz().max(1));
    let val = layout.alloc_elems(graph.nnz().max(1));
    let dist = layout.alloc_elems(n);
    let cand = layout.alloc_elems(n);
    let img = CsrImage { col, val };

    let mut b = ProgramBuilder::new();
    for _ in 0..sweeps {
        // cand = +inf, then one min-plus sweep fills candidates.
        b = emit_prefill(b, cand, n, f32::INFINITY, p);
        b = emit_sparse_sweep(b, graph, img, dist, cand, Semiring::MinPlus, p);
        // dist = min(dist, cand), element-wise.
        let mut r = 0;
        while r < n {
            let len = (n - r).min(p.max_vl);
            b = b
                .set_vl(len)
                .scalar(p.chunk_overhead)
                .vle(1, dist + 4 * r as u64)
                .vle(2, cand + 4 * r as u64)
                .vfmin(3, 1, 2)
                .vse(3, dist + 4 * r as u64);
            r += len;
        }
    }

    // Scalar reference with the same sweep structure.
    let mut d = init.clone();
    for _ in 0..sweeps {
        let cand_ref = graph.min_plus(&d);
        for v in 0..n {
            d[v] = d[v].min(cand_ref[v]);
        }
    }

    Kernel {
        name: "sssp".into(),
        image: vec![
            (col, u32_bytes(graph.col_idx())),
            (val, f32_bytes(graph.vals())),
            (dist, f32_bytes(&init)),
        ],
        storage_size: layout.storage_size(),
        program: b.build().into(),
        expected: vec![Check {
            addr: dist,
            values: d.into(),
            label: "dist".into(),
        }],
        // The merge pass loads and stores `dist` within the instruction
        // window, so timed R payloads may post-date eager stores.
        read_only_streams: false,
        useful_bytes: (sweeps * (8 * graph.nnz() + 16 * n)) as u64,
    }
}

/// Scalar Dijkstra for cross-checking the Bellman-Ford limit (exact
/// shortest paths once enough sweeps have run).
pub fn dijkstra(graph: &CsrMatrix, source: usize) -> Vec<f32> {
    // Build the outgoing adjacency from the incoming-edge CSR.
    let n = graph.rows();
    let mut out: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
    for v in 0..n {
        for k in graph.row_range(v) {
            let u = graph.col_idx()[k] as usize;
            out[u].push((v, graph.vals()[k]));
        }
    }
    let mut dist = vec![f32::INFINITY; n];
    dist[source] = 0.0;
    let mut visited = vec![false; n];
    for _ in 0..n {
        let mut best = None;
        for v in 0..n {
            if !visited[v] && dist[v].is_finite() && best.is_none_or(|b: usize| dist[v] < dist[b]) {
                best = Some(v);
            }
        }
        let Some(u) = best else { break };
        visited[u] = true;
        for &(v, w) in &out[u] {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::SystemKind;

    #[test]
    fn enough_sweeps_match_dijkstra() {
        let g = CsrMatrix::random_graph(24, 4.0, 7);
        let p = KernelParams::new(SystemKind::Pack, 16);
        // n-1 sweeps guarantee convergence.
        let k = build(&g, 0, 23, &p);
        let exact = dijkstra(&g, 0);
        for (v, (got, want)) in k.expected[0].values.iter().zip(exact.iter()).enumerate() {
            assert!(
                (got == want) || (got - want).abs() < 1e-4,
                "node {v}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn source_distance_is_zero() {
        let g = CsrMatrix::random_graph(16, 3.0, 1);
        let p = KernelParams::new(SystemKind::Base, 16);
        let k = build(&g, 5, 2, &p);
        assert_eq!(k.expected[0].values[5], 0.0);
    }

    #[test]
    fn distances_monotonically_improve_with_sweeps() {
        let g = CsrMatrix::random_graph(20, 3.0, 2);
        let p = KernelParams::new(SystemKind::Pack, 16);
        let k1 = build(&g, 0, 1, &p);
        let k3 = build(&g, 0, 3, &p);
        for (a, b) in k3.expected[0]
            .values
            .iter()
            .zip(k1.expected[0].values.iter())
        {
            assert!(a <= b, "more sweeps must not lengthen paths");
        }
    }
}
