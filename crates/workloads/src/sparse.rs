//! Compressed sparse row (CSR) matrices and synthetic generators.
//!
//! The paper evaluates indirect workloads on SuiteSparse matrices in CSR
//! format with 32-bit float values and 32-bit integer column indices. This
//! reproduction generates seeded synthetic CSR matrices whose controlling
//! parameter — average nonzeros per row — is swept exactly as in the
//! paper's Fig. 3e (2 to 390 nonzeros per row).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CSR sparse matrix: FP32 values, `u32` column indices.
///
/// Invariants: `row_ptr` is monotone with `row_ptr[0] == 0` and
/// `row_ptr[rows] == nnz`; all column indices are `< cols`; within a row,
/// column indices are strictly increasing.
///
/// # Examples
///
/// ```
/// use workloads::CsrMatrix;
///
/// let m = CsrMatrix::random(16, 16, 4.0, 42);
/// assert_eq!(m.rows(), 16);
/// let y = m.matvec(&vec![1.0; 16]);
/// assert_eq!(y.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the CSR invariants are violated.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        vals: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            row_ptr[rows] as usize,
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert_eq!(col_idx.len(), vals.len(), "one value per index");
        for r in 0..rows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be monotone");
            let range = row_ptr[r] as usize..row_ptr[r + 1] as usize;
            for w in col_idx[range].windows(2) {
                assert!(w[0] < w[1], "column indices must strictly increase");
            }
        }
        assert!(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Generates a random CSR matrix with roughly `avg_nnz_per_row`
    /// nonzeros per row (clamped to the column count) and seeded values in
    /// `[0.5, 1.5)`.
    pub fn random(rows: usize, cols: usize, avg_nnz_per_row: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for _ in 0..rows {
            // Row lengths vary ±50% around the average, like real meshes.
            let lo = (avg_nnz_per_row * 0.5).floor() as usize;
            let hi = (avg_nnz_per_row * 1.5).ceil() as usize;
            let nnz = rng.gen_range(lo..=hi).min(cols);
            let mut cols_in_row = sample_distinct(&mut rng, nnz, cols);
            cols_in_row.sort_unstable();
            for c in cols_in_row {
                col_idx.push(c as u32);
                vals.push(rng.gen_range(0.5..1.5));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, vals)
    }

    /// Generates a random weighted directed graph as a square CSR matrix
    /// where row *v* holds the *incoming* edges of node *v*, with positive
    /// weights in `[1, 10)` — the representation `sssp` relaxes over.
    pub fn random_graph(nodes: usize, avg_degree: f64, seed: u64) -> Self {
        let mut m = CsrMatrix::random(nodes, nodes, avg_degree, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ WEIGHT_SEED_SALT);
        for v in m.vals.iter_mut() {
            *v = rng.gen_range(1.0..10.0);
        }
        m
    }

    /// Row-normalizes the matrix so each *column* sums to 1 over outgoing
    /// edges — the stochastic matrix PageRank iterates. Rows here are
    /// incoming edges, so normalization divides each entry by the source
    /// node's out-degree.
    pub fn normalize_for_pagerank(&mut self) {
        let mut out_degree = vec![0u32; self.cols];
        for &c in &self.col_idx {
            out_degree[c as usize] += 1;
        }
        for (k, &c) in self.col_idx.iter().enumerate() {
            let d = out_degree[c as usize].max(1) as f32;
            self.vals[k] = 1.0 / d;
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Average nonzeros per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        self.nnz() as f64 / self.rows as f64
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// The half-open nonzero range of row `r`.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize
    }

    /// Reference sparse matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row_range(r)
                    .map(|k| self.vals[k] * x[self.col_idx[k] as usize])
                    .sum()
            })
            .collect()
    }

    /// Reference min-plus product: `y[r] = min_k (vals[k] + x[col[k]])`,
    /// `+inf` for empty rows — one Bellman-Ford relaxation sweep.
    pub fn min_plus(&self, x: &[f32]) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                self.row_range(r)
                    .map(|k| self.vals[k] + x[self.col_idx[k] as usize])
                    .fold(f32::INFINITY, f32::min)
            })
            .collect()
    }
}

/// Salt separating weight generation from structure generation.
const WEIGHT_SEED_SALT: u64 = 0x5555_0000_aaaa_1111;

/// Samples `n` distinct values from `0..range` (n ≤ range).
fn sample_distinct(rng: &mut StdRng, n: usize, range: usize) -> Vec<usize> {
    if n * 4 >= range {
        // Dense case: shuffle-prefix.
        let mut all: Vec<usize> = (0..range).collect();
        for i in 0..n {
            let j = rng.gen_range(i..range);
            all.swap(i, j);
        }
        all.truncate(n);
        all
    } else {
        // Sparse case: rejection sampling.
        let mut seen = std::collections::HashSet::with_capacity(n * 2);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let c = rng.gen_range(0..range);
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_matrix_upholds_invariants() {
        // from_parts re-checks all invariants on construction.
        let m = CsrMatrix::random(64, 64, 8.0, 1);
        assert!(m.nnz() > 0);
        assert!((m.avg_nnz_per_row() - 8.0).abs() < 4.0);
        let rebuilt = CsrMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            m.vals().to_vec(),
        );
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            CsrMatrix::random(32, 32, 4.0, 9),
            CsrMatrix::random(32, 32, 4.0, 9)
        );
    }

    #[test]
    fn matvec_matches_dense_expansion() {
        let m = CsrMatrix::random(16, 16, 5.0, 3);
        let x: Vec<f32> = (0..16).map(|i| 1.0 + i as f32 * 0.25).collect();
        let y = m.matvec(&x);
        for (r, &yr) in y.iter().enumerate() {
            let mut expect = 0.0f32;
            for k in m.row_range(r) {
                expect += m.vals()[k] * x[m.col_idx()[k] as usize];
            }
            assert_eq!(yr, expect);
        }
    }

    #[test]
    fn min_plus_empty_row_is_infinite() {
        let m = CsrMatrix::from_parts(2, 2, vec![0, 0, 1], vec![0], vec![3.0]);
        let y = m.min_plus(&[1.0, 2.0]);
        assert_eq!(y[0], f32::INFINITY);
        assert_eq!(y[1], 4.0);
    }

    #[test]
    fn pagerank_normalization_unit_out_degree_columns() {
        let mut m = CsrMatrix::random(32, 32, 6.0, 5);
        m.normalize_for_pagerank();
        // Sum over each column equals 1 (every outgoing edge has weight
        // 1/out_degree).
        let mut col_sum = [0.0f32; 32];
        for (k, &c) in m.col_idx().iter().enumerate() {
            col_sum[c as usize] += m.vals()[k];
        }
        for (c, s) in col_sum.iter().enumerate() {
            if *s != 0.0 {
                assert!((s - 1.0).abs() < 1e-5, "column {c} sums to {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_indices_rejected() {
        let _ = CsrMatrix::from_parts(1, 4, vec![0, 2], vec![3, 1], vec![1.0, 2.0]);
    }
}
