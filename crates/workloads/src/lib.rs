//! `workloads` — the paper's six benchmarks as vector programs plus the
//! data structures and generators they run on.
//!
//! Each kernel builder produces a [`Kernel`]: an initial memory image, a
//! [`vproc::Program`] specialized for one of the three systems (BASE /
//! PACK / IDEAL — they differ in how indexed accesses are expressed), and
//! scalar-reference expectations for post-run verification.
//!
//! The benchmarks (paper §III-A):
//!
//! | kernel | access pattern | data |
//! |--------|----------------|------|
//! | `ismt` | strided loads *and* stores | random square matrix |
//! | `gemv` | contiguous (row-wise) or strided (column-wise) | random matrix |
//! | `trmv` | like gemv with triangular, varying-length streams | random upper-triangular |
//! | `spmv` | indirect gathers through CSR column indices | synthetic CSR |
//! | `prank`| indirect gathers, iterated | synthetic graph |
//! | `sssp` | indirect gathers with min-plus semiring | synthetic weighted graph |
//! | `scatter` | indirect *writes* (extension beyond the paper) | random permutation |
//!
//! The paper evaluates on SuiteSparse matrices; this reproduction
//! substitutes seeded synthetic CSR matrices whose controlling parameter —
//! average nonzeros per row — matches the paper's sweeps (see DESIGN.md).
//! When the real inputs are available, [`mtx::read_mtx_file`] loads them
//! directly from Matrix Market files.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dense;
pub mod gemv;
pub mod ismt;
pub mod kernel;
pub mod mtx;
pub mod prank;
pub mod scatter;
pub mod sparse;
pub mod spmv;
pub mod sssp;
pub mod synth;
pub mod trmv;

pub use dense::DenseMatrix;
pub use kernel::{Dataflow, Kernel, KernelParams};
pub use sparse::CsrMatrix;
