//! `spmv` — sparse matrix-vector multiply over CSR (indirect gathers).
//!
//! Per row, the kernel gathers `x[col[k]]` through the column-index array.
//! On PACK this is one `vlimxei` per chunk — an AXI-Pack indirect burst
//! whose index traffic stays memory-side. BASE and IDEAL first load the
//! indices into a vector register (`vle`), then gather (`vluxei`);
//! the index load is marked so bus statistics can separate it
//! (paper Fig. 3a's "no indices" series).

use axi_proto::Addr;
use vproc::{ProgramBuilder, SystemKind};

use crate::dense::random_vector;
use crate::kernel::{f32_bytes, u32_bytes, Check, Kernel, KernelParams, Layout};
use crate::sparse::CsrMatrix;

/// Memory layout of a CSR kernel's arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CsrImage {
    /// Column-index array base.
    pub col: Addr,
    /// Value array base.
    pub val: Addr,
}

/// How the per-row combine works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Semiring {
    /// `y[i] = Σ val·x[col]` (classic spmv).
    PlusTimes,
    /// `y[i] = min (val + x[col])` (Bellman-Ford relaxation).
    MinPlus,
}

/// Emits the per-row sparse loop of one matrix sweep: for every row,
/// gather `x[col[k]]`, combine with `val[k]`, reduce, and scalar-store the
/// result to `y + 4·row`. Rows with no nonzeros are skipped (their result
/// must be pre-initialized by the caller: 0 for spmv via the zeroed `y`
/// image, `+inf` for min-plus via the prefill pass).
///
/// Register conventions: v1 gather, v2 values, v3 index scratch, v4
/// accumulator, v5 reduction result.
pub(crate) fn emit_sparse_sweep(
    mut b: ProgramBuilder,
    m: &CsrMatrix,
    img: CsrImage,
    x_addr: Addr,
    y_addr: Addr,
    semiring: Semiring,
    p: &KernelParams,
) -> ProgramBuilder {
    for i in 0..m.rows() {
        let range = m.row_range(i);
        let nnz = range.len();
        b = b.scalar(p.row_overhead);
        if nnz == 0 {
            continue;
        }
        let acc_vl = nnz.min(p.max_vl);
        b = b.set_vl(acc_vl);
        b = match semiring {
            Semiring::PlusTimes => b.vmv_vf(4, 0.0),
            Semiring::MinPlus => b.vmv_vf(4, f32::INFINITY),
        };
        let mut k = 0;
        while k < nnz {
            let len = (nnz - k).min(p.max_vl);
            let off = 4 * (range.start + k) as Addr;
            b = b.set_vl(len).scalar(p.chunk_overhead);
            b = match p.kind {
                SystemKind::Pack => b.vlimxei(1, img.col + off, x_addr),
                SystemKind::Base | SystemKind::Ideal => {
                    b.vle_index(3, img.col + off).vluxei(1, 3, x_addr)
                }
            };
            b = b.vle(2, img.val + off);
            b = match semiring {
                Semiring::PlusTimes => b.vfmacc(4, 1, 2),
                Semiring::MinPlus => b.vfadd(6, 1, 2).vfmin(4, 4, 6),
            };
            k += len;
        }
        b = b.set_vl(acc_vl);
        b = match semiring {
            Semiring::PlusTimes => b.vfredsum(5, 4),
            Semiring::MinPlus => b.vfredmin(5, 4),
        };
        b = b.scalar_store_f32(5, y_addr + 4 * i as Addr);
    }
    b
}

/// Builds the spmv kernel `y = A·x` for a CSR matrix.
pub fn build(m: &CsrMatrix, seed: u64, p: &KernelParams) -> Kernel {
    let x = random_vector(m.cols(), seed ^ 0x99);
    let mut layout = Layout::new();
    let col = layout.alloc_elems(m.nnz().max(1));
    let val = layout.alloc_elems(m.nnz().max(1));
    let xa = layout.alloc_elems(m.cols());
    let ya = layout.alloc_elems(m.rows());
    let img = CsrImage { col, val };
    let b = emit_sparse_sweep(
        ProgramBuilder::new(),
        m,
        img,
        xa,
        ya,
        Semiring::PlusTimes,
        p,
    );
    Kernel {
        name: "spmv".into(),
        image: vec![
            (col, u32_bytes(m.col_idx())),
            (val, f32_bytes(m.vals())),
            (xa, f32_bytes(&x)),
        ],
        storage_size: layout.storage_size(),
        program: b.build().into(),
        expected: vec![Check {
            addr: ya,
            values: m.matvec(&x).into(),
            label: "y".into(),
        }],
        read_only_streams: true,
        useful_bytes: 4 * (2 * m.nnz() + m.cols() + m.rows()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproc::VInsn;

    fn small() -> CsrMatrix {
        CsrMatrix::random(24, 24, 6.0, 11)
    }

    #[test]
    fn pack_uses_in_memory_indices() {
        let p = KernelParams::new(SystemKind::Pack, 32);
        let k = build(&small(), 1, &p);
        let insns = k.program.insns();
        assert!(insns.iter().any(|i| matches!(i, VInsn::Vlimxei { .. })));
        assert!(!insns.iter().any(|i| matches!(i, VInsn::Vluxei { .. })));
    }

    #[test]
    fn base_fetches_indices_into_the_core() {
        let p = KernelParams::new(SystemKind::Base, 32);
        let k = build(&small(), 1, &p);
        let insns = k.program.insns();
        assert!(insns
            .iter()
            .any(|i| matches!(i, VInsn::Vle { is_index: true, .. })));
        assert!(insns.iter().any(|i| matches!(i, VInsn::Vluxei { .. })));
        assert!(!insns.iter().any(|i| matches!(i, VInsn::Vlimxei { .. })));
    }

    #[test]
    fn expected_matches_reference() {
        let m = small();
        let p = KernelParams::new(SystemKind::Pack, 32);
        let k = build(&m, 1, &p);
        let x = random_vector(m.cols(), 1 ^ 0x99);
        assert_eq!(*k.expected[0].values, *m.matvec(&x));
    }

    #[test]
    fn empty_rows_produce_zero_via_image_default() {
        let m = CsrMatrix::from_parts(3, 3, vec![0, 0, 2, 2], vec![0, 2], vec![1.0, 2.0]);
        let p = KernelParams::new(SystemKind::Pack, 8);
        let k = build(&m, 1, &p);
        assert_eq!(k.expected[0].values[0], 0.0);
        assert_eq!(k.expected[0].values[2], 0.0);
    }
}
