//! Dense row-major FP32 matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense, row-major FP32 matrix.
///
/// # Examples
///
/// ```
/// use workloads::DenseMatrix;
///
/// let m = DenseMatrix::random(4, 4, 7);
/// assert_eq!(m.rows(), 4);
/// assert_eq!(m.at(2, 3), m.as_slice()[2 * 4 + 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with seeded random entries in `[0.5, 1.5)` — a
    /// well-conditioned range that keeps FP32 accumulation error small.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(0.5..1.5)).collect(),
        }
    }

    /// Creates a random *upper-triangular* matrix (zeros strictly below the
    /// diagonal), as used by `trmv`.
    pub fn random_upper_triangular(n: usize, seed: u64) -> Self {
        let mut m = DenseMatrix::random(n, n, seed);
        for i in 0..n {
            for j in 0..i {
                m.data[i * n + j] = 0.0;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The transpose, as a new matrix.
    pub fn transposed(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.at(r, c));
            }
        }
        t
    }

    /// Reference matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.at(i, j) * x[j]).sum())
            .collect()
    }
}

/// A seeded random FP32 vector in `[0.5, 1.5)`.
pub fn random_vector(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.5..1.5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        assert_eq!(DenseMatrix::random(8, 8, 3), DenseMatrix::random(8, 8, 3));
        assert_ne!(DenseMatrix::random(8, 8, 3), DenseMatrix::random(8, 8, 4));
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::random(5, 9, 1);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(3, 2), m.at(2, 3));
    }

    #[test]
    fn upper_triangular_has_zero_lower() {
        let m = DenseMatrix::random_upper_triangular(6, 2);
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(m.at(i, j), 0.0);
            }
            assert_ne!(m.at(i, i), 0.0);
        }
    }

    #[test]
    fn matvec_identity() {
        let mut m = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let y = m.matvec(&[2.0, 4.0, 8.0]);
        assert_eq!(y, vec![2.0, 4.0, 8.0]);
    }
}
