//! Vector processor configuration and system kind.

/// Which of the paper's three evaluation systems the processor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Unmodified Ara over a standard AXI4 bus: strided/indexed accesses
    /// degrade to one narrow transaction per element.
    Base,
    /// AXI-Pack-extended Ara: strided/indexed accesses become packed
    /// bursts; indexed accesses use the in-memory `vlimxei`/`vsimxei`
    /// forms, keeping index traffic off the bus.
    Pack,
    /// Ara connected to an idealized memory with one port per lane, perfect
    /// packing and fixed latency. Indices are still fetched into the core.
    Ideal,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Base => write!(f, "base"),
            SystemKind::Pack => write!(f, "pack"),
            SystemKind::Ideal => write!(f, "ideal"),
        }
    }
}

/// Microarchitectural parameters of the vector processor model.
///
/// Defaults follow the paper's evaluation system: 8 lanes, a 4096-bit
/// vector length (Ara's 16 KiB register file), and reduction/latency
/// parameters representative of Ara's published microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VprocConfig {
    /// Number of vector lanes (64-bit datapaths; the paper couples bus
    /// width to lanes: 256-bit bus = 8 lanes).
    pub lanes: usize,
    /// Vector register length in bytes (Ara: 512 B per register at 8
    /// lanes).
    pub vlen_bytes: usize,
    /// Extra completion latency of a reduction after its inputs are
    /// consumed (inter-lane tree + scalar move).
    pub reduction_tail: u32,
    /// In-flight instruction window of the sequencer.
    pub window: usize,
    /// Fixed memory latency of the IDEAL back-end, in cycles.
    pub ideal_latency: u32,
    /// Maximum outstanding load instructions draining data concurrently.
    pub max_outstanding_loads: usize,
    /// Width of the AXI transaction-ID space the VLSU allocates from, in
    /// bits. 8 (the full `u8` space) when the engine owns the bus; an
    /// engine sitting behind an ID-remapping mux must restrict itself to
    /// the mux's manager-local width (`axi_proto::LOCAL_ID_BITS`) so the
    /// manager-index prefix fits.
    pub axi_id_bits: u32,
}

impl VprocConfig {
    /// The paper's configuration for a given bus width: 2, 4 or 8 lanes for
    /// 64-, 128- or 256-bit buses, with VLEN scaled accordingly.
    ///
    /// # Panics
    ///
    /// Panics for bus widths other than 64, 128 or 256 bits.
    pub fn for_bus_bits(bits: u32) -> Self {
        let lanes = match bits {
            64 => 2,
            128 => 4,
            256 => 8,
            _ => panic!("paper systems pair 64/128/256-bit buses with 2/4/8 lanes"),
        };
        VprocConfig {
            lanes,
            vlen_bytes: 64 * lanes,
            ..VprocConfig::default()
        }
    }

    /// Maximum vector length in 32-bit elements.
    #[inline]
    pub fn max_vl(&self) -> usize {
        self.vlen_bytes / 4
    }
}

impl Default for VprocConfig {
    fn default() -> Self {
        VprocConfig {
            lanes: 8,
            vlen_bytes: 512,
            reduction_tail: 18,
            window: 16,
            ideal_latency: 2,
            max_outstanding_loads: 4,
            axi_id_bits: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_width_pairs_with_lanes() {
        assert_eq!(VprocConfig::for_bus_bits(64).lanes, 2);
        assert_eq!(VprocConfig::for_bus_bits(128).lanes, 4);
        assert_eq!(VprocConfig::for_bus_bits(256).lanes, 8);
        assert_eq!(VprocConfig::for_bus_bits(256).max_vl(), 128);
        assert_eq!(VprocConfig::for_bus_bits(64).max_vl(), 32);
    }

    #[test]
    #[should_panic(expected = "pair 64/128/256")]
    fn unsupported_bus_width_panics() {
        let _ = VprocConfig::for_bus_bits(512);
    }

    #[test]
    fn kind_display() {
        assert_eq!(SystemKind::Base.to_string(), "base");
        assert_eq!(SystemKind::Pack.to_string(), "pack");
        assert_eq!(SystemKind::Ideal.to_string(), "ideal");
    }
}
