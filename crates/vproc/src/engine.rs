//! The execution engine: frontend, chained lanes, and the decoupled VLSU.
//!
//! # Execution model
//!
//! *Eager-functional, timed-structural.* When the frontend issues an
//! instruction it immediately applies the architectural effect (register
//! file and backing store) in program order, so results are always
//! correct. Timing is tracked separately: every in-flight instruction has
//! a *produced* counter advanced by the lanes (compute) or by arriving bus
//! beats (loads); a dependent instruction may consume element *k* only
//! once its producer has produced it — Ara's chaining.
//!
//! # VLSU ordering
//!
//! Loads may overlap loads (bounded by `max_outstanding_loads`), but loads
//! and stores never reorder around each other: a store waits until all
//! older loads drained, and a load waits until the older store completed.
//! This is the conservative read-write ordering that caps the R-bus
//! utilization of the in-place transpose at 50 % in the paper.
//!
//! # Data verification
//!
//! Each load snapshots its expected payload at issue; when the timed beats
//! arrive, mismatches are *counted* (not asserted): a mismatch is expected
//! when a younger store writes the loaded region before the timed fetch
//! drains (e.g. the in-place transpose), and must be zero for read-only
//! kernels — integration tests assert exactly that.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use axi_proto::{Addr, ArBeat, AxiChannels, BeatBuf, BusConfig, ElemSize, IdxSize, Resp, WBeat};
use banked_mem::Storage;
use simkit::sched::Wake;
use simkit::Utilization;

use crate::config::{SystemKind, VprocConfig};
use crate::isa::{Program, VInsn, VReg};
use crate::regfile::RegFile;

/// Aggregate statistics of one engine run.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Total cycles ticked.
    pub cycles: u64,
    /// R-channel utilization including index traffic.
    pub r_util: Utilization,
    /// R-channel utilization with index-load beats counted as idle.
    pub r_util_data: Utilization,
    /// Cycles this engine had an AR request ready but the channel was
    /// full — bus back-pressure, the per-engine signal that makes
    /// shared-bus contention attributable to a specific requestor.
    pub ar_stall_cycles: u64,
    /// Cycles a W beat was data-ready but the channel was full.
    pub w_stall_cycles: u64,
    /// W beats pushed.
    pub w_beats: u64,
    /// W payload bytes pushed.
    pub w_payload: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Floating-point operations performed (MACs count 2).
    pub flops: u64,
    /// Lane-element operations (compute activity proxy for energy).
    pub lane_elems: u64,
    /// Elements moved by loads.
    pub load_elems: u64,
    /// Elements moved by stores.
    pub store_elems: u64,
    /// R beats whose payload differed from the issue-time snapshot.
    pub data_mismatches: u64,
    /// Cycles the frontend was stalled on scalar work.
    pub scalar_stall_cycles: u64,
}

impl EngineStats {
    fn new(bus_bytes: usize) -> Self {
        EngineStats {
            cycles: 0,
            r_util: Utilization::new(bus_bytes),
            r_util_data: Utilization::new(bus_bytes),
            ar_stall_cycles: 0,
            w_stall_cycles: 0,
            w_beats: 0,
            w_payload: 0,
            issued: 0,
            flops: 0,
            lane_elems: 0,
            load_elems: 0,
            store_elems: 0,
            data_mismatches: 0,
            scalar_stall_cycles: 0,
        }
    }
}

/// The first error response this engine observed on the bus.
///
/// An errored beat means the data the requestor consumed is suspect, so
/// the run harness aborts the requestor with a typed fault report once the
/// bus drains; the engine itself keeps accounting beats normally so the
/// drain always completes (errors must never wedge the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// AXI transaction id that carried the error (widened so multi-level
    /// fabrics can fold their manager prefixes in when reporting).
    pub axi_id: u16,
    /// `true` when the error arrived on the B (write response) channel.
    pub is_write: bool,
    /// Response class name, `"SLVERR"` or `"DECERR"`.
    pub resp: &'static str,
}

/// Timing class of an in-flight instruction.
#[derive(Debug)]
enum Class {
    Compute {
        srcs: Vec<u64>,
        flops_per_elem: u64,
    },
    Reduction {
        src: u64,
        consumed: usize,
        tail: u32,
    },
    Load,
    Store {
        done: bool,
    },
}

#[derive(Debug)]
struct InFlight {
    vl: usize,
    produced: usize,
    class: Class,
}

impl InFlight {
    fn complete(&self) -> bool {
        match &self.class {
            Class::Compute { .. } | Class::Load => self.produced >= self.vl,
            Class::Reduction { consumed, tail, .. } => *consumed >= self.vl && *tail == 0,
            Class::Store { done } => *done,
        }
    }
}

/// One load's bus activity.
#[derive(Debug)]
struct LoadRun {
    uid: u64,
    axi_id: u8,
    /// Requests not yet pushed to AR.
    reqs: VecDeque<ArBeat>,
    /// Valid elements carried by each expected R beat, in order.
    beat_elems: VecDeque<usize>,
    /// Byte lane each expected beat's payload starts at (narrow beats).
    lane_offs: VecDeque<usize>,
    /// Issue-time snapshot of the expected payload (vl × 4 bytes).
    expected: Vec<u8>,
    received_elems: usize,
    total_elems: usize,
    is_index: bool,
}

/// One store's bus activity.
#[derive(Debug)]
struct StoreRun {
    uid: u64,
    axi_id: u8,
    /// Producer gating W beats (chained stores), if still in flight.
    src_uid: Option<u64>,
    aws: VecDeque<ArBeat>,
    /// W beats with the cumulative source elements each needs.
    ws: VecDeque<(WBeat, usize)>,
    /// W beats permitted by already-sent AWs.
    unlocked_w: u32,
    b_expected: u32,
    b_received: u32,
}

/// One memory operation on the IDEAL per-lane-port back-end.
#[derive(Debug)]
struct IdealRun {
    uid: u64,
    src_uid: Option<u64>,
    transferred: usize,
    total: usize,
    latency_left: u32,
    is_store: bool,
    is_index: bool,
}

#[derive(Debug)]
enum MemRun {
    Load(LoadRun),
    Store(StoreRun),
    Ideal(IdealRun),
}

/// The vector processor engine.
///
/// Drive it with [`Engine::tick`] once per cycle until [`Engine::done`].
/// For the BASE and PACK systems pass the bus channels; for IDEAL pass
/// `None`.
#[derive(Debug)]
pub struct Engine {
    cfg: VprocConfig,
    kind: SystemKind,
    bus: BusConfig,
    regs: RegFile,
    /// The program, shared (never cloned) between the kernel and any
    /// number of engines; `pc` is this engine's issue cursor into it.
    program: Arc<Program>,
    pc: usize,
    vl: usize,
    window: UidMap<InFlight>,
    order: VecDeque<u64>,
    reg_writer: [u64; 32],
    next_uid: u64,
    next_axi_id: u8,
    scalar_stall: u32,
    // VLSU
    mem_q: VecDeque<MemRun>,
    load_issuing: Option<LoadRun>,
    loads_draining: Vec<LoadRun>,
    store_active: Option<StoreRun>,
    /// Stores whose data is fully sent, awaiting their B response.
    stores_draining: Vec<StoreRun>,
    ideal_active: Option<IdealRun>,
    /// Cycle index of the last IDEAL-port transfer, for latency hiding on
    /// back-to-back operations.
    ideal_last_active: u64,
    stats: EngineStats,
    /// First error response seen on R or B, if any.
    first_fault: Option<BusFault>,
    /// Start-of-cycle producer-progress snapshot, reused every cycle so
    /// chaining never allocates (uid → produced, in issue order).
    progress_scratch: Vec<(u64, usize)>,
}

/// Sentinel "no writer" uid (uids start at 1).
const NO_WRITER: u64 = 0;

/// Identity hasher for uid keys: uids are sequential `u64`s, so hashing
/// them through SipHash on every window lookup of every cycle is pure
/// overhead. The in-flight window is tiny (≤ `cfg.window` entries) and
/// its keys are unique by construction.
#[derive(Debug, Default)]
struct UidHasher(u64);

impl Hasher for UidHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("uid keys hash via write_u64");
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The uid-keyed in-flight window map.
type UidMap<V> = HashMap<u64, V, BuildHasherDefault<UidHasher>>;

impl Engine {
    /// Creates an engine for the given system kind and program.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.axi_id_bits` is in `1..=8` — a zero width would
    /// collapse every transaction onto ID 0 and silently cross-wire R
    /// beats between outstanding loads.
    pub fn new(
        cfg: VprocConfig,
        kind: SystemKind,
        bus: BusConfig,
        program: impl Into<Arc<Program>>,
    ) -> Self {
        assert!(
            (1..=8).contains(&cfg.axi_id_bits),
            "axi_id_bits must be 1..=8, got {}",
            cfg.axi_id_bits
        );
        let bus_bytes = match kind {
            SystemKind::Ideal => cfg.lanes * 4,
            _ => bus.data_bytes(),
        };
        Engine {
            regs: RegFile::new(cfg.vlen_bytes),
            program: program.into(),
            pc: 0,
            vl: cfg.max_vl(),
            window: UidMap::default(),
            order: VecDeque::new(),
            reg_writer: [NO_WRITER; 32],
            next_uid: 1,
            next_axi_id: 0,
            scalar_stall: 0,
            mem_q: VecDeque::new(),
            load_issuing: None,
            loads_draining: Vec::new(),
            store_active: None,
            stores_draining: Vec::new(),
            ideal_active: None,
            ideal_last_active: 0,
            stats: EngineStats::new(bus_bytes),
            first_fault: None,
            progress_scratch: Vec::new(),
            cfg,
            kind,
            bus,
        }
    }

    /// The engine's statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The architectural register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// The first error response this engine saw on the bus, if any.
    pub fn first_fault(&self) -> Option<BusFault> {
        self.first_fault
    }

    /// One-line state snapshot for hang forensics: issue cursor, in-flight
    /// window, and VLSU occupancy.
    pub fn describe_state(&self) -> String {
        format!(
            "pc {}/{}, {} in window, {} mem ops queued, load issuing: {}, {} loads draining,              store active: {}, {} stores awaiting B",
            self.pc,
            self.program.len(),
            self.window.len(),
            self.mem_q.len(),
            self.load_issuing.is_some(),
            self.loads_draining.len(),
            self.store_active.is_some(),
            self.stores_draining.len(),
        )
    }

    /// Returns `true` when the program has fully executed and drained.
    pub fn done(&self) -> bool {
        self.pc >= self.program.len()
            && self.window.is_empty()
            && self.scalar_stall == 0
            && self.mem_q.is_empty()
            && self.load_issuing.is_none()
            && self.loads_draining.is_empty()
            && self.store_active.is_none()
            && self.stores_draining.is_empty()
            && self.ideal_active.is_none()
    }

    // simcheck: hot-path begin -- the engine's per-cycle tick: memory
    // back-ends, compute lanes and the frontend. The progress scratch is
    // engine-owned and reused; burst planning (which allocates per issued
    // memory instruction, not per cycle) lives outside this region.

    /// One cycle of engine work. Pass the bus channels for BASE/PACK and
    /// `None` for IDEAL; `storage` is the shared backing store.
    pub fn tick(&mut self, channels: Option<&mut AxiChannels>, storage: &mut Storage) {
        self.stats.cycles += 1;
        match self.kind {
            SystemKind::Ideal => {
                debug_assert!(channels.is_none(), "IDEAL runs without a bus");
                self.tick_ideal_mem();
            }
            _ => {
                let ch = channels.expect("BASE/PACK run over the bus");
                self.tick_axi_mem(ch);
            }
        }
        self.tick_compute();
        self.tick_frontend(storage);
        self.sweep_completed();
    }

    // ------------------------------------------------------------------
    // AXI back-end
    // ------------------------------------------------------------------

    fn tick_axi_mem(&mut self, ch: &mut AxiChannels) {
        // R channel: at most one beat per cycle.
        if let Some(beat) = ch.r.pop() {
            let is_index = self.note_r_beat(&beat);
            self.stats.r_util.record_beat(beat.payload_bytes);
            if is_index {
                self.stats.r_util_data.record_idle();
            } else {
                self.stats.r_util_data.record_beat(beat.payload_bytes);
            }
        } else {
            self.stats.r_util.record_idle();
            self.stats.r_util_data.record_idle();
        }
        // B channel.
        if let Some(b) = ch.b.pop() {
            if b.resp != Resp::Okay && self.first_fault.is_none() {
                self.first_fault = Some(BusFault {
                    axi_id: b.id.0,
                    is_write: true,
                    resp: b.resp.name(),
                });
            }
            let run = self
                .store_active
                .as_mut()
                .filter(|r| u16::from(r.axi_id) == b.id.0)
                .or_else(|| {
                    self.stores_draining
                        .iter_mut()
                        .find(|r| u16::from(r.axi_id) == b.id.0)
                })
                .expect("B response matches an outstanding store");
            run.b_received += 1;
            if run.b_received == run.b_expected {
                let uid = run.uid;
                if let Some(e) = self.window.get_mut(&uid) {
                    if let Class::Store { done } = &mut e.class {
                        *done = true;
                    }
                    e.produced = e.vl;
                }
                if self.store_active.as_ref().is_some_and(|r| r.uid == uid) {
                    self.store_active = None;
                } else {
                    self.stores_draining.retain(|r| r.uid != uid);
                }
            }
        }
        // Start the next memory operation if ordering permits.
        self.try_start_mem();
        // AR channel: one request per cycle from the issuing load.
        if let Some(run) = self.load_issuing.as_mut() {
            if ch.ar.can_push() {
                if let Some(ar) = run.reqs.pop_front() {
                    ch.ar.push(ar);
                }
            } else if !run.reqs.is_empty() {
                self.stats.ar_stall_cycles += 1;
            }
            if run.reqs.is_empty() {
                let run = self.load_issuing.take().expect("checked above");
                self.loads_draining.push(run);
            }
        }
        // AW/W channels for the active store.
        if let Some(run) = self.store_active.as_mut() {
            if ch.aw.can_push() {
                if let Some(aw) = run.aws.pop_front() {
                    run.unlocked_w += aw.beats;
                    ch.aw.push(aw);
                }
            }
            if run.unlocked_w > 0 {
                let src_uid = run.src_uid;
                let ready = match run.ws.front() {
                    Some((_, need)) => {
                        let avail = match src_uid {
                            Some(uid) if uid != NO_WRITER => {
                                self.window.get(&uid).map_or(usize::MAX, |e| e.produced)
                            }
                            _ => usize::MAX,
                        };
                        avail >= *need
                    }
                    None => false,
                };
                if ready {
                    if ch.w.can_push() {
                        let run = self.store_active.as_mut().expect("still active");
                        let (w, _) = run.ws.pop_front().expect("front checked");
                        run.unlocked_w -= 1;
                        self.stats.w_beats += 1;
                        self.stats.w_payload += w.payload_bytes() as u64;
                        ch.w.push(w);
                    } else {
                        self.stats.w_stall_cycles += 1;
                    }
                }
            }
            // All data sent: only the B response is outstanding; free the
            // store slot so the next memory operation can proceed.
            if self
                .store_active
                .as_ref()
                .is_some_and(|r| r.aws.is_empty() && r.ws.is_empty())
            {
                let run = self.store_active.take().expect("checked");
                self.stores_draining.push(run);
            }
        }
    }

    /// Books an arriving R beat; returns whether it was index traffic.
    fn note_r_beat(&mut self, beat: &axi_proto::RBeat) -> bool {
        let run = self
            .load_issuing
            .as_mut()
            .filter(|r| u16::from(r.axi_id) == beat.id.0)
            .or_else(|| {
                self.loads_draining
                    .iter_mut()
                    .find(|r| u16::from(r.axi_id) == beat.id.0)
            })
            .expect("R beat matches an outstanding load");
        let elems = run
            .beat_elems
            .pop_front()
            .expect("more R beats than planned");
        let lane_off = run.lane_offs.pop_front().expect("planned with beat_elems");
        let lo = run.received_elems * 4;
        let expected = &run.expected[lo..lo + elems * 4];
        if beat.resp != Resp::Okay {
            // Errored beats carry no trustworthy payload; the fault record,
            // not a mismatch count, is what reaches the user.
            if self.first_fault.is_none() {
                self.first_fault = Some(BusFault {
                    axi_id: beat.id.0,
                    is_write: false,
                    resp: beat.resp.name(),
                });
            }
        } else if beat.data[lane_off..lane_off + elems * 4] != *expected {
            self.stats.data_mismatches += 1;
        }
        run.received_elems += elems;
        self.stats.load_elems += elems as u64;
        let uid = run.uid;
        let received = run.received_elems;
        let finished = run.received_elems >= run.total_elems;
        let is_index = run.is_index;
        if let Some(e) = self.window.get_mut(&uid) {
            e.produced = received;
        }
        if finished {
            self.loads_draining.retain(|r| r.uid != uid);
            if self.load_issuing.as_ref().is_some_and(|r| r.uid == uid) {
                self.load_issuing = None;
            }
        }
        is_index
    }

    /// Starts the front memory operation when the VLSU ordering allows.
    fn try_start_mem(&mut self) {
        let can_start = match self.mem_q.front() {
            None => false,
            Some(MemRun::Load(_)) => {
                // A younger load may start once the older store has *sent*
                // all of its data — the write is ordered ahead of the read
                // at the single memory endpoint; waiting for B would only
                // add dead bus time (the paper's 50% ismt utilization
                // implies back-to-back read/write phases).
                let store_drained = self
                    .store_active
                    .as_ref()
                    .is_none_or(|s| s.aws.is_empty() && s.ws.is_empty());
                store_drained
                    && self.load_issuing.is_none()
                    && self.loads_draining.len() < self.cfg.max_outstanding_loads
            }
            Some(MemRun::Store(_)) => {
                self.store_active.is_none()
                    && self.load_issuing.is_none()
                    && self.loads_draining.is_empty()
            }
            Some(MemRun::Ideal(_)) => unreachable!("ideal runs use tick_ideal_mem"),
        };
        if can_start {
            match self.mem_q.pop_front().expect("front checked") {
                MemRun::Load(run) => self.load_issuing = Some(run),
                MemRun::Store(run) => self.store_active = Some(run),
                MemRun::Ideal(_) => unreachable!(),
            }
        }
    }

    // ------------------------------------------------------------------
    // IDEAL back-end
    // ------------------------------------------------------------------

    fn tick_ideal_mem(&mut self) {
        if self.ideal_active.is_none() {
            if let Some(MemRun::Ideal(_)) = self.mem_q.front() {
                match self.mem_q.pop_front().expect("front checked") {
                    MemRun::Ideal(mut run) => {
                        // Back-to-back operations pipeline through the
                        // ideal ports: the access latency is hidden unless
                        // the port went idle.
                        if self.stats.cycles <= self.ideal_last_active + 1 {
                            run.latency_left = 0;
                        }
                        self.ideal_active = Some(run);
                    }
                    _ => unreachable!(),
                }
            }
        }
        let Some(run) = self.ideal_active.as_mut() else {
            self.stats.r_util.record_idle();
            self.stats.r_util_data.record_idle();
            return;
        };
        if run.latency_left > 0 {
            run.latency_left -= 1;
            self.stats.r_util.record_idle();
            self.stats.r_util_data.record_idle();
            return;
        }
        let avail = match run.src_uid {
            Some(uid) if uid != NO_WRITER => {
                self.window.get(&uid).map_or(usize::MAX, |e| e.produced)
            }
            _ => usize::MAX,
        };
        let step = self
            .cfg
            .lanes
            .min(run.total - run.transferred)
            .min(avail.saturating_sub(run.transferred));
        if step == 0 {
            self.stats.r_util.record_idle();
            self.stats.r_util_data.record_idle();
            return;
        }
        run.transferred += step;
        self.ideal_last_active = self.stats.cycles;
        let is_store = run.is_store;
        let is_index = run.is_index;
        if is_store {
            self.stats.store_elems += step as u64;
            self.stats.r_util.record_idle();
            self.stats.r_util_data.record_idle();
        } else {
            self.stats.load_elems += step as u64;
            self.stats.r_util.record_beat(step * 4);
            if is_index {
                self.stats.r_util_data.record_idle();
            } else {
                self.stats.r_util_data.record_beat(step * 4);
            }
        }
        let uid = run.uid;
        let transferred = run.transferred;
        let finished = run.transferred >= run.total;
        if let Some(e) = self.window.get_mut(&uid) {
            e.produced = transferred;
            if finished {
                if let Class::Store { done } = &mut e.class {
                    *done = true;
                }
            }
        }
        if finished {
            self.ideal_active = None;
        }
    }

    // ------------------------------------------------------------------
    // Lanes
    // ------------------------------------------------------------------

    /// Advances compute instructions under a shared `lanes`-elements-per-
    /// cycle budget, honoring chaining via producer progress snapshots.
    fn tick_compute(&mut self) {
        // Snapshot producer progress at the start of the compute tick so
        // same-cycle production is never consumed (registered chaining).
        // The scratch vector is engine-owned and reused every cycle; the
        // window is small (≤ cfg.window entries), so linear lookup wins
        // over any hashing.
        self.progress_scratch.clear();
        for uid in &self.order {
            if let Some(e) = self.window.get(uid) {
                self.progress_scratch.push((*uid, e.produced));
            }
        }
        let snapshot = &self.progress_scratch;
        let progress = |uid: u64| -> usize {
            if uid == NO_WRITER {
                usize::MAX
            } else {
                snapshot
                    .iter()
                    .find(|(u, _)| *u == uid)
                    .map_or(usize::MAX, |(_, p)| *p)
            }
        };
        let mut budget = self.cfg.lanes;
        for i in 0..self.order.len() {
            if budget == 0 {
                break;
            }
            let uid = self.order[i];
            let Some(entry) = self.window.get_mut(&uid) else {
                continue;
            };
            match &mut entry.class {
                Class::Compute {
                    srcs,
                    flops_per_elem,
                } => {
                    let avail = srcs
                        .iter()
                        .map(|s| progress(*s))
                        .min()
                        .unwrap_or(usize::MAX)
                        .min(entry.vl);
                    let step = budget
                        .min(avail.saturating_sub(entry.produced))
                        .min(entry.vl - entry.produced);
                    entry.produced += step;
                    budget -= step;
                    self.stats.lane_elems += step as u64;
                    self.stats.flops += step as u64 * *flops_per_elem;
                }
                Class::Reduction {
                    src,
                    consumed,
                    tail,
                } => {
                    if *consumed < entry.vl {
                        let avail = progress(*src).min(entry.vl);
                        let step = budget
                            .min(avail.saturating_sub(*consumed))
                            .min(entry.vl - *consumed);
                        *consumed += step;
                        budget -= step;
                        self.stats.lane_elems += step as u64;
                        self.stats.flops += step as u64;
                    } else if *tail > 0 {
                        *tail -= 1;
                        if *tail == 0 {
                            entry.produced = entry.vl;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Frontend
    // ------------------------------------------------------------------

    fn tick_frontend(&mut self, storage: &mut Storage) {
        if self.scalar_stall > 0 {
            self.scalar_stall -= 1;
            self.stats.scalar_stall_cycles += 1;
            return;
        }
        if self.window.len() >= self.cfg.window {
            return;
        }
        // CVA6 blocks on the value of a scalar store (e.g. the reduction
        // result written back after each row): the next vector instruction
        // cannot issue until the producer completes. This is what keeps
        // row-wise dataflows reduction-bound in the paper's Fig. 3b/3c.
        if let Some(VInsn::ScalarStoreF32 { vs, .. }) = self.program.insns().get(self.pc) {
            let producer = self.reg_writer[*vs as usize];
            if producer != NO_WRITER && self.window.contains_key(&producer) {
                self.stats.scalar_stall_cycles += 1;
                return;
            }
        }
        // Instructions are tiny flat enums; cloning one out of the shared
        // program is a register-width copy, not a heap operation.
        let Some(insn) = self.program.insns().get(self.pc).cloned() else {
            return;
        };
        self.pc += 1;
        self.stats.issued += 1;
        self.exec_functional(&insn, storage);
        match &insn {
            VInsn::SetVl { vl } => {
                assert!(
                    *vl > 0 && *vl <= self.cfg.max_vl(),
                    "vl {vl} out of 1..={}",
                    self.cfg.max_vl()
                );
                self.vl = *vl;
            }
            VInsn::Scalar { cycles } => {
                self.scalar_stall = cycles.saturating_sub(1);
            }
            VInsn::ScalarStoreF32 { .. } => {}
            _ => {
                let uid = self.next_uid;
                self.next_uid += 1;
                let vl = self.vl;
                let class = self.classify(&insn);
                self.window.insert(
                    uid,
                    InFlight {
                        vl,
                        produced: 0,
                        class,
                    },
                );
                self.order.push_back(uid);
                if insn.is_mem() {
                    let run = self.build_mem_run(uid, &insn);
                    self.mem_q.push_back(run);
                }
                if let Some(vd) = insn.dest() {
                    self.reg_writer[vd as usize] = uid;
                }
            }
        }
    }

    fn classify(&self, insn: &VInsn) -> Class {
        match insn {
            VInsn::Vfredsum { vs, .. } | VInsn::Vfredmin { vs, .. } => Class::Reduction {
                src: self.reg_writer[*vs as usize],
                consumed: 0,
                tail: self.cfg.reduction_tail,
            },
            _ if insn.is_load() => Class::Load,
            _ if insn.is_store() => Class::Store { done: false },
            _ => {
                let srcs = insn
                    .sources()
                    .iter()
                    .map(|v| self.reg_writer[*v as usize])
                    .collect();
                let flops = match insn {
                    VInsn::Vfmacc { .. } | VInsn::VfmaccVf { .. } => 2,
                    VInsn::VmvVf { .. } => 0,
                    _ => 1,
                };
                Class::Compute {
                    srcs,
                    flops_per_elem: flops,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Functional semantics (eager, program order)
    // ------------------------------------------------------------------

    fn exec_functional(&mut self, insn: &VInsn, storage: &mut Storage) {
        let vl = self.vl;
        match *insn {
            VInsn::SetVl { .. } | VInsn::Scalar { .. } => {}
            VInsn::Vle { vd, base, .. } => {
                // Registers hold little-endian f32 bytes, exactly the
                // storage layout: a raw byte copy is the same result as
                // the element-wise read, without the intermediate Vec.
                let a = base as usize;
                self.regs
                    .write_bytes(vd, &storage.as_bytes()[a..a + vl * 4]);
            }
            VInsn::Vlse { vd, base, stride } => {
                for k in 0..vl {
                    let addr = (base as i64 + k as i64 * stride as i64 * 4) as Addr;
                    let v = storage.read_f32(addr);
                    self.regs.set_elem_f32(vd, k, v);
                }
            }
            VInsn::Vluxei { vd, vidx, base } => {
                for k in 0..vl {
                    let i = self.regs.elem_u32(vidx, k);
                    let v = storage.read_f32(base + i as Addr * 4);
                    self.regs.set_elem_f32(vd, k, v);
                }
            }
            VInsn::Vlimxei { vd, idx_addr, base } => {
                for k in 0..vl {
                    let i = storage.read_u32(idx_addr + 4 * k as Addr);
                    let v = storage.read_f32(base + i as Addr * 4);
                    self.regs.set_elem_f32(vd, k, v);
                }
            }
            VInsn::Vse { vs, base } => {
                storage.write(base, &self.regs.bytes(vs)[..vl * 4]);
            }
            VInsn::Vsse { vs, base, stride } => {
                for k in 0..vl {
                    let addr = (base as i64 + k as i64 * stride as i64 * 4) as Addr;
                    storage.write_f32(addr, self.regs.elem_f32(vs, k));
                }
            }
            VInsn::Vsuxei { vs, vidx, base } => {
                for k in 0..vl {
                    let i = self.regs.elem_u32(vidx, k);
                    storage.write_f32(base + i as Addr * 4, self.regs.elem_f32(vs, k));
                }
            }
            VInsn::Vsimxei { vs, idx_addr, base } => {
                for k in 0..vl {
                    let i = storage.read_u32(idx_addr + 4 * k as Addr);
                    storage.write_f32(base + i as Addr * 4, self.regs.elem_f32(vs, k));
                }
            }
            VInsn::Vfadd { vd, vs1, vs2 } => self.elementwise(vd, vs1, vs2, |a, b| a + b),
            VInsn::Vfmul { vd, vs1, vs2 } => self.elementwise(vd, vs1, vs2, |a, b| a * b),
            VInsn::Vfmin { vd, vs1, vs2 } => self.elementwise(vd, vs1, vs2, f32::min),
            VInsn::Vfmacc { vd, vs1, vs2 } => {
                for k in 0..vl {
                    let v = self.regs.elem_f32(vd, k)
                        + self.regs.elem_f32(vs1, k) * self.regs.elem_f32(vs2, k);
                    self.regs.set_elem_f32(vd, k, v);
                }
            }
            VInsn::VfmaccVf { vd, rs, vs } => {
                for k in 0..vl {
                    let v = self.regs.elem_f32(vd, k) + rs * self.regs.elem_f32(vs, k);
                    self.regs.set_elem_f32(vd, k, v);
                }
            }
            VInsn::VfmulVf { vd, rs, vs } => {
                for k in 0..vl {
                    self.regs
                        .set_elem_f32(vd, k, rs * self.regs.elem_f32(vs, k));
                }
            }
            VInsn::VfaddVf { vd, rs, vs } => {
                for k in 0..vl {
                    self.regs
                        .set_elem_f32(vd, k, rs + self.regs.elem_f32(vs, k));
                }
            }
            VInsn::VmvVf { vd, imm } => {
                for k in 0..vl {
                    self.regs.set_elem_f32(vd, k, imm);
                }
            }
            VInsn::Vfredsum { vd, vs } => {
                let mut sum = 0.0f32;
                for k in 0..vl {
                    sum += self.regs.elem_f32(vs, k);
                }
                self.regs.set_elem_f32(vd, 0, sum);
            }
            VInsn::Vfredmin { vd, vs } => {
                let mut m = f32::INFINITY;
                for k in 0..vl {
                    m = m.min(self.regs.elem_f32(vs, k));
                }
                self.regs.set_elem_f32(vd, 0, m);
            }
            VInsn::ScalarStoreF32 { vs, addr } => {
                storage.write_f32(addr, self.regs.elem_f32(vs, 0));
            }
        }
    }

    fn elementwise(&mut self, vd: VReg, vs1: VReg, vs2: VReg, f: impl Fn(f32, f32) -> f32) {
        for k in 0..self.vl {
            let v = f(self.regs.elem_f32(vs1, k), self.regs.elem_f32(vs2, k));
            self.regs.set_elem_f32(vd, k, v);
        }
    }

    // ------------------------------------------------------------------
    // Event-driven scheduling: wake classification and fast-forward
    // ------------------------------------------------------------------

    /// A producer's settled progress, [`usize::MAX`] when retired or
    /// absent (no writer).
    fn progress_of(&self, uid: u64) -> usize {
        if uid == NO_WRITER {
            usize::MAX
        } else {
            self.window.get(&uid).map_or(usize::MAX, |e| e.produced)
        }
    }

    /// Classifies the engine's wake status at a cycle boundary.
    ///
    /// Queried between ticks (settled state). The classification is
    /// deliberately conservative — anything whose progress depends on bus
    /// handshakes the engine cannot predict is [`Wake::Ready`] (pending or
    /// issuing memory runs) or [`Wake::Idle`] (draining runs awaiting R/B
    /// beats; the bus-side wake decides whether beats can still arrive).
    /// Only provable countdowns produce [`Wake::Sleep`]: scalar stalls,
    /// reduction tails, and the IDEAL port's access latency. The contract
    /// is exact: if this returns `Sleep(n)`, then `n` lockstep ticks would
    /// perform only the bookkeeping [`Engine::fast_forward`] replays.
    pub fn next_wake(&self) -> Wake {
        let mut countdown = u64::MAX;
        // Memory back-end. A pending or issuing run makes progress (or
        // contends for the bus) every cycle; draining runs wait on R/B
        // beats and contribute nothing of their own.
        if !self.mem_q.is_empty() || self.load_issuing.is_some() || self.store_active.is_some() {
            return Wake::Ready;
        }
        if let Some(run) = &self.ideal_active {
            if run.latency_left > 0 {
                countdown = countdown.min(run.latency_left as u64);
            } else {
                let avail = match run.src_uid {
                    Some(uid) if uid != NO_WRITER => self.progress_of(uid),
                    _ => usize::MAX,
                };
                let step = self
                    .cfg
                    .lanes
                    .min(run.total - run.transferred)
                    .min(avail.saturating_sub(run.transferred));
                if step > 0 {
                    return Wake::Ready;
                }
                // Blocked on a producer: that producer's own wake governs.
            }
        }
        // Lanes: any compute or reduction that can consume produces work.
        // Blocked consumers are governed by their producer's wake (checked
        // in the same pass); load/store window entries by the back-end.
        for uid in &self.order {
            let Some(entry) = self.window.get(uid) else {
                continue;
            };
            match &entry.class {
                Class::Compute { srcs, .. } => {
                    let avail = srcs
                        .iter()
                        .map(|s| self.progress_of(*s))
                        .min()
                        .unwrap_or(usize::MAX)
                        .min(entry.vl);
                    if avail > entry.produced {
                        return Wake::Ready;
                    }
                }
                Class::Reduction {
                    src,
                    consumed,
                    tail,
                } => {
                    if *consumed < entry.vl {
                        if self.progress_of(*src).min(entry.vl) > *consumed {
                            return Wake::Ready;
                        }
                    } else if *tail > 0 {
                        countdown = countdown.min(*tail as u64);
                    }
                }
                Class::Load | Class::Store { .. } => {}
            }
        }
        // Frontend, mirroring `tick_frontend`'s check order: a scalar
        // stall is a countdown; a full window blocks silently; a scalar
        // store of a live producer blocks (with a per-tick stall statistic
        // that `fast_forward` replays); anything else issues.
        if self.scalar_stall > 0 {
            countdown = countdown.min(self.scalar_stall as u64);
        } else if self.window.len() < self.cfg.window {
            match self.program.insns().get(self.pc) {
                Some(VInsn::ScalarStoreF32 { vs, .. }) => {
                    let producer = self.reg_writer[*vs as usize];
                    if producer == NO_WRITER || !self.window.contains_key(&producer) {
                        return Wake::Ready;
                    }
                }
                Some(_) => return Wake::Ready,
                None => {}
            }
        }
        if countdown == u64::MAX {
            Wake::Idle
        } else {
            Wake::Sleep(countdown)
        }
    }

    /// Replays the bookkeeping of `span` provably-idle ticks in one call.
    ///
    /// Must only be called with `span` no larger than the `n` of a
    /// [`Wake::Sleep`]`(n)` from [`Engine::next_wake`] (or arbitrarily for
    /// a [`Wake::Idle`] engine, whose idle ticks have no countdowns to
    /// expire). The resulting state — statistics included — is
    /// bit-identical to ticking `span` times, which the lockstep
    /// differential oracle verifies on every fuzz seed.
    pub fn fast_forward(&mut self, span: u64) {
        self.stats.cycles += span;
        // Both memory back-ends record one idle sample per tracker per
        // idle tick (AXI: no R beat popped; IDEAL: no transfer).
        self.stats.r_util.record_idle_n(span);
        self.stats.r_util_data.record_idle_n(span);
        // Frontend: a scalar stall decrements and counts every tick; a
        // scalar store blocked on a live producer counts without state.
        // The window cannot change before the frontend runs within a tick
        // (retirement sweeps at tick end), so the pre-span membership
        // check is valid for the whole span.
        if self.scalar_stall > 0 {
            debug_assert!(span <= self.scalar_stall as u64, "slept through a wake");
            self.scalar_stall -= span as u32;
            self.stats.scalar_stall_cycles += span;
        } else if self.window.len() < self.cfg.window {
            if let Some(VInsn::ScalarStoreF32 { vs, .. }) = self.program.insns().get(self.pc) {
                let producer = self.reg_writer[*vs as usize];
                if producer != NO_WRITER && self.window.contains_key(&producer) {
                    self.stats.scalar_stall_cycles += span;
                }
            }
        }
        // Reduction tails count down once per tick regardless of the lane
        // budget (nothing else can be consuming it — the span proof).
        for i in 0..self.order.len() {
            let uid = self.order[i];
            let Some(entry) = self.window.get_mut(&uid) else {
                continue;
            };
            if let Class::Reduction { consumed, tail, .. } = &mut entry.class {
                if *consumed >= entry.vl && *tail > 0 {
                    debug_assert!(span <= *tail as u64, "slept through a wake");
                    *tail -= span as u32;
                    if *tail == 0 {
                        entry.produced = entry.vl;
                    }
                }
            }
        }
        // IDEAL port access latency.
        if let Some(run) = self.ideal_active.as_mut() {
            if run.latency_left > 0 {
                debug_assert!(span <= run.latency_left as u64, "slept through a wake");
                run.latency_left -= span as u32;
            }
        }
        // Countdowns that expired at the span's end retire exactly as the
        // final lockstep tick's sweep would have.
        self.sweep_completed();
    }

    // simcheck: hot-path end

    // ------------------------------------------------------------------
    // Memory run construction
    // ------------------------------------------------------------------

    fn alloc_axi_id(&mut self) -> u8 {
        // Wrap within the configured ID space: the full u8 range when the
        // engine owns the bus, the mux's manager-local width behind one.
        let mask = ((1u16 << self.cfg.axi_id_bits) - 1) as u8;
        let id = self.next_axi_id & mask;
        self.next_axi_id = id.wrapping_add(1) & mask;
        id
    }

    fn build_mem_run(&mut self, uid: u64, insn: &VInsn) -> MemRun {
        if self.kind == SystemKind::Ideal {
            return self.build_ideal_run(uid, insn);
        }
        if insn.is_load() {
            MemRun::Load(self.build_load_run(uid, insn))
        } else {
            MemRun::Store(self.build_store_run(uid, insn))
        }
    }

    fn build_ideal_run(&mut self, uid: u64, insn: &VInsn) -> MemRun {
        let is_store = insn.is_store();
        let src_uid = if is_store {
            insn.sources().first().map(|v| self.reg_writer[*v as usize])
        } else {
            None
        };
        // On IDEAL, `vlimxei` does not exist: workloads use vle + vluxei.
        assert!(
            !matches!(insn, VInsn::Vlimxei { .. } | VInsn::Vsimxei { .. }),
            "IDEAL has no in-memory indexed accesses; use vle + vluxei"
        );
        let is_index = matches!(insn, VInsn::Vle { is_index: true, .. });
        MemRun::Ideal(IdealRun {
            uid,
            src_uid,
            transferred: 0,
            total: self.vl,
            latency_left: self.cfg.ideal_latency,
            is_store,
            is_index,
        })
    }

    /// Elements per full bus beat (32-bit elements).
    fn epb(&self) -> usize {
        self.bus.data_bytes() / 4
    }

    fn build_load_run(&mut self, uid: u64, insn: &VInsn) -> LoadRun {
        let vl = self.vl;
        let id = self.alloc_axi_id();
        let bus_bytes = self.bus.data_bytes();
        let epb = self.epb();
        let mut reqs = VecDeque::new();
        let mut beat_elems = VecDeque::new();
        let mut lane_offs = VecDeque::new();
        let (vd, is_index) = match *insn {
            VInsn::Vle { vd, base, is_index } => {
                assert_eq!(base % 4, 0, "vle base must be element-aligned");
                // Unaligned head: narrow beats up to the first bus boundary
                // (what an AXI data-width converter does for unaligned
                // INCR bursts), then one full-width burst.
                let head = (((bus_bytes as Addr - base % bus_bytes as Addr) % bus_bytes as Addr)
                    / 4) as usize;
                let head = head.min(vl);
                for k in 0..head {
                    let addr = base + 4 * k as Addr;
                    reqs.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                    beat_elems.push_back(1);
                    lane_offs.push_back((addr % bus_bytes as Addr) as usize);
                }
                let rem = vl - head;
                if rem > 0 {
                    let aligned = base + 4 * head as Addr;
                    let beats = rem.div_ceil(epb) as u32;
                    reqs.push_back(ArBeat::incr(id, aligned, beats, &self.bus));
                    for b in 0..beats as usize {
                        let elems = epb.min(rem - b * epb);
                        beat_elems.push_back(elems);
                        lane_offs.push_back(0);
                    }
                }
                (vd, is_index)
            }
            VInsn::Vlse { vd, base, stride } => {
                match self.kind {
                    SystemKind::Pack => {
                        let ar = ArBeat::packed_strided(
                            id,
                            base,
                            vl as u32,
                            ElemSize::B4,
                            stride,
                            &self.bus,
                        );
                        for b in 0..ar.beats {
                            beat_elems.push_back(ar.beat_valid_elems(b, &self.bus));
                            lane_offs.push_back(0);
                        }
                        reqs.push_back(ar);
                    }
                    SystemKind::Base => {
                        for k in 0..vl {
                            let addr = (base as i64 + k as i64 * stride as i64 * 4) as Addr;
                            reqs.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                            beat_elems.push_back(1);
                            lane_offs.push_back((addr % bus_bytes as Addr) as usize);
                        }
                    }
                    SystemKind::Ideal => unreachable!("ideal handled earlier"),
                }
                (vd, false)
            }
            VInsn::Vluxei { vd, vidx, base } => {
                for k in 0..vl {
                    let addr = base + self.regs.elem_u32(vidx, k) as Addr * 4;
                    reqs.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                    beat_elems.push_back(1);
                    lane_offs.push_back((addr % bus_bytes as Addr) as usize);
                }
                (vd, false)
            }
            VInsn::Vlimxei { vd, idx_addr, base } => {
                assert_eq!(
                    self.kind,
                    SystemKind::Pack,
                    "vlimxei exists only on the PACK system"
                );
                let ar = ArBeat::packed_indirect(
                    id,
                    idx_addr,
                    vl as u32,
                    ElemSize::B4,
                    IdxSize::B4,
                    base,
                    &self.bus,
                );
                for b in 0..ar.beats {
                    beat_elems.push_back(ar.beat_valid_elems(b, &self.bus));
                    lane_offs.push_back(0);
                }
                reqs.push_back(ar);
                (vd, false)
            }
            _ => unreachable!("build_load_run on a non-load"),
        };
        // Snapshot the expected payload from the (eagerly updated) regfile.
        let expected = self.regs.bytes(vd)[..vl * 4].to_vec();
        LoadRun {
            uid,
            axi_id: id,
            reqs,
            beat_elems,
            lane_offs,
            expected,
            received_elems: 0,
            total_elems: vl,
            is_index,
        }
    }

    fn build_store_run(&mut self, uid: u64, insn: &VInsn) -> StoreRun {
        let vl = self.vl;
        let id = self.alloc_axi_id();
        let bus_bytes = self.bus.data_bytes();
        let epb = self.epb();
        let mut aws = VecDeque::new();
        let mut ws: VecDeque<(WBeat, usize)> = VecDeque::new();
        let vs = insn.sources()[0];
        // The store's data, snapshotted in program order. NOTE: snapshotted
        // *before* this fn runs? exec_functional already ran, so the
        // regfile holds this insn's program-order input values (stores do
        // not write registers).
        let data = self.regs.bytes(vs)[..vl * 4].to_vec();
        let src_uid = Some(self.reg_writer[vs as usize]);
        let full_beat = |b: usize, total_beats: usize| -> (WBeat, usize) {
            let elems = epb.min(vl - b * epb);
            let mut bytes = BeatBuf::zeroed(bus_bytes);
            bytes[..elems * 4].copy_from_slice(&data[b * epb * 4..b * epb * 4 + elems * 4]);
            let strb = if elems * 4 >= 128 {
                u128::MAX
            } else {
                (1u128 << (elems * 4)) - 1
            };
            (
                WBeat {
                    data: bytes,
                    strb,
                    last: b + 1 == total_beats,
                },
                (b * epb + elems).min(vl),
            )
        };
        let b_expected;
        match *insn {
            VInsn::Vse { base, .. } => {
                assert_eq!(base % 4, 0, "vse base must be element-aligned");
                // Unaligned head as narrow writes, then one aligned burst
                // whose beats draw data starting at the head offset.
                let head = (((bus_bytes as Addr - base % bus_bytes as Addr) % bus_bytes as Addr)
                    / 4) as usize;
                let head = head.min(vl);
                for k in 0..head {
                    let addr = base + 4 * k as Addr;
                    aws.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                    ws.push_back((Self::narrow_w(&data, k, addr, bus_bytes), k + 1));
                }
                let rem = vl - head;
                if rem > 0 {
                    let aligned = base + 4 * head as Addr;
                    let beats = rem.div_ceil(epb);
                    aws.push_back(ArBeat::incr(id, aligned, beats as u32, &self.bus));
                    for b in 0..beats {
                        let elems = epb.min(rem - b * epb);
                        let mut bytes = BeatBuf::zeroed(bus_bytes);
                        let lo = (head + b * epb) * 4;
                        bytes[..elems * 4].copy_from_slice(&data[lo..lo + elems * 4]);
                        let strb = if elems * 4 >= 128 {
                            u128::MAX
                        } else {
                            (1u128 << (elems * 4)) - 1
                        };
                        ws.push_back((
                            WBeat {
                                data: bytes,
                                strb,
                                last: b + 1 == beats,
                            },
                            head + b * epb + elems,
                        ));
                    }
                }
                b_expected = head as u32 + if rem > 0 { 1 } else { 0 };
            }
            VInsn::Vsse { base, stride, .. } => match self.kind {
                SystemKind::Pack => {
                    let aw = ArBeat::packed_strided(
                        id,
                        base,
                        vl as u32,
                        ElemSize::B4,
                        stride,
                        &self.bus,
                    );
                    let beats = aw.beats as usize;
                    aws.push_back(aw);
                    b_expected = 1;
                    for b in 0..beats {
                        ws.push_back(full_beat(b, beats));
                    }
                }
                SystemKind::Base => {
                    b_expected = vl as u32;
                    for k in 0..vl {
                        let addr = (base as i64 + k as i64 * stride as i64 * 4) as Addr;
                        aws.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                        ws.push_back((Self::narrow_w(&data, k, addr, bus_bytes), k + 1));
                    }
                }
                SystemKind::Ideal => unreachable!(),
            },
            VInsn::Vsuxei { vidx, base, .. } => {
                b_expected = vl as u32;
                for k in 0..vl {
                    let addr = base + self.regs.elem_u32(vidx, k) as Addr * 4;
                    aws.push_back(ArBeat::narrow(id, addr, ElemSize::B4));
                    ws.push_back((Self::narrow_w(&data, k, addr, bus_bytes), k + 1));
                }
            }
            VInsn::Vsimxei { idx_addr, base, .. } => {
                assert_eq!(
                    self.kind,
                    SystemKind::Pack,
                    "vsimxei exists only on the PACK system"
                );
                let aw = ArBeat::packed_indirect(
                    id,
                    idx_addr,
                    vl as u32,
                    ElemSize::B4,
                    IdxSize::B4,
                    base,
                    &self.bus,
                );
                let beats = aw.beats as usize;
                aws.push_back(aw);
                b_expected = 1;
                for b in 0..beats {
                    ws.push_back(full_beat(b, beats));
                }
            }
            _ => unreachable!("build_store_run on a non-store"),
        }
        self.stats.store_elems += vl as u64;
        StoreRun {
            uid,
            axi_id: id,
            src_uid,
            aws,
            ws,
            unlocked_w: 0,
            b_expected,
            b_received: 0,
        }
    }

    /// Builds the W beat of a narrow per-element store.
    fn narrow_w(data: &[u8], k: usize, addr: Addr, bus_bytes: usize) -> WBeat {
        let lane = (addr % bus_bytes as Addr) as usize;
        let mut bytes = BeatBuf::zeroed(bus_bytes);
        bytes[lane..lane + 4].copy_from_slice(&data[k * 4..k * 4 + 4]);
        WBeat {
            data: bytes,
            strb: 0b1111u128 << lane,
            last: true,
        }
    }

    // ------------------------------------------------------------------
    // Retirement
    // ------------------------------------------------------------------

    // simcheck: hot-path begin -- per-cycle retirement sweep over the small
    // in-flight window; in-place retain, no reallocation.

    fn sweep_completed(&mut self) {
        let window = &mut self.window;
        self.order.retain(|uid| match window.get(uid) {
            Some(e) if e.complete() => {
                window.remove(uid);
                false
            }
            Some(_) => true,
            None => false,
        });
    }

    // simcheck: hot-path end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;
    use banked_mem::BankConfig;
    use pack_ctrl::{Adapter, CtrlConfig};

    fn bus() -> BusConfig {
        BusConfig::new(256)
    }

    fn patterned_storage() -> Storage {
        let mut s = Storage::new(1 << 19);
        for w in 0..(1 << 16) {
            s.write_f32(w * 4, w as f32);
        }
        s
    }

    /// Runs a program on an AXI system (BASE or PACK); returns (engine,
    /// adapter) at quiescence and the cycle count.
    fn run_axi(kind: SystemKind, program: Program) -> (Engine, Adapter, u64) {
        let cfg = VprocConfig::default();
        let ctrl = CtrlConfig::new(bus(), BankConfig::default(), 4);
        let mut adapter = Adapter::new(ctrl, patterned_storage());
        let mut engine = Engine::new(cfg, kind, bus(), program);
        let mut ch = AxiChannels::new();
        let mut cycles = 0u64;
        while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
            engine.tick(Some(&mut ch), adapter.storage_mut());
            adapter.tick(&mut ch);
            adapter.end_cycle();
            ch.end_cycle();
            cycles += 1;
            assert!(cycles < 2_000_000, "simulation hung");
        }
        (engine, adapter, cycles)
    }

    fn run_ideal(program: Program) -> (Engine, Storage, u64) {
        let cfg = VprocConfig::default();
        let mut storage = patterned_storage();
        let mut engine = Engine::new(cfg, SystemKind::Ideal, bus(), program);
        let mut cycles = 0u64;
        while !engine.done() {
            engine.tick(None, &mut storage);
            cycles += 1;
            assert!(cycles < 2_000_000, "simulation hung");
        }
        (engine, storage, cycles)
    }

    #[test]
    fn axi_ids_wrap_within_configured_width() {
        let cfg = VprocConfig {
            axi_id_bits: 6,
            ..VprocConfig::default()
        };
        let mut engine = Engine::new(cfg, SystemKind::Pack, bus(), Program::default());
        for k in 0..130u32 {
            let id = engine.alloc_axi_id();
            assert!(id < 64, "6-bit ID space violated: {id}");
            assert_eq!(id as u32, k % 64);
        }
        let mut wide = Engine::new(
            VprocConfig::default(),
            SystemKind::Pack,
            bus(),
            Program::default(),
        );
        for k in 0..300u32 {
            assert_eq!(wide.alloc_axi_id() as u32, k % 256);
        }
    }

    #[test]
    fn unit_load_reads_correct_data_on_both_axi_systems() {
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let p = ProgramBuilder::new().set_vl(64).vle(1, 0x400).build();
            let (engine, _, _) = run_axi(kind, p);
            let expect: Vec<f32> = (0..64).map(|k| (0x100 + k) as f32).collect();
            assert_eq!(engine.regs().read_f32(1, 64), expect, "{kind}");
            assert_eq!(engine.stats().data_mismatches, 0);
        }
    }

    #[test]
    fn strided_load_much_faster_on_pack() {
        let p = |_: ()| {
            ProgramBuilder::new()
                .set_vl(128)
                .vlse(1, 0x0, 7)
                .vlse(2, 0x4000, 7)
                .vlse(3, 0x8000, 7)
                .vlse(4, 0xc000, 7)
                .build()
        };
        let (eb, _, base_cycles) = run_axi(SystemKind::Base, p(()));
        let (ep, _, pack_cycles) = run_axi(SystemKind::Pack, p(()));
        assert_eq!(eb.stats().data_mismatches, 0);
        assert_eq!(ep.stats().data_mismatches, 0);
        // 512 elements: BASE needs >512 cycles (1 elem/cycle on AR), PACK
        // needs ~64 beats plus overhead.
        assert!(base_cycles > 480, "base too fast: {base_cycles}");
        assert!(pack_cycles < 160, "pack too slow: {pack_cycles}");
        assert!(
            base_cycles as f64 / pack_cycles as f64 > 4.0,
            "pack speedup collapsed: {base_cycles} vs {pack_cycles}"
        );
    }

    #[test]
    fn pack_strided_data_is_correct() {
        let p = ProgramBuilder::new().set_vl(32).vlse(5, 0x1000, 9).build();
        let (engine, _, _) = run_axi(SystemKind::Pack, p);
        let expect: Vec<f32> = (0..32).map(|k| (0x400 + k * 9) as f32).collect();
        assert_eq!(engine.regs().read_f32(5, 32), expect);
        assert_eq!(engine.stats().data_mismatches, 0);
    }

    #[test]
    fn in_memory_indexed_gather_matches_register_indexed() {
        // Plant an index array at 0x40000 (beyond the f32 pattern writes).
        let idx: Vec<u32> = (0..64u32).map(|i| (i * 53) % 4096).collect();
        let pack_prog = ProgramBuilder::new()
            .set_vl(64)
            .vlimxei(1, 0x40000, 0x0)
            .build();
        let cfg = VprocConfig::default();
        let ctrl = CtrlConfig::new(bus(), BankConfig::default(), 4);
        let mut storage = patterned_storage();
        storage.write_u32_slice(0x40000, &idx);
        let mut adapter = Adapter::new(ctrl, storage);
        let mut engine = Engine::new(cfg, SystemKind::Pack, bus(), pack_prog);
        let mut ch = AxiChannels::new();
        let mut cycles = 0;
        while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
            engine.tick(Some(&mut ch), adapter.storage_mut());
            adapter.tick(&mut ch);
            adapter.end_cycle();
            ch.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000);
        }
        let expect: Vec<f32> = idx.iter().map(|&i| i as f32).collect();
        assert_eq!(engine.regs().read_f32(1, 64), expect);
        assert_eq!(engine.stats().data_mismatches, 0);
        // Indices never cross the bus: both utilization views agree.
        assert_eq!(
            engine.stats().r_util.payload_bytes(),
            engine.stats().r_util_data.payload_bytes()
        );
    }

    #[test]
    fn base_indexed_gather_spends_bus_time_on_indices() {
        let idx: Vec<u32> = (0..64u32).map(|i| (i * 29) % 4096).collect();
        let prog = ProgramBuilder::new()
            .set_vl(64)
            .vle_index(2, 0x40000)
            .vluxei(1, 2, 0x0)
            .build();
        let cfg = VprocConfig::default();
        let ctrl = CtrlConfig::new(bus(), BankConfig::default(), 4);
        let mut storage = patterned_storage();
        storage.write_u32_slice(0x40000, &idx);
        let mut adapter = Adapter::new(ctrl, storage);
        let mut engine = Engine::new(cfg, SystemKind::Base, bus(), prog);
        let mut ch = AxiChannels::new();
        let mut cycles = 0;
        while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
            engine.tick(Some(&mut ch), adapter.storage_mut());
            adapter.tick(&mut ch);
            adapter.end_cycle();
            ch.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000);
        }
        let expect: Vec<f32> = idx.iter().map(|&i| i as f32).collect();
        assert_eq!(engine.regs().read_f32(1, 64), expect);
        // Index beats are excluded from the data-only utilization.
        assert!(engine.stats().r_util.payload_bytes() > engine.stats().r_util_data.payload_bytes());
    }

    #[test]
    fn compute_chain_and_store_roundtrip() {
        let p = ProgramBuilder::new()
            .set_vl(32)
            .vle(1, 0x400)
            .vle(2, 0x800)
            .vfmacc(3, 1, 2)
            .vse(3, 0x10000)
            .build();
        let (engine, adapter, _) = run_axi(SystemKind::Pack, p);
        for k in 0..32u64 {
            let a = (0x100 + k) as f32;
            let b = (0x200 + k) as f32;
            assert_eq!(adapter.storage().read_f32(0x10000 + 4 * k), a * b);
        }
        assert_eq!(engine.stats().data_mismatches, 0);
    }

    #[test]
    fn reduction_takes_the_tail_latency() {
        let p = ProgramBuilder::new()
            .set_vl(128)
            .vle(1, 0x0)
            .vfredsum(2, 1)
            .scalar_store_f32(2, 0x20000)
            .build();
        let (engine, adapter, cycles) = run_axi(SystemKind::Pack, p);
        let expect: f32 = (0..128).map(|k| k as f32).sum();
        assert_eq!(adapter.storage().read_f32(0x20000), expect);
        // 16 beats + reduction consume + tail: must exceed the tail alone.
        assert!(cycles > VprocConfig::default().reduction_tail as u64);
        assert_eq!(engine.stats().flops, 128);
    }

    #[test]
    fn strided_store_scatters_correctly_on_pack() {
        let p = ProgramBuilder::new()
            .set_vl(16)
            .vle(1, 0x400)
            .vsse(1, 0x30000, 5)
            .build();
        let (_, adapter, _) = run_axi(SystemKind::Pack, p);
        for k in 0..16u64 {
            assert_eq!(
                adapter.storage().read_f32(0x30000 + k * 5 * 4),
                (0x100 + k) as f32
            );
        }
    }

    #[test]
    fn base_strided_store_is_one_element_per_cycle_ish() {
        let p = ProgramBuilder::new()
            .set_vl(128)
            .vle(1, 0x400)
            .vsse(1, 0x30000, 3)
            .build();
        let (_, adapter, cycles) = run_axi(SystemKind::Base, p);
        for k in 0..128u64 {
            assert_eq!(
                adapter.storage().read_f32(0x30000 + k * 3 * 4),
                (0x100 + k) as f32
            );
        }
        assert!(cycles > 128, "narrow stores cannot beat 1 elem/cycle");
    }

    #[test]
    fn load_store_ordering_serializes() {
        // Load then dependent-region store then load: phases cannot overlap.
        let p = ProgramBuilder::new()
            .set_vl(128)
            .vle(1, 0x0)
            .vse(1, 0x4000)
            .vle(2, 0x4000)
            .build();
        let (engine, _, _) = run_axi(SystemKind::Pack, p);
        // The second load observes the stored data (functional), and R
        // busy fraction stays near 50% of the memory phases.
        let expect: Vec<f32> = (0..128).map(|k| k as f32).collect();
        assert_eq!(engine.regs().read_f32(2, 128), expect);
    }

    #[test]
    fn ideal_backend_streams_at_lane_rate() {
        let p = ProgramBuilder::new()
            .set_vl(128)
            .vlse(1, 0x0, 17)
            .vlse(2, 0x4000, 17)
            .build();
        let (engine, _, cycles) = run_ideal(p);
        let expect: Vec<f32> = (0..128).map(|k| (k * 17) as f32).collect();
        assert_eq!(engine.regs().read_f32(1, 128), expect);
        // 256 elements at 8/cycle = 32 transfer cycles + small overhead.
        assert!(cycles < 60, "ideal too slow: {cycles}");
    }

    #[test]
    fn unaligned_unit_accesses_roundtrip() {
        // Base 0x40c is element-aligned but not bus-aligned: 5 head
        // elements on a 256-bit bus, then full beats.
        let p = ProgramBuilder::new()
            .set_vl(30)
            .vle(1, 0x40c)
            .vse(1, 0x3000c)
            .build();
        for kind in [SystemKind::Base, SystemKind::Pack] {
            let (engine, adapter, _) = run_axi(kind, p.clone());
            let expect: Vec<f32> = (0..30).map(|k| (0x103 + k) as f32).collect();
            assert_eq!(engine.regs().read_f32(1, 30), expect, "{kind}");
            for k in 0..30u64 {
                assert_eq!(
                    adapter.storage().read_f32(0x3000c + 4 * k),
                    (0x103 + k) as f32,
                    "{kind} elem {k}"
                );
            }
            assert_eq!(engine.stats().data_mismatches, 0, "{kind}");
        }
    }

    #[test]
    fn scalar_markers_stall_the_frontend() {
        let p = ProgramBuilder::new()
            .set_vl(8)
            .scalar(50)
            .vle(1, 0x0)
            .build();
        let (engine, _, cycles) = run_axi(SystemKind::Pack, p);
        assert!(cycles >= 50, "scalar overhead was not charged: {cycles}");
        assert!(engine.stats().scalar_stall_cycles >= 49);
    }

    #[test]
    fn register_indexed_scatter_roundtrips() {
        let idx: Vec<u32> = vec![9, 3, 77, 12, 5, 60, 31, 2];
        let mut prog = ProgramBuilder::new().set_vl(8);
        prog = prog
            .vle(1, 0x400)
            .vle_index(2, 0x40000)
            .vsuxei(1, 2, 0x60000);
        let cfg = VprocConfig::default();
        let ctrl = CtrlConfig::new(bus(), BankConfig::default(), 4);
        let mut storage = patterned_storage();
        storage.write_u32_slice(0x40000, &idx);
        let mut adapter = Adapter::new(ctrl, storage);
        let mut engine = Engine::new(cfg, SystemKind::Base, bus(), prog.build());
        let mut ch = AxiChannels::new();
        let mut cycles = 0;
        while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
            engine.tick(Some(&mut ch), adapter.storage_mut());
            adapter.tick(&mut ch);
            adapter.end_cycle();
            ch.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000);
        }
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(
                adapter.storage().read_f32(0x60000 + 4 * i as u64),
                (0x100 + k) as f32,
                "element {k}"
            );
        }
    }

    #[test]
    fn in_memory_indexed_scatter_roundtrips_on_pack() {
        let idx: Vec<u32> = vec![9, 3, 77, 12, 5, 60, 31, 2, 100, 101];
        let prog = ProgramBuilder::new()
            .set_vl(10)
            .vle(1, 0x400)
            .vsimxei(1, 0x40000, 0x60000)
            .build();
        let cfg = VprocConfig::default();
        let ctrl = CtrlConfig::new(bus(), BankConfig::default(), 4);
        let mut storage = patterned_storage();
        storage.write_u32_slice(0x40000, &idx);
        let mut adapter = Adapter::new(ctrl, storage);
        let mut engine = Engine::new(cfg, SystemKind::Pack, bus(), prog);
        let mut ch = AxiChannels::new();
        let mut cycles = 0;
        while !(engine.done() && adapter.quiescent() && ch.is_empty()) {
            engine.tick(Some(&mut ch), adapter.storage_mut());
            adapter.tick(&mut ch);
            adapter.end_cycle();
            ch.end_cycle();
            cycles += 1;
            assert!(cycles < 100_000);
        }
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(
                adapter.storage().read_f32(0x60000 + 4 * i as u64),
                (0x100 + k) as f32,
                "element {k}"
            );
        }
    }

    #[test]
    fn ideal_index_fetch_costs_transfer_time() {
        let idx: Vec<u32> = (0..128u32).collect();
        let mut storage = patterned_storage();
        storage.write_u32_slice(0x40000, &idx);
        let prog = ProgramBuilder::new()
            .set_vl(128)
            .vle_index(2, 0x40000)
            .vluxei(1, 2, 0x0)
            .build();
        let cfg = VprocConfig::default();
        let mut engine = Engine::new(cfg, SystemKind::Ideal, bus(), prog);
        let mut cycles = 0u64;
        while !engine.done() {
            engine.tick(None, &mut storage);
            cycles += 1;
            assert!(cycles < 100_000);
        }
        // Index fetch (16 cycles) + gather (16 cycles) both hit the port.
        assert!(cycles >= 32, "index traffic must cost port time: {cycles}");
        assert!(engine.stats().r_util.payload_bytes() > engine.stats().r_util_data.payload_bytes());
    }

    #[test]
    fn next_wake_classifies_frontend_states() {
        let cfg = VprocConfig::default();
        // A pending instruction is observable work.
        let p = ProgramBuilder::new().scalar(11).build();
        let mut engine = Engine::new(cfg, SystemKind::Ideal, bus(), p);
        assert_eq!(engine.next_wake(), Wake::Ready);
        // Issuing the scalar turns the remaining stall into a deadline.
        let mut storage = patterned_storage();
        engine.tick(None, &mut storage);
        assert_eq!(engine.next_wake(), Wake::Sleep(10));
        // A finished engine has nothing to wake for.
        let done = Engine::new(cfg, SystemKind::Ideal, bus(), Program::default());
        assert!(done.done());
        assert_eq!(done.next_wake(), Wake::Idle);
    }

    #[test]
    fn fast_forward_equals_that_many_ticks() {
        // Two identical engines issue a long scalar; one sleeps through the
        // stall in a single fast_forward, the other ticks it out. Every
        // statistic must land bit-identically.
        let p = || ProgramBuilder::new().scalar(50).build();
        let cfg = VprocConfig::default();
        let mut skipper = Engine::new(cfg, SystemKind::Ideal, bus(), p());
        let mut ticker = Engine::new(cfg, SystemKind::Ideal, bus(), p());
        let mut storage = patterned_storage();
        skipper.tick(None, &mut storage);
        ticker.tick(None, &mut storage);
        let span = skipper.next_wake().sleep_ticks().expect("stalled");
        assert_eq!(span, 49);
        skipper.fast_forward(span);
        for _ in 0..span {
            ticker.tick(None, &mut storage);
        }
        assert!(skipper.done() && ticker.done(), "both engines must finish");
        assert_eq!(
            format!("{:?}", skipper.stats()),
            format!("{:?}", ticker.stats()),
            "fast_forward diverged from lockstep ticking"
        );
    }

    #[test]
    fn fast_forward_replays_ideal_latency() {
        // An IDEAL load spends `ideal_latency` cycles before transferring;
        // the wake is that countdown and skipping it must match ticking.
        let p = || {
            ProgramBuilder::new()
                .set_vl(8)
                .vle(1, 0x400)
                .scalar(40)
                .build()
        };
        let cfg = VprocConfig::default();
        let mut skipper = Engine::new(cfg, SystemKind::Ideal, bus(), p());
        let mut ticker = Engine::new(cfg, SystemKind::Ideal, bus(), p());
        let mut s1 = patterned_storage();
        let mut s2 = patterned_storage();
        let mut guard = 0u32;
        while !(skipper.done() && ticker.done()) {
            if let Wake::Sleep(span) = skipper.next_wake() {
                skipper.fast_forward(span);
                for _ in 0..span {
                    ticker.tick(None, &mut s2);
                }
            } else {
                if !skipper.done() {
                    skipper.tick(None, &mut s1);
                }
                if !ticker.done() {
                    ticker.tick(None, &mut s2);
                }
            }
            guard += 1;
            assert!(guard < 10_000, "lockstep shadow run hung");
        }
        assert_eq!(skipper.regs().read_f32(1, 8), ticker.regs().read_f32(1, 8));
        assert_eq!(
            format!("{:?}", skipper.stats()),
            format!("{:?}", ticker.stats()),
            "fast_forward diverged across load + stall phases"
        );
    }
}
